//! `task_server`: the persistent executor under concurrent load.
//!
//! Eight submitter threads push 1 000 jobs each into a [`TaskServer`]
//! running on a two-socket virtual machine (two ingress shards). Each
//! submitter registers a pinned ingress lane in its NUMA zone
//! ([`TaskServer::register_submitter`]) — claim-free SPSC submission
//! with a zone-local doorbell wake. Halfway through, every submitter
//! switches from fine-grained jobs (hundreds of cycles) to coarse ones
//! (hundreds of thousands of cycles) — the adaptive controller observes
//! the shift in the live task-size histogram and, after its two-window
//! hysteresis confirms it, hot-swaps the DLB configuration per
//! Table IV, logging each retune to stderr. At the end the example
//! demonstrates the event-driven idle path: the drained server parks
//! every worker (zero CPU) and one last doorbell ring wakes it.
//!
//! ```text
//! cargo run --release --example task_server
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xgomp::service::{ServerConfig, TaskServer};
use xgomp::{DlbConfig, DlbStrategy, MachineTopology, RuntimeConfig};

const SUBMITTERS: u64 = 8;
const JOBS_PER_SUBMITTER: u64 = 1_000;

fn submit_and_verify(server: &TaskServer, t: u64, checksum: &AtomicU64) {
    // Pin this submitter to a reserved SPSC lane in its NUMA zone: no
    // producer-claim traffic, and every push rings that zone's doorbell.
    let mut sub = server.register_submitter(t as usize % server.stats().shards);
    let mut handles = Vec::with_capacity(JOBS_PER_SUBMITTER as usize);
    for i in 0..JOBS_PER_SUBMITTER {
        // First half: fine-grained jobs (a handful of arithmetic ops).
        // Second half: coarse jobs spinning for ~10^5 cycles — the
        // distribution shift the controller must catch.
        let coarse = i >= JOBS_PER_SUBMITTER / 2;
        let h = sub
            .submit(move |_ctx| {
                if coarse {
                    let mut acc = 0u64;
                    for k in 0..20_000u64 {
                        acc = acc.wrapping_add(std::hint::black_box(k ^ i));
                    }
                    std::hint::black_box(acc);
                }
                t * 1_000_000 + i
            })
            .expect("server open");
        handles.push((i, h));
    }
    for (i, h) in handles {
        let got = h.join().expect("job completed");
        assert_eq!(got, t * 1_000_000 + i, "wrong result for job ({t},{i})");
        checksum.fetch_add(got, Ordering::Relaxed);
    }
}

fn main() {
    // Two sockets × four cores: workers 0..4 on zone 0, 4..8 on zone 1,
    // so the ingress runs with two NUMA shards.
    let runtime = RuntimeConfig::xgomptb(8)
        .topology(MachineTopology::new(2, 4, 1))
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal))
        // The example asserts on parked_workers(): pin parking on so it
        // holds under any XGOMP_WAIT_POLICY environment.
        .park_idle(true);
    let server = TaskServer::start(
        ServerConfig::new(8)
            .runtime(runtime)
            .max_in_flight(2_048)
            .adapt_every(512)
            .log_retunes(true),
    );
    eprintln!(
        "[task_server] serving with {} ingress shard(s), initial DLB {}",
        server.stats().shards,
        server.active_dlb().strategy.name(),
    );

    let checksum = Arc::new(AtomicU64::new(0));
    let started = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..SUBMITTERS {
            let server = &server;
            let checksum = checksum.clone();
            s.spawn(move || submit_and_verify(server, t, &checksum));
        }
    });
    let wall = started.elapsed();

    let expected: u64 = (0..SUBMITTERS)
        .map(|t| {
            (0..JOBS_PER_SUBMITTER)
                .map(|i| t * 1_000_000 + i)
                .sum::<u64>()
        })
        .sum();
    assert_eq!(
        checksum.load(Ordering::Relaxed),
        expected,
        "checksum over all job results"
    );

    // Event-driven idle: with the backlog drained, every worker (the
    // serve loop included) parks — an idle server burns no CPU. One
    // more submission rings the doorbell and wakes a zone-local worker.
    let n_workers = 8;
    let parked_at = std::time::Instant::now();
    while server.parked_workers() < n_workers {
        assert!(
            parked_at.elapsed() < std::time::Duration::from_secs(20),
            "drained server failed to park its workers"
        );
        std::thread::yield_now();
    }
    let wake_t0 = std::time::Instant::now();
    let woken = server
        .submit(move |_| wake_t0.elapsed())
        .expect("server open")
        .join()
        .expect("wake job");
    eprintln!(
        "[task_server] idle: all {n_workers} workers parked after {:.2?}; \
         doorbell wake -> job done in {woken:.2?} ({} parks, {} wakes so far)",
        parked_at.elapsed(),
        server.park_events(),
        server.wake_events(),
    );

    // Multi-generation serving: pause the server (the whole team parks,
    // ingress lanes survive), queue a backlog at ~0 CPU, then resume
    // under a *different* configuration — half the workers on one
    // socket, RedirectPush tuning — and let generation 2 complete the
    // queued-while-paused jobs plus fresh ones.
    server.pause().expect("pause");
    assert_eq!(server.parked_workers(), n_workers, "paused team parked");
    let paused_jobs: Vec<_> = (0..256u64)
        .map(|i| server.submit(move |_| i).expect("queues while paused"))
        .collect();
    assert!(
        paused_jobs.iter().all(|h| !h.is_done()),
        "paused jobs must wait for resume"
    );
    eprintln!(
        "[task_server] paused: {} jobs queued while every worker sleeps",
        server.stats().queued
    );
    server
        .resume_with(
            RuntimeConfig::xgomptb(4)
                .topology(MachineTopology::new(2, 2, 1))
                .dlb(DlbConfig::new(DlbStrategy::RedirectPush).rebalance_interval(2_048)),
        )
        .expect("resume with new config");
    let backlog: u64 = paused_jobs
        .into_iter()
        .map(|h| h.join().expect("queued job completes"))
        .sum();
    assert_eq!(backlog, (0..256u64).sum::<u64>(), "backlog conserved");
    let fresh = server.submit(|_| 1u64).expect("generation 2 serves");
    assert_eq!(fresh.join().expect("fresh job"), 1);
    eprintln!(
        "[task_server] generation {} serving on 4 workers under {} after the swap",
        server.generation(),
        server.active_dlb().strategy.name(),
    );

    // Data-parallel phase: two *concurrent* skewed-cost loops served as
    // jobs through the same admission/telemetry pipeline (adaptive
    // chunking, zone pools, range stealing) while the inter-socket
    // balancer re-splits rich zone blocks into starved zones' inboxes.
    let loop_sum = Arc::new(AtomicU64::new(0));
    let loop_handles: Vec<_> = (0..2)
        .map(|_| {
            let ls = loop_sum.clone();
            server
                .submit_for(0..200_000u64, xgomp::LoopSchedule::Adaptive, move |i, _| {
                    if i >= 150_000 {
                        // Skewed tail: the second zone's block is rich.
                        for _ in 0..60 {
                            std::hint::spin_loop();
                        }
                    }
                    ls.fetch_add(i, Ordering::Relaxed);
                })
                .expect("loop job admitted")
        })
        .collect();
    let mut loop_chunks = 0;
    let mut loop_rebalances = 0;
    for h in loop_handles {
        let loop_report = h.join().expect("loop job completes");
        assert_eq!(loop_report.iterations, 200_000);
        assert_eq!(
            loop_report.migrated_in, loop_report.migrated_out,
            "balancer migration accounting conserves"
        );
        loop_chunks += loop_report.chunks;
        loop_rebalances += loop_report.rebalances;
    }
    assert_eq!(
        loop_sum.load(Ordering::Relaxed),
        2 * (0..200_000u64).sum::<u64>(),
        "loop checksum conserved"
    );
    eprintln!(
        "[task_server] parallel_for: 2 concurrent skewed loops × 200k iterations \
         in {} chunks ({} inter-socket rebalances, {} iterations migrated, \
         {} range steals)",
        loop_chunks,
        loop_rebalances,
        server.loop_balancer().iterations_migrated(),
        server.stats().loop_range_steals,
    );

    let hist = server.task_histogram();
    let report = server.shutdown();
    let total = SUBMITTERS * JOBS_PER_SUBMITTER;
    assert_eq!(
        report.stats.completed,
        total + 1 + 256 + 1 + 2, // + wake probe, paused backlog, gen-2 probe, loop jobs
        "every job completed"
    );
    assert_eq!(report.stats.loops, 2, "the parallel_for jobs are counted");
    assert_eq!(report.stats.loop_iters, 400_000);
    assert_eq!(report.stats.generations, 2);
    assert_eq!(report.prior_regions.len(), 1);
    assert!(
        report.stats.retunes >= 1,
        "the distribution shift must trigger at least one live retune \
         (got {}; histogram:\n{})",
        report.stats.retunes,
        hist.render()
    );

    eprintln!("[task_server] task-size distribution across the run:");
    eprint!("{}", hist.render());
    eprintln!(
        "[task_server] OK: {total} jobs from {SUBMITTERS} submitters in {wall:.2?} \
         ({:.0} jobs/s), {} live DLB retune(s), {} rejected submissions",
        total as f64 / wall.as_secs_f64(),
        report.stats.retunes,
        report.stats.rejected,
    );
    let region = report.region.expect("server exited cleanly");
    eprintln!(
        "[task_server] serve region: {} tasks executed, {} migrated by DLB",
        region.stats.total().tasks_executed,
        region.stats.total().ntasks_stolen,
    );
}
