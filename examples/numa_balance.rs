//! NUMA-aware load balancing in action: an artificially imbalanced
//! workload (heavy-tailed task sizes, §VIII's setup) run under static
//! balancing, NA-RP, and NA-WS on a simulated 8-zone machine, with the
//! steal/locality statistics that explain the outcome.
//!
//! ```text
//! cargo run --release --example numa_balance
//! ```

use xgomp::topology::MachineTopology;
use xgomp::{CostModel, DlbConfig, DlbStrategy, Runtime, RuntimeConfig, TaskCtx};

/// Spin for ~`cycles` timestamp cycles.
fn spin(cycles: u64) {
    let t0 = xgomp::clock::now();
    while xgomp::clock::now().wrapping_sub(t0) < cycles {
        std::hint::spin_loop();
    }
}

/// 2048 tasks; every 40th costs 50× the base grain.
fn imbalanced_workload(ctx: &TaskCtx<'_>) {
    ctx.scope(|s| {
        for i in 0..2048u64 {
            s.spawn(move |_| {
                let cost = if i % 40 == 0 { 500_000 } else { 10_000 };
                spin(cost);
            });
        }
    });
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() * 2)
        .unwrap_or(4)
        .max(8);
    // Simulate a 4-zone machine sized so the team spans all zones
    // (the paper's Skylake-192 has 48 hw threads per zone — a small
    // team placed "close" would all land in zone 0).
    let zones = 4;
    let base = RuntimeConfig::xgomptb(threads)
        .topology(MachineTopology::new(zones, threads.div_ceil(zones), 1))
        .cost_model(CostModel::paper_default());

    let variants: [(&str, RuntimeConfig); 3] = [
        ("STATIC (round-robin)", base.clone()),
        (
            "NA-RP (redirect push)",
            base.clone().dlb(
                DlbConfig::new(DlbStrategy::RedirectPush)
                    .n_steal(32)
                    .t_interval(1000),
            ),
        ),
        (
            "NA-WS (work stealing)",
            base.clone().dlb(
                DlbConfig::new(DlbStrategy::WorkSteal)
                    .n_steal(32)
                    .t_interval(1000),
            ),
        ),
    ];

    println!(
        "imbalanced workload on {} workers, 8 simulated NUMA zones\n",
        threads
    );
    for (label, cfg) in variants {
        let rt = Runtime::new(cfg);
        let out = rt.parallel(imbalanced_workload);
        let t = out.stats.total();
        println!("{label}");
        println!("  wall time      : {:?}", out.wall);
        println!(
            "  locality       : self={} local={} remote={}",
            t.ntasks_self, t.ntasks_local, t.ntasks_remote
        );
        println!(
            "  steal protocol : sent={} handled={} migrated={} (local {})",
            t.nreq_sent, t.nreq_handled, t.ntasks_stolen, t.nsteal_local
        );
        // Per-worker execution spread: max/min tasks executed.
        let max = out
            .stats
            .workers
            .iter()
            .map(|w| w.tasks_executed)
            .max()
            .unwrap();
        let min = out
            .stats
            .workers
            .iter()
            .map(|w| w.tasks_executed)
            .min()
            .unwrap();
        println!("  tasks/worker   : max={max} min={min}\n");
    }
}
