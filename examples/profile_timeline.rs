//! The §V profiling tools: run BOTS Sort with per-thread event logging
//! enabled, render the Fig. 3-style timeline and task-count summaries,
//! and dump the raw log as JSON (the `xomp_perflog_dump` equivalent —
//! set `XOMP_PERFLOG_PATH=/tmp/perflog.json` to write it).
//!
//! ```text
//! cargo run --release --example profile_timeline
//! ```

use xgomp::bots::{BotsApp, Scale};
use xgomp::{
    render_task_counts, render_timeline, state_summary, ProfileDump, Runtime, RuntimeConfig,
};

fn main() {
    let threads = 8;
    let app = BotsApp::Sort;
    let rt = Runtime::new(RuntimeConfig::xgomp(threads).profiling(true));
    let out = rt.parallel(|ctx| app.run_par(ctx, Scale::Quick));

    println!("=== {} under XGOMP, {} workers ===\n", app.name(), threads);
    print!("{}", render_timeline(&out.logs, 100));
    print!("{}", render_task_counts(&out.stats.workers));

    println!("\nper-thread state totals (ticks):");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14}  util%",
        "thread", "TASK", "GOMP_TASK", "TASKWAIT", "BARRIER", "STALL"
    );
    for row in state_summary(&out.logs) {
        let total = row.total().max(1);
        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>14} {:>14}  {:>4.1}",
            row.worker,
            row.ticks[0],
            row.ticks[1],
            row.ticks[2],
            row.ticks[3],
            row.ticks[4],
            100.0 * row.utilized() as f64 / total as f64
        );
    }

    // The xomp_perflog_dump path: JSON to $XOMP_PERFLOG_PATH if set.
    let dump = ProfileDump::new(out.logs, out.stats.workers);
    match dump.dump_from_env() {
        Ok(true) => println!("\nperflog written to $XOMP_PERFLOG_PATH"),
        Ok(false) => println!("\n(set XOMP_PERFLOG_PATH to dump the raw JSON log)"),
        Err(e) => eprintln!("perflog dump failed: {e}"),
    }
}
