//! Quickstart: open a parallel region on the paper's best runtime
//! (XGOMPTB = XQueue + distributed tree barrier), spawn fine-grained
//! tasks that borrow from the stack, and read the §V statistics back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xgomp::{DlbConfig, DlbStrategy, Runtime, RuntimeConfig};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() * 2)
        .unwrap_or(4);

    // 1. A plain XGOMPTB runtime (static round-robin balancing).
    let rt = Runtime::new(RuntimeConfig::xgomptb(threads));
    let out = rt.parallel(|ctx| {
        // `scope` = spawn + implicit taskwait; closures may borrow.
        let mut squares = vec![0u64; 1024];
        ctx.scope(|s| {
            for (i, sq) in squares.iter_mut().enumerate() {
                s.spawn(move |_| *sq = (i as u64).pow(2));
            }
        });
        squares.iter().sum::<u64>()
    });
    println!("sum of squares 0..1024  = {}", out.result);
    println!(
        "tasks executed          = {}",
        out.stats.total().tasks_executed
    );
    println!("region wall time        = {:?}", out.wall);

    // 2. Same region with NUMA-aware work stealing (NA-WS) enabled.
    let rt =
        Runtime::new(RuntimeConfig::xgomptb(threads).dlb(DlbConfig::new(DlbStrategy::WorkSteal)));
    let out = rt.parallel(|ctx| {
        // Recursive tasking: BOTS-style Fibonacci, a task per call.
        xgomp::bots::fib::par(ctx, 24)
    });
    let total = out.stats.total();
    println!("\nfib(24)                 = {}", out.result);
    println!("tasks created           = {}", total.tasks_created);
    println!(
        "locality self/local/rem = {}/{}/{}",
        total.ntasks_self, total.ntasks_local, total.ntasks_remote
    );
    println!(
        "steal requests sent     = {} (handled {}, moved {} tasks)",
        total.nreq_sent, total.nreq_handled, total.ntasks_stolen
    );
}
