//! The §VII Proof-of-Space case study as a runnable miner: generate a
//! plot of BLAKE3 puzzles with task-parallel batches, compare GOMP and
//! XGOMPTB throughput at a few batch sizes, then answer a challenge by
//! prefix lookup (what a PoSp prover does at consensus time).
//!
//! ```text
//! cargo run --release --example posp_miner
//! ```

use xgomp::{Runtime, RuntimeConfig};
use xgomp_posp::plot::{generate_par, PlotParams};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() * 2)
        .unwrap_or(4);
    let k = 14; // 16 384 puzzles — a toy plot (Chia production uses k=32)

    println!("plotting 2^{k} BLAKE3 puzzles on {threads} workers\n");
    println!(
        "{:>8}  {:>14}  {:>14}",
        "batch", "GOMP MH/s", "XGOMPTB MH/s"
    );
    for batch in [1usize, 16, 256, 1024] {
        let params = PlotParams {
            k,
            batch,
            challenge: 0xC41A,
            n_buckets: 256,
        };
        let mut rates = Vec::new();
        for cfg in [
            RuntimeConfig::gomp(threads),
            RuntimeConfig::xgomptb(threads),
        ] {
            let rt = Runtime::new(cfg);
            let out = rt.parallel(|ctx| generate_par(ctx, &params));
            assert_eq!(out.result.len(), params.n_puzzles());
            rates.push(params.n_puzzles() as f64 / out.wall.as_secs_f64() / 1e6);
        }
        println!("{:>8}  {:>14.2}  {:>14.2}", batch, rates[0], rates[1]);
    }

    // Prove: find puzzles whose hash starts with a challenge prefix.
    let params = PlotParams {
        k,
        batch: 1024,
        challenge: 0xC41A,
        n_buckets: 256,
    };
    let rt = Runtime::new(RuntimeConfig::xgomptb(threads));
    let plot = rt.parallel(|ctx| generate_par(ctx, &params)).result;
    let challenge_prefix = [0x5A, 0x00];
    let proofs = plot.lookup(&challenge_prefix[..1]);
    println!(
        "\nchallenge prefix 0x{:02x}: {} candidate puzzles in the plot",
        challenge_prefix[0],
        proofs.len()
    );
    if let Some(p) = proofs.first() {
        println!(
            "first proof: nonce={} hash[..8]={:02x?}",
            p.nonce,
            &p.hash[..8]
        );
    }
}
