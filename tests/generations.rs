//! Multi-generation serving: pause/resume quiescence, config swaps at
//! generation boundaries, drop-without-shutdown, shutdown of a fully
//! parked team, and job conservation when submitters race lifecycle
//! transitions across ≥ 3 generations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xgomp::service::{Lifecycle, ServerConfig, TaskServer};
use xgomp::{DlbConfig, DlbStrategy, MachineTopology, RuntimeConfig};

/// A server whose parking behavior is pinned on regardless of the
/// `XGOMP_WAIT_POLICY` CI leg — these tests assert on park counters.
fn parking_server(threads: usize) -> TaskServer {
    TaskServer::start(
        ServerConfig::new(threads).runtime(
            RuntimeConfig::xgomptb(threads)
                .dlb(DlbConfig::new(DlbStrategy::WorkSteal))
                .park_idle(true),
        ),
    )
}

fn wait_parked(server: &TaskServer, n: usize, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while server.parked_workers() < n {
        assert!(
            Instant::now() < deadline,
            "{what}: only {}/{n} workers parked (parks={}, wakes={})",
            server.parked_workers(),
            server.park_events(),
            server.wake_events(),
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Dropping a server without `shutdown` must run the same drain: every
/// admitted job completes and its handle resolves.
#[test]
fn drop_without_shutdown_still_drains() {
    let server = TaskServer::start(ServerConfig::new(4));
    let done = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..128u64)
        .map(|i| {
            let done = done.clone();
            server
                .submit(move |_| {
                    std::thread::sleep(Duration::from_micros(200));
                    done.fetch_add(1, Ordering::SeqCst);
                    i
                })
                .unwrap()
        })
        .collect();
    drop(server);
    assert_eq!(done.load(Ordering::SeqCst), 128, "drop drained everything");
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), i as u64);
    }
}

/// Dropping a *paused* server must still complete the jobs that were
/// queued while paused (the drop drain runs a closing generation).
#[test]
fn drop_while_paused_completes_queued_jobs() {
    let server = TaskServer::start(ServerConfig::new(2));
    server.pause().unwrap();
    let queued: Vec<_> = (0..32u64)
        .map(|i| server.submit(move |_| i * 2).unwrap())
        .collect();
    assert_eq!(server.stats().queued, 32, "paused jobs stay queued");
    drop(server);
    for (i, h) in queued.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), i as u64 * 2);
    }
}

/// Shutting down a team that is fully parked (every worker asleep, park
/// counter frozen) must wake it, drain, and return a clean report.
#[test]
fn shutdown_while_fully_parked_drains_cleanly() {
    const THREADS: usize = 4;
    let server = parking_server(THREADS);
    server.submit(|_| ()).unwrap().join().unwrap();
    wait_parked(&server, THREADS, "pre-shutdown idle");
    // Let announcements commit to sleeps, then prove the park counter
    // stopped advancing — no yield-loop progress while fully idle.
    std::thread::sleep(Duration::from_millis(50));
    let parks_before = server.park_events();
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(
        server.park_events(),
        parks_before,
        "fully parked team must not cycle through park/unpark"
    );
    let report = server.shutdown();
    assert_eq!(report.stats.completed, 1);
    assert_eq!(report.stats.in_flight, 0);
    assert!(
        report.region.is_some(),
        "parked team must tear down cleanly"
    );
}

/// The acceptance scenario: serve generation 1 → `pause()` (everything
/// parks, submitter lane retained) → queue jobs while paused →
/// `resume_with` a different `RuntimeConfig` + `DlbConfig` (smaller
/// team, different zone map) → generation 2 completes the queued and
/// fresh jobs with exact conservation.
#[test]
fn pause_swap_resume_conserves_across_generations() {
    const THREADS_G1: usize = 8;
    let server = TaskServer::start(
        ServerConfig::new(THREADS_G1)
            .runtime(
                RuntimeConfig::xgomptb(THREADS_G1)
                    .topology(MachineTopology::new(2, 4, 1))
                    .dlb(DlbConfig::new(DlbStrategy::WorkSteal))
                    .park_idle(true),
            )
            .lanes_per_shard(3),
    );
    assert_eq!(server.stats().shards, 2, "two-socket placement");
    let mut pinned = server.register_submitter(1);
    let pinned_lane = pinned.lane().expect("free lane in zone-1 shard");

    // Generation 1 traffic through both paths.
    let g1: Vec<_> = (0..100u64)
        .map(|i| {
            if i % 2 == 0 {
                server.submit(move |_| i).unwrap()
            } else {
                pinned.submit(move |_| i).unwrap()
            }
        })
        .collect();
    for (i, h) in g1.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), i as u64);
    }

    // Pause: quiescent, fully parked, ~0 CPU.
    server.pause().unwrap();
    assert_eq!(server.lifecycle(), Lifecycle::Paused);
    assert_eq!(server.parked_workers(), THREADS_G1);
    let parks_paused = server.park_events();
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        server.park_events(),
        parks_paused,
        "paused team must be asleep, not yield-looping"
    );

    // Queue while paused, through the *retained* pinned lane and the
    // anonymous path. Nothing may execute yet.
    let queued: Vec<_> = (0..60u64)
        .map(|i| {
            if i % 2 == 0 {
                server.submit(move |_| 1_000 + i).unwrap()
            } else {
                pinned.submit(move |_| 1_000 + i).unwrap()
            }
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    assert!(queued.iter().all(|h| !h.is_done()), "paused jobs must wait");
    assert_eq!(server.stats().queued, 60);
    assert_eq!(pinned.lane(), Some(pinned_lane), "lane survives the pause");

    // Generation 2: smaller team, single-zone topology (the worker →
    // shard map re-folds onto the two persistent shards), RP tuning.
    server
        .resume_with(
            RuntimeConfig::xgomptb(3)
                .topology(MachineTopology::new(1, 4, 1))
                .dlb(DlbConfig::new(DlbStrategy::RedirectPush))
                .park_idle(true),
        )
        .unwrap();
    assert_eq!(server.lifecycle(), Lifecycle::Serving);
    assert_eq!(server.generation(), 2);
    assert_eq!(
        server.active_dlb().strategy,
        DlbStrategy::RedirectPush,
        "resume_with seeds the tuning cell"
    );
    for (i, h) in queued.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), 1_000 + i as u64);
    }
    // Fresh generation-2 jobs, both paths again.
    let g2: Vec<_> = (0..50u64)
        .map(|i| {
            if i % 2 == 0 {
                server.submit(move |_| 2_000 + i).unwrap()
            } else {
                pinned.submit(move |_| 2_000 + i).unwrap()
            }
        })
        .collect();
    for (i, h) in g2.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), 2_000 + i as u64);
    }

    drop(pinned);
    let report = server.shutdown();
    assert_eq!(report.stats.submitted, 210, "100 + 60 + 50 admitted");
    assert_eq!(report.stats.completed, 210, "exact conservation");
    assert_eq!(report.stats.in_flight, 0);
    assert_eq!(report.stats.generations, 2);
    assert_eq!(report.prior_regions.len(), 1);
    let g1_region = &report.prior_regions[0];
    g1_region.stats.check_invariants().unwrap();
    report
        .region
        .as_ref()
        .expect("clean final generation")
        .stats
        .check_invariants()
        .unwrap();
    // Every job task is accounted to exactly one generation.
    assert_eq!(
        g1_region.stats.total().tasks_executed
            + report.region.as_ref().unwrap().stats.total().tasks_executed,
        210
    );
}

/// Stress: registered and anonymous submitters race pause / resume /
/// config-swap cycles across ≥ 3 generations; every admitted job must
/// complete exactly once (checksum + counter conservation).
#[test]
fn pause_resume_stress_conserves_jobs() {
    const ANON_THREADS: u64 = 2;
    const REG_THREADS: u64 = 2;
    const JOBS_PER: u64 = 400;
    let server = Arc::new(TaskServer::start(
        ServerConfig::new(4).max_in_flight(256).lanes_per_shard(4),
    ));
    let checksum = Arc::new(AtomicU64::new(0));

    let mut submitters = Vec::new();
    for t in 0..ANON_THREADS {
        let server = server.clone();
        let checksum = checksum.clone();
        submitters.push(std::thread::spawn(move || {
            let handles: Vec<_> = (0..JOBS_PER)
                .map(|i| server.submit(move |_| t * 100_000 + i).unwrap())
                .collect();
            for h in handles {
                checksum.fetch_add(h.join().unwrap(), Ordering::Relaxed);
            }
        }));
    }
    for t in ANON_THREADS..ANON_THREADS + REG_THREADS {
        let server = server.clone();
        let checksum = checksum.clone();
        submitters.push(std::thread::spawn(move || {
            let mut sub = server.register_submitter(t as usize);
            let handles: Vec<_> = (0..JOBS_PER)
                .map(|i| sub.submit(move |_| t * 100_000 + i).unwrap())
                .collect();
            for h in handles {
                checksum.fetch_add(h.join().unwrap(), Ordering::Relaxed);
            }
        }));
    }

    // Lifecycle churn while the submitters hammer: three full
    // pause/resume cycles, two of them swapping the configuration.
    for round in 0..3 {
        std::thread::sleep(Duration::from_millis(20));
        server.pause().unwrap();
        assert_eq!(server.lifecycle(), Lifecycle::Paused);
        match round {
            0 => server.resume().unwrap(),
            1 => server
                .resume_with(
                    RuntimeConfig::xgomptb(2).dlb(DlbConfig::new(DlbStrategy::RedirectPush)),
                )
                .unwrap(),
            _ => server
                .resume_with(RuntimeConfig::xgomptb(6).dlb(DlbConfig::new(DlbStrategy::WorkSteal)))
                .unwrap(),
        }
        assert_eq!(server.lifecycle(), Lifecycle::Serving);
    }

    for s in submitters {
        s.join().unwrap();
    }
    let total = (ANON_THREADS + REG_THREADS) * JOBS_PER;
    let expected: u64 = (0..ANON_THREADS + REG_THREADS)
        .map(|t| (0..JOBS_PER).map(|i| t * 100_000 + i).sum::<u64>())
        .sum();
    assert_eq!(checksum.load(Ordering::Relaxed), expected);
    let server = Arc::into_inner(server).expect("all submitters done");
    assert!(server.generation() >= 4, "three pauses ⇒ ≥ 4 generations");
    let report = server.shutdown();
    assert_eq!(report.stats.submitted, total, "every job admitted once");
    assert_eq!(report.stats.completed, total, "every job completed once");
    assert_eq!(report.stats.in_flight, 0);
    // Per-generation telemetry sums to the total job count.
    let mut tasks = report
        .region
        .expect("clean serve")
        .stats
        .total()
        .tasks_executed;
    for r in &report.prior_regions {
        tasks += r.stats.total().tasks_executed;
    }
    assert_eq!(tasks, total, "generations partition the executed jobs");
}

/// `swap_tuning` works mid-generation without a pause and survives into
/// later generations.
#[test]
fn swap_tuning_applies_without_pause() {
    let server = TaskServer::start(ServerConfig::new(2).adapt_every(0));
    let manual = DlbConfig::new(DlbStrategy::RedirectPush).n_steal(2);
    server.swap_tuning(manual);
    assert_eq!(server.active_dlb(), manual);
    server.submit(|_| ()).unwrap().join().unwrap();
    server.pause().unwrap();
    server.resume().unwrap();
    assert_eq!(server.active_dlb(), manual, "swap survives a generation");
    server.shutdown();
}
