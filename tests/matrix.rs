//! Cross-crate correctness matrix: every BOTS application must produce
//! the sequential result under every runtime preset, every barrier, and
//! both DLB strategies. This is the reproduction's master correctness
//! gate (schedulers × barriers × allocators × balancers).

use xgomp::bots::{BotsApp, Scale};
use xgomp::{AllocKind, BarrierKind, DlbConfig, DlbStrategy, Runtime, RuntimeConfig};

fn check(cfg: RuntimeConfig, app: BotsApp) {
    let expect = app.run_seq(Scale::Test);
    let name = cfg.name();
    let rt = Runtime::new(cfg);
    let out = rt.parallel(|ctx| app.run_par(ctx, Scale::Test));
    assert_eq!(out.result, expect, "{} wrong under {}", app.name(), name);
    out.stats
        .check_invariants()
        .unwrap_or_else(|e| panic!("{} invariants under {}: {}", app.name(), name, e));
    // Conservation: created == executed after quiescence.
    let t = out.stats.total();
    assert_eq!(
        t.tasks_created,
        t.tasks_executed,
        "{} leaked tasks under {}",
        app.name(),
        name
    );
}

#[test]
fn all_apps_on_all_five_presets() {
    for app in BotsApp::ALL {
        for cfg in [
            RuntimeConfig::gomp(4),
            RuntimeConfig::lomp(4),
            RuntimeConfig::xgomp(4),
            RuntimeConfig::xgomptb(4),
            RuntimeConfig::xlomp(4),
        ] {
            check(cfg, app);
        }
    }
}

#[test]
fn all_apps_with_na_ws() {
    for app in BotsApp::ALL {
        let cfg = RuntimeConfig::xgomptb(4).dlb(
            DlbConfig::new(DlbStrategy::WorkSteal)
                .n_victim(2)
                .n_steal(8)
                .t_interval(64),
        );
        check(cfg, app);
    }
}

#[test]
fn all_apps_with_na_rp() {
    for app in BotsApp::ALL {
        let cfg = RuntimeConfig::xgomptb(4).dlb(
            DlbConfig::new(DlbStrategy::RedirectPush)
                .n_victim(2)
                .n_steal(8)
                .t_interval(64),
        );
        check(cfg, app);
    }
}

#[test]
fn barrier_ablations_are_all_correct() {
    // XQueue scheduler under each barrier (isolates §III-B).
    for barrier in [
        BarrierKind::Centralized,
        BarrierKind::AtomicCount,
        BarrierKind::Tree,
    ] {
        for app in [BotsApp::Fib, BotsApp::Uts, BotsApp::Sort] {
            check(RuntimeConfig::xgomptb(4).barrier(barrier), app);
        }
    }
}

#[test]
fn allocator_ablations_are_all_correct() {
    for alloc in [AllocKind::Malloc, AllocKind::MultiLevel] {
        for app in [BotsApp::Fib, BotsApp::Health, BotsApp::Strassen] {
            check(RuntimeConfig::xgomptb(4).allocator(alloc), app);
        }
    }
}

#[test]
fn single_worker_teams_degenerate_correctly() {
    for app in BotsApp::ALL {
        check(RuntimeConfig::xgomptb(1), app);
    }
}

#[test]
fn oversubscribed_team_still_correct() {
    // Far more workers than physical cores (this container has few):
    // liveness depends on the backoff yielding, which this exercises.
    for app in [BotsApp::Fib, BotsApp::Fft, BotsApp::Uts] {
        check(RuntimeConfig::xgomptb(16), app);
        check(RuntimeConfig::gomp(16), app);
    }
}

#[test]
fn tiny_queues_force_immediate_execution_everywhere() {
    // Fib/NQueens/UTS create far more tasks than 4 workers × capacity-2
    // queues can hold, so the overflow path must fire.
    for app in [BotsApp::Fib, BotsApp::NQueens, BotsApp::Uts] {
        let cfg = RuntimeConfig::xgomptb(4).queue_capacity(2);
        let expect = app.run_seq(Scale::Test);
        let rt = Runtime::new(cfg);
        let out = rt.parallel(|ctx| app.run_par(ctx, Scale::Test));
        assert_eq!(out.result, expect, "{}", app.name());
        assert!(
            out.stats.total().ntasks_imm_exec > 0,
            "{}: capacity-2 queues must overflow",
            app.name()
        );
    }
}
