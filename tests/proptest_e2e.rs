//! Property-based end-to-end tests: randomized task DAGs, inputs, and
//! configurations must always preserve the runtime's core invariants
//! (exactly-once execution, quiescent termination, digest equality with
//! the sequential reference).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use xgomp::{BarrierKind, DlbConfig, DlbStrategy, Runtime, RuntimeConfig};

/// A randomly shaped spawn tree: every node increments a shared counter
/// exactly once; the total must equal the node count.
fn spawn_tree(ctx: &xgomp::TaskCtx<'_>, shape: &[u8], depth: usize, hits: &Arc<AtomicU64>) {
    hits.fetch_add(1, Ordering::Relaxed);
    if depth >= shape.len() {
        return;
    }
    let fanout = (shape[depth] % 4) as usize; // 0..=3 children per level
    ctx.scope(|s| {
        for _ in 0..fanout {
            let hits = hits.clone();
            let shape = shape.to_vec();
            s.spawn(move |ctx| spawn_tree(ctx, &shape, depth + 1, &hits));
        }
    });
}

fn tree_size(shape: &[u8], depth: usize) -> u64 {
    if depth >= shape.len() {
        return 1;
    }
    let fanout = (shape[depth] % 4) as u64;
    1 + fanout * tree_size(shape, depth + 1)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs a real thread team
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_spawn_trees_execute_exactly_once(
        shape in proptest::collection::vec(any::<u8>(), 1..7),
        threads in 1usize..6,
        barrier_pick in 0u8..3,
    ) {
        let barrier = match barrier_pick {
            0 => BarrierKind::Centralized,
            1 => BarrierKind::AtomicCount,
            _ => BarrierKind::Tree,
        };
        let cfg = RuntimeConfig::xgomptb(threads).barrier(barrier);
        let rt = Runtime::new(cfg);
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = hits.clone();
        let shape2 = shape.clone();
        let out = rt.parallel(move |ctx| spawn_tree(ctx, &shape2, 0, &h2));
        let expected = tree_size(&shape, 0);
        prop_assert_eq!(hits.load(Ordering::Relaxed), expected);
        // Region accounting: every spawned task ran; none leaked.
        let t = out.stats.total();
        prop_assert_eq!(t.tasks_created, t.tasks_executed);
        prop_assert_eq!(t.tasks_executed, expected - 1); // root body is implicit
    }

    #[test]
    fn random_sorts_are_correct_under_dlb(
        n in 1usize..5_000,
        seed in any::<u64>(),
        strategy_pick in 0u8..2,
    ) {
        let strategy = if strategy_pick == 0 {
            DlbStrategy::WorkSteal
        } else {
            DlbStrategy::RedirectPush
        };
        let cfg = RuntimeConfig::xgomptb(4)
            .dlb(DlbConfig::new(strategy).n_steal(4).t_interval(32));
        let rt = Runtime::new(cfg);
        let mut data = xgomp::bots::sort::gen_input(n, seed);
        let mut expect = data.clone();
        expect.sort_unstable();
        rt.parallel(|ctx| xgomp::bots::sort::par(ctx, &mut data, 256, 512));
        prop_assert_eq!(data, expect);
    }

    #[test]
    fn random_fib_cutoffs_agree(n in 2u64..18, cutoff in 0u64..18) {
        let rt = Runtime::new(RuntimeConfig::xgomptb(3));
        let out = rt.parallel(|ctx| xgomp::bots::fib::par_cutoff(ctx, n, cutoff));
        prop_assert_eq!(out.result, xgomp::bots::fib::seq(n));
    }

    #[test]
    fn random_queue_capacities_never_lose_tasks(
        cap in 2usize..64,
        tasks in 1usize..400,
    ) {
        let cfg = RuntimeConfig::xgomptb(3).queue_capacity(cap);
        let rt = Runtime::new(cfg);
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = hits.clone();
        rt.parallel(move |ctx| {
            ctx.scope(|s| {
                for _ in 0..tasks {
                    let h = h2.clone();
                    s.spawn(move |_| {
                        h.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        prop_assert_eq!(hits.load(Ordering::Relaxed) as usize, tasks);
    }

    #[test]
    fn blake3_xof_is_prefix_stable(len in 0usize..2_000, out_a in 1usize..120, out_b in 1usize..120) {
        let input: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut h = xgomp::posp::Hasher::new();
        h.update(&input);
        let (short, long) = if out_a <= out_b { (out_a, out_b) } else { (out_b, out_a) };
        let mut a = vec![0u8; short];
        let mut b = vec![0u8; long];
        h.finalize_xof(&mut a);
        h.finalize_xof(&mut b);
        prop_assert_eq!(&a[..], &b[..short]);
    }
}
