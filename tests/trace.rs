//! End-to-end flight-recorder semantics: ring conservation under
//! overwrite and concurrent readers, job-lifecycle spans through the
//! task server, automatic dump-on-panic, and trace continuity across
//! pause / `resume_with` reshaping.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use xgomp::service::{ServerConfig, TaskServer};
use xgomp::xqueue::{EventRing, RingCursor};
use xgomp::{EventKind, RuntimeConfig, TraceLevel};

fn traced_server(threads: usize, level: TraceLevel) -> TaskServer {
    let cfg = ServerConfig::new(threads);
    let rt = cfg.runtime.clone().trace(level);
    TaskServer::start(cfg.runtime(rt))
}

/// A fresh scratch directory under the target-adjacent temp root.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xgomp-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

// ---- event ring ------------------------------------------------------

#[test]
fn ring_overwrite_keeps_conservation_and_newest_events() {
    let ring = EventRing::with_capacity(64);
    let total = 1_000u64;
    for i in 0..total {
        ring.emit(i, 1, 0, i, 0);
    }
    let mut cursor = RingCursor::default();
    let mut drained = Vec::new();
    let n = ring.drain(&mut cursor, &mut |e| drained.push(e.b));
    assert_eq!(n, drained.len() as u64);
    // Conservation: every emitted event is either drained or counted
    // dropped — the flight recorder never loses events silently.
    assert_eq!(drained.len() as u64 + cursor.dropped(), total);
    assert_eq!(ring.emitted(), total);
    assert_eq!(ring.dropped(), cursor.dropped());
    // Overwrite-oldest: what survives is the *newest* window, in order.
    assert_eq!(drained.len() as u64, ring.capacity() as u64 - 1);
    assert_eq!(*drained.last().unwrap(), total - 1);
    for pair in drained.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "retained window is contiguous");
    }
}

#[test]
fn ring_concurrent_writer_reader_stress_conserves_every_event() {
    let ring = Arc::new(EventRing::with_capacity(256));
    let total = 200_000u64;
    let writer = {
        let ring = ring.clone();
        std::thread::spawn(move || {
            for i in 0..total {
                ring.emit(i, 2, 7, i, i ^ 0xdead);
                if i % 1_024 == 0 {
                    std::thread::yield_now();
                }
            }
        })
    };
    let mut cursor = RingCursor::default();
    let mut drained = 0u64;
    let mut last_seq: Option<u64> = None;
    let mut scan = |e: xgomp::xqueue::RawEvent| {
        // Every record read while the writer races must be internally
        // consistent — the head-validation protocol may skip records,
        // but must never yield a torn one.
        assert_eq!(e.kind, 2);
        assert_eq!(e.a, 7);
        assert_eq!(e.c, e.b ^ 0xdead, "torn read: payload mismatch");
        if let Some(prev) = last_seq {
            assert!(e.b > prev, "drained sequence must advance");
        }
        last_seq = Some(e.b);
        drained += 1;
    };
    while !writer.is_finished() {
        ring.drain(&mut cursor, &mut scan);
    }
    writer.join().unwrap();
    ring.drain(&mut cursor, &mut scan);
    assert_eq!(
        drained + cursor.dropped(),
        total,
        "conservation must hold under concurrent draining"
    );
    assert_eq!(
        last_seq,
        Some(total - 1),
        "final drain reaches the newest event"
    );
}

// ---- server lifecycle tracing ----------------------------------------

#[test]
fn dump_on_panic_writes_parseable_trace_with_the_jobs_span() {
    let dir = scratch_dir("panic");
    let cfg = ServerConfig::new(2).trace_dump(&dir);
    let rt = cfg.runtime.clone().trace(TraceLevel::Lifecycle);
    let server = TaskServer::start(cfg.runtime(rt));

    // A healthy job first, then the panicking one.
    server.submit(|_| 1u32).unwrap().join().unwrap();
    let h = server
        .submit(|_| -> u32 { panic!("recorded crash") })
        .unwrap();
    let id = h.job_id();
    let err = h.join().unwrap_err();
    let panic = err.panic().expect("panicked job yields JobError::Panicked");
    assert!(panic.message.contains("recorded crash"));

    // The dump was written *before* the handle completed, so it is
    // already on disk here.
    let path = dir.join(format!("panic-job-{id}.trace.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("panic dump {} must exist: {e}", path.display()));
    // Structurally valid JSON (shim `Value` parse validates the tree).
    let _: serde_json::Value = serde_json::from_str(&text).expect("dump parses as JSON");
    assert!(
        text.contains(&format!("\"name\":\"job {id}\"")),
        "dump must contain the panicking job's span"
    );
    assert!(
        text.contains("\"panicked\":1"),
        "the span must be marked panicked"
    );

    server.shutdown();
    // Shutdown adds its own dump when a dump dir is configured.
    assert!(
        dir.join("shutdown.trace.json").exists(),
        "shutdown must leave a final flight-recorder dump"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_survives_pause_and_resume_with_reshaping() {
    let server = traced_server(2, TraceLevel::Lifecycle);
    for i in 0..10u64 {
        server.submit(move |_| i).unwrap().join().unwrap();
    }
    server.pause().unwrap();
    // Grow the team across the generation boundary; the recorder (and
    // everything it already holds) must ride along.
    server
        .resume_with(RuntimeConfig::xgomptb(4).trace(TraceLevel::Lifecycle))
        .unwrap();
    for i in 0..10u64 {
        server.submit(move |_| i).unwrap().join().unwrap();
    }
    let snap = server.trace_snapshot();
    assert_eq!(
        snap.count(EventKind::JobStart),
        20,
        "job spans from both generations in one stream"
    );
    assert_eq!(snap.count(EventKind::JobEnd), 20);
    assert_eq!(snap.count(EventKind::GenOpen), 2);
    assert_eq!(
        snap.count(EventKind::GenClose),
        1,
        "generation 2 still open"
    );
    // The chrome export stays well-formed across the reshape.
    let _: serde_json::Value =
        serde_json::from_str(&snap.to_chrome_json()).expect("chrome JSON parses");
    server.shutdown();
}

#[test]
fn full_trace_captures_loop_and_runtime_events() {
    let server = traced_server(4, TraceLevel::Full);
    let seen = Arc::new(AtomicBool::new(false));
    let s = seen.clone();
    let report = server
        .submit_for(0..4_000, xgomp::LoopSchedule::Guided(16), move |_, _| {
            s.store(true, Ordering::Relaxed);
        })
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(report.iterations, 4_000);
    assert!(seen.load(Ordering::Relaxed));
    let snap = server.trace_snapshot();
    assert!(
        snap.count(EventKind::ChunkClaim) > 0,
        "Full level records loop chunk claims"
    );
    assert!(
        snap.count(EventKind::Task) > 0,
        "Full level records task spans"
    );
    server.shutdown();
}
