//! Two-level loop balancing: conservation and chaos tests for
//! *concurrent* loops sharing one team.
//!
//! The contract under test, on top of `tests/loops.rs`' single-loop
//! guarantees:
//!
//! * N simultaneous `submit_for` jobs (mixed schedules, skewed bodies)
//!   each execute **every iteration exactly once**, with the executing
//!   zone recorded — no iteration runs in two zones;
//! * the inter-socket balancer's accounting conserves:
//!   `migrated_in == migrated_out` per loop, and the per-schedule
//!   telemetry's rebalance total equals the sum over the loops' reports;
//! * balancer **off** (`rebalance_interval = 0`) reproduces the PR 4
//!   dry-pool-steal behavior: identical checksums, all rebalance
//!   counters exactly zero;
//! * the chaos matrix holds: pause→resume landing mid-stream on live
//!   balanced loops, a `resume_with` zone collapse (2 sockets → 1) plus
//!   worker shrink under the same server-owned balancer, and
//!   `swap_tuning` retuning the probe cadence mid-loop.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use xgomp::service::{ServerConfig, SubmitError, TaskServer};
use xgomp::{DlbConfig, DlbStrategy, IterSpace, LoopSchedule, MachineTopology, RuntimeConfig};

const SCHEDULES: [LoopSchedule; 8] = [
    LoopSchedule::Static,
    LoopSchedule::Dynamic(128),
    LoopSchedule::Guided(32),
    LoopSchedule::Adaptive,
    LoopSchedule::Tss {
        first: 256,
        last: 8,
    },
    LoopSchedule::Factoring,
    LoopSchedule::WeightedFactoring,
    LoopSchedule::Awf,
];

/// Schedule from a random pick: the classic four, the LB4OMP portfolio,
/// and `Auto` (resolved by the server's online selector — concurrent
/// Auto loops over different shapes exercise distinct selection sites).
fn pick_schedule(pick: u64, chunk: u32) -> LoopSchedule {
    match pick % 9 {
        0 => LoopSchedule::Static,
        1 => LoopSchedule::Dynamic(chunk),
        2 => LoopSchedule::Guided(chunk),
        3 => LoopSchedule::Adaptive,
        4 => LoopSchedule::Tss {
            first: chunk.max(1).saturating_mul(4),
            last: (chunk / 8).max(1),
        },
        5 => LoopSchedule::Factoring,
        6 => LoopSchedule::WeightedFactoring,
        7 => LoopSchedule::Awf,
        _ => LoopSchedule::Auto,
    }
}

/// A two-zone server with an aggressive rebalance cadence (`interval`
/// ticks; 0 disables the balancer).
fn two_zone_server(threads: usize, interval: u64) -> TaskServer {
    let rt = RuntimeConfig::xgomptb(threads)
        .topology(MachineTopology::new(2, threads.div_ceil(2).max(1), 1))
        .dlb(
            DlbConfig::new(DlbStrategy::WorkSteal)
                .t_interval(64)
                .rebalance_interval(interval),
        );
    TaskServer::start(ServerConfig::new(threads).runtime(rt).adapt_every(0))
}

/// Spins ~`w` iterations of busy work (pure, checksum-free).
fn spin(w: u64) {
    for _ in 0..w {
        std::hint::spin_loop();
    }
}

/// (a) The conservation suite: N simultaneous loop jobs on one team,
/// mixed schedules, skewed cost. Every loop exactly-once, with the
/// executing zone recorded per iteration (an iteration claimed by two
/// zones would overwrite a non-zero owner), and every loop's migration
/// accounting conserved.
#[test]
fn concurrent_loops_conserve_exactly_once_across_zones() {
    const N: u64 = 60_000;
    const JOBS: usize = 8;
    let server = two_zone_server(4, 1_024);

    // owners[j][i] = 1 + zone that executed iteration i of loop j.
    let owners: Vec<Arc<Vec<AtomicU8>>> = (0..JOBS)
        .map(|_| Arc::new((0..N).map(|_| AtomicU8::new(0)).collect()))
        .collect();
    let doubles = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..JOBS)
        .map(|j| {
            let sched = SCHEDULES[j % SCHEDULES.len()];
            let own = owners[j].clone();
            let doubles = doubles.clone();
            server
                .submit_for(0..N, sched, move |i, ctx| {
                    // Skew: the top quarter of every space is ~20× the
                    // cost, concentrated in the last zone's block.
                    if i >= N - N / 4 {
                        spin(400);
                    }
                    let zone = ctx.numa_zone() as u8 + 1;
                    if own[i as usize].swap(zone, Ordering::Relaxed) != 0 {
                        doubles.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .unwrap()
        })
        .collect();

    let mut rebalances_sum = 0;
    for (j, h) in handles.into_iter().enumerate() {
        let report = h.join().unwrap();
        let sched = SCHEDULES[j % SCHEDULES.len()];
        assert_eq!(report.iterations, N, "loop {j} ({})", sched.name());
        assert_eq!(
            report.migrated_in,
            report.migrated_out,
            "loop {j} ({}): migration accounting must conserve",
            sched.name()
        );
        assert!(
            report.rebalances <= report.migrated_in,
            "loop {j}: every rebalance moves ≥ 1 iteration"
        );
        rebalances_sum += report.rebalances;
    }
    assert_eq!(doubles.load(Ordering::Relaxed), 0, "iteration ran twice");
    for (j, own) in owners.iter().enumerate() {
        assert!(
            own.iter().all(|o| {
                let z = o.load(Ordering::Relaxed);
                z == 1 || z == 2
            }),
            "loop {j}: some iteration never ran (or reported a bogus zone)"
        );
    }

    // The per-schedule telemetry's rebalance total is exactly the sum of
    // the loops' own reports — no migrations are double-counted or lost.
    let stats = server.stats();
    assert_eq!(stats.loops, JOBS as u64);
    assert_eq!(stats.loop_iters, N * JOBS as u64);
    assert_eq!(stats.loop_rebalances, rebalances_sum);
    assert_eq!(server.loop_balancer().live_loops(), 0, "registry drained");

    let report = server.shutdown();
    let region = report.region.expect("clean serve");
    region.stats.check_invariants().unwrap();
}

/// (b) A strongly skewed single loop *must* trigger proactive
/// rebalancing: zone 0 drains its cheap block quickly, and its own
/// next probe (fired at a chunk boundary or idle point) re-splits zone
/// 1's rich block into zone 0's inbox before/at dryness.
#[test]
fn skewed_loops_trigger_rebalancing_with_conserved_counters() {
    let server = two_zone_server(4, 256);
    const N: u64 = 8_000;
    let sum = Arc::new(AtomicU64::new(0));
    let s = sum.clone();
    let report = server
        .submit_for(0..N, LoopSchedule::Dynamic(16), move |i, _| {
            if i >= N / 2 {
                spin(2_000); // zone 1's block is ~1000× zone 0's
            }
            s.fetch_add(i + 1, Ordering::Relaxed);
        })
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(sum.load(Ordering::Relaxed), (1..=N).sum::<u64>());
    assert!(
        report.rebalances > 0,
        "a starved zone facing a rich neighbor must be fed by the balancer"
    );
    assert_eq!(report.migrated_in, report.migrated_out);
    assert_eq!(server.stats().loop_rebalances, report.rebalances);
    assert!(server.loop_balancer().probes() > 0);
    assert_eq!(
        server.loop_balancer().iterations_migrated(),
        report.migrated_in
    );
    server.shutdown();
}

/// (c) Balancer off (`rebalance_interval = 0`): bit-for-bit the PR 4
/// dry-pool-steal behavior on the conservation suite — identical
/// checksums and *zero* everywhere in the rebalance telemetry.
#[test]
fn balancer_off_reproduces_dry_pool_steal_baseline() {
    let server = two_zone_server(4, 0);
    const N: u64 = 50_000;
    let mut checksums = Vec::new();
    for sched in SCHEDULES {
        let sum = Arc::new(AtomicU64::new(0));
        let s = sum.clone();
        let report = server
            .submit_for(0..N, sched, move |i, _| {
                if i >= N - N / 4 {
                    spin(200);
                }
                s.fetch_add(i * 31 + 7, Ordering::Relaxed);
            })
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(report.iterations, N, "{}", sched.name());
        assert_eq!(report.rebalances, 0, "{}", sched.name());
        assert_eq!(report.migrated_in, 0, "{}", sched.name());
        assert_eq!(report.migrated_out, 0, "{}", sched.name());
        checksums.push(sum.load(Ordering::Relaxed));
    }
    let expect: u64 = (0..N).map(|i| i * 31 + 7).sum();
    assert!(checksums.iter().all(|&c| c == expect), "checksum drift");
    let stats = server.stats();
    assert_eq!(stats.loop_rebalances, 0);
    assert_eq!(server.loop_balancer().rebalances(), 0);
    assert_eq!(server.loop_balancer().iterations_migrated(), 0);
    let report = server.shutdown();
    let total = report.region.expect("clean serve").stats.total();
    assert_eq!(total.nloop_rebalances, 0);
    assert_eq!(total.nloop_migrated_in, 0);
    assert_eq!(total.nloop_migrated_out, 0);
}

/// (d) Chaos: a pause lands mid-stream on a queue of balancer-live
/// skewed loops; the drain completes them under the balancer, the
/// queued tail runs in the next generation — same server-owned
/// balancer, everything conserved.
#[test]
fn pause_resume_mid_rebalance_conserves() {
    const N: u64 = 20_000;
    const JOBS: usize = 10;
    let server = two_zone_server(4, 512);
    let sum = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for j in 0..JOBS {
        let sched = SCHEDULES[j % SCHEDULES.len()];
        let s = sum.clone();
        handles.push(
            server
                .submit_for(0..N, sched, move |i, _| {
                    if i >= N / 2 {
                        spin(60);
                    }
                    s.fetch_add(i + 1, Ordering::Relaxed);
                })
                .unwrap(),
        );
        if j == JOBS / 2 {
            // Mid-stream: loops done / in-team (with possible in-flight
            // migrations) / ring-queued. The pause drains everything
            // admitted so far; the balancer registry must end empty.
            server.pause().unwrap();
            assert_eq!(
                server.loop_balancer().live_loops(),
                0,
                "a paused (quiescent) server cannot have live loops"
            );
        }
    }
    server.resume().unwrap();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        sum.load(Ordering::Relaxed),
        JOBS as u64 * (1..=N).sum::<u64>()
    );
    let stats = server.stats();
    assert_eq!(stats.loops, JOBS as u64);
    assert_eq!(stats.loop_iters, JOBS as u64 * N);
    server.shutdown();
}

/// (e) Chaos: `resume_with` collapses 2 sockets → 1 *and* shrinks the
/// worker set under the same server-owned balancer. Pre-swap loops may
/// rebalance (two zones); post-swap loops cannot (single pool) — and
/// the cumulative telemetry must reflect exactly that.
#[test]
fn zone_collapse_and_worker_shrink_with_live_balancer() {
    const N: u64 = 30_000;
    let server = two_zone_server(6, 512);

    let sum = Arc::new(AtomicU64::new(0));
    let s = sum.clone();
    let before = server
        .submit_for(0..N, LoopSchedule::Guided(16), move |i, _| {
            if i >= N / 2 {
                spin(80);
            }
            s.fetch_add(i, Ordering::Relaxed);
        })
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(before.migrated_in, before.migrated_out);
    let rebalances_before = server.stats().loop_rebalances;
    assert_eq!(rebalances_before, before.rebalances);

    server.pause().unwrap();
    server
        .resume_with(
            RuntimeConfig::xgomptb(2)
                .topology(MachineTopology::new(1, 2, 1))
                .dlb(DlbConfig::new(DlbStrategy::RedirectPush).rebalance_interval(512)),
        )
        .unwrap();

    let s = sum.clone();
    let after = server
        .submit_for(0..N, LoopSchedule::Adaptive, move |i, _| {
            if i >= N / 2 {
                spin(80);
            }
            s.fetch_add(i, Ordering::Relaxed);
        })
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(sum.load(Ordering::Relaxed), 2 * (0..N).sum::<u64>());
    assert_eq!(
        after.rebalances, 0,
        "a single-zone loop has nothing to rebalance across"
    );
    // Cumulative across the swap: pre-swap rebalances survive, post-swap
    // adds none.
    let stats = server.stats();
    assert_eq!(stats.loops, 2);
    assert_eq!(stats.loop_rebalances, rebalances_before);
    server.shutdown();
}

/// (f) Chaos: `swap_tuning` mid-loop — the probe cadence knob flips
/// off → aggressive → off while a long skewed loop drains; conservation
/// holds throughout and the final swap's `rebalance_interval = 0` stops
/// the balancer (no further migrations after the loop that observed it).
#[test]
fn swap_tuning_retunes_rebalance_cadence_mid_loop() {
    const N: u64 = 40_000;
    let server = two_zone_server(4, 0); // starts disabled
    let sum = Arc::new(AtomicU64::new(0));

    let s = sum.clone();
    let h = server
        .submit_for(0..N, LoopSchedule::Dynamic(32), move |i, _| {
            if i >= N / 2 {
                spin(120);
            }
            s.fetch_add(i + 1, Ordering::Relaxed);
        })
        .unwrap();
    // Mid-loop: turn the balancer on, aggressively. The drain tasks
    // re-read the knob at their next probe gate (no pause needed).
    server.swap_tuning(
        DlbConfig::new(DlbStrategy::WorkSteal)
            .t_interval(64)
            .rebalance_interval(256),
    );
    let report = h.join().unwrap();
    assert_eq!(report.iterations, N);
    assert_eq!(report.migrated_in, report.migrated_out);
    assert_eq!(sum.load(Ordering::Relaxed), (1..=N).sum::<u64>());

    // And off again: the next skewed loop must not migrate at all.
    server.swap_tuning(DlbConfig::new(DlbStrategy::WorkSteal).rebalance_interval(0));
    let migrated_so_far = server.loop_balancer().iterations_migrated();
    let s = sum.clone();
    let off = server
        .submit_for(0..N, LoopSchedule::Dynamic(32), move |i, _| {
            if i >= N / 2 {
                spin(120);
            }
            s.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(off.rebalances, 0, "interval 0 must disable the balancer");
    assert_eq!(
        server.loop_balancer().iterations_migrated(),
        migrated_so_far
    );
    server.shutdown();
}

/// (g) `submit_for` space validation: an iteration space wider than the
/// 2^62-unit schedulable bound comes back as a typed, terminal
/// `SubmitError::InvalidLoop` — before admission, so it costs no
/// in-flight slot — from both the blocking and non-blocking paths, with
/// the body handed back. (Ranges past u32::MAX are *valid* now — they
/// wave through panes — so the only rejection left is the 2^62 bound.)
#[test]
fn oversized_submit_for_returns_typed_error() {
    let server = two_zone_server(2, 0);
    // A 2^41 x 2^41 rectangle: 2^82 elements, far past the bound, but
    // cheap to name — validation is O(1) closed-form math.
    let huge = xgomp::IterSpace::rect(1u64 << 41, 1u64 << 41);

    let err = server
        .try_submit_for(huge, LoopSchedule::Dynamic(64), |_, _| {})
        .unwrap_err();
    assert!(matches!(err, SubmitError::InvalidLoop(..)), "{err:?}");
    let loop_err = err.loop_error().expect("carries the loop error");
    assert!(matches!(
        loop_err,
        xgomp::LoopError::RangeTooLarge { len: u64::MAX }
    ));
    assert!(err.to_string().contains("2^62"));
    let _body = err.into_inner(); // the closure comes back

    // The blocking path is terminal too (must not park forever).
    let err = server
        .submit_for(huge, LoopSchedule::Adaptive, |_, _| {})
        .unwrap_err();
    assert!(err.loop_error().is_some());

    // Never admitted: no slot consumed, no submission counted.
    let stats = server.stats();
    assert_eq!(stats.submitted, 0);
    assert_eq!(stats.in_flight, 0);

    // A valid loop still runs fine afterwards.
    let ok = server
        .submit_for(0..100, LoopSchedule::Static, |_, _| {})
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(ok.iterations, 100);
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // each case runs a real server + thread team
        .. ProptestConfig::default()
    })]

    /// Random (loops, ranges, schedules, workers, sockets): L concurrent
    /// loop jobs conserve — index-sum checksums match the closed form,
    /// per-loop migration accounting balances, and the team-level §V
    /// invariants (including the new rebalance conservation) hold.
    #[test]
    fn random_concurrent_loops_conserve(
        n_loops in 1usize..5,
        seed in 0u64..1_000_000,
        chunk in 1u32..256,
        threads in 1usize..6,
        sockets in 1usize..3,
        interval_pick in 0u8..3,
    ) {
        // Per-loop (start, len, schedule) derived from the seed with a
        // splitmix-style mixer — the shim's proptest has no collection
        // strategies.
        let mix = |x: u64| {
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let interval = [0u64, 256, 4_096][interval_pick as usize];
        let topo = MachineTopology::new(sockets, threads.div_ceil(sockets).max(1), 1);
        let rt = RuntimeConfig::xgomptb(threads)
            .topology(topo)
            .dlb(
                DlbConfig::new(DlbStrategy::WorkSteal)
                    .t_interval(32)
                    .rebalance_interval(interval),
            );
        let server = TaskServer::start(
            ServerConfig::new(threads).runtime(rt).adapt_every(0),
        );

        let handles: Vec<_> = (0..n_loops)
            .map(|j| {
                let r = mix(seed.wrapping_add(j as u64));
                let sched = pick_schedule(r, chunk);
                let (start, len) = ((r >> 2) % 1_000, (r >> 12) % 20_000);
                let sum = Arc::new(AtomicU64::new(0));
                let s = sum.clone();
                let h = server
                    .submit_for(start..start + len, sched, move |i, _| {
                        s.fetch_add(i, Ordering::Relaxed);
                    })
                    .unwrap();
                (h, sum, start, len)
            })
            .collect();

        for (h, sum, start, len) in handles {
            let report = h.join().unwrap();
            prop_assert_eq!(report.iterations, len);
            prop_assert_eq!(report.migrated_in, report.migrated_out);
            if interval == 0 {
                prop_assert_eq!(report.rebalances, 0);
            }
            let expect: u64 = (start..start + len).sum();
            prop_assert_eq!(sum.load(Ordering::Relaxed), expect);
        }
        let report = server.shutdown();
        let region = report.region.expect("clean serve");
        prop_assert!(region.stats.check_invariants().is_ok());
    }

    /// Random concurrent loops over **mixed iteration-space shapes**
    /// (1-D / 2-D tiled / triangular) racing on one server: each job's
    /// linear-id checksum matches the closed form (the point → id map is
    /// a bijection onto `0..len`, so the sum proves exactly-once), some
    /// jobs are cancelled mid-flight and must conserve
    /// `executed + cancelled == len` instead, and per-loop migration
    /// accounting balances on every shape.
    #[test]
    fn random_concurrent_spaces_conserve(
        n_loops in 1usize..5,
        seed in 0u64..1_000_000,
        chunk in 1u32..128,
        threads in 1usize..6,
        sockets in 1usize..3,
        interval_pick in 0u8..3,
        cancel_mask in 0u8..8,
    ) {
        let mix = |x: u64| {
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let interval = [0u64, 256, 4_096][interval_pick as usize];
        let topo = MachineTopology::new(sockets, threads.div_ceil(sockets).max(1), 1);
        let rt = RuntimeConfig::xgomptb(threads)
            .topology(topo)
            .dlb(
                DlbConfig::new(DlbStrategy::WorkSteal)
                    .t_interval(32)
                    .rebalance_interval(interval),
            );
        let server = TaskServer::start(
            ServerConfig::new(threads).runtime(rt).adapt_every(0),
        );

        let handles: Vec<_> = (0..n_loops)
            .map(|j| {
                let r = mix(seed.wrapping_add(j as u64));
                let sched = pick_schedule(r, chunk);
                let tile = ((r >> 8) % 18 + 1) as u32;
                let (a, b) = ((r >> 13) % 90 + 1, (r >> 21) % 45 + 1);
                // Linear element id per shape: a bijection onto 0..len.
                type Lin = fn(u64, u64, u64) -> u64;
                let (space, lin): (IterSpace, Lin) = match (r >> 2) % 3 {
                    0 => (IterSpace::range(0..a * b), |i, _, _| i),
                    1 => (
                        IterSpace::rect_tiled(a, b, tile, (tile / 2).max(1)),
                        |r, c, cols| r * cols + c,
                    ),
                    _ => (
                        IterSpace::triangular_tiled(a, tile),
                        |r, c, _| r * (r + 1) / 2 + c,
                    ),
                };
                let len = space.len();
                let sum = Arc::new(AtomicU64::new(0));
                let count = Arc::new(AtomicU64::new(0));
                let (s, n) = (sum.clone(), count.clone());
                let h = server
                    .submit_for(space, sched, move |(p, q), _| {
                        s.fetch_add(lin(p, q, b), Ordering::Relaxed);
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                    .unwrap();
                let cancel = j < 3 && cancel_mask & (1 << j) != 0;
                if cancel {
                    h.cancel();
                }
                (h, sum, count, len, cancel)
            })
            .collect();

        let mut executed_total = 0u64;
        for (h, sum, count, len, cancel) in handles {
            match h.join() {
                Ok(report) => {
                    prop_assert_eq!(report.iterations, len);
                    prop_assert_eq!(report.migrated_in, report.migrated_out);
                    // Linear-id sum over exactly-once coverage.
                    prop_assert_eq!(
                        sum.load(Ordering::Relaxed),
                        len * len.saturating_sub(1) / 2
                    );
                    prop_assert_eq!(count.load(Ordering::Relaxed), len);
                }
                Err(e) => {
                    // Only an explicitly cancelled job may resolve with
                    // an error — shed (never ran) or cancelled mid-run;
                    // either way no element runs twice.
                    prop_assert!(cancel, "uncancelled job failed: {:?}", e);
                    prop_assert!(e.is_cancelled());
                    prop_assert!(count.load(Ordering::Relaxed) <= len);
                }
            }
            executed_total += count.load(Ordering::Relaxed);
        }
        let report = server.shutdown();
        let region = report.region.expect("clean serve");
        prop_assert!(region.stats.check_invariants().is_ok());
        // Team-level conservation: the §V counters saw exactly the
        // elements the bodies executed — completed, cancelled and shed
        // jobs included.
        prop_assert_eq!(region.stats.total().nloop_iters, executed_total);
    }
}
