//! Persistent-runtime semantics of `xgomp-service`: one team serves many
//! jobs, handles complete independently of submission order, a panicking
//! job poisons only itself, and shutdown drains everything in flight.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xgomp::service::{JobHandle, ServerConfig, TaskServer};
use xgomp::{DlbConfig, DlbStrategy, RuntimeConfig};

fn server(threads: usize) -> TaskServer {
    TaskServer::start(ServerConfig::new(threads))
}

#[test]
fn one_team_serves_many_jobs() {
    let server = server(4);
    // Many waves of jobs against the same team; the serving region's
    // telemetry proves a single team executed all of them.
    let mut expected_tasks = 0u64;
    for wave in 0..20u64 {
        let handles: Vec<_> = (0..50u64)
            .map(|i| server.submit(move |_| wave * 1_000 + i).unwrap())
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), wave * 1_000 + i as u64);
        }
        expected_tasks += 50;
    }
    let report = server.shutdown();
    assert_eq!(report.stats.submitted, expected_tasks);
    assert_eq!(report.stats.completed, expected_tasks);
    // One region served everything: its counters cover every job task.
    let region = report.region.expect("clean serve");
    assert_eq!(region.stats.total().tasks_executed, expected_tasks);
    region.stats.check_invariants().unwrap();
}

#[test]
fn results_are_correct_in_any_join_order() {
    let server = server(4);
    let handles: Vec<JobHandle<u64>> = (0..300u64)
        .map(|i| {
            server
                .submit(move |_| {
                    // Uneven grains so completion order scrambles.
                    for _ in 0..(i % 13) * 50 {
                        std::hint::spin_loop();
                    }
                    i * i
                })
                .unwrap()
        })
        .collect();
    // Join in reverse submission order, then verify by index.
    for (i, h) in handles.into_iter().enumerate().rev() {
        assert_eq!(h.join().unwrap(), (i as u64) * (i as u64));
    }
    server.shutdown();
}

#[test]
fn job_panic_poisons_only_that_job() {
    let server = server(4);
    let before = server.submit(|_| 1u32).unwrap();
    let bomb = server
        .submit(|_| -> u32 { panic!("job 1 exploded") })
        .unwrap();
    let after: Vec<_> = (0..100u32)
        .map(|i| server.submit(move |_| i + 10).unwrap())
        .collect();

    assert_eq!(before.join().unwrap(), 1);
    let err = bomb.join().unwrap_err();
    let panic = err.panic().expect("panicked job yields JobError::Panicked");
    assert!(
        panic.message.contains("job 1 exploded"),
        "panic payload lost: {}",
        panic.message
    );
    // The runtime survived: every later job still completes correctly.
    for (i, h) in after.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), i as u32 + 10);
    }
    let report = server.shutdown();
    assert_eq!(report.stats.completed, 102);
}

#[test]
fn jobs_spawning_subtasks_share_the_team() {
    let server = TaskServer::start(
        ServerConfig::new(4).runtime(
            RuntimeConfig::xgomptb(4).dlb(
                DlbConfig::new(DlbStrategy::WorkSteal)
                    .n_steal(8)
                    .t_interval(64),
            ),
        ),
    );
    let handles: Vec<_> = (0..20u64)
        .map(|_| {
            server
                .submit(|ctx| {
                    let mut leaves = vec![0u64; 32];
                    ctx.scope(|s| {
                        for (i, leaf) in leaves.iter_mut().enumerate() {
                            s.spawn(move |_| *leaf = i as u64 + 1);
                        }
                    });
                    leaves.iter().sum::<u64>()
                })
                .unwrap()
        })
        .collect();
    let per_job: u64 = (1..=32u64).sum();
    for h in handles {
        assert_eq!(h.join().unwrap(), per_job);
    }
    let report = server.shutdown();
    // 20 job tasks + 20 × 32 subtasks, all through one team.
    assert_eq!(
        report
            .region
            .expect("clean serve")
            .stats
            .total()
            .tasks_executed,
        20 + 20 * 32
    );
}

#[test]
fn shutdown_drains_in_flight_work() {
    let server = server(4);
    let done = Arc::new(AtomicU64::new(0));
    // Slow jobs that are certainly still queued/running at shutdown.
    let handles: Vec<_> = (0..64u64)
        .map(|i| {
            let done = done.clone();
            server
                .submit(move |_| {
                    std::thread::sleep(Duration::from_millis(1));
                    done.fetch_add(1, Ordering::SeqCst);
                    i
                })
                .unwrap()
        })
        .collect();
    // Shut down immediately: every admitted job must still complete.
    let report = server.shutdown();
    assert_eq!(done.load(Ordering::SeqCst), 64);
    assert_eq!(report.stats.completed, 64);
    assert_eq!(report.stats.in_flight, 0);
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), i as u64);
    }
}

#[test]
fn submissions_after_close_are_rejected() {
    let server = server(2);
    let ok = server.submit(|_| ()).unwrap();
    let report_thread = std::thread::spawn(move || server.shutdown());
    let report = report_thread.join().unwrap();
    ok.join().unwrap();
    assert_eq!(report.stats.completed, 1);
}

#[test]
fn reentrant_submission_with_cooperative_join() {
    // A job that submits more jobs and waits for them must use the
    // cooperative join — a parked worker cannot drain its own lattice
    // row (see `JobHandle::join_within` docs).
    let server = Arc::new(server(4));
    let s2 = server.clone();
    let outer = server
        .submit(move |ctx| {
            let inner: Vec<_> = (0..50u64)
                .filter_map(|i| s2.try_submit(move |_| i * 2).ok())
                .collect();
            inner
                .into_iter()
                .map(|h| h.join_within(ctx).unwrap())
                .sum::<u64>()
        })
        .unwrap();
    let got = outer.join().unwrap();
    assert_eq!(got, (0..50u64).map(|i| i * 2).sum());
    let server = Arc::into_inner(server).expect("all submitters done");
    server.shutdown();
}

#[test]
fn subtask_panic_fails_only_its_job() {
    // A panic in a *subtask* of a job must surface as that job's
    // JobPanic — not poison the team (which would strand every other
    // in-flight job and wedge shutdown).
    let server = server(4);
    let backlog: Vec<_> = (0..200u64)
        .map(|i| server.submit(move |_| i).unwrap())
        .collect();
    let bomb = server
        .submit(|ctx| {
            ctx.scope(|s| {
                s.spawn(|_| panic!("subtask exploded"));
                for _ in 0..8 {
                    s.spawn(|_| std::hint::spin_loop());
                }
            });
            0u64
        })
        .unwrap();
    let err = bomb.join().unwrap_err();
    let panic = err.panic().expect("panicked job yields JobError::Panicked");
    assert!(
        panic.message.contains("subtask exploded"),
        "payload lost: {}",
        panic.message
    );
    for (i, h) in backlog.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), i as u64);
    }
    let report = server.shutdown();
    assert_eq!(report.stats.completed, 201);
    assert!(report.region.is_some(), "serve must end cleanly");
}

#[test]
fn second_subtask_panic_is_not_swallowed() {
    // A job that survives a first isolated subtask panic (catching it
    // itself) must still see a *second* subtask panic — the panic slot
    // re-arms after each take.
    let server = server(2);
    let h = server
        .submit(|ctx| {
            let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ctx.scope(|s| s.spawn(|_| panic!("first boom")));
            }));
            assert!(first.is_err(), "first subtask panic must re-raise");
            // Second wave of subtasks; this panic must also surface.
            ctx.scope(|s| s.spawn(|_| panic!("second boom")));
            0u8
        })
        .unwrap();
    let err = h.join().unwrap_err();
    let panic = err.panic().expect("panicked job yields JobError::Panicked");
    assert!(
        panic.message.contains("second boom"),
        "second panic swallowed: {}",
        panic.message
    );
    server.shutdown();
}

#[test]
fn saturated_cooperative_joins_make_progress() {
    // Every execution context waits inside join_within at once: the
    // awaited jobs sit in the ingress, and the waiters themselves must
    // drain it (help_pending) or the team deadlocks.
    let server = Arc::new(server(2));
    let outers: Vec<_> = (0..2)
        .map(|o| {
            let s2 = server.clone();
            server
                .submit(move |ctx| {
                    let inner: Vec<_> = (0..25u64)
                        .filter_map(|i| s2.try_submit(move |_| o * 100 + i).ok())
                        .collect();
                    let mut joined = 0u64;
                    for h in inner {
                        h.join_within(ctx).unwrap();
                        joined += 1;
                    }
                    joined
                })
                .unwrap()
        })
        .collect();
    for h in outers {
        assert_eq!(h.join().unwrap(), 25);
    }
    let server = Arc::into_inner(server).expect("all submitters done");
    server.shutdown();
}

#[test]
fn idle_server_parks_all_workers_and_stays_parked() {
    const THREADS: usize = 4;
    // Pin parking on: this test asserts the parking subsystem itself, so
    // it must not inherit the `XGOMP_WAIT_POLICY=active` CI leg default.
    let server = TaskServer::start(
        ServerConfig::new(THREADS).runtime(
            RuntimeConfig::xgomptb(THREADS)
                .dlb(DlbConfig::new(DlbStrategy::WorkSteal))
                .park_idle(true),
        ),
    );
    // Warm up: prove the team is fully serving before it goes idle.
    server.submit(|_| ()).unwrap().join().unwrap();

    // Every worker — the serve-loop master included — must reach the
    // parked state once the backlog is gone.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while server.parked_workers() < THREADS {
        assert!(
            std::time::Instant::now() < deadline,
            "idle team never parked: {}/{THREADS} after warmup \
             (parks={}, wakes={})",
            server.parked_workers(),
            server.park_events(),
            server.wake_events(),
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Let in-progress announcements commit to actual sleeps.
    std::thread::sleep(Duration::from_millis(50));

    // The park counter must stop moving: a parked team makes no
    // yield-loop progress (this is the CPU-burn assertion, observable
    // without wall-clock sampling).
    let parks_before = server.park_events();
    std::thread::sleep(Duration::from_millis(250));
    assert_eq!(
        server.park_events(),
        parks_before,
        "parked workers cycled through park/unpark while fully idle"
    );
    assert_eq!(server.parked_workers(), THREADS);

    // The doorbell path: one submission wakes the sleeping team and the
    // job completes normally.
    assert_eq!(server.submit(|_| 99u32).unwrap().join().unwrap(), 99);
    assert!(
        server.park_events() > parks_before || server.parked_workers() < THREADS,
        "submission must have woken at least one sleeper"
    );

    let report = server.shutdown();
    assert_eq!(report.stats.completed, 2);
    assert!(
        report.region.is_some(),
        "parked team must tear down cleanly"
    );
}

#[test]
fn concurrent_submitters_from_many_threads() {
    const SUBMITTERS: u64 = 8;
    const JOBS_PER: u64 = 250;
    let server = Arc::new(server(4));
    let sum = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let server = server.clone();
            let sum = sum.clone();
            std::thread::spawn(move || {
                let handles: Vec<_> = (0..JOBS_PER)
                    .map(|i| server.submit(move |_| t * 10_000 + i).unwrap())
                    .collect();
                for h in handles {
                    sum.fetch_add(h.join().unwrap(), Ordering::Relaxed);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let expected: u64 = (0..SUBMITTERS)
        .map(|t| (0..JOBS_PER).map(|i| t * 10_000 + i).sum::<u64>())
        .sum();
    assert_eq!(sum.load(Ordering::Relaxed), expected);
    let server = Arc::into_inner(server).expect("all submitters done");
    let report = server.shutdown();
    assert_eq!(report.stats.completed, SUBMITTERS * JOBS_PER);
}
