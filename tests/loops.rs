//! Data-parallel loop subsystem: end-to-end conservation tests.
//!
//! The contract under test: **every schedule executes every iteration
//! exactly once** — including while ordinary task jobs run concurrently,
//! across a `pause()`/`resume()` cycle that lands mid-stream in a queue
//! of loop jobs, and across a worker-count shrink at a generation
//! boundary — and the loop/ingress telemetry is cumulative across
//! generations (counters survive a `resume_with` zone re-map).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use xgomp::service::{ServerConfig, TaskServer};
use xgomp::{
    CancelToken, DlbConfig, DlbStrategy, IterSpace, LoopSchedule, MachineTopology, Runtime,
    RuntimeConfig,
};

const SCHEDULES: [LoopSchedule; 8] = [
    LoopSchedule::Static,
    LoopSchedule::Dynamic(128),
    LoopSchedule::Guided(32),
    LoopSchedule::Adaptive,
    LoopSchedule::Tss {
        first: 256,
        last: 8,
    },
    LoopSchedule::Factoring,
    LoopSchedule::WeightedFactoring,
    LoopSchedule::Awf,
];

/// The proptest schedule generator: the classic four (with a random
/// chunk), the LB4OMP portfolio, and `Auto` (which resolves through the
/// selector on a server, or to the fallback on a plain runtime — either
/// way the conservation contract is identical).
fn pick_schedule(pick: u8, chunk: u32) -> LoopSchedule {
    match pick % 9 {
        0 => LoopSchedule::Static,
        1 => LoopSchedule::Dynamic(chunk),
        2 => LoopSchedule::Guided(chunk),
        3 => LoopSchedule::Adaptive,
        4 => LoopSchedule::Tss {
            first: chunk.max(1),
            last: (chunk / 16).max(1),
        },
        5 => LoopSchedule::Factoring,
        6 => LoopSchedule::WeightedFactoring,
        7 => LoopSchedule::Awf,
        _ => LoopSchedule::Auto,
    }
}

fn two_zone_server(threads: usize) -> TaskServer {
    let rt = RuntimeConfig::xgomptb(threads)
        .topology(MachineTopology::new(2, threads.div_ceil(2).max(1), 1))
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(64));
    TaskServer::start(ServerConfig::new(threads).runtime(rt).adapt_every(0))
}

/// (a) Exactly-once over 1M iterations for every schedule, with a
/// stream of ordinary task jobs running concurrently on the same team.
#[test]
fn every_schedule_is_exactly_once_under_concurrent_jobs() {
    const N: usize = 1_000_000;
    let server = two_zone_server(4);
    for sched in SCHEDULES {
        let hits: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
        let noise = Arc::new(AtomicU64::new(0));

        // Concurrent task jobs racing the loop through the same ingress.
        let task_jobs: Vec<_> = (0..64)
            .map(|_| {
                let noise = noise.clone();
                server
                    .submit(move |_| {
                        noise.fetch_add(1, Ordering::Relaxed);
                    })
                    .unwrap()
            })
            .collect();

        let h2 = hits.clone();
        let report = server
            .submit_for(0..N as u64, sched, move |i, _| {
                h2[i as usize].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap()
            .join()
            .unwrap();

        assert_eq!(report.iterations, N as u64, "{}", sched.name());
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "{}: some iteration not executed exactly once",
            sched.name()
        );
        for j in task_jobs {
            j.join().unwrap();
        }
        assert_eq!(noise.load(Ordering::Relaxed), 64);
    }
    let stats = server.stats();
    assert_eq!(stats.loops, SCHEDULES.len() as u64);
    assert_eq!(stats.loop_iters, (N * SCHEDULES.len()) as u64);
    server.shutdown();
}

/// (b) A pause → resume cycle landing mid-stream in a queue of loop
/// jobs: everything admitted is conserved, before and after the cycle.
#[test]
fn pause_resume_mid_loop_queue_conserves_iterations() {
    const N: u64 = 40_000;
    const JOBS: usize = 12;
    let server = two_zone_server(4);
    let sum = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for j in 0..JOBS {
        let sched = SCHEDULES[j % SCHEDULES.len()];
        let s = sum.clone();
        handles.push(
            server
                .submit_for(0..N, sched, move |i, _| {
                    s.fetch_add(i + 1, Ordering::Relaxed);
                })
                .unwrap(),
        );
        if j == JOBS / 2 {
            // Mid-stream: some loop jobs done, some in-team, some still
            // ring-queued. The pause drains everything admitted so far
            // to a quiescent parked team.
            server.pause().unwrap();
            // Jobs submitted while paused queue for the next generation.
        }
    }
    let paused_stats = server.stats();
    assert!(paused_stats.generations >= 1);
    server.resume().unwrap();
    for h in handles {
        h.join().unwrap();
    }
    let expect = (JOBS as u64) * (1..=N).sum::<u64>();
    assert_eq!(sum.load(Ordering::Relaxed), expect);

    let report = server.shutdown();
    assert_eq!(report.stats.loops, JOBS as u64);
    assert_eq!(report.stats.loop_iters, JOBS as u64 * N);
}

/// (c) Worker-count shrink (and zone re-map) on resume: loops keep
/// conserving, and the cross-generation loop telemetry keeps counting —
/// it must not reset with the generation.
#[test]
fn worker_shrink_on_resume_conserves_and_telemetry_survives() {
    const N: u64 = 100_000;
    let server = two_zone_server(6);

    let sum = Arc::new(AtomicU64::new(0));
    let s = sum.clone();
    server
        .submit_for(0..N, LoopSchedule::Guided(16), move |i, _| {
            s.fetch_add(i, Ordering::Relaxed);
        })
        .unwrap()
        .join()
        .unwrap();
    let before = server.stats();
    assert_eq!(before.loop_iters, N);

    // Shrink 6 → 2 workers AND collapse two zones into one (zone re-map
    // onto the fixed ingress shard set).
    server.pause().unwrap();
    server
        .resume_with(
            RuntimeConfig::xgomptb(2)
                .topology(MachineTopology::new(1, 2, 1))
                .dlb(DlbConfig::new(DlbStrategy::RedirectPush)),
        )
        .unwrap();

    let s = sum.clone();
    server
        .submit_for(0..N, LoopSchedule::Adaptive, move |i, _| {
            s.fetch_add(i, Ordering::Relaxed);
        })
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(sum.load(Ordering::Relaxed), 2 * (0..N).sum::<u64>());

    // Cumulative across the swap: the telemetry block belongs to the
    // server, not the generation.
    let after = server.stats();
    assert_eq!(after.loops, before.loops + 1);
    assert_eq!(after.loop_iters, before.loop_iters + N);
    let per = server.loop_telemetry().per_schedule;
    assert_eq!(per[LoopSchedule::Guided(16).index()].loops, 1);
    assert_eq!(per[LoopSchedule::Adaptive.index()].loops, 1);
    server.shutdown();
}

/// Loop chunk durations feed the live task-size sampler (the signal the
/// Table-IV adaptive controller windows on), so loop-heavy workloads
/// can retune the DLB engine from their real chunk grain — not just
/// from whole drain-task durations.
#[test]
fn loop_chunk_durations_feed_the_live_sampler() {
    let server = two_zone_server(4);
    let baseline = server.task_histogram().count;
    let report = server
        .submit_for(0..100_000, LoopSchedule::Dynamic(256), |_, _| {})
        .unwrap()
        .join()
        .unwrap();
    assert!(report.chunks >= 100_000 / 256);
    let after = server.task_histogram().count;
    assert!(
        after - baseline >= report.chunks,
        "sampler saw {} new samples for {} chunks — chunk durations must \
         be sampled individually",
        after - baseline,
        report.chunks
    );
    server.shutdown();
}

/// Satellite audit: per-lane ingress counters survive a `resume_with`
/// zone re-map — a registered submitter's pushed/drained accounting is
/// cumulative across generations, not reset by the re-map.
#[test]
fn ingress_lane_counters_survive_resume_with_zone_remap() {
    let server = two_zone_server(4);
    let mut sub = server.register_submitter(0);
    let lane = sub.lane().expect("a reservable lane");
    let shard = sub.shard();

    let h: Vec<_> = (0..50u64)
        .map(|i| sub.submit(move |_| i).unwrap())
        .collect();
    for (i, h) in h.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), i as u64);
    }
    let (pushed_before, drained_before) = server.ingress().shard(shard).lane_counters()[lane];
    assert_eq!((pushed_before, drained_before), (50, 50));

    // Re-map: 2 zones → 1 zone, worker count changed.
    server.pause().unwrap();
    server
        .resume_with(RuntimeConfig::xgomptb(3).topology(MachineTopology::new(1, 3, 1)))
        .unwrap();

    let h: Vec<_> = (0..30u64)
        .map(|i| sub.submit(move |_| i).unwrap())
        .collect();
    for h in h {
        h.join().unwrap();
    }
    let (pushed_after, drained_after) = server.ingress().shard(shard).lane_counters()[lane];
    assert_eq!(
        (pushed_after, drained_after),
        (80, 80),
        "lane counters must be cumulative across a zone re-map, not reset"
    );
    drop(sub);
    server.shutdown();
}

/// Giant waved spaces (one element either side of the old u32::MAX
/// ceiling) conserve **in u64** under cancellation: a brief executed
/// slice, then the remainder is abandoned through the O(1) closed-form
/// accounting — `executed + cancelled == len` exactly. (Full completion
/// of a >u32::MAX space is exercised in release by the `loop_schedules`
/// bench bin; here the body only runs a sliver, so debug builds stay
/// fast.)
#[test]
fn giant_waved_loops_conserve_under_cancellation() {
    for len in [u32::MAX as u64 - 1, u32::MAX as u64 + 1] {
        let rt = Runtime::new(
            RuntimeConfig::xgomptb(4)
                .topology(MachineTopology::new(2, 2, 1))
                .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(64)),
        );
        let out = rt.parallel(move |ctx| {
            let token = CancelToken::new();
            ctx.set_cancel_token(token.clone());
            let count = AtomicU64::new(0);
            let report = ctx.parallel_for(0..len, LoopSchedule::Dynamic(512), |_, _| {
                if count.fetch_add(1, Ordering::Relaxed) == 20_000 {
                    token.cancel();
                }
            });
            ctx.clear_cancel_token();
            (count.load(Ordering::Relaxed), report)
        });
        let (executed, report) = out.result;
        assert_eq!(
            report.iterations + report.cancelled_iters,
            len,
            "u64 conservation at len = {len}"
        );
        assert_eq!(report.iterations, executed, "every executed body counted");
        assert!(report.cancelled_iters > 0, "the tail was abandoned");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, // each case runs a real thread team
        .. ProptestConfig::default()
    })]

    /// Random (range, chunk, schedule, workers) conserves iterations:
    /// the index-sum checksum matches the closed form and the region's
    /// loop counters agree.
    #[test]
    fn random_loops_conserve_iterations(
        start in 0u64..1_000,
        len in 0u64..40_000,
        chunk in 0u32..512,
        sched_pick in 0u8..9,
        threads in 1usize..6,
        sockets in 1usize..3,
    ) {
        let sched = pick_schedule(sched_pick, chunk);
        let topo = MachineTopology::new(sockets, threads.div_ceil(sockets).max(1), 1);
        let rt = xgomp::Runtime::new(
            RuntimeConfig::xgomptb(threads)
                .topology(topo)
                .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(32)),
        );
        let (got_sum, got_count, report) = {
            let out = rt.parallel(move |ctx| {
                let sum = AtomicU64::new(0);
                let count = AtomicU64::new(0);
                let report = ctx.parallel_for(start..start + len, sched, |i, _| {
                    sum.fetch_add(i, Ordering::Relaxed);
                    count.fetch_add(1, Ordering::Relaxed);
                });
                (
                    sum.load(Ordering::Relaxed),
                    count.load(Ordering::Relaxed),
                    report,
                )
            });
            out.stats.check_invariants().unwrap();
            prop_assert_eq!(out.stats.total().nloop_iters, len);
            out.result
        };
        let expect_sum: u64 = (start..start + len).sum();
        prop_assert_eq!(got_sum, expect_sum);
        prop_assert_eq!(got_count, len);
        prop_assert_eq!(report.iterations, len);
    }

    /// Random (space kind, dims, tile, schedule, workers, sockets,
    /// rebalance interval) is **exactly-once over every element** of the
    /// space — a per-element hit array, not just a checksum — and the
    /// balancer's per-loop migration accounting stays conserved on 2-D
    /// and triangular shapes.
    #[test]
    fn random_spaces_are_exactly_once(
        kind in 0u8..3,
        dim_a in 1u64..120,
        dim_b in 1u64..60,
        tile in 1u32..20,
        chunk in 1u32..64,
        sched_pick in 0u8..9,
        threads in 1usize..6,
        sockets in 1usize..3,
        interval_pick in 0u8..3,
    ) {
        let sched = pick_schedule(sched_pick, chunk);
        // The linear element id of a point, per shape — a bijection onto
        // 0..len, so hit-counting proves exactly-once coverage.
        let (space, lin): (IterSpace, Box<dyn Fn(u64, u64) -> u64 + Sync>) = match kind {
            0 => (
                IterSpace::range(0..dim_a * dim_b),
                Box::new(|i, _| i),
            ),
            1 => (
                IterSpace::rect_tiled(dim_a, dim_b, tile, (tile / 2).max(1)),
                Box::new(move |r, c| r * dim_b + c),
            ),
            _ => (
                IterSpace::triangular_tiled(dim_a, tile),
                Box::new(|r, c| r * (r + 1) / 2 + c),
            ),
        };
        let len = space.len();
        let interval = [0u64, 128, 2_048][interval_pick as usize];
        let topo = MachineTopology::new(sockets, threads.div_ceil(sockets).max(1), 1);
        let rt = Runtime::new(
            RuntimeConfig::xgomptb(threads)
                .topology(topo)
                .dlb(
                    DlbConfig::new(DlbStrategy::WorkSteal)
                        .t_interval(32)
                        .rebalance_interval(interval),
                ),
        );
        let hits: Vec<AtomicU8> = (0..len).map(|_| AtomicU8::new(0)).collect();
        let report = {
            let hits = &hits;
            let lin = &lin;
            rt.parallel(move |ctx| {
                ctx.parallel_for(space, sched, |(a, b), _| {
                    hits[lin(a, b) as usize].fetch_add(1, Ordering::Relaxed);
                })
            })
            .result
        };
        prop_assert_eq!(report.iterations, len);
        prop_assert_eq!(report.migrated_in, report.migrated_out);
        if interval == 0 {
            prop_assert_eq!(report.rebalances, 0);
        }
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(Ordering::Relaxed), 1, "element {} of {:?}", i, space.kind());
        }
    }
}
