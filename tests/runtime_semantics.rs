//! End-to-end semantic tests of the public tasking API: scope borrowing,
//! taskwait, priorities, profiling plumbing, topology/locality behavior,
//! and DLB statistics causality.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use xgomp::topology::MachineTopology;
use xgomp::{Affinity, CostModel, DlbConfig, DlbStrategy, EventKind, Runtime, RuntimeConfig};

#[test]
fn scope_borrows_stack_data_mutably() {
    let rt = Runtime::new(RuntimeConfig::xgomptb(4));
    let out = rt.parallel(|ctx| {
        let mut words = vec![String::new(); 64];
        ctx.scope(|s| {
            for (i, w) in words.iter_mut().enumerate() {
                s.spawn(move |_| *w = format!("task-{i}"));
            }
        });
        words.iter().filter(|w| w.starts_with("task-")).count()
    });
    assert_eq!(out.result, 64);
}

#[test]
fn taskwait_orders_child_effects() {
    let rt = Runtime::new(RuntimeConfig::xgomptb(4));
    let out = rt.parallel(|ctx| {
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 0..10 {
            let before = counter.load(Ordering::SeqCst);
            assert_eq!(before, round * 16);
            for _ in 0..16 {
                let c = counter.clone();
                ctx.spawn(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            ctx.taskwait();
            assert_eq!(counter.load(Ordering::SeqCst), (round + 1) * 16);
        }
        counter.load(Ordering::SeqCst)
    });
    assert_eq!(out.result, 160);
}

#[test]
fn nested_scopes_preserve_sequencing() {
    let rt = Runtime::new(RuntimeConfig::xgomptb(4));
    let out = rt.parallel(|ctx| {
        let mut layers = [0u64; 4];
        ctx.scope(|s| {
            for (depth, slot) in layers.iter_mut().enumerate() {
                s.spawn(move |ctx| {
                    let mut inner = [0u64; 8];
                    ctx.scope(|s2| {
                        for (j, v) in inner.iter_mut().enumerate() {
                            s2.spawn(move |_| *v = (depth * 8 + j) as u64 + 1);
                        }
                    });
                    // All inner writes must be visible here.
                    *slot = inner.iter().sum();
                });
            }
        });
        layers.iter().sum::<u64>()
    });
    assert_eq!(out.result, (1..=32u64).sum::<u64>());
}

#[test]
fn gomp_priorities_order_fifo_queue() {
    // Single worker: priorities fully determine execution order under
    // the GOMP scheduler.
    let rt = Runtime::new(RuntimeConfig::gomp(1));
    let out = rt.parallel(|ctx| {
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        for (priority, tag) in [(0, "low1"), (5, "high"), (0, "low2"), (3, "mid")] {
            let order = order.clone();
            ctx.spawn_with_priority(priority, move |_| {
                order.lock().unwrap().push(tag);
            });
        }
        ctx.taskwait();
        Arc::try_unwrap(order).unwrap().into_inner().unwrap()
    });
    assert_eq!(out.result, vec!["high", "mid", "low1", "low2"]);
}

#[test]
fn profiling_events_cover_all_classes() {
    let cfg = RuntimeConfig::xgomptb(4).profiling(true);
    let rt = Runtime::new(cfg);
    let out = rt.parallel(|ctx| {
        ctx.scope(|s| {
            for _ in 0..200 {
                s.spawn(|_| {
                    std::hint::spin_loop();
                });
            }
        });
    });
    let mut seen = [false; 5];
    for log in &out.logs {
        for e in log.events() {
            seen[e.kind as usize] = true;
            assert!(e.end >= e.start, "negative event duration");
        }
    }
    assert!(seen[EventKind::Task as usize], "no TASK events");
    assert!(seen[EventKind::TaskCreate as usize], "no GOMP_TASK events");
    assert!(seen[EventKind::Barrier as usize], "no BARRIER events");
}

#[test]
fn locality_counters_follow_the_topology() {
    // Single zone ⇒ no remote executions, ever.
    let topo = MachineTopology::new(1, 8, 1);
    let cfg = RuntimeConfig::xgomptb(4)
        .topology(topo)
        .affinity(Affinity::Close);
    let rt = Runtime::new(cfg);
    let out = rt.parallel(|ctx| {
        ctx.scope(|s| {
            for _ in 0..500 {
                s.spawn(|_| ());
            }
        });
    });
    let t = out.stats.total();
    assert_eq!(t.ntasks_remote, 0, "single-zone machine saw remote tasks");
    assert_eq!(t.tasks_executed, 500);
}

#[test]
fn dlb_statistics_are_causally_consistent() {
    let cfg = RuntimeConfig::xgomptb(4).dlb(
        DlbConfig::new(DlbStrategy::WorkSteal)
            .n_victim(2)
            .n_steal(8)
            .t_interval(32),
    );
    let rt = Runtime::new(cfg);
    let out = rt.parallel(|ctx| {
        ctx.scope(|s| {
            for i in 0..2000u64 {
                s.spawn(move |_| {
                    // Uneven grains provoke stealing.
                    for _ in 0..(i % 13) * 50 {
                        std::hint::spin_loop();
                    }
                });
            }
        });
    });
    let t = out.stats.total();
    out.stats.check_invariants().unwrap();
    assert!(t.nreq_handled <= t.nreq_sent);
    assert!(t.nreq_has_steal <= t.nreq_handled);
    assert_eq!(t.nsteal_local + t.nsteal_remote, t.ntasks_stolen);
}

#[test]
fn cost_model_slows_remote_execution_measurably() {
    // Same workload, cost model off vs extreme: the penalized run must
    // be slower when remote executions occur.
    let mk = |model: CostModel| {
        RuntimeConfig::xgomptb(4)
            .topology(MachineTopology::new(4, 1, 1))
            .cost_model(model)
    };
    let work = |ctx: &xgomp::TaskCtx<'_>| {
        ctx.scope(|s| {
            for _ in 0..3000 {
                s.spawn(|_| ());
            }
        });
    };
    let fast = Runtime::new(mk(CostModel::disabled())).parallel(work);
    let heavy = CostModel {
        enabled: true,
        local_ns: 2_000,
        remote_ns: 20_000,
        accesses_per_task: 10,
    };
    let slow = Runtime::new(mk(heavy)).parallel(work);
    // Only assert when the run actually had non-self executions.
    let t = slow.stats.total();
    if t.ntasks_local + t.ntasks_remote > 500 {
        assert!(
            slow.wall > fast.wall,
            "cost model had no effect: fast={:?} slow={:?}",
            fast.wall,
            slow.wall
        );
    }
}

#[test]
fn region_reuse_produces_fresh_teams() {
    let rt = Runtime::new(RuntimeConfig::xgomptb(3));
    for i in 0..20 {
        let out = rt.parallel(|ctx| {
            let mut acc = vec![0u64; 32];
            ctx.scope(|s| {
                for (j, a) in acc.iter_mut().enumerate() {
                    s.spawn(move |_| *a = (i * j) as u64);
                }
            });
            acc.iter().sum::<u64>()
        });
        assert_eq!(out.result, (0..32).map(|j| (i * j) as u64).sum::<u64>());
        assert_eq!(out.stats.total().tasks_created, 32);
    }
}
