//! Continuous observability pipeline, end to end: the streaming trace
//! drain (rolling on-disk segments with rotation, retention, and exact
//! drop accounting) and the in-process `/metrics` + `/healthz`
//! endpoint, driven through a live [`TaskServer`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use xgomp::service::{ServerConfig, TaskServer, STABLE_METRIC_FAMILIES};
use xgomp::{chrome_json_from_dir, LoopSchedule, RuntimeConfig, TraceLevel};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xgomp-stream-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads every rolled segment in rotation order.
fn read_segments(dir: &Path) -> Vec<String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("stream dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| std::fs::read_to_string(p).expect("segment readable"))
        .collect()
}

/// First `"key":<number>` occurrence in a JSONL line.
fn json_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).map(|i| i + pat.len()).unwrap_or(0);
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// The final cumulative drain summary of the stream (last `drain` line
/// of the newest segment).
fn final_summary(segments: &[String]) -> String {
    segments
        .last()
        .expect("at least one segment")
        .lines()
        .rev()
        .find(|l| l.starts_with("{\"drain\""))
        .expect("final drain summary present")
        .to_string()
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body split present");
    (head.to_string(), body.to_string())
}

// ---- rolling drain: conservation under rotation + reshape --------------

#[test]
fn rolling_drain_conserves_across_rotations_and_reshape() {
    let dir = scratch_dir("conserve");
    let rt = RuntimeConfig::xgomptb(2).trace(TraceLevel::Full);
    let cfg = ServerConfig::new(2)
        .runtime(rt)
        .adapt_every(0)
        // Tiny segments force rotation mid-load; a high retention cap
        // keeps every rolled segment so the whole stream is on disk.
        .trace_stream(&dir, 16 * 1024, 10_000)
        .trace_stream_interval(Duration::from_micros(300));
    let server = TaskServer::start(cfg);

    // Concurrent producers at Full level racing rotation, with a
    // pause + `resume_with` team reshape (2 → 3 workers) in between.
    let load = |server: &TaskServer, jobs: usize| {
        let handles: Vec<_> = (0..jobs)
            .map(|i| server.submit(move |_| i * 7).expect("submit"))
            .collect();
        let lh = server
            .submit_for(0..4_000u64, LoopSchedule::Guided(8), |i, _| {
                std::hint::black_box(i.wrapping_mul(0x9e3779b97f4a7c15));
            })
            .expect("submit loop");
        for h in handles {
            h.join().expect("job");
        }
        lh.join().expect("loop");
    };
    load(&server, 600);
    server.pause().expect("pause");
    server
        .resume_with(RuntimeConfig::xgomptb(3).trace(TraceLevel::Full))
        .expect("resume reshaped");
    load(&server, 600);
    server.shutdown();

    let segments = read_segments(&dir);
    assert!(segments.len() > 3, "tiny segments must have rotated");
    let summary = final_summary(&segments);
    let rotations = json_u64(&summary, "rotations");
    let drained = json_u64(&summary, "drained");
    let dropped = json_u64(&summary, "dropped");
    assert!(rotations >= 3, "expected ≥ 3 rotations, saw {rotations}");

    // Per-worker conservation: `position == drained + dropped` for every
    // cursor, and — the writers being quiesced by shutdown — position
    // reaches the ring's emitted count exactly.
    let workers_at = summary.find("\"workers\":[").expect("workers rows");
    let rows: Vec<&str> = summary[workers_at..]
        .split("{\"worker\":")
        .skip(1)
        .collect();
    assert!(rows.len() >= 3, "reshaped server has ≥ 3 worker rings");
    let mut emitted_sum = 0u64;
    for row in &rows {
        let position = json_u64(row, "position");
        let w_drained = json_u64(row, "drained");
        let w_dropped = json_u64(row, "dropped");
        let emitted = json_u64(row, "emitted");
        assert_eq!(position, w_drained + w_dropped, "cursor identity");
        assert_eq!(position, emitted, "quiesced stream reaches every head");
        emitted_sum += emitted;
    }
    assert_eq!(
        drained + dropped,
        emitted_sum,
        "global conservation across all rolled segments"
    );

    // Cross-check the totals against the raw lines: every non-summary,
    // non-header, non-synthetic line is one drained record.
    let event_lines: u64 = segments
        .iter()
        .flat_map(|s| s.lines())
        .filter(|l| {
            !l.starts_with("{\"segment\"")
                && !l.starts_with("{\"drain\"")
                && !l.is_empty()
                && !l.contains("\"kind\":\"DrainCycle\"")
        })
        .count() as u64;
    assert_eq!(event_lines, drained, "one line per drained record");

    // And the concatenation converts to valid Chrome-trace JSON.
    let chrome = chrome_json_from_dir(&dir).expect("trace2chrome");
    let parsed: serde_json::Value = serde_json::from_str(&chrome).expect("valid JSON");
    drop(parsed);
    assert!(chrome.contains("\"traceEvents\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pause_flush_barrier_completes_the_on_disk_stream() {
    let dir = scratch_dir("barrier");
    let rt = RuntimeConfig::xgomptb(2).trace(TraceLevel::Lifecycle);
    let server = TaskServer::start(
        ServerConfig::new(2)
            .runtime(rt)
            .adapt_every(0)
            .trace_stream(&dir, 1 << 20, 10_000)
            // Deliberately glacial cadence: only the pause barrier can
            // explain the records reaching disk promptly.
            .trace_stream_interval(Duration::from_secs(30)),
    );
    let jobs = 40;
    let handles: Vec<_> = (0..jobs)
        .map(|i| server.submit(move |_| i).expect("submit"))
        .collect();
    for h in handles {
        h.join().expect("job");
    }
    server.pause().expect("pause");

    // Without resuming or shutting down: the paused stream already
    // carries every pre-pause record.
    let segments = read_segments(&dir);
    let starts: usize = segments
        .iter()
        .flat_map(|s| s.lines())
        .filter(|l| l.contains("\"kind\":\"JobStart\""))
        .count();
    assert_eq!(starts, jobs, "every pre-pause JobStart is on disk");
    server.resume().expect("resume");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- /metrics + /healthz endpoint --------------------------------------

#[test]
fn metrics_endpoint_serves_the_stable_schema_and_serve_state() {
    let server = TaskServer::start(ServerConfig::new(2).metrics_addr("127.0.0.1:0"));
    let addr = server.metrics_local_addr().expect("ephemeral bind");

    let handles: Vec<_> = (0..20)
        .map(|i| server.submit(move |_| i).expect("submit"))
        .collect();
    for h in handles {
        h.join().expect("job");
    }

    // /metrics: parseable exposition, every stable family exactly once.
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"));
    assert!(head.contains("text/plain; version=0.0.4"));
    for name in STABLE_METRIC_FAMILIES {
        assert_eq!(
            body.matches(&format!("# TYPE {name} ")).count(),
            1,
            "family {name} must appear exactly once"
        );
    }
    assert!(body.contains("xgomp_jobs_submitted_total 20"));

    // The scrape counter moves between scrapes (bumped before render,
    // so the very first scrape already reports itself).
    let first = json_scrape(&body, "xgomp_metrics_scrapes_total");
    assert!(first >= 1);
    let (_, body2) = http_get(addr, "/metrics");
    assert!(json_scrape(&body2, "xgomp_metrics_scrapes_total") > first);

    // /healthz tracks the lifecycle.
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"));
    assert!(head.contains("application/json"));
    assert!(body.contains("\"state\":\"serving\""), "got: {body}");
    server.pause().expect("pause");
    let (_, body) = http_get(addr, "/healthz");
    assert!(body.contains("\"state\":\"paused\""), "got: {body}");
    server.resume().expect("resume");
    let (_, body) = http_get(addr, "/healthz");
    assert!(body.contains("\"state\":\"serving\""), "got: {body}");

    // Unknown paths and methods are answered, not hung up on.
    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"));

    server.shutdown();
    // The listener is torn down with the server: connecting now fails.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be closed after shutdown"
    );
}

/// Scrapes one metric value out of a Prometheus exposition body.
fn json_scrape(prom: &str, name: &str) -> u64 {
    prom.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
        .unwrap_or(0)
}
