//! The LB4OMP schedule portfolio, pinned by **golden chunk sequences**.
//!
//! The closed-form series (TSS trapezoid, Factoring exact-halving, the
//! weighted variants) are driven single-threaded through the public
//! [`ChunkPolicy`] driver and asserted against hand-computed literals —
//! any change to the math shows up as an exact-series diff, not a perf
//! regression. The same series are then pinned *end-to-end*: a 1-worker
//! runtime must produce exactly the golden chunk count. The second half
//! drives [`AutoSelector`] deterministically (rigged makespans, no
//! wall-clock): convergence in the documented number of instances, zero
//! post-convergence flaps, re-exploration on a tuning-swap epoch bump
//! and on sustained makespan drift.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use xgomp::service::{ServerConfig, TaskServer};
use xgomp::{
    auto_portfolio_member, AutoSelector, ChunkPolicy, DlbConfig, DlbStrategy, IterSpace, LoopId,
    LoopSchedule, MachineTopology, Runtime, RuntimeConfig, SubmitOptions, AUTO_CONFIRM_WINDOWS,
    AUTO_PORTFOLIO_LEN, AUTO_TRIALS_PER_MEMBER,
};

/// Single-threaded consumption driver: ask the policy for the next
/// size, clamp to what's left, until the range is dry. This is exactly
/// what the one-worker drain loop does, minus the atomics.
fn consume(policy: &ChunkPolicy, total: u64) -> Vec<u64> {
    let mut left = total;
    let mut chunks = Vec::new();
    while left > 0 {
        let want = u64::from(policy.next(1.0));
        let take = want.min(left);
        chunks.push(take);
        left -= take;
        assert!(chunks.len() < 100_000, "series failed to make progress");
    }
    chunks
}

// ---------------------------------------------------------------------
// Golden series: TSS
// ---------------------------------------------------------------------

/// TSS(100, 10) over N = 1000: n = ⌈2000/110⌉ = 19 chunks, decrement
/// (100−10)/18 = 5. Consumed against the range, the arithmetic series
/// 100, 95, … lands on the total *exactly* at 25 (16 chunks of
/// 16·(100+25)/2 = 1000 units).
#[test]
fn tss_golden_series_n1000_f100_l10() {
    let p = ChunkPolicy::for_schedule(
        LoopSchedule::Tss {
            first: 100,
            last: 10,
        },
        1000,
        1,
        1,
    )
    .expect("TSS is a portfolio schedule");
    let golden: Vec<u64> = (0..16).map(|s| 100 - 5 * s).collect();
    assert_eq!(consume(&p, 1000), golden);
}

/// The raw (unconsumed) TSS series clamps at `last` once the trapezoid
/// runs past its n-th chunk, and never dips below it — including when
/// `s·dec` overtakes `first` entirely (saturating arithmetic).
#[test]
fn tss_series_clamps_at_last() {
    let p = ChunkPolicy::for_schedule(
        LoopSchedule::Tss {
            first: 100,
            last: 10,
        },
        1000,
        1,
        1,
    )
    .unwrap();
    let series: Vec<u32> = (0..24).map(|_| p.next(1.0)).collect();
    let mut golden: Vec<u32> = (0..19).map(|s| 100 - 5 * s).collect(); // 100 … 10
    golden.extend_from_slice(&[10; 5]); // past the trapezoid: floor
    assert_eq!(series, golden);
}

/// Degenerate endpoints are sanitized: `last > first` collapses to
/// `last = first`, zeros floor to 1, and a range smaller than the first
/// chunk yields a single covering chunk.
#[test]
fn tss_edge_cases() {
    // last > first → constant series at first.
    let p = ChunkPolicy::for_schedule(LoopSchedule::Tss { first: 8, last: 99 }, 100, 1, 1).unwrap();
    assert_eq!(
        consume(&p, 100),
        vec![8; 12].into_iter().chain([4]).collect::<Vec<_>>()
    );

    // Zero endpoints floor to 1: the series is all 1s, never 0.
    let p = ChunkPolicy::for_schedule(LoopSchedule::Tss { first: 0, last: 0 }, 10, 1, 1).unwrap();
    assert_eq!(consume(&p, 10), vec![1; 10]);

    // Range smaller than the first chunk: one chunk covers it.
    let p = ChunkPolicy::for_schedule(
        LoopSchedule::Tss {
            first: 100,
            last: 10,
        },
        10,
        1,
        1,
    )
    .unwrap();
    assert_eq!(consume(&p, 10), vec![10]);
}

// ---------------------------------------------------------------------
// Golden series: Factoring
// ---------------------------------------------------------------------

/// Factoring over N = 100 on P = 1: batch b = s, chunk ⌈100/2^(b+1)⌉ —
/// the canonical halving 50, 25, 13, 7, 4, 2, … Consumed, the last
/// chunk clamps to the single remaining unit.
#[test]
fn factoring_golden_series_n100_p1() {
    let p = ChunkPolicy::for_schedule(LoopSchedule::Factoring, 100, 1, 1).unwrap();
    assert_eq!(consume(&p, 100), vec![50, 25, 13, 7, 4, 1]);
}

/// Factoring over N = 1024 on P = 4: every batch of P consecutive
/// chunks shares one size, and the size halves exactly per batch
/// (1024 is a power of two, so no ceiling fuzz).
#[test]
fn factoring_golden_series_n1024_p4() {
    let p = ChunkPolicy::for_schedule(LoopSchedule::Factoring, 1024, 4, 1).unwrap();
    let series: Vec<u32> = (0..12).map(|_| p.next(1.0)).collect();
    assert_eq!(series, [128, 128, 128, 128, 64, 64, 64, 64, 32, 32, 32, 32]);
}

/// Deep into the series the chunk floors at 1 and *stays* there — the
/// divisor shift saturates instead of wrapping (a u64 `<<` past 63 bits
/// would silently produce garbage sizes).
#[test]
fn factoring_floors_at_one_forever() {
    let p = ChunkPolicy::for_schedule(LoopSchedule::Factoring, 1_000, 3, 1).unwrap();
    let series: Vec<u32> = (0..300).map(|_| p.next(1.0)).collect();
    assert!(series.iter().all(|&c| c >= 1));
    assert!(
        series[250..].iter().all(|&c| c == 1),
        "deep tail is the floor"
    );
}

/// The u32 pane boundary: a 2⁴⁰-unit space's opening factoring chunk
/// (2³⁹ units) exceeds the pane-claim width and must clamp to
/// `u32::MAX`, not truncate.
#[test]
fn factoring_caps_at_pane_claim_width() {
    let p = ChunkPolicy::for_schedule(LoopSchedule::Factoring, 1u64 << 40, 1, 1).unwrap();
    assert_eq!(p.next(1.0), u32::MAX);
    // Once the series drops under the cap it is exact again:
    // batch 8 → ⌈2^40/2^9⌉ = 2^31 < u32::MAX.
    let p = ChunkPolicy::for_schedule(LoopSchedule::Factoring, 1u64 << 40, 1, 1).unwrap();
    let series: Vec<u32> = (0..9).map(|_| p.next(1.0)).collect();
    assert_eq!(series[8], 1u32 << 31);
}

// ---------------------------------------------------------------------
// Golden series: weighted variants
// ---------------------------------------------------------------------

/// Weighted factoring scales the batch size by the claimer's weight:
/// a 2× zone asks for double chunks, a ½× zone for half, and the
/// result still floors at 1.
#[test]
fn weighted_factoring_scales_by_weight() {
    let p = ChunkPolicy::for_schedule(LoopSchedule::WeightedFactoring, 1024, 4, 2).unwrap();
    assert_eq!(p.peek(1.0), 128);
    assert_eq!(p.peek(2.0), 256);
    assert_eq!(p.peek(0.5), 64);
    assert_eq!(p.peek(0.001), 1, "weighted size floors at 1");
    // The *step* is weight-independent: advancing under one weight
    // moves every observer to the next series entry.
    for _ in 0..4 {
        p.advance();
    }
    assert_eq!(p.peek(1.0), 64);
    assert_eq!(p.peek(2.0), 128);
}

/// AWF weights derive from measured per-pool execution rates: a pool
/// running 2× the mean rate weighs ~1.33 against a ⅔ pool (relative to
/// their mean), unmeasured pools stay at 1.0, and extremes clamp into
/// [¼, 4].
#[test]
fn awf_weights_track_measured_rates() {
    let p = ChunkPolicy::for_schedule(LoopSchedule::Awf, 1024, 4, 3).unwrap();
    // Before any measurement: unweighted seed batch.
    assert_eq!(p.pool_weight(0), 1.0);
    assert_eq!(p.peek(p.pool_weight(0)), 128);

    // Pool 0 ran 1000 units in 100 ticks (rate 10); pool 1 ran 500 in
    // 100 (rate 5). Mean 7.5 → weights 4/3 and 2/3.
    p.record_pool(0, 1000, 100);
    p.record_pool(1, 500, 100);
    assert!((p.pool_weight(0) - 10.0 / 7.5).abs() < 1e-9);
    assert!((p.pool_weight(1) - 5.0 / 7.5).abs() < 1e-9);
    assert_eq!(p.pool_weight(2), 1.0, "unmeasured pool stays neutral");

    // Extreme rate skew clamps into [¼, 4] rather than starving the
    // slow pools or handing the fast one the whole remainder (the ratio
    // against the mean needs ≥ 5 measured pools to exceed 4×).
    let p = ChunkPolicy::for_schedule(LoopSchedule::Awf, 1024, 4, 6).unwrap();
    p.record_pool(5, 1_000_000, 1);
    for pool in 0..5 {
        p.record_pool(pool, 1, 1_000);
    }
    assert_eq!(p.pool_weight(5), 4.0);
    assert_eq!(p.pool_weight(0), 0.25);

    // Out-of-range pool indices are inert, not a panic.
    p.record_pool(99, 1, 1);
    assert_eq!(p.pool_weight(99), 1.0);
}

/// Non-portfolio schedules have no chunk policy.
#[test]
fn classic_schedules_have_no_policy() {
    for s in [
        LoopSchedule::Static,
        LoopSchedule::Dynamic(64),
        LoopSchedule::Guided(8),
        LoopSchedule::Adaptive,
        LoopSchedule::Auto,
    ] {
        assert!(
            ChunkPolicy::for_schedule(s, 1000, 4, 2).is_none(),
            "{}",
            s.name()
        );
    }
}

// ---------------------------------------------------------------------
// End-to-end: the golden series through a real 1-worker team
// ---------------------------------------------------------------------

/// A single worker drains the whole series in order, so the *chunk
/// count* of the report is pinned by the same closed forms the unit
/// tests assert: 16 TSS chunks for the 1000-unit trapezoid, 6 factoring
/// chunks for the 100-unit halving.
#[test]
fn one_worker_loop_reports_the_golden_chunk_count() {
    let rt = Runtime::new(RuntimeConfig::xgomptb(1));
    let out = rt.parallel(|ctx| {
        let tss = ctx.parallel_for(
            0..1000u64,
            LoopSchedule::Tss {
                first: 100,
                last: 10,
            },
            |_, _| {},
        );
        let fac = ctx.parallel_for(0..100u64, LoopSchedule::Factoring, |_, _| {});
        (tss, fac)
    });
    let (tss, fac) = out.result;
    assert_eq!((tss.iterations, tss.chunks), (1000, 16));
    assert_eq!((fac.iterations, fac.chunks), (100, 6));
}

/// Every portfolio member is exactly-once over every element of every
/// space shape, multi-threaded across two zones — the policies are a
/// chunk-size layer only and must not perturb conservation.
#[test]
fn portfolio_schedules_are_exactly_once_on_all_spaces() {
    let schedules = [
        LoopSchedule::Tss { first: 64, last: 4 },
        LoopSchedule::Factoring,
        LoopSchedule::WeightedFactoring,
        LoopSchedule::Awf,
        LoopSchedule::Auto, // resolves to the fallback without a server
    ];
    let rt = Runtime::new(
        RuntimeConfig::xgomptb(4)
            .topology(MachineTopology::new(2, 2, 1))
            .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(64)),
    );
    type LinMap = Box<dyn Fn(u64, u64) -> u64 + Sync>;
    for sched in schedules {
        let spaces: [(IterSpace, LinMap); 3] = [
            (IterSpace::range(0..5_000), Box::new(|i, _| i)),
            (
                IterSpace::rect_tiled(64, 48, 8, 6),
                Box::new(|r, c| r * 48 + c),
            ),
            (
                IterSpace::triangular_tiled(90, 8),
                Box::new(|r, c| r * (r + 1) / 2 + c),
            ),
        ];
        for (space, lin) in spaces {
            let len = space.len();
            let hits: Vec<AtomicU8> = (0..len).map(|_| AtomicU8::new(0)).collect();
            let report = {
                let hits = &hits;
                let lin = &lin;
                rt.parallel(move |ctx| {
                    ctx.parallel_for(space, sched, |(a, b), _| {
                        hits[lin(a, b) as usize].fetch_add(1, Ordering::Relaxed);
                    })
                })
                .result
            };
            assert_eq!(
                report.iterations,
                len,
                "{} on {:?}",
                sched.name(),
                space.kind()
            );
            assert_eq!(report.migrated_in, report.migrated_out);
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "{}: element {i} of {:?}",
                    sched.name(),
                    space.kind()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Auto selection: deterministic, no wall-clock
// ---------------------------------------------------------------------

/// Reports `pick` back with a rigged makespan: fast iff the concrete
/// schedule is `Factoring` (portfolio member 4).
fn rigged_report(sel: &AutoSelector, key: u64) -> LoopSchedule {
    let pick = sel.pick(key, 1 << 20, 4);
    let makespan = if matches!(pick.schedule, LoopSchedule::Factoring) {
        10
    } else {
        100
    };
    sel.report(key, pick, makespan);
    pick.schedule
}

/// The number of instances a site needs to converge: every member
/// trialed `AUTO_TRIALS_PER_MEMBER` times per sweep, and
/// `AUTO_CONFIRM_WINDOWS` agreeing sweeps.
const CONVERGE_RUNS: usize =
    AUTO_PORTFOLIO_LEN * AUTO_TRIALS_PER_MEMBER as usize * AUTO_CONFIRM_WINDOWS as usize;

/// A rigged clear winner converges in exactly the documented number of
/// instances, and never flaps afterwards: 200 post-convergence picks
/// all return the winner.
#[test]
fn auto_converges_deterministically_and_never_flaps() {
    let sel = AutoSelector::new();
    let key = 42;
    for i in 0..CONVERGE_RUNS {
        assert!(
            sel.site_status(key)
                .map_or(i == 0, |s| s.converged.is_none()),
            "converged early, at instance {i}"
        );
        rigged_report(&sel, key);
    }
    let status = sel.site_status(key).unwrap();
    assert_eq!(status.converged, Some(4), "member 4 = Factoring wins");
    assert_eq!(status.sweeps, AUTO_CONFIRM_WINDOWS);

    for _ in 0..200 {
        assert_eq!(rigged_report(&sel, key), LoopSchedule::Factoring, "flap");
    }
    assert_eq!(sel.site_status(key).unwrap().converged, Some(4));

    // The selection counters broke down by *concrete* schedule: the
    // "auto" slot never counts, and the winner dominates.
    let counts = sel.selected_counts();
    assert_eq!(counts[LoopSchedule::Auto.index()], 0);
    assert_eq!(
        counts[LoopSchedule::Factoring.index()],
        200 + 2 * u64::from(AUTO_TRIALS_PER_MEMBER)
    );
    assert_eq!(counts.iter().sum::<u64>(), CONVERGE_RUNS as u64 + 200);
}

/// Sites are independent: convergence at one key leaves another key
/// exploring from scratch.
#[test]
fn auto_sites_are_independent() {
    let sel = AutoSelector::new();
    for _ in 0..CONVERGE_RUNS {
        rigged_report(&sel, 1);
    }
    assert_eq!(sel.site_status(1).unwrap().converged, Some(4));
    assert!(
        sel.site_status(2).is_none(),
        "never-picked site has no state"
    );
    rigged_report(&sel, 2);
    assert_eq!(sel.site_status(2).unwrap().converged, None);
    assert_eq!(sel.site_status(1).unwrap().converged, Some(4), "unaffected");
}

/// A tuning-swap epoch bump re-opens exploration at every converged
/// site — the converged answer was measured under the old tuning
/// (mirrors the adaptive controller's `watch_swaps`).
#[test]
fn auto_reexplores_after_swap_epoch_bump() {
    let sel = AutoSelector::new();
    let epoch = Arc::new(AtomicU64::new(0));
    sel.watch_swaps(epoch.clone());
    for _ in 0..CONVERGE_RUNS {
        rigged_report(&sel, 7);
    }
    assert_eq!(sel.site_status(7).unwrap().converged, Some(4));

    epoch.fetch_add(1, Ordering::SeqCst);
    let _ = sel.pick(7, 1 << 20, 4); // first pick after the bump observes it
    let status = sel.site_status(7).unwrap();
    assert_eq!(status.converged, None, "swap re-opens exploration");
    assert_eq!(
        status.sweeps, AUTO_CONFIRM_WINDOWS,
        "sweep count is monotone"
    );

    // And it converges again from scratch (the in-flight pick above was
    // member 0's first trial).
    for _ in 0..CONVERGE_RUNS {
        rigged_report(&sel, 7);
    }
    assert_eq!(sel.site_status(7).unwrap().converged, Some(4));
}

/// Sustained ≥2× drift from the converged baseline re-opens
/// exploration; a transient blip does not.
#[test]
fn auto_reexplores_on_sustained_drift_only() {
    let sel = AutoSelector::new();
    for _ in 0..CONVERGE_RUNS {
        rigged_report(&sel, 9);
    }
    assert_eq!(sel.site_status(9).unwrap().converged, Some(4));

    // Two slow runs, then an in-band run: the streak resets.
    for makespan in [25, 25, 10] {
        let pick = sel.pick(9, 1 << 20, 4);
        sel.report(9, pick, makespan);
    }
    assert_eq!(
        sel.site_status(9).unwrap().converged,
        Some(4),
        "blip tolerated"
    );

    // Three consecutive slow runs: distribution shifted, re-explore.
    for _ in 0..3 {
        let pick = sel.pick(9, 1 << 20, 4);
        sel.report(9, pick, 1_000);
    }
    assert_eq!(sel.site_status(9).unwrap().converged, None);
}

/// A stale report — its pick predates the site moving to the next
/// member — is dropped, not mis-attributed.
#[test]
fn auto_drops_stale_attribution() {
    let sel = AutoSelector::new();
    let stale = sel.pick(3, 1 << 20, 4); // member 0, kept in flight
    for _ in 0..AUTO_TRIALS_PER_MEMBER {
        let pick = sel.pick(3, 1 << 20, 4);
        sel.report(3, pick, 50);
    }
    let before = sel.site_status(3).unwrap().window_runs;
    sel.report(3, stale, 1); // site has moved on to member 1
    assert_eq!(sel.site_status(3).unwrap().window_runs, before, "dropped");
}

/// The portfolio member table is total and shape-aware: every index
/// yields a concrete (non-Auto) schedule, and the TSS member derives
/// its opening chunk from the loop shape.
#[test]
fn portfolio_member_table_is_concrete() {
    for i in 0..AUTO_PORTFOLIO_LEN {
        let m = auto_portfolio_member(i, 1 << 20, 8);
        assert!(
            !matches!(m, LoopSchedule::Auto),
            "member {i} must be concrete"
        );
    }
    assert_eq!(
        auto_portfolio_member(3, 1 << 20, 8),
        LoopSchedule::Tss {
            first: 1 << 16,
            last: 1
        }
    );
    assert_eq!(
        auto_portfolio_member(3, 10, 0),
        LoopSchedule::Tss { first: 5, last: 1 },
        "zero workers sanitize to 1"
    );
}

// ---------------------------------------------------------------------
// Auto through the server
// ---------------------------------------------------------------------

/// `Schedule::Auto` through `submit_for_with(site)`: instances of one
/// `LoopId` share selector state across submissions, iterations stay
/// exactly-once, the site becomes observable via `auto_site_status`,
/// and the selection breakdown reaches the Prometheus exposition.
#[test]
fn auto_loops_through_the_server_conserve_and_export_metrics() {
    const N: u64 = 20_000;
    const INSTANCES: usize = 6;
    let rt = RuntimeConfig::xgomptb(4)
        .topology(MachineTopology::new(2, 2, 1))
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(64));
    let server = TaskServer::start(ServerConfig::new(4).runtime(rt).adapt_every(0));
    let site = LoopId(0xDA7A);

    let executed = Arc::new(AtomicU64::new(0));
    for _ in 0..INSTANCES {
        let e = executed.clone();
        let report = server
            .submit_for_with(
                SubmitOptions::new().site(site),
                0..N,
                LoopSchedule::Auto,
                move |_, _| {
                    e.fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(report.iterations, N);
    }
    assert_eq!(executed.load(Ordering::Relaxed), N * INSTANCES as u64);

    let status = server
        .auto_site_status(site)
        .expect("site has selection state");
    assert_eq!(status.converged, None, "still exploring after 6 instances");
    let counts = server.auto_selected_counts();
    assert_eq!(counts.iter().sum::<u64>(), INSTANCES as u64);
    assert_eq!(counts[LoopSchedule::Auto.index()], 0);

    // Telemetry: Auto loops are recorded under the "auto" row (the
    // concrete member varies per instance), and the selection breakdown
    // is its own stable metric family.
    let per = server.loop_telemetry().per_schedule;
    assert_eq!(per[LoopSchedule::Auto.index()].loops, INSTANCES as u64);
    let text = server.render_prometheus();
    assert!(text.contains("xgomp_loop_auto_selected_total{schedule="));
    server.shutdown();
}

/// An anonymous Auto submission (no `LoopId`) keys selection state by
/// space shape: repeated same-shape loops accumulate, and the named
/// site stays empty.
#[test]
fn auto_without_a_site_keys_by_space_shape() {
    let server = TaskServer::start(ServerConfig::new(2));
    for _ in 0..3 {
        server
            .submit_for(0..10_000u64, LoopSchedule::Auto, |_, _| {})
            .unwrap()
            .join()
            .unwrap();
    }
    assert_eq!(server.auto_selected_counts().iter().sum::<u64>(), 3);
    assert!(server.auto_site_status(LoopId(1)).is_none());
    server.shutdown();
}

/// Auto far from any server: the plain-`Runtime` fallback is a fixed
/// concrete schedule, so the loop conserves and reports normally.
#[test]
fn auto_on_a_plain_runtime_falls_back() {
    let rt = Runtime::new(RuntimeConfig::xgomptb(3));
    let sum = Arc::new(AtomicU64::new(0));
    let s = sum.clone();
    let out = rt.parallel(move |ctx| {
        ctx.parallel_for(0..50_000u64, LoopSchedule::Auto, |i, _| {
            s.fetch_add(i, Ordering::Relaxed);
        })
    });
    assert_eq!(out.result.iterations, 50_000);
    assert_eq!(sum.load(Ordering::Relaxed), (0..50_000u64).sum::<u64>());
}

/// Through enough server instances a rigged-by-reality site still
/// converges *eventually* — this drives the real measured-makespan path
/// (not rigged reports) and asserts only invariant properties: the
/// converged member, once reached, is a valid portfolio index and the
/// status stays stable across immediately following instances.
#[test]
fn auto_server_sites_eventually_converge_and_hold() {
    const N: u64 = 4_000;
    let server = TaskServer::start(ServerConfig::new(2));
    let site = LoopId(77);
    let work = Arc::new(AtomicUsize::new(0));
    let mut converged_at = None;
    for i in 0..(CONVERGE_RUNS + 8) {
        let w = work.clone();
        server
            .submit_for_with(
                SubmitOptions::new().site(site),
                0..N,
                LoopSchedule::Auto,
                move |_, _| {
                    w.fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap()
            .join()
            .unwrap();
        let status = server.auto_site_status(site).unwrap();
        if let Some(m) = status.converged {
            assert!(m < AUTO_PORTFOLIO_LEN);
            converged_at.get_or_insert(i);
        }
    }
    // With CONVERGE_RUNS instances of identical work the two sweep
    // windows are measured on the same distribution; convergence can
    // still (rarely) need one more sweep if measurement noise flips the
    // winner between windows — what must *never* happen is exploring
    // past the next full sweep after that.
    assert_eq!(
        work.load(Ordering::Relaxed),
        N as usize * (CONVERGE_RUNS + 8)
    );
    server.shutdown();
}
