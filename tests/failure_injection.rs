//! Failure-injection and edge-case tests: degenerate configurations,
//! starved protocols, and hostile parameter choices must degrade
//! gracefully, never deadlock, and never corrupt results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xgomp::bots::{BotsApp, Scale};
use xgomp::service::{ServerConfig, TaskServer};
use xgomp::{DlbConfig, DlbStrategy, LoopSchedule, MachineTopology, Runtime, RuntimeConfig};

#[test]
fn zero_ish_queue_capacity_is_clamped_and_works() {
    // capacity 0/1 clamp to 2; everything still runs via overflow.
    for cap in [0usize, 1, 2] {
        let cfg = RuntimeConfig::xgomptb(3).queue_capacity(cap);
        let rt = Runtime::new(cfg);
        let out = rt.parallel(|ctx| xgomp::bots::fib::par(ctx, 12));
        assert_eq!(out.result, 144, "cap={cap}");
    }
}

#[test]
fn dlb_on_single_worker_team_is_inert() {
    // One worker: no victims exist; the thief path must not spin-lock
    // or send self-requests that corrupt anything.
    for strategy in [DlbStrategy::WorkSteal, DlbStrategy::RedirectPush] {
        let cfg = RuntimeConfig::xgomptb(1).dlb(DlbConfig::new(strategy).t_interval(1));
        let rt = Runtime::new(cfg);
        let out = rt.parallel(|ctx| xgomp::bots::fib::par(ctx, 14));
        assert_eq!(out.result, 377);
        let t = out.stats.total();
        assert_eq!(t.ntasks_stolen, 0, "{strategy:?} stole on a 1-team");
    }
}

#[test]
fn victims_that_never_find_tasks_cannot_stall_thieves() {
    // A region whose only work is one long-running task: every other
    // worker is a thief whose requests are never handled (the lone
    // victim never reaches a found-task scheduling point again). The
    // timeout/retry path must keep the system live to termination.
    let cfg = RuntimeConfig::xgomptb(4).dlb(
        DlbConfig::new(DlbStrategy::WorkSteal)
            .n_victim(1)
            .t_interval(4), // aggressive retry
    );
    let rt = Runtime::new(cfg);
    let hits = Arc::new(AtomicU64::new(0));
    let h = hits.clone();
    let out = rt.parallel(move |ctx| {
        let h = h.clone();
        ctx.spawn(move |_| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            h.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(hits.load(Ordering::Relaxed), 1);
    // Thieves sent (possibly many) requests; none may have been counted
    // as handled-with-steal since there was nothing to steal.
    let t = out.stats.total();
    assert_eq!(t.ntasks_stolen, 0);
    assert!(t.nreq_sent > 0, "starved thieves should have asked");
}

#[test]
fn empty_scopes_and_immediate_taskwaits_are_noops() {
    let rt = Runtime::new(RuntimeConfig::xgomptb(2));
    let out = rt.parallel(|ctx| {
        ctx.scope(|_| { /* nothing spawned */ });
        ctx.taskwait();
        ctx.scope(|s| {
            s.spawn(|ctx| {
                ctx.taskwait(); // no children
            });
        });
        7u32
    });
    assert_eq!(out.result, 7);
    assert_eq!(out.stats.total().tasks_created, 1);
}

#[test]
fn extreme_priorities_do_not_confuse_any_scheduler() {
    for cfg in [
        RuntimeConfig::gomp(2),
        RuntimeConfig::lomp(2),
        RuntimeConfig::xgomptb(2),
    ] {
        let rt = Runtime::new(cfg);
        let sum = Arc::new(AtomicU64::new(0));
        let s2 = sum.clone();
        rt.parallel(move |ctx| {
            for (i, p) in [(1u64, i32::MAX), (2, i32::MIN), (4, 0), (8, -1)] {
                let s = s2.clone();
                ctx.spawn_with_priority(p, move |_| {
                    s.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 15);
    }
}

#[test]
fn pathological_dlb_parameters_stay_correct() {
    // t_interval = 1 (request every idle point), n_steal = huge,
    // p_local at both extremes.
    for p_local in [0.0, 1.0] {
        for strategy in [DlbStrategy::WorkSteal, DlbStrategy::RedirectPush] {
            let cfg = RuntimeConfig::xgomptb(4).dlb(
                DlbConfig::new(strategy)
                    .n_victim(64)
                    .n_steal(1_000_000)
                    .t_interval(1)
                    .p_local(p_local),
            );
            let rt = Runtime::new(cfg);
            let expect = BotsApp::Uts.run_seq(Scale::Test);
            let out = rt.parallel(|ctx| BotsApp::Uts.run_par(ctx, Scale::Test));
            assert_eq!(out.result, expect, "{strategy:?} p_local={p_local}");
            out.stats.check_invariants().unwrap();
        }
    }
}

#[test]
fn many_sequential_regions_do_not_leak() {
    // The allocator's leak counter is asserted inside parallel() in
    // debug builds; hammer region setup/teardown.
    let rt = Runtime::new(RuntimeConfig::xgomptb(4));
    for i in 0..50 {
        let out = rt.parallel(|ctx| {
            let mut v = [0u8; 16];
            ctx.scope(|s| {
                for (j, b) in v.iter_mut().enumerate() {
                    s.spawn(move |_| *b = (i + j) as u8);
                }
            });
            v.iter().map(|&b| b as u64).sum::<u64>()
        });
        let expect: u64 = (0..16).map(|j| ((i + j) as u8) as u64).sum();
        assert_eq!(out.result, expect);
    }
}

#[test]
fn deeply_nested_scopes_do_not_overflow_reasonable_stacks() {
    let rt = Runtime::new(RuntimeConfig::xgomptb(2).queue_capacity(4));
    let out = rt.parallel(|ctx| {
        fn nest(ctx: &xgomp::TaskCtx<'_>, depth: u32) -> u64 {
            if depth == 0 {
                return 1;
            }
            let mut below = 0u64;
            ctx.scope(|s| {
                s.spawn(|ctx| below = nest(ctx, depth - 1));
            });
            below + 1
        }
        nest(ctx, 300)
    });
    assert_eq!(out.result, 301);
}

#[test]
fn panicking_loop_body_racing_a_rebalance_probe_is_isolated() {
    // A loop whose body panics inside the rich (heavily rebalanced)
    // half of the space, racing an aggressive probe cadence — the panic
    // must fail only its own job: the sibling skewed loop conserves, the
    // balancer deregisters the dead loop, and the server keeps serving.
    let rt = RuntimeConfig::xgomptb(4)
        .topology(MachineTopology::new(2, 2, 1))
        .dlb(
            DlbConfig::new(DlbStrategy::WorkSteal)
                .t_interval(32)
                .rebalance_interval(256),
        );
    let server = TaskServer::start(ServerConfig::new(4).runtime(rt).adapt_every(0));

    const N: u64 = 30_000;
    let sum = Arc::new(AtomicU64::new(0));
    let s = sum.clone();
    let sibling = server
        .submit_for(0..N, LoopSchedule::Dynamic(32), move |i, _| {
            if i >= N / 2 {
                for _ in 0..100 {
                    std::hint::spin_loop();
                }
            }
            s.fetch_add(i + 1, Ordering::Relaxed);
        })
        .unwrap();
    let doomed = server
        .submit_for(0..N, LoopSchedule::Guided(16), |i, _| {
            if i == N - N / 4 {
                panic!("iteration {i} exploded mid-rebalance");
            }
            if i >= N / 2 {
                for _ in 0..100 {
                    std::hint::spin_loop();
                }
            }
        })
        .unwrap();

    let err = doomed.join().unwrap_err();
    let panic = err.panic().expect("panicked job yields JobError::Panicked");
    assert!(panic.message.contains("exploded"), "{}", panic.message);
    sibling.join().unwrap();
    assert_eq!(sum.load(Ordering::Relaxed), (1..=N).sum::<u64>());

    // The dead loop deregistered (drop guard ran through the unwind);
    // probes against an empty registry stay harmless and the server
    // still serves both flavors of work.
    assert_eq!(server.loop_balancer().live_loops(), 0);
    assert_eq!(server.submit(|_| 5u32).unwrap().join().unwrap(), 5);
    let again = server
        .submit_for(0..1_000, LoopSchedule::Adaptive, |_, _| {})
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(again.iterations, 1_000);
    server.shutdown();
}

#[test]
fn profiling_on_under_dlb_keeps_invariants() {
    let cfg = RuntimeConfig::xgomptb(4)
        .profiling(true)
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(8));
    let rt = Runtime::new(cfg);
    let expect = BotsApp::Sort.run_seq(Scale::Test);
    let out = rt.parallel(|ctx| BotsApp::Sort.run_par(ctx, Scale::Test));
    assert_eq!(out.result, expect);
    out.stats.check_invariants().unwrap();
    assert!(out.logs.iter().any(|l| !l.events().is_empty()));
}
