//! Ingress at scale: 64 submitter threads through registered lanes.
//!
//! Every submitter registers a pinned SPSC lane
//! (`TaskServer::register_submitter`), so the submission tier runs with
//! **zero** producer-claim traffic: the test asserts per-lane
//! conservation (every lane drains exactly what its one submitter
//! pushed) and that the anonymous claim path recorded no cross-lane
//! contention at all — the property the registered-lane API exists for,
//! and one a thread-hash lane choice cannot give (two hashed submitters
//! sharing a lane serialize on its claim word).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xgomp::service::{ServerConfig, TaskServer};
use xgomp::{DlbConfig, DlbStrategy, MachineTopology, RuntimeConfig};

const SUBMITTERS: usize = 64;
const ZONES: usize = 4;
const JOBS_PER: u64 = 250;

#[test]
fn sixty_four_registered_submitters_conserve_per_lane() {
    // Four NUMA zones of two workers each → four ingress shards. Each
    // shard needs 64/4 = 16 reservable lanes plus the always-anonymous
    // lane 0.
    let runtime = RuntimeConfig::xgomptb(8)
        .topology(MachineTopology::new(ZONES, 2, 1))
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(256));
    let server = Arc::new(TaskServer::start(
        ServerConfig::new(8)
            .runtime(runtime)
            .lanes_per_shard(SUBMITTERS / ZONES + 1)
            .lane_capacity(64)
            .max_in_flight(100_000) // clamped to real ring capacity
            .adapt_every(0),
    ));
    assert_eq!(server.stats().shards, ZONES);

    // Register every lane up front and keep the handles alive for the
    // whole run — a dropped handle releases its lane for re-reservation,
    // which would let two submitters share one lane across time and
    // spoil the per-lane accounting below.
    let subs: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let sub = server.register_submitter(t % ZONES);
            assert!(sub.lane().is_some(), "submitter {t} must get a pinned lane");
            sub
        })
        .collect();
    let mut used_lanes: Vec<(usize, usize)> = subs
        .iter()
        .map(|s| (s.shard(), s.lane().unwrap()))
        .collect();
    used_lanes.sort_unstable();
    used_lanes.dedup();
    assert_eq!(
        used_lanes.len(),
        SUBMITTERS,
        "every submitter owned its own lane"
    );

    let sum = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = subs
        .into_iter()
        .enumerate()
        .map(|(t, mut sub)| {
            let sum = sum.clone();
            let t = t as u64;
            std::thread::spawn(move || {
                let handles: Vec<_> = (0..JOBS_PER)
                    .map(|i| sub.submit(move |_| t * 1_000 + i).unwrap())
                    .collect();
                let mut local = 0u64;
                for h in handles {
                    local += h.join().unwrap();
                }
                sum.fetch_add(local, Ordering::Relaxed);
                sub // keep the lane reserved until the main thread says so
            })
        })
        .collect();

    let subs: Vec<_> = threads.into_iter().map(|th| th.join().unwrap()).collect();

    let expected: u64 = (0..SUBMITTERS as u64)
        .map(|t| (0..JOBS_PER).map(|i| t * 1_000 + i).sum::<u64>())
        .sum();
    assert_eq!(sum.load(Ordering::Relaxed), expected, "results corrupted");

    // Conservation and contention accounting. All jobs are joined, so
    // every push has been drained — lane by lane.
    let ingress = server.ingress();
    let mut total_pushed = 0u64;
    for shard_idx in 0..ingress.n_shards() {
        let shard = ingress.shard(shard_idx);
        for (lane_idx, (pushed, drained)) in shard.lane_counters().into_iter().enumerate() {
            assert_eq!(
                pushed, drained,
                "shard {shard_idx} lane {lane_idx} lost jobs in flight"
            );
            if lane_idx == 0 {
                assert_eq!(pushed, 0, "anonymous lane 0 must stay untouched");
            } else {
                assert_eq!(
                    pushed, JOBS_PER,
                    "shard {shard_idx} lane {lane_idx}: pinning leaked across lanes"
                );
            }
            total_pushed += pushed;
        }
    }
    assert_eq!(total_pushed, SUBMITTERS as u64 * JOBS_PER);
    assert_eq!(
        ingress.claim_conflicts(),
        0,
        "registered lanes must never touch a producer claim"
    );

    drop(subs);
    let server = Arc::into_inner(server).expect("all submitters done");
    let report = server.shutdown();
    assert_eq!(report.stats.completed, SUBMITTERS as u64 * JOBS_PER);
    report
        .region
        .expect("clean serve")
        .stats
        .check_invariants()
        .unwrap();
}
