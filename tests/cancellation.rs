//! Serving robustness: QoS admission quotas, cooperative cancellation,
//! deadlines with load shedding — chaos tests and exact conservation.
//!
//! The contract under test:
//!
//! * Admission is class-aware: `Background`/`Normal` jobs admit against
//!   `max_in_flight - ls_reserve` (Background additionally against
//!   `background_cap`), so a background flood backpressures while
//!   latency-sensitive capacity stays reserved;
//! * `JobHandle::cancel()` resolves exactly one way per job — *shed*
//!   (body never ran), *cancelled* (unwound at a checkpoint), or the
//!   job's own completion if it got there first — and a cancelled
//!   `parallel_for` abandons its remaining ranges into
//!   `nloop_cancelled_iters` with **exact** iteration conservation;
//! * deadlines shed expired queued jobs (even across a paused
//!   generation) and cooperatively cancel expired running jobs;
//! * after quiescence, `submitted == completed + cancelled + shed`
//!   holds exactly, globally and per QoS class, under random class
//!   mixes, quota splits, and cancel points.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use xgomp::service::{ServerConfig, TaskServer};
use xgomp::{
    DlbConfig, DlbStrategy, LoopSchedule, MachineTopology, QosClass, RuntimeConfig, SubmitOptions,
};

/// A two-zone server with an aggressive rebalance cadence.
fn two_zone_server(threads: usize, interval: u64) -> TaskServer {
    let rt = RuntimeConfig::xgomptb(threads)
        .topology(MachineTopology::new(2, threads.div_ceil(2).max(1), 1))
        .dlb(
            DlbConfig::new(DlbStrategy::WorkSteal)
                .t_interval(32)
                .rebalance_interval(interval),
        );
    TaskServer::start(ServerConfig::new(threads).runtime(rt).adapt_every(0))
}

#[test]
fn background_flood_leaves_latency_sensitive_capacity() {
    // One gated worker ⇒ nothing drains; admission is all that moves.
    let gate = Arc::new(AtomicBool::new(false));
    let server = TaskServer::start(
        ServerConfig::new(1)
            .max_in_flight(4)
            .ls_reserve(2)
            .background_cap(2)
            .lanes_per_shard(1)
            .lane_capacity(8),
    );
    let blocked = |gate: &Arc<AtomicBool>| {
        let gate = gate.clone();
        move |_: &xgomp::TaskCtx<'_>| {
            while !gate.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }
    };

    // Background admits up to min(max - ls_reserve, background_cap) = 2.
    let mut handles = Vec::new();
    for _ in 0..2 {
        handles.push(
            server
                .try_submit_with(SubmitOptions::from(QosClass::Background), blocked(&gate))
                .expect("background quota not yet full"),
        );
    }
    let err = server
        .try_submit_with(SubmitOptions::from(QosClass::Background), blocked(&gate))
        .unwrap_err();
    assert!(err.is_backpressure(), "background flood sheds: {err:?}");
    // Normal shares the non-reserved pool, which the flood just filled.
    let err = server
        .try_submit_with(SubmitOptions::from(QosClass::Normal), blocked(&gate))
        .unwrap_err();
    assert!(err.is_backpressure(), "{err:?}");

    // The reserved headroom still admits latency-sensitive work.
    for _ in 0..2 {
        handles.push(
            server
                .try_submit_with(
                    SubmitOptions::from(QosClass::LatencySensitive),
                    blocked(&gate),
                )
                .expect("ls_reserve carve-out must admit"),
        );
    }
    let err = server
        .try_submit_with(
            SubmitOptions::from(QosClass::LatencySensitive),
            blocked(&gate),
        )
        .unwrap_err();
    assert!(err.is_backpressure(), "{err:?}");

    gate.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    let by_class = server.class_stats();
    assert_eq!(by_class[QosClass::Background.index()].submitted, 2);
    assert_eq!(by_class[QosClass::LatencySensitive.index()].submitted, 2);
    let report = server.shutdown();
    assert_eq!(report.stats.completed, 4);
    assert_eq!(report.stats.rejected, 3);
}

#[test]
fn cancel_mid_loop_conserves_iterations_exactly() {
    const LEN: u64 = 100_000;
    let server = two_zone_server(4, 256);
    let spin = Arc::new(AtomicBool::new(true));
    let ran = Arc::new(AtomicU64::new(0));
    let (s, r) = (spin.clone(), ran.clone());
    let h = server
        .submit_for(0..LEN, LoopSchedule::Dynamic(64), move |_, _| {
            r.fetch_add(1, Ordering::Relaxed);
            while s.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
        })
        .unwrap();
    // Workers are each stuck inside one iteration: the cancel lands
    // strictly before the loop can finish.
    while ran.load(Ordering::Relaxed) == 0 {
        std::thread::yield_now();
    }
    h.cancel();
    spin.store(false, Ordering::Release);
    let err = h.join().unwrap_err();
    assert!(err.is_cancelled(), "typed cancel outcome: {err:?}");

    // The server survives a cancelled loop.
    let ok = server
        .submit_for(0..1_000, LoopSchedule::Static, |_, _| {})
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(ok.iterations, 1_000);

    let stats = server.stats();
    assert_eq!(stats.cancelled, 1);
    let report = server.shutdown();
    let total = report.region.expect("clean serve end").stats.total();
    // Exact conservation: every iteration either ran (once) or was
    // abandoned into the cancelled count — none lost, none doubled.
    assert_eq!(total.nloop_iters + total.nloop_cancelled_iters, LEN + 1_000);
    assert_eq!(total.nloop_iters, ran.load(Ordering::Relaxed) + 1_000);
    assert!(total.nloop_cancelled_iters > 0, "ranges were abandoned");
}

#[test]
fn cancel_races_pause_and_resume_with() {
    let server = Arc::new(two_zone_server(4, 128));
    let spin = Arc::new(AtomicBool::new(true));
    let ran = Arc::new(AtomicU64::new(0));
    let (s, r) = (spin.clone(), ran.clone());
    let h = server
        .submit_for(0..50_000, LoopSchedule::Dynamic(32), move |_, _| {
            r.fetch_add(1, Ordering::Relaxed);
            while s.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
        })
        .unwrap();
    while ran.load(Ordering::Relaxed) == 0 {
        std::thread::yield_now();
    }
    // Cancel, then pause while the loop is still unwinding: the drain
    // must complete (abandoned ranges and all) for the pause to land.
    h.cancel();
    let pauser = {
        let server = server.clone();
        std::thread::spawn(move || server.pause())
    };
    std::thread::sleep(Duration::from_millis(2));
    spin.store(false, Ordering::Release);
    pauser.join().unwrap().expect("pause completes post-cancel");
    assert!(h.join().unwrap_err().is_cancelled());

    // The next generation reshapes the machine and keeps serving.
    let rt = RuntimeConfig::xgomptb(2)
        .topology(MachineTopology::new(1, 2, 1))
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(32));
    server.resume_with(rt).unwrap();
    let ok = server
        .submit_for(0..5_000, LoopSchedule::Adaptive, |_, _| {})
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(ok.iterations, 5_000);
    let stats = server.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled + stats.shed
    );
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn queued_deadline_expires_across_a_paused_generation() {
    let server = two_zone_server(2, 0);
    server.pause().unwrap();
    // Queued into the paused generation; nothing can start it.
    let h = server
        .submit_with(
            SubmitOptions::new()
                .qos(QosClass::Background)
                .deadline(Duration::from_millis(5)),
            |_| 42u32,
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    // The deadline passed while paused (no sweep runs); resuming must
    // shed it — at the sweep or the start-time gate, whichever first.
    server.resume().unwrap();
    let err = h.join().unwrap_err();
    assert!(err.is_deadline_exceeded(), "{err:?}");
    assert!(!err.is_cancelled());

    // A deadline roomy enough never fires.
    let ok = server
        .submit_with(
            SubmitOptions::new().deadline(Duration::from_secs(600)),
            |_| 7u32,
        )
        .unwrap();
    assert_eq!(ok.join().unwrap(), 7);

    let report = server.shutdown();
    assert_eq!(report.stats.shed, 1);
    assert_eq!(report.stats.completed, 1);
    assert_eq!(
        report.stats.submitted,
        report.stats.completed + report.stats.cancelled + report.stats.shed
    );
}

#[test]
fn running_job_past_deadline_cancels_at_a_checkpoint() {
    let server = two_zone_server(2, 0);
    let h = server
        .submit_with(
            SubmitOptions::new().deadline(Duration::from_millis(10)),
            |ctx| -> u32 {
                // A cooperative body: polls the checkpoint until the
                // serve loop's sweep fires the token.
                loop {
                    ctx.check_cancel();
                    std::hint::spin_loop();
                }
            },
        )
        .unwrap();
    let err = h.join().unwrap_err();
    assert!(err.is_deadline_exceeded(), "{err:?}");
    let report = server.shutdown();
    // Started and then unwound ⇒ cancelled, not shed.
    assert_eq!(report.stats.cancelled, 1);
    assert_eq!(report.stats.shed, 0);
}

#[test]
fn join_timeout_returns_the_live_handle() {
    let server = two_zone_server(2, 0);
    let gate = Arc::new(AtomicBool::new(false));
    let g = gate.clone();
    let h = server
        .submit(move |_| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            11u32
        })
        .unwrap();
    let timeout = h
        .join_timeout(Duration::from_millis(5))
        .expect_err("gated job cannot finish in time");
    gate.store(true, Ordering::Release);
    assert_eq!(timeout.handle.join().unwrap(), 11);

    // In-team flavor: a job waits on a sibling without parking the
    // worker, times out, releases the sibling's gate, then joins it.
    let gate = Arc::new(AtomicBool::new(false));
    let g = gate.clone();
    let slow = server
        .submit(move |_| {
            while !g.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            17u32
        })
        .unwrap();
    let waiter = server
        .submit(move |ctx| {
            let timeout = slow
                .join_within_timeout(ctx, Duration::from_millis(5))
                .expect_err("sibling is gated");
            gate.store(true, Ordering::Release);
            timeout.handle.join_within(ctx).unwrap()
        })
        .unwrap();
    assert_eq!(waiter.join().unwrap(), 17);
    server.shutdown();
}

/// Regression stress for the gated-sibling stranding hang: with batched
/// round-robin injection, a drained job could be spawned into the SPSC
/// queue of a worker that was spinning inside another job's body — where
/// no one else could ever pop it, even with every other worker idle. The
/// observed shape (~20% of runs of the test above, parked leg): the
/// master futex-parked, one worker spinning in the gated `slow` body,
/// and `waiter` — the only job that would release the gate — stranded in
/// the spinner's queue. Injection now self-targets one job at a time, so
/// an unclaimed job always stays in the shared MPSC ingress where any
/// idle worker can take it. Hammer that exact dependency shape; a hang
/// (CI timeout) is the failure mode.
#[test]
fn gated_sibling_pairs_never_strand() {
    let server = two_zone_server(2, 0);
    for round in 0..200 {
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let slow = server
            .submit(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                round
            })
            .unwrap();
        let waiter = server
            .submit(move |ctx| {
                // Waiting in-team with a tiny timeout keeps this worker
                // helping (it may even run `slow`'s sibling jobs), then
                // releases the gate the sibling spins on.
                let timeout = slow
                    .join_within_timeout(ctx, Duration::from_micros(100))
                    .expect_err("sibling is gated until we release it");
                gate.store(true, Ordering::Release);
                timeout.handle.join_within(ctx).unwrap()
            })
            .unwrap();
        assert_eq!(waiter.join().unwrap(), round);
    }
    let report = server.shutdown();
    assert_eq!(report.stats.completed, 400);
}

#[test]
fn cancel_before_start_sheds_without_running_the_body() {
    // Paused server: the job can never start, so cancel() must resolve
    // the handle as shed — and the body must never run.
    let server = two_zone_server(2, 0);
    server.pause().unwrap();
    let ran = Arc::new(AtomicBool::new(false));
    let r = ran.clone();
    let h = server
        .submit(move |_| {
            r.store(true, Ordering::Release);
        })
        .unwrap();
    h.cancel();
    // The handle resolves immediately — no resume needed to observe it.
    let err = h.join().unwrap_err();
    assert!(err.is_cancelled(), "{err:?}");
    server.resume().unwrap();
    let report = server.shutdown();
    assert!(!ran.load(Ordering::Acquire), "shed body must never run");
    assert_eq!(report.stats.shed, 1);
    assert_eq!(report.stats.completed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a real server + thread team
        .. ProptestConfig::default()
    })]

    /// Random (class mix, quota split, cancel points): after the server
    /// quiesces, `completed + cancelled + shed == submitted` holds
    /// *exactly*, globally and per class, and every handle resolved
    /// with a typed outcome.
    #[test]
    fn outcomes_partition_submissions_exactly(
        seed in 0u64..1_000_000,
        threads in 1usize..5,
        max_in_flight in 2usize..12,
        reserve_pick in 0usize..4,
        bg_pick in 1usize..5,
        n_jobs in 8usize..40,
    ) {
        let mix = |x: u64| {
            let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let server = TaskServer::start(
            ServerConfig::new(threads)
                .max_in_flight(max_in_flight)
                .ls_reserve(reserve_pick.min(max_in_flight - 1))
                .background_cap(bg_pick.min(max_in_flight)),
        );
        let mut handles = Vec::new();
        let mut accepted = 0u64;
        for j in 0..n_jobs {
            let r = mix(seed.wrapping_add(j as u64));
            let qos = match r % 3 {
                0 => QosClass::LatencySensitive,
                1 => QosClass::Normal,
                _ => QosClass::Background,
            };
            let mut opts = SubmitOptions::from(qos);
            // Cancel points: 0 = run clean, 1 = cancel right after
            // submit, 2 = instant deadline, 3 = roomy deadline.
            let point = (r >> 8) % 4;
            if point == 2 {
                opts = opts.deadline(Duration::ZERO);
            } else if point == 3 {
                opts = opts.deadline(Duration::from_secs(600));
            }
            let spin = 1 + (r >> 16) % 500;
            match server.try_submit_with(opts, move |_| {
                for _ in 0..spin {
                    std::hint::spin_loop();
                }
            }) {
                Ok(h) => {
                    if point == 1 {
                        h.cancel();
                    }
                    accepted += 1;
                    handles.push(h);
                }
                Err(e) => prop_assert!(e.is_backpressure(), "{e:?}"),
            }
        }
        for h in handles {
            match h.join() {
                Ok(()) => {}
                Err(e) => prop_assert!(
                    e.is_cancelled() || e.is_deadline_exceeded(),
                    "only typed outcomes: {e:?}"
                ),
            }
        }
        // Quiesce first: a handle resolves before its ring slot drains,
        // so the counters lag the joins by a moment.
        while server.stats().in_flight != 0 {
            std::thread::yield_now();
        }
        let by_class = server.class_stats();
        for c in &by_class {
            prop_assert_eq!(c.submitted, c.completed + c.cancelled + c.shed);
        }
        let class_sum: u64 = by_class.iter().map(|c| c.submitted).sum();
        // Shutdown drains the rings: the partition is exact after it.
        let report = server.shutdown();
        let s = &report.stats;
        prop_assert_eq!(s.submitted, accepted);
        prop_assert_eq!(s.submitted, class_sum);
        prop_assert_eq!(s.submitted, s.completed + s.cancelled + s.shed);
        prop_assert_eq!(s.in_flight, 0);
        prop_assert_eq!(s.queued, 0);
    }
}
