//! # xgomp — lock-less fine-grained tasking with NUMA-aware dynamic load balancing
//!
//! A from-scratch Rust reproduction of *"Optimizing Fine-Grained
//! Parallelism Through Dynamic Load Balancing on Multi-Socket Many-Core
//! Systems"* (IPPS 2025): the XQueue lattice runtime (XGOMP), the hybrid
//! lock-free/lock-less distributed tree barrier (XGOMPTB), the NA-RP and
//! NA-WS lock-less NUMA-aware load balancers, the §V profiling tools,
//! the BOTS benchmark suite, and the §VII Proof-of-Space application
//! with a from-scratch BLAKE3.
//!
//! This facade re-exports the public API of every crate in the
//! workspace; depend on `xgomp` and you get all of it:
//!
//! ```
//! use xgomp::{DlbConfig, DlbStrategy, Runtime, RuntimeConfig};
//!
//! // XGOMPTB with NUMA-aware work stealing, 4 workers.
//! let rt = Runtime::new(
//!     RuntimeConfig::xgomptb(4).dlb(DlbConfig::new(DlbStrategy::WorkSteal)),
//! );
//! let out = rt.parallel(|ctx| xgomp::bots::fib::par(ctx, 20));
//! assert_eq!(out.result, 6765);
//! // §V statistics come back with every region:
//! assert_eq!(out.stats.total().tasks_executed, out.stats.total().tasks_created);
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! reproduction design and experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![warn(missing_docs)]

#[doc(hidden)]
pub use xgomp_core::force_small_panes_for_tests;
pub use xgomp_core::{
    auto_portfolio_member, chrome_json_from_dir, chrome_json_from_jsonl, clock, guidelines,
    render_task_counts, render_timeline, state_summary, Affinity, AllocKind, AutoPick,
    AutoSelector, AutoSiteStatus, BarrierKind, ChunkPolicy, CostModel, DlbConfig, DlbStrategy,
    DlbTuning, EventKind, IngressSource, IterSpace, LiveTaskSampler, Locality, LoopBalancer,
    LoopError, LoopId, LoopReport, LoopSchedule, LoopSpace, LoopTelemetry, LoopTelemetrySnapshot,
    MachineTopology, Parker, PerfLog, PersistentTeam, Placement, ProfileDump, PromText,
    RegionOutput, Runtime, RuntimeConfig, SchedulerKind, Scope, SpaceKind, StatsSnapshot, TaskCtx,
    TaskSizeHistogram, TeamStats, TraceEvent, TraceLevel, TraceSnapshot, TraceStream,
    TraceStreamConfig, TraceStreamStats, Tracer, AUTO_CONFIRM_WINDOWS, AUTO_FALLBACK,
    AUTO_PORTFOLIO_LEN, AUTO_TRIALS_PER_MEMBER, DEFAULT_TILE,
};
pub use xgomp_service::{
    CancelReason, CancelToken, JobError, JobHandle, JobPanic, JobReport, JoinTimeout, QosClass,
    QosClassStats, ServerConfig, ServerStats, SubmitError, SubmitOptions, SubmitterHandle,
    TaskServer, STABLE_METRIC_FAMILIES,
};

/// The BOTS benchmark suite (`xgomp-bots`).
pub mod bots {
    pub use xgomp_bots::*;
}

/// The Proof-of-Space application and BLAKE3 (`xgomp-posp`).
pub mod posp {
    pub use xgomp_posp::*;
}

/// The lock-less queueing substrate (`xgomp-xqueue`).
pub mod xqueue {
    pub use xgomp_xqueue::*;
}

/// The simulated NUMA machine model (`xgomp-topology`).
pub mod topology {
    pub use xgomp_topology::*;
}

/// The §V profiling tools (`xgomp-profiling`).
pub mod profiling {
    pub use xgomp_profiling::*;
}

/// The persistent task-server runtime (`xgomp-service`).
pub mod service {
    pub use xgomp_service::*;
}
