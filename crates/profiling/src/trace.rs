//! Flight-recorder tracing: per-worker event rings, Chrome-trace /
//! Perfetto export, and Prometheus text-exposition helpers.
//!
//! The §V [`PerfLog`](crate::PerfLog) answers "where did the cycles
//! go" per worker, in aggregate. This module answers *when*: every
//! worker owns a bounded, overwrite-oldest
//! [`EventRing`](xgomp_xqueue::EventRing) into which instrumented
//! runtime sites emit fixed-size binary records (park/wake, steals,
//! balancer migrations, job lifecycle spans). A [`Tracer`] owns the
//! rings across team generations, gates every site behind a
//! [`TraceLevel`] held in one atomic byte — `Off` costs a single
//! relaxed load and branch per site — and drains them into a
//! [`TraceSnapshot`] whose [`to_chrome_json`](TraceSnapshot::to_chrome_json)
//! export opens directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): one track per worker, async
//! spans per job.
//!
//! The rings are *flight recorders*: emission never blocks on a slow
//! (or absent) reader, the newest ~capacity records are always
//! retained, and everything older is drop-counted — so a panic dump
//! shows the milliseconds leading up to the panic, which is exactly
//! the window that matters.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};
use xgomp_xqueue::{EventRing, RingCursor};

use crate::clock;
use crate::events::EventKind;

/// How much the runtime records, per instrumentation site.
///
/// Levels are ordered: a site gated at `Lifecycle` also fires at
/// `Full`. The level lives in one atomic byte inside the [`Tracer`]
/// and can be flipped live.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[repr(u8)]
pub enum TraceLevel {
    /// No recording. Every site costs one relaxed load plus a branch.
    #[default]
    Off = 0,
    /// Coarse events only: park/wake, job spans, generation
    /// boundaries, retunes, balancer migrations — O(events) ≪
    /// O(tasks), safe to leave on in production.
    Lifecycle = 1,
    /// Everything: per-task run spans, steal batches, per-chunk loop
    /// claims and range steals. For short diagnostic windows.
    Full = 2,
}

impl TraceLevel {
    /// Parses `"off"` / `"lifecycle"` / `"full"` (or `0`/`1`/`2`),
    /// case-insensitive.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(TraceLevel::Off),
            "lifecycle" | "1" => Some(TraceLevel::Lifecycle),
            "full" | "2" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    /// Reads `XGOMP_TRACE` (unset or unparseable ⇒ `Off`).
    pub fn from_env() -> TraceLevel {
        std::env::var("XGOMP_TRACE")
            .ok()
            .and_then(|v| TraceLevel::parse(&v))
            .unwrap_or(TraceLevel::Off)
    }

    /// Lower-case stable name (`off`/`lifecycle`/`full`).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Lifecycle => "lifecycle",
            TraceLevel::Full => "full",
        }
    }
}

struct RingState {
    ring: Arc<EventRing>,
    cursor: RingCursor,
}

/// Owner of the per-worker flight-recorder rings.
///
/// A `Tracer` outlives any one team generation: the task server keeps
/// one for its whole life, so rings (and their retained windows)
/// survive `pause()`/`resume_with()` reshaping — a resize simply grows
/// the ring list. Workers cache their ring `Arc` at generation start
/// and emit with zero shared state; draining ([`snapshot`]
/// (Self::snapshot)) happens under one mutex, off every hot path.
pub struct Tracer {
    level: AtomicU8,
    ring_capacity: usize,
    rings: Mutex<Vec<RingState>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("level", &self.level())
            .field("rings", &self.rings.lock().unwrap().len())
            .finish()
    }
}

impl Tracer {
    /// A tracer at `level` with default ring capacity.
    pub fn new(level: TraceLevel) -> Self {
        Tracer::with_capacity(level, xgomp_xqueue::DEFAULT_EVENT_CAPACITY)
    }

    /// A tracer at `level` whose rings hold `ring_capacity` records
    /// each (rounded up to a power of two).
    pub fn with_capacity(level: TraceLevel, ring_capacity: usize) -> Self {
        Tracer {
            level: AtomicU8::new(level as u8),
            ring_capacity,
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Current level (relaxed — the only consistency an instrumentation
    /// site needs is "eventually sees a flip").
    #[inline]
    pub fn level(&self) -> TraceLevel {
        match self.level.load(Ordering::Relaxed) {
            0 => TraceLevel::Off,
            1 => TraceLevel::Lifecycle,
            _ => TraceLevel::Full,
        }
    }

    /// Flips the level live. Takes effect at each site's next relaxed
    /// load; no synchronization with in-flight emits.
    pub fn set_level(&self, level: TraceLevel) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// The Off-cost gate: one relaxed load plus a compare.
    #[inline]
    pub fn enabled(&self, min: TraceLevel) -> bool {
        self.level.load(Ordering::Relaxed) >= min as u8
    }

    /// Worker `w`'s ring, created on first request. Workers call this
    /// once per generation and cache the `Arc`; the ring — and its
    /// retained record window — persists across generations.
    pub fn ring(&self, worker: usize) -> Arc<EventRing> {
        let mut rings = self.rings.lock().unwrap();
        while rings.len() <= worker {
            rings.push(RingState {
                ring: Arc::new(EventRing::with_capacity(self.ring_capacity)),
                cursor: RingCursor::new(),
            });
        }
        rings[worker].ring.clone()
    }

    /// Number of rings materialized so far.
    pub fn n_rings(&self) -> usize {
        self.rings.lock().unwrap().len()
    }

    /// Clones of every materialized ring `Arc`, in worker order. An
    /// external reader (the streaming drain collector) keeps its *own*
    /// [`RingCursor`](xgomp_xqueue::RingCursor) per ring and drains
    /// through these handles without holding the tracer's lock during
    /// I/O — independent cursors each see the retained window, so the
    /// stream and [`snapshot`](Self::snapshot) never steal each other's
    /// events.
    pub fn ring_handles(&self) -> Vec<Arc<EventRing>> {
        self.rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.ring.clone())
            .collect()
    }

    /// Emits one record into `worker`'s ring from *outside* that
    /// worker's thread, stamped with [`clock::now`]. Only safe while
    /// the worker is not running (the rings are SPSC) — used for
    /// generation open/close markers between team regions.
    pub fn emit_meta(&self, worker: usize, kind: EventKind, a: u32, b: u64, c: u64) {
        if !self.enabled(TraceLevel::Lifecycle) {
            return;
        }
        let ring = self.ring(worker);
        ring.emit(clock::now(), kind as u8, a, b, c);
    }

    /// Total records emitted across all rings.
    pub fn emitted(&self) -> u64 {
        self.rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.ring.emitted())
            .sum()
    }

    /// Total records lost to flight-recorder overwrite, as accounted
    /// by drains so far.
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.ring.dropped())
            .sum()
    }

    /// Drains every ring (advancing the tracer's cursors) into a
    /// time-sorted snapshot. Two consecutive snapshots partition the
    /// event stream: each record lands in exactly one snapshot (or in
    /// the drop count, if the recorder lapped the reader).
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut events = Vec::new();
        let mut dropped = 0;
        {
            let mut rings = self.rings.lock().unwrap();
            for (w, state) in rings.iter_mut().enumerate() {
                state.ring.drain(&mut state.cursor, &mut |raw| {
                    if let Some(kind) = EventKind::from_u8(raw.kind) {
                        events.push(TraceEvent {
                            worker: w as u32,
                            ts: raw.ts,
                            kind,
                            a: raw.a,
                            b: raw.b,
                            c: raw.c,
                        });
                    }
                });
                dropped += state.cursor.dropped();
            }
        }
        events.sort_by_key(|e| e.ts);
        TraceSnapshot {
            events,
            dropped,
            cycles_per_ns: clock::cycles_per_ns(),
        }
    }
}

/// One decoded trace record (see [`EventKind`] for payload meanings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The worker whose ring recorded the event.
    pub worker: u32,
    /// Timestamp ([`clock::now`] ticks).
    pub ts: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Payload word `a` (small operand).
    pub a: u32,
    /// Payload word `b` (job id, range lo, batch size…).
    pub b: u64,
    /// Payload word `c` (paired timestamp, range hi…).
    pub c: u64,
}

impl TraceEvent {
    /// Whether payload `c` carries a paired start timestamp (the event
    /// closes a span `[c, ts]`).
    fn c_is_timestamp(&self) -> bool {
        matches!(
            self.kind,
            EventKind::Task | EventKind::JobStart | EventKind::JobEnd
        )
    }
}

/// A drained, time-sorted view of every ring.
#[derive(Debug)]
pub struct TraceSnapshot {
    /// All drained records, ascending timestamp.
    pub events: Vec<TraceEvent>,
    /// Cumulative records lost to flight-recorder overwrite.
    pub dropped: u64,
    /// Tick-to-nanosecond calibration at snapshot time.
    pub cycles_per_ns: f64,
}

impl TraceSnapshot {
    /// Highest worker index present, plus one.
    pub fn n_workers(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.worker as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Events of one kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Renders the snapshot as Chrome-trace ("Trace Event Format")
    /// JSON, loadable in `chrome://tracing` and Perfetto.
    ///
    /// * one thread track per worker (`pid` 1, `tid` = worker);
    /// * consecutive Park→Wake pairs become `"parked"` duration
    ///   events; unpaired ends render as instants;
    /// * `Task` and `JobEnd` records (which carry their start in `c`)
    ///   become complete (`ph:"X"`) spans on the worker's track;
    /// * `JobStart`/`JobEnd` additionally open/close an async span
    ///   (`ph:"b"`/`"e"`) per job id, beginning at *submission* time —
    ///   the async track therefore shows queue wait + run per job;
    /// * everything else renders as an instant (`ph:"i"`).
    pub fn to_chrome_json(&self) -> String {
        // Timebase: earliest timestamp mentioned anywhere (including
        // span starts carried in `c`), so every "ts" is a non-negative
        // microsecond offset.
        let base = self
            .events
            .iter()
            .flat_map(|e| {
                let c = e.c_is_timestamp().then_some(e.c);
                std::iter::once(e.ts).chain(c)
            })
            .min()
            .unwrap_or(0);
        let per_us = self.cycles_per_ns * 1_000.0;
        let us = |ticks: u64| ticks.saturating_sub(base) as f64 / per_us;

        let mut out = String::with_capacity(64 * self.events.len() + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
        let _ = write!(
            out,
            "\"dropped_events\":{},\"cycles_per_ns\":{:.4}",
            self.dropped, self.cycles_per_ns
        );
        out.push_str("},\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(&ev);
        };

        // Track naming metadata.
        push(
            &mut out,
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"xgomp\"}}"
                .to_string(),
        );
        for w in 0..self.n_workers() {
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{w},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"worker {w}\"}}}}"
                ),
            );
        }

        let mut pending_park: Vec<Option<u64>> = vec![None; self.n_workers()];
        for e in &self.events {
            let w = e.worker;
            let name = e.kind.label();
            match e.kind {
                EventKind::Park => {
                    // Held until the matching wake (events are sorted,
                    // and one worker's park/wake strictly alternate).
                    pending_park[w as usize] = Some(e.ts);
                }
                EventKind::Wake => match pending_park[w as usize].take() {
                    Some(p0) => push(
                        &mut out,
                        format!(
                            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{w},\"name\":\"parked\",\
                             \"cat\":\"idle\",\"ts\":{:.3},\"dur\":{:.3}}}",
                            us(p0),
                            us(e.ts) - us(p0)
                        ),
                    ),
                    None => push(
                        &mut out,
                        format!(
                            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{w},\
                             \"name\":\"{name}\",\"ts\":{:.3}}}",
                            us(e.ts)
                        ),
                    ),
                },
                EventKind::Task => push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{w},\"name\":\"task\",\
                         \"cat\":\"task\",\"ts\":{:.3},\"dur\":{:.3}}}",
                        us(e.c),
                        us(e.ts) - us(e.c)
                    ),
                ),
                EventKind::JobStart => push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"b\",\"cat\":\"job\",\"id\":{},\"pid\":1,\"tid\":{w},\
                         \"name\":\"job {}\",\"ts\":{:.3}}}",
                        e.b,
                        e.b,
                        us(e.c)
                    ),
                ),
                EventKind::JobEnd => {
                    push(
                        &mut out,
                        format!(
                            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{w},\"name\":\"job {}\",\
                             \"cat\":\"job\",\"ts\":{:.3},\"dur\":{:.3},\
                             \"args\":{{\"panicked\":{}}}}}",
                            e.b,
                            us(e.c),
                            us(e.ts) - us(e.c),
                            e.a
                        ),
                    );
                    push(
                        &mut out,
                        format!(
                            "{{\"ph\":\"e\",\"cat\":\"job\",\"id\":{},\"pid\":1,\"tid\":{w},\
                             \"name\":\"job {}\",\"ts\":{:.3}}}",
                            e.b,
                            e.b,
                            us(e.ts)
                        ),
                    );
                }
                _ => push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{w},\
                         \"name\":\"{name}\",\"ts\":{:.3},\
                         \"args\":{{\"a\":{},\"b\":{},\"c\":{}}}}}",
                        us(e.ts),
                        e.a,
                        e.b,
                        e.c
                    ),
                ),
            }
        }
        // Workers still parked at snapshot time: render as instants.
        for (w, p) in pending_park.iter().enumerate() {
            if let Some(p0) = p {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{w},\
                         \"name\":\"PARK\",\"ts\":{:.3}}}",
                        us(*p0)
                    ),
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Writes the Chrome-trace JSON to `path`.
    pub fn dump_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_chrome_json())
    }
}

/// Incremental builder of a Prometheus text-format exposition
/// (`# HELP` / `# TYPE` headers plus sample lines). Purely textual —
/// callers bring their own counter values, so the exposition works on
/// any snapshot without a live registry.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, typ: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {typ}");
    }

    /// One unlabeled counter metric (header + sample).
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One unlabeled gauge metric (header + sample).
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One metric with a labeled sample per entry. `label` is the
    /// label key; entries are `(label value, sample)`.
    pub fn counter_vec(&mut self, name: &str, help: &str, label: &str, entries: &[(&str, u64)]) {
        self.header(name, help, "counter");
        for (lv, v) in entries {
            let _ = writeln!(self.out, "{name}{{{label}=\"{lv}\"}} {v}");
        }
    }

    /// One fixed-bucket histogram series under a single label pair.
    /// `buckets` are the upper bounds (in ascending order) matching
    /// `counts`, which hold *cumulative* observation counts per bucket
    /// (`counts[i]` = observations ≤ `buckets[i]`); a `+Inf` bucket,
    /// `_sum` and `_count` lines complete the series. Emit the
    /// `# HELP`/`# TYPE` header once via [`histogram_header`]
    /// (Self::histogram_header) before the first labeled series.
    #[allow(clippy::too_many_arguments)]
    pub fn histogram_series(
        &mut self,
        name: &str,
        label: &str,
        label_value: &str,
        buckets: &[f64],
        counts: &[u64],
        sum: f64,
        count: u64,
    ) {
        debug_assert_eq!(buckets.len(), counts.len());
        for (le, c) in buckets.iter().zip(counts) {
            let _ = writeln!(
                self.out,
                "{name}_bucket{{{label}=\"{label_value}\",le=\"{le}\"}} {c}"
            );
        }
        let _ = writeln!(
            self.out,
            "{name}_bucket{{{label}=\"{label_value}\",le=\"+Inf\"}} {count}"
        );
        let _ = writeln!(self.out, "{name}_sum{{{label}=\"{label_value}\"}} {sum}");
        let _ = writeln!(
            self.out,
            "{name}_count{{{label}=\"{label_value}\"}} {count}"
        );
    }

    /// The `# HELP`/`# TYPE histogram` header for a histogram metric
    /// (once per metric name, before its labeled series).
    pub fn histogram_header(&mut self, name: &str, help: &str) {
        self.header(name, help, "histogram");
    }

    /// The accumulated exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(TraceLevel::Off < TraceLevel::Lifecycle);
        assert!(TraceLevel::Lifecycle < TraceLevel::Full);
        assert_eq!(TraceLevel::parse("FULL"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("lifecycle"), Some(TraceLevel::Lifecycle));
        assert_eq!(TraceLevel::parse("0"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("nope"), None);
        assert_eq!(TraceLevel::default(), TraceLevel::Off);
    }

    #[test]
    fn tracer_gates_by_level_and_flips_live() {
        let t = Tracer::new(TraceLevel::Off);
        assert!(!t.enabled(TraceLevel::Lifecycle));
        t.set_level(TraceLevel::Lifecycle);
        assert!(t.enabled(TraceLevel::Lifecycle));
        assert!(!t.enabled(TraceLevel::Full));
        t.set_level(TraceLevel::Full);
        assert!(t.enabled(TraceLevel::Full));
        assert_eq!(t.level(), TraceLevel::Full);
    }

    #[test]
    fn snapshot_partitions_the_stream() {
        let t = Tracer::with_capacity(TraceLevel::Full, 64);
        let r0 = t.ring(0);
        let r1 = t.ring(1);
        r0.emit(10, EventKind::Park as u8, 0, 0, 0);
        r1.emit(5, EventKind::Steal as u8, 0, 3, 0);
        let s1 = t.snapshot();
        assert_eq!(s1.events.len(), 2);
        // Sorted by timestamp across rings.
        assert_eq!(s1.events[0].kind, EventKind::Steal);
        assert_eq!(s1.events[0].worker, 1);
        r0.emit(20, EventKind::Wake as u8, 0, 0, 0);
        let s2 = t.snapshot();
        assert_eq!(s2.events.len(), 1, "second snapshot sees only new events");
        assert_eq!(s2.events[0].kind, EventKind::Wake);
    }

    #[test]
    fn chrome_export_pairs_parks_and_emits_job_spans() {
        let t = Tracer::with_capacity(TraceLevel::Full, 64);
        let r = t.ring(0);
        r.emit(1_000, EventKind::Park as u8, 0, 0, 0);
        r.emit(2_000, EventKind::Wake as u8, 0, 0, 0);
        r.emit(3_000, EventKind::JobStart as u8, 0, 42, 2_500);
        r.emit(4_000, EventKind::JobEnd as u8, 0, 42, 3_000);
        r.emit(4_500, EventKind::Rebalance as u8, 1, 0, 0);
        let json = t.snapshot().to_chrome_json();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"parked\""), "park/wake paired");
        assert!(json.contains("\"name\":\"job 42\""));
        assert!(json.contains("\"ph\":\"b\"") && json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"name\":\"REBALANCE\""));
        // Structural sanity: serde_json parses what we hand-build.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        drop(v);
    }

    #[test]
    fn prom_text_shape() {
        let mut p = PromText::new();
        p.counter("xgomp_jobs_submitted_total", "Jobs submitted.", 7);
        p.gauge("xgomp_jobs_in_flight", "Jobs admitted, not completed.", 2);
        p.counter_vec(
            "xgomp_loop_chunks_total",
            "Loop chunks claimed.",
            "schedule",
            &[("static", 1), ("dynamic", 2)],
        );
        let s = p.finish();
        assert!(s.contains("# TYPE xgomp_jobs_submitted_total counter"));
        assert!(s.contains("xgomp_jobs_submitted_total 7"));
        assert!(s.contains("# TYPE xgomp_jobs_in_flight gauge"));
        assert!(s.contains("xgomp_loop_chunks_total{schedule=\"dynamic\"} 2"));
    }

    #[test]
    fn prom_histogram_shape() {
        let mut p = PromText::new();
        p.histogram_header("xgomp_job_run_seconds", "Job run latency.");
        p.histogram_series(
            "xgomp_job_run_seconds",
            "class",
            "normal",
            &[0.001, 0.01],
            &[3, 5],
            0.042,
            6,
        );
        let s = p.finish();
        assert!(s.contains("# TYPE xgomp_job_run_seconds histogram"));
        assert!(s.contains("xgomp_job_run_seconds_bucket{class=\"normal\",le=\"0.001\"} 3"));
        assert!(s.contains("xgomp_job_run_seconds_bucket{class=\"normal\",le=\"+Inf\"} 6"));
        assert!(s.contains("xgomp_job_run_seconds_sum{class=\"normal\"} 0.042"));
        assert!(s.contains("xgomp_job_run_seconds_count{class=\"normal\"} 6"));
    }
}
