//! Timestamp source: the processor timestamp counter where available.
//!
//! The paper stamps profiling events with `rdtscp` because it is a
//! light-weight, monotonically increasing per-clock counter. We use
//! `rdtsc` on x86-64 and a monotonic nanosecond clock elsewhere; the unit
//! of every timestamp in this crate is therefore "TSC cycles on x86,
//! nanoseconds elsewhere". [`cycles_per_ns`] reports the measured ratio
//! so figures can convert to seconds.

use std::sync::OnceLock;
use std::time::Instant;

/// Process epoch for the non-TSC fallback.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Reads the current timestamp (TSC cycles on x86-64, monotonic ns
/// elsewhere). Monotone per thread; cross-thread skew is possible on
/// exotic hardware but modern x86 has invariant, socket-synchronized TSC.
#[inline]
pub fn now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `rdtsc` has no preconditions.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        epoch().elapsed().as_nanos() as u64
    }
}

/// Measured timestamp ticks per nanosecond (≈ CPU GHz on x86-64, exactly
/// 1.0 on the fallback clock). Calibrated once per process.
pub fn cycles_per_ns() -> f64 {
    static RATIO: OnceLock<f64> = OnceLock::new();
    *RATIO.get_or_init(|| {
        let _ = epoch();
        let c0 = now();
        let t0 = Instant::now();
        // Busy-wait ~2 ms for a stable ratio.
        while t0.elapsed().as_micros() < 2_000 {
            std::hint::spin_loop();
        }
        let cycles = now().wrapping_sub(c0) as f64;
        let ns = t0.elapsed().as_nanos().max(1) as f64;
        (cycles / ns).max(1e-6)
    })
}

/// Converts a tick delta from [`now`] to seconds.
#[inline]
pub fn ticks_to_secs(ticks: u64) -> f64 {
    ticks as f64 / cycles_per_ns() / 1e9
}

/// Converts nanoseconds to ticks (for constructing spin budgets in tick
/// units, e.g. the synthetic task-grain workloads).
#[inline]
pub fn ns_to_ticks(ns: u64) -> u64 {
    (ns as f64 * cycles_per_ns()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotone_on_one_thread() {
        let mut prev = now();
        for _ in 0..1000 {
            let t = now();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn ratio_is_positive_and_sane() {
        let r = cycles_per_ns();
        assert!(r > 0.0);
        // Anything between 1 MHz and 10 GHz equivalent.
        assert!(r < 10.0 + 1.0, "ratio {r} looks wrong");
    }

    #[test]
    fn roundtrip_ns_ticks() {
        let ticks = ns_to_ticks(1_000_000); // 1 ms
        let secs = ticks_to_secs(ticks);
        assert!((secs - 1e-3).abs() < 2e-4, "1 ms roundtripped to {secs}s");
    }
}
