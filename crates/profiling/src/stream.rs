//! Rolling on-disk trace stream: the continuous half of the flight
//! recorder.
//!
//! [`Tracer::snapshot`](crate::Tracer::snapshot) is point-in-time — it
//! answers "what just happened" at a panic or an explicit call. This
//! module streams instead: a [`TraceStream`] owns one private
//! [`RingCursor`] per worker ring and, on every
//! [`drain_cycle`](TraceStream::drain_cycle), tails whatever the rings
//! accumulated since the last cycle into an append-only **JSONL
//! segment** on disk, rotating by size or age
//! (`trace-<epoch>-<seq>.jsonl`) and pruning rolled segments beyond a
//! retention cap. Because the stream's cursors are independent of the
//! tracer's snapshot cursors, both readers coexist: each sees every
//! retained record, and neither consumes the other's view.
//!
//! ## Conservation across rotations
//!
//! The flight-recorder identity `drained + dropped == emitted` is
//! carried *into the files*: every drain cycle appends a `drain`
//! summary line with the cumulative per-worker cursor accounting
//! (`position == drained + dropped`) next to the ring's `emitted`
//! counter, and [`finish`](TraceStream::finish) writes one final
//! summary after the writers quiesce — so the last summary of the last
//! segment states the identity exactly, no matter how many times the
//! stream rotated underneath it.
//!
//! ## Line format
//!
//! Each line of a segment is one JSON object:
//!
//! * `{"segment":{"epoch":…,"seq":…,"cycles_per_ns":…}}` — first line
//!   of every segment;
//! * a serialized [`TraceEvent`] — one per drained record, plus one
//!   synthetic [`EventKind::DrainCycle`] marker per non-empty cycle on
//!   the collector's pseudo-track (the collector thread never emits
//!   into a worker's SPSC ring);
//! * `{"drain":{…,"workers":[…]}}` — the cumulative accounting
//!   summary described above.
//!
//! [`chrome_json_from_jsonl`] (and the directory-walking
//! [`chrome_json_from_dir`]) convert any concatenation of segments —
//! in rotation order — back into one Perfetto-loadable Chrome-trace
//! JSON document: the `trace2chrome` path.

use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use serde::Value;
use xgomp_xqueue::{EventRing, RingCursor};

use crate::clock;
use crate::events::EventKind;
use crate::trace::{TraceEvent, TraceSnapshot, Tracer};

/// Shape of the rolling stream: where segments live, when they rotate,
/// how many survive.
#[derive(Debug, Clone)]
pub struct TraceStreamConfig {
    /// Directory the segments are written into (created on demand).
    pub dir: PathBuf,
    /// Rotate the current segment once it exceeds this many bytes.
    pub rotate_bytes: u64,
    /// Rotate the current segment once it is older than this, even if
    /// small — bounds how stale the newest *closed* segment can be.
    pub rotate_after: Duration,
    /// Segments retained on disk (the live one included); older rolled
    /// segments of this stream are deleted, newest kept. Minimum 1.
    pub keep: usize,
}

impl TraceStreamConfig {
    /// Defaults: 4 MiB size rotation, 60 s age rotation, 8 segments
    /// retained.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TraceStreamConfig {
            dir: dir.into(),
            rotate_bytes: 4 << 20,
            rotate_after: Duration::from_secs(60),
            keep: 8,
        }
    }

    /// Sets the size-rotation threshold (bytes, ≥ 1 KiB).
    pub fn rotate_bytes(mut self, n: u64) -> Self {
        self.rotate_bytes = n.max(1024);
        self
    }

    /// Sets the age-rotation threshold.
    pub fn rotate_after(mut self, d: Duration) -> Self {
        self.rotate_after = d;
        self
    }

    /// Sets the retention cap (segments kept, ≥ 1).
    pub fn keep(mut self, n: usize) -> Self {
        self.keep = n.max(1);
        self
    }
}

/// Cumulative counters of one [`TraceStream`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStreamStats {
    /// Drain cycles run (empty ones included).
    pub cycles: u64,
    /// Records written to disk across all segments.
    pub drained: u64,
    /// Records the stream's cursors lost to ring overwrite — `0` means
    /// the collector kept up with every writer.
    pub dropped: u64,
    /// Segment rotations performed.
    pub rotations: u64,
    /// Segments opened (`rotations + 1`).
    pub segments: u64,
}

/// The rolling sink (see the [module docs](self)).
pub struct TraceStream {
    cfg: TraceStreamConfig,
    /// Unix-seconds stamp naming this stream's segment family.
    epoch: u64,
    seq: u64,
    file: BufWriter<File>,
    bytes: u64,
    segment_events: u64,
    opened_at: Instant,
    cursors: Vec<RingCursor>,
    stats: TraceStreamStats,
}

impl std::fmt::Debug for TraceStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStream")
            .field("dir", &self.cfg.dir)
            .field("segment", &self.segment_path())
            .field("stats", &self.stats)
            .finish()
    }
}

fn open_segment_file(path: &Path) -> io::Result<BufWriter<File>> {
    Ok(BufWriter::new(File::create(path)?))
}

impl TraceStream {
    /// Opens the stream: creates `cfg.dir` and segment 0 with its
    /// header line.
    pub fn create(cfg: TraceStreamConfig) -> io::Result<Self> {
        fs::create_dir_all(&cfg.dir)?;
        let epoch = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut stream = TraceStream {
            file: open_segment_file(&segment_path_of(&cfg.dir, epoch, 0))?,
            cfg,
            epoch,
            seq: 0,
            bytes: 0,
            segment_events: 0,
            opened_at: Instant::now(),
            cursors: Vec::new(),
            stats: TraceStreamStats::default(),
        };
        stream.stats.segments = 1;
        stream.write_header()?;
        Ok(stream)
    }

    /// Path of the live segment.
    pub fn segment_path(&self) -> PathBuf {
        segment_path_of(&self.cfg.dir, self.epoch, self.seq)
    }

    /// Cumulative stream counters.
    pub fn stats(&self) -> TraceStreamStats {
        self.stats
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.file, "{line}")?;
        self.bytes += line.len() as u64 + 1;
        Ok(())
    }

    fn write_header(&mut self) -> io::Result<()> {
        let line = format!(
            "{{\"segment\":{{\"epoch\":{},\"seq\":{},\"cycles_per_ns\":{:.6}}}}}",
            self.epoch,
            self.seq,
            clock::cycles_per_ns()
        );
        self.write_line(&line)
    }

    /// Appends the cumulative conservation summary: stream totals plus
    /// one per-worker row of `position == drained + dropped` next to
    /// the ring's `emitted` counter.
    fn write_summary(&mut self, rings: &[Arc<EventRing>]) -> io::Result<()> {
        let mut line = format!(
            "{{\"drain\":{{\"cycle\":{},\"rotations\":{},\"drained\":{},\"dropped\":{},\"workers\":[",
            self.stats.cycles, self.stats.rotations, self.stats.drained, self.stats.dropped
        );
        for (w, cur) in self.cursors.iter().enumerate() {
            if w > 0 {
                line.push(',');
            }
            let emitted = rings.get(w).map(|r| r.emitted()).unwrap_or(0);
            let _ = write!(
                line,
                "{{\"worker\":{w},\"position\":{},\"drained\":{},\"dropped\":{},\"emitted\":{emitted}}}",
                cur.position(),
                cur.drained(),
                cur.dropped(),
            );
        }
        line.push_str("]}}");
        self.write_line(&line)
    }

    /// One collector cycle: tails every ring through the stream's own
    /// cursors, appends the new records (plus the synthetic
    /// [`EventKind::DrainCycle`] marker and the conservation summary
    /// when anything arrived), and rotates/prunes as configured. Size
    /// rotation applies *mid-cycle* — one burst cycle draining far more
    /// than `rotate_bytes` (a ring holds up to its capacity between
    /// cycles) still produces bounded segments — while age rotation is
    /// checked once per cycle. Returns the records written this cycle.
    pub fn drain_cycle(&mut self, tracer: &Tracer) -> io::Result<u64> {
        let rings = tracer.ring_handles();
        while self.cursors.len() < rings.len() {
            self.cursors.push(RingCursor::new());
        }
        let mut cycle_drained = 0u64;
        for (w, ring) in rings.iter().enumerate() {
            // Buffer this ring's records (bounded by its capacity),
            // then write — rotation between lines needs `&mut self`,
            // which the drain closure cannot share with the cursor.
            let mut lines: Vec<String> = Vec::new();
            ring.drain(&mut self.cursors[w], &mut |raw| {
                let Some(kind) = EventKind::from_u8(raw.kind) else {
                    return;
                };
                let ev = TraceEvent {
                    worker: w as u32,
                    ts: raw.ts,
                    kind,
                    a: raw.a,
                    b: raw.b,
                    c: raw.c,
                };
                lines.push(serde_json::to_string(&ev).expect("trace event serializes"));
            });
            for line in lines {
                self.write_line(&line)?;
                self.segment_events += 1;
                cycle_drained += 1;
                if self.bytes >= self.cfg.rotate_bytes {
                    self.rotate()?;
                }
            }
        }
        self.stats.cycles += 1;
        self.stats.dropped = self.cursors.iter().map(|c| c.dropped()).sum();
        if cycle_drained > 0 {
            self.stats.drained += cycle_drained;
            // The cycle marker rides the collector's pseudo-track (one
            // past the worker rings) — never a worker's SPSC ring.
            let marker = TraceEvent {
                worker: rings.len() as u32,
                ts: clock::now(),
                kind: EventKind::DrainCycle,
                a: self.stats.rotations.min(u32::MAX as u64) as u32,
                b: cycle_drained,
                c: self.stats.dropped,
            };
            let line = serde_json::to_string(&marker).expect("trace event serializes");
            self.write_line(&line)?;
            self.write_summary(&rings)?;
        }
        self.maybe_rotate()?;
        Ok(cycle_drained)
    }

    fn maybe_rotate(&mut self) -> io::Result<()> {
        // Never roll a segment that carries no events yet: an idle
        // stream must not churn header-only files through retention.
        if self.segment_events == 0 {
            return Ok(());
        }
        if self.bytes < self.cfg.rotate_bytes && self.opened_at.elapsed() < self.cfg.rotate_after {
            return Ok(());
        }
        self.rotate()
    }

    /// Unconditionally rolls to the next segment: flush, bump the
    /// sequence number, open the new file with its header, prune old
    /// segments past the retention cap.
    fn rotate(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.seq += 1;
        self.stats.rotations += 1;
        self.stats.segments += 1;
        self.file = open_segment_file(&self.segment_path())?;
        self.bytes = 0;
        self.segment_events = 0;
        self.opened_at = Instant::now();
        self.write_header()?;
        self.apply_retention();
        Ok(())
    }

    /// Deletes this stream's oldest rolled segments beyond the
    /// retention cap (best-effort; other epochs in the directory are
    /// left alone).
    fn apply_retention(&self) {
        let Ok(rd) = fs::read_dir(&self.cfg.dir) else {
            return;
        };
        let prefix = format!("trace-{}-", self.epoch);
        let mut segs: Vec<PathBuf> = rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".jsonl"))
            })
            .collect();
        // Zero-padded sequence numbers make name order rotation order.
        segs.sort();
        while segs.len() > self.cfg.keep.max(1) {
            let _ = fs::remove_file(segs.remove(0));
        }
    }

    /// Flushes buffered lines to the OS (pause-coordination point: a
    /// paused server's stream is complete on disk after this).
    pub fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    /// Final cycle: drains whatever remains, writes one last
    /// conservation summary — exact once the emitters have quiesced —
    /// and flushes. Returns the final counters.
    pub fn finish(mut self, tracer: &Tracer) -> io::Result<TraceStreamStats> {
        self.drain_cycle(tracer)?;
        let rings = tracer.ring_handles();
        self.write_summary(&rings)?;
        self.file.flush()?;
        Ok(self.stats)
    }
}

fn segment_path_of(dir: &Path, epoch: u64, seq: u64) -> PathBuf {
    dir.join(format!("trace-{epoch}-{seq:06}.jsonl"))
}

fn num_u64(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n,
        Value::Int(n) => (*n).max(0) as u64,
        Value::Float(f) => *f as u64,
        _ => 0,
    }
}

fn num_f64(v: &Value) -> f64 {
    match v {
        Value::UInt(n) => *n as f64,
        Value::Int(n) => *n as f64,
        Value::Float(f) => *f,
        _ => 0.0,
    }
}

/// `trace2chrome`: converts concatenated stream segments (JSONL text,
/// in rotation order) into one Chrome-trace / Perfetto JSON document.
///
/// Segment headers contribute the tick calibration, `drain` summaries
/// contribute the drop accounting (cumulative — the largest value
/// wins), and every event line becomes a trace event; the result is
/// rendered through [`TraceSnapshot::to_chrome_json`], so rolled
/// segments concatenate into a single loadable stream.
pub fn chrome_json_from_jsonl(text: &str) -> Result<String, serde_json::Error> {
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut dropped = 0u64;
    let mut cycles_per_ns = 0.0f64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)?;
        if let Ok(seg) = serde::field(&v, "segment") {
            if cycles_per_ns == 0.0 {
                if let Ok(f) = serde::field(seg, "cycles_per_ns") {
                    cycles_per_ns = num_f64(f);
                }
            }
        } else if let Ok(sum) = serde::field(&v, "drain") {
            if let Ok(d) = serde::field(sum, "dropped") {
                dropped = dropped.max(num_u64(d));
            }
        } else {
            events.push(<TraceEvent as serde::Deserialize>::from_value(&v)?);
        }
    }
    if cycles_per_ns == 0.0 {
        cycles_per_ns = clock::cycles_per_ns();
    }
    events.sort_by_key(|e| e.ts);
    let snapshot = TraceSnapshot {
        events,
        dropped,
        cycles_per_ns,
    };
    Ok(snapshot.to_chrome_json())
}

/// Reads every `trace-*.jsonl` segment under `dir` in rotation order,
/// concatenates them, and converts the result with
/// [`chrome_json_from_jsonl`].
pub fn chrome_json_from_dir(dir: &Path) -> io::Result<String> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("trace-") && n.ends_with(".jsonl"))
        })
        .collect();
    segs.sort();
    let mut text = String::new();
    for seg in &segs {
        text.push_str(&fs::read_to_string(seg)?);
        if !text.ends_with('\n') {
            text.push('\n');
        }
    }
    chrome_json_from_jsonl(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceLevel;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xgomp-stream-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn rolling_stream_rotates_prunes_and_conserves() {
        let dir = scratch("rotate");
        let tracer = Tracer::with_capacity(TraceLevel::Full, 256);
        let r0 = tracer.ring(0);
        let r1 = tracer.ring(1);
        let cfg = TraceStreamConfig::new(&dir).rotate_bytes(1024).keep(3);
        let mut stream = TraceStream::create(cfg).unwrap();

        let mut ts = 0u64;
        for _round in 0..40 {
            for i in 0..20u64 {
                ts += 1;
                r0.emit(ts, EventKind::Steal as u8, 0, i, 0);
                ts += 1;
                r1.emit(ts, EventKind::ChunkClaim as u8, 1, i, i + 1);
            }
            stream.drain_cycle(&tracer).unwrap();
        }
        let stats = stream.finish(&tracer).unwrap();
        assert!(stats.rotations >= 3, "tiny segments must rotate");
        assert_eq!(stats.dropped, 0, "a keeping-up collector drops nothing");
        assert_eq!(stats.drained, 40 * 40, "every record reaches the stream");

        // Retention: at most `keep` segments remain, newest last.
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert!(names.len() <= 3, "retention cap violated: {names:?}");
        assert!(names
            .last()
            .unwrap()
            .ends_with(&format!("{:06}.jsonl", stats.rotations)));

        // The retained concatenation converts to parseable Chrome JSON
        // with the synthetic DrainCycle markers on the pseudo-track.
        let chrome = chrome_json_from_dir(&dir).unwrap();
        let v: Value = serde_json::from_str(&chrome).unwrap();
        drop(v);
        assert!(chrome.contains("\"name\":\"DRAIN_CYCLE\""));

        // The final summary of the last segment carries the exact
        // conservation identity per worker.
        let last = fs::read_to_string(dir.join(names.last().unwrap())).unwrap();
        let summary = last
            .lines()
            .rev()
            .find(|l| l.starts_with("{\"drain\""))
            .expect("final summary present");
        let v: Value = serde_json::from_str(summary).unwrap();
        let d = serde::field(&v, "drain").unwrap();
        let workers = match serde::field(d, "workers").unwrap() {
            Value::Seq(w) => w.clone(),
            other => panic!("workers must be a list, got {other:?}"),
        };
        assert_eq!(workers.len(), 2);
        for w in &workers {
            let position = num_u64(serde::field(w, "position").unwrap());
            let drained = num_u64(serde::field(w, "drained").unwrap());
            let dropped = num_u64(serde::field(w, "dropped").unwrap());
            let emitted = num_u64(serde::field(w, "emitted").unwrap());
            assert_eq!(position, drained + dropped);
            assert_eq!(position, emitted, "quiesced stream reaches the head");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lapped_collector_accounts_drops_in_the_stream() {
        let dir = scratch("lapped");
        let tracer = Tracer::with_capacity(TraceLevel::Full, 8);
        let ring = tracer.ring(0);
        let mut stream = TraceStream::create(TraceStreamConfig::new(&dir)).unwrap();
        // Lap the tiny ring between cycles: the gap must surface as
        // stream-side drops, keeping the identity.
        for i in 0..100u64 {
            ring.emit(i, EventKind::Steal as u8, 0, i, 0);
        }
        stream.drain_cycle(&tracer).unwrap();
        let stats = stream.finish(&tracer).unwrap();
        assert_eq!(stats.drained + stats.dropped, 100);
        assert!(stats.dropped > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_conversion_survives_headers_and_summaries() {
        let text = concat!(
            "{\"segment\":{\"epoch\":1,\"seq\":0,\"cycles_per_ns\":1.000000}}\n",
            "{\"worker\":0,\"ts\":1000,\"kind\":\"Park\",\"a\":0,\"b\":0,\"c\":0}\n",
            "{\"worker\":0,\"ts\":2000,\"kind\":\"Wake\",\"a\":0,\"b\":0,\"c\":0}\n",
            "{\"drain\":{\"cycle\":1,\"rotations\":0,\"drained\":2,\"dropped\":7,\"workers\":[]}}\n",
            "{\"segment\":{\"epoch\":1,\"seq\":1,\"cycles_per_ns\":1.000000}}\n",
            "{\"worker\":1,\"ts\":3000,\"kind\":\"JobStart\",\"a\":0,\"b\":42,\"c\":2500}\n",
            "{\"worker\":1,\"ts\":4000,\"kind\":\"JobEnd\",\"a\":0,\"b\":42,\"c\":3000}\n",
            "{\"drain\":{\"cycle\":2,\"rotations\":1,\"drained\":4,\"dropped\":9,\"workers\":[]}}\n",
        );
        let chrome = chrome_json_from_jsonl(text).unwrap();
        let v: Value = serde_json::from_str(&chrome).unwrap();
        drop(v);
        assert!(chrome.contains("\"name\":\"parked\""), "park/wake paired");
        assert!(chrome.contains("\"name\":\"job 42\""));
        assert!(
            chrome.contains("\"dropped_events\":9"),
            "cumulative drop accounting survives conversion"
        );
    }
}
