//! Live (always-on, cross-thread-readable) task-size sampling.
//!
//! The §V [`PerfLog`](crate::PerfLog) timelines are collected only when a
//! region *ends*, which is useless for a persistent executor that never
//! tears its team down. [`LiveTaskSampler`] is the online counterpart: a
//! per-worker-sharded decade histogram of task durations that workers
//! update with relaxed single-writer stores while any thread (the
//! adaptive controller) reads a merged [`TaskSizeHistogram`] snapshot at
//! any time. This is the measurement feeding the online Table-IV
//! retuning in `xgomp-service`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::histogram::{decade_index, TaskSizeHistogram};

/// Pads each worker's lane to its own pair of cache lines so recording
/// never false-shares across workers.
#[repr(align(128))]
#[derive(Debug)]
struct Lane {
    buckets: [AtomicU64; 9],
    count: AtomicU64,
    total_ticks: AtomicU64,
    min_ticks: AtomicU64,
    max_ticks: AtomicU64,
}

impl Lane {
    fn new() -> Self {
        Lane {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ticks: AtomicU64::new(0),
            min_ticks: AtomicU64::new(u64::MAX),
            max_ticks: AtomicU64::new(0),
        }
    }
}

/// Shared online task-size histogram: one write lane per worker, merged
/// on read.
///
/// Writers use `Relaxed` ordering throughout — the reader only needs a
/// statistically faithful snapshot, not a linearizable one, exactly like
/// the paper's §V counters.
#[derive(Debug)]
pub struct LiveTaskSampler {
    lanes: Box<[Lane]>,
}

impl LiveTaskSampler {
    /// A sampler with one lane per worker.
    pub fn new(n_workers: usize) -> Self {
        LiveTaskSampler {
            lanes: (0..n_workers.max(1)).map(|_| Lane::new()).collect(),
        }
    }

    /// Number of write lanes (the team size it was built for).
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Records one task of `ticks` duration executed by `worker`.
    #[inline]
    pub fn record(&self, worker: usize, ticks: u64) {
        let lane = &self.lanes[worker % self.lanes.len()];
        // Single-writer per lane: load+store beats RMW on the hot path.
        let b = &lane.buckets[decade_index(ticks)];
        b.store(b.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        lane.count
            .store(lane.count.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        lane.total_ticks.store(
            lane.total_ticks.load(Ordering::Relaxed) + ticks,
            Ordering::Relaxed,
        );
        if ticks < lane.min_ticks.load(Ordering::Relaxed) {
            lane.min_ticks.store(ticks, Ordering::Relaxed);
        }
        if ticks > lane.max_ticks.load(Ordering::Relaxed) {
            lane.max_ticks.store(ticks, Ordering::Relaxed);
        }
    }

    /// Tasks observed so far (merged over lanes; monotonic).
    pub fn tasks_observed(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Merged snapshot as a plain [`TaskSizeHistogram`]. Cumulative since
    /// construction; windowed views are obtained by differencing two
    /// snapshots' monotonic `buckets`/`count`/`total_ticks`.
    pub fn snapshot(&self) -> TaskSizeHistogram {
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for lane in self.lanes.iter() {
            for (dst, src) in h.buckets.iter_mut().zip(&lane.buckets) {
                *dst += src.load(Ordering::Relaxed);
            }
            h.count += lane.count.load(Ordering::Relaxed);
            h.total_ticks += lane.total_ticks.load(Ordering::Relaxed);
            h.min_ticks = h.min_ticks.min(lane.min_ticks.load(Ordering::Relaxed));
            h.max_ticks = h.max_ticks.max(lane.max_ticks.load(Ordering::Relaxed));
        }
        if h.count == 0 {
            h.min_ticks = 0;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_merge_across_lanes() {
        let s = LiveTaskSampler::new(3);
        s.record(0, 5);
        s.record(1, 500);
        s.record(2, 50_000);
        s.record(2, 50_000);
        let h = s.snapshot();
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[4], 2);
        assert_eq!(h.min_ticks, 5);
        assert_eq!(h.max_ticks, 50_000);
        assert_eq!(h.total_ticks, 5 + 500 + 100_000);
        assert_eq!(s.tasks_observed(), 4);
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let s = LiveTaskSampler::new(2);
        let h = s.snapshot();
        assert_eq!(h.count, 0);
        assert_eq!(h.min_ticks, 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn concurrent_recording_is_conserved() {
        use std::sync::Arc;
        let s = Arc::new(LiveTaskSampler::new(4));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        s.record(w, i % 1_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Per-lane single-writer discipline ⇒ no lost updates.
        assert_eq!(s.tasks_observed(), 40_000);
        assert_eq!(s.snapshot().count, 40_000);
    }
}
