//! Log-scale task-size histograms (§VI-A: "We use our profiling tools
//! to measure task size (in rdtscp cycles) and order applications based
//! on their task size").
//!
//! The paper characterizes each BOTS application by the distribution of
//! per-task cycles (Fib 10–80, FFT mostly 10³–10⁴, Align ~10⁶, …) and
//! keys the Table IV guidelines on it. [`TaskSizeHistogram`] builds
//! that distribution from recorded `TASK` events.

use serde::{Deserialize, Serialize};

use crate::events::{EventKind, PerfLog};

/// Decade-bucketed histogram of task durations (ticks ≈ cycles on
/// x86-64). Bucket `i` holds durations in `[10^i, 10^(i+1))`; bucket 0
/// also absorbs sub-10-cycle tasks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSizeHistogram {
    /// Counts per decade, index 0 = <10^1 … index 8 = ≥10^8.
    pub buckets: [u64; 9],
    /// Total tasks observed.
    pub count: u64,
    /// Sum of durations (for the mean).
    pub total_ticks: u64,
    /// Smallest observed task.
    pub min_ticks: u64,
    /// Largest observed task.
    pub max_ticks: u64,
}

/// Decade bucket index for a duration in ticks: 0 for `<10`, otherwise
/// `⌊log10⌋` capped at 8 (shared by [`TaskSizeHistogram`] and the live
/// sampler).
#[inline]
pub fn decade_index(ticks: u64) -> usize {
    if ticks < 10 {
        0
    } else {
        (ticks.ilog10() as usize).min(8)
    }
}

impl TaskSizeHistogram {
    /// Builds the histogram from every `TASK` event in the team's logs.
    pub fn from_logs(logs: &[PerfLog]) -> Self {
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for log in logs {
            for e in log.events() {
                if e.kind == EventKind::Task {
                    h.record(e.duration());
                }
            }
        }
        if h.count == 0 {
            h.min_ticks = 0;
        }
        h
    }

    /// Records one task of `ticks` duration.
    #[inline]
    pub fn record(&mut self, ticks: u64) {
        self.buckets[decade_index(ticks)] += 1;
        self.count += 1;
        self.total_ticks += ticks;
        self.min_ticks = self.min_ticks.min(ticks);
        self.max_ticks = self.max_ticks.max(ticks);
    }

    /// Mean task size in ticks (0 when empty).
    pub fn mean(&self) -> u64 {
        self.total_ticks.checked_div(self.count).unwrap_or(0)
    }

    /// The decade holding the most tasks — the paper's "highest
    /// proportion around 10^k cycles". Returns the lower bound of the
    /// decade (e.g. 1000 for 10³–10⁴).
    pub fn modal_decade(&self) -> u64 {
        let (i, _) = self
            .buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .unwrap();
        10u64.pow(i as u32)
    }

    /// The window between an `earlier` cumulative snapshot and this one:
    /// bucket counts, task count and tick totals are differenced
    /// (saturating — a rebound sampler yields an empty window instead of
    /// nonsense). `min_ticks`/`max_ticks` are not diffable and are
    /// reported as the cumulative values.
    pub fn window_since(&self, earlier: &TaskSizeHistogram) -> TaskSizeHistogram {
        let mut w = TaskSizeHistogram {
            count: self.count.saturating_sub(earlier.count),
            total_ticks: self.total_ticks.saturating_sub(earlier.total_ticks),
            min_ticks: self.min_ticks,
            max_ticks: self.max_ticks,
            ..Default::default()
        };
        for (dst, (now, was)) in w
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *dst = now.saturating_sub(*was);
        }
        w
    }

    /// Index of the decade holding the most tasks, or `None` when the
    /// histogram is empty. Ties are broken toward the decade containing
    /// the distribution's *median* sample (the percentile tie-break of
    /// the modal-decade classifier): of the tied maxima, the one closest
    /// to the median decade wins; an exact distance tie goes to the
    /// smaller decade (finer-grained tuning is the safer default).
    pub fn modal_decade_index(&self) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let max = *self.buckets.iter().max().unwrap();
        // Median decade: smallest index whose cumulative count reaches
        // half the samples.
        let half = self.count.div_ceil(2);
        let mut cum = 0u64;
        let mut median = 0usize;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= half {
                median = i;
                break;
            }
        }
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == max)
            .min_by_key(|&(i, _)| (i.abs_diff(median), i))
            .map(|(i, _)| i)
    }

    /// A representative per-task cycle count for guideline
    /// classification: the *modal decade* of the distribution (argmax
    /// bucket, median tie-break), positioned within the decade by the
    /// histogram's mean when the mean falls inside it and clamped to the
    /// decade's bounds otherwise. Unlike the raw mean, this cannot be
    /// dragged across a class boundary by a minority of outliers — a
    /// bimodal window (many tiny tasks, a few huge ones) classifies by
    /// what *most* tasks look like. `None` when empty.
    pub fn modal_cycles(&self) -> Option<u64> {
        let i = self.modal_decade_index()?;
        let lo = if i == 0 { 0 } else { 10u64.pow(i as u32) };
        let hi = 10u64.pow(i as u32 + 1) - 1;
        Some(self.mean().clamp(lo, hi))
    }

    /// Renders an ASCII distribution, one row per decade.
    pub fn render(&self) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "tasks={} mean={} min={} max={} ticks\n",
            self.count,
            self.mean(),
            self.min_ticks,
            self.max_ticks
        ));
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = (c as u128 * 40 / max as u128) as usize;
            out.push_str(&format!(
                "10^{i}..10^{}: {:<40} {}\n",
                i + 1,
                "#".repeat(bar.max(1)),
                c
            ));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &TaskSizeHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ticks += other.total_ticks;
        if other.count > 0 {
            self.min_ticks = self.min_ticks.min(other.min_ticks);
            self.max_ticks = self.max_ticks.max(other.max_ticks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_decade() {
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for t in [3u64, 12, 99, 100, 5_000, 123_456] {
            h.record(t);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets[0], 1); // 3
        assert_eq!(h.buckets[1], 2); // 12, 99
        assert_eq!(h.buckets[2], 1); // 100
        assert_eq!(h.buckets[3], 1); // 5000
        assert_eq!(h.buckets[5], 1); // 123456
        assert_eq!(h.min_ticks, 3);
        assert_eq!(h.max_ticks, 123_456);
    }

    #[test]
    fn modal_decade_and_mean() {
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for _ in 0..10 {
            h.record(2_000); // decade 10^3
        }
        h.record(50);
        assert_eq!(h.modal_decade(), 1_000);
        assert_eq!(h.mean(), (10 * 2_000 + 50) / 11);
    }

    #[test]
    fn from_logs_selects_only_task_events() {
        let mut log = PerfLog::new(0, true);
        log.push_span(EventKind::Task, 0, 150);
        log.push_span(EventKind::TaskCreate, 0, 9_999); // ignored
        log.push_span(EventKind::Task, 1_000, 1_020);
        let h = TaskSizeHistogram::from_logs(&[log]);
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets[2], 1); // 150
        assert_eq!(h.buckets[1], 1); // 20
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        a.record(10);
        let mut b = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        b.record(100_000);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.min_ticks, 10);
        assert_eq!(a.max_ticks, 100_000);
    }

    #[test]
    fn render_is_humane() {
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for _ in 0..5 {
            h.record(500);
        }
        let s = h.render();
        assert!(s.contains("tasks=5"));
        assert!(s.contains("10^2..10^3"));
    }

    #[test]
    fn window_since_diffs_buckets_and_totals() {
        let mut early = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        early.record(50);
        early.record(5_000);
        let mut late = early.clone();
        late.record(50);
        late.record(50);
        late.record(700);
        let w = late.window_since(&early);
        assert_eq!(w.count, 3);
        assert_eq!(w.buckets[1], 2); // the two new 50s
        assert_eq!(w.buckets[2], 1); // 700
        assert_eq!(w.buckets[3], 0, "pre-window 5000 excluded");
        assert_eq!(w.total_ticks, 50 + 50 + 700);
        // Rebound sampler (counts went backwards) yields an empty window.
        assert_eq!(early.window_since(&late).count, 0);
    }

    #[test]
    fn modal_decade_index_argmax_and_median_tie_break() {
        let mut h = TaskSizeHistogram::default();
        assert_eq!(h.modal_decade_index(), None, "empty has no mode");
        h.buckets = [0, 6, 0, 2, 0, 0, 0, 0, 0];
        h.count = 8;
        assert_eq!(h.modal_decade_index(), Some(1));
        // Tie between decades 1 and 6; the median sample sits in decade
        // 1's half of the distribution, so the tie breaks low.
        h.buckets = [0, 5, 1, 0, 0, 0, 5, 0, 0];
        h.count = 11;
        assert_eq!(h.modal_decade_index(), Some(1));
        // Mass shifted high: median now lives in decade 6.
        h.buckets = [0, 5, 0, 0, 0, 1, 5, 0, 0];
        h.count = 11;
        assert_eq!(h.modal_decade_index(), Some(6));
    }

    #[test]
    fn modal_cycles_resists_bimodal_outliers() {
        // 1000 tasks of ~50 cycles + 100 tasks of ~5M cycles: the mean
        // (~455k) says "huge tasks", the modal decade says what most
        // tasks are — tiny — and clamps the representative into it.
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for _ in 0..1_000 {
            h.record(50);
        }
        for _ in 0..100 {
            h.record(5_000_000);
        }
        assert!(h.mean() > 100_000, "mean is outlier-dragged");
        assert_eq!(h.modal_decade_index(), Some(1));
        let rep = h.modal_cycles().unwrap();
        assert!(
            (10..100).contains(&rep),
            "representative in 10..100, got {rep}"
        );
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = TaskSizeHistogram::from_logs(&[]);
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min_ticks, 0);
    }
}
