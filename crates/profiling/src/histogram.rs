//! Log-scale task-size histograms (§VI-A: "We use our profiling tools
//! to measure task size (in rdtscp cycles) and order applications based
//! on their task size").
//!
//! The paper characterizes each BOTS application by the distribution of
//! per-task cycles (Fib 10–80, FFT mostly 10³–10⁴, Align ~10⁶, …) and
//! keys the Table IV guidelines on it. [`TaskSizeHistogram`] builds
//! that distribution from recorded `TASK` events.

use serde::{Deserialize, Serialize};

use crate::events::{EventKind, PerfLog};

/// Decade-bucketed histogram of task durations (ticks ≈ cycles on
/// x86-64). Bucket `i` holds durations in `[10^i, 10^(i+1))`; bucket 0
/// also absorbs sub-10-cycle tasks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSizeHistogram {
    /// Counts per decade, index 0 = <10^1 … index 8 = ≥10^8.
    pub buckets: [u64; 9],
    /// Total tasks observed.
    pub count: u64,
    /// Sum of durations (for the mean).
    pub total_ticks: u64,
    /// Smallest observed task.
    pub min_ticks: u64,
    /// Largest observed task.
    pub max_ticks: u64,
}

/// Decade bucket index for a duration in ticks: 0 for `<10`, otherwise
/// `⌊log10⌋` capped at 8 (shared by [`TaskSizeHistogram`] and the live
/// sampler).
#[inline]
pub fn decade_index(ticks: u64) -> usize {
    if ticks < 10 {
        0
    } else {
        (ticks.ilog10() as usize).min(8)
    }
}

impl TaskSizeHistogram {
    /// Builds the histogram from every `TASK` event in the team's logs.
    pub fn from_logs(logs: &[PerfLog]) -> Self {
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for log in logs {
            for e in log.events() {
                if e.kind == EventKind::Task {
                    h.record(e.duration());
                }
            }
        }
        if h.count == 0 {
            h.min_ticks = 0;
        }
        h
    }

    /// Records one task of `ticks` duration.
    #[inline]
    pub fn record(&mut self, ticks: u64) {
        self.buckets[decade_index(ticks)] += 1;
        self.count += 1;
        self.total_ticks += ticks;
        self.min_ticks = self.min_ticks.min(ticks);
        self.max_ticks = self.max_ticks.max(ticks);
    }

    /// Mean task size in ticks (0 when empty).
    pub fn mean(&self) -> u64 {
        self.total_ticks.checked_div(self.count).unwrap_or(0)
    }

    /// The decade holding the most tasks — the paper's "highest
    /// proportion around 10^k cycles". Returns the lower bound of the
    /// decade (e.g. 1000 for 10³–10⁴).
    pub fn modal_decade(&self) -> u64 {
        let (i, _) = self
            .buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .unwrap();
        10u64.pow(i as u32)
    }

    /// Renders an ASCII distribution, one row per decade.
    pub fn render(&self) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "tasks={} mean={} min={} max={} ticks\n",
            self.count,
            self.mean(),
            self.min_ticks,
            self.max_ticks
        ));
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = (c as u128 * 40 / max as u128) as usize;
            out.push_str(&format!(
                "10^{i}..10^{}: {:<40} {}\n",
                i + 1,
                "#".repeat(bar.max(1)),
                c
            ));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &TaskSizeHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_ticks += other.total_ticks;
        if other.count > 0 {
            self.min_ticks = self.min_ticks.min(other.min_ticks);
            self.max_ticks = self.max_ticks.max(other.max_ticks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_decade() {
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for t in [3u64, 12, 99, 100, 5_000, 123_456] {
            h.record(t);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets[0], 1); // 3
        assert_eq!(h.buckets[1], 2); // 12, 99
        assert_eq!(h.buckets[2], 1); // 100
        assert_eq!(h.buckets[3], 1); // 5000
        assert_eq!(h.buckets[5], 1); // 123456
        assert_eq!(h.min_ticks, 3);
        assert_eq!(h.max_ticks, 123_456);
    }

    #[test]
    fn modal_decade_and_mean() {
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for _ in 0..10 {
            h.record(2_000); // decade 10^3
        }
        h.record(50);
        assert_eq!(h.modal_decade(), 1_000);
        assert_eq!(h.mean(), (10 * 2_000 + 50) / 11);
    }

    #[test]
    fn from_logs_selects_only_task_events() {
        let mut log = PerfLog::new(0, true);
        log.push_span(EventKind::Task, 0, 150);
        log.push_span(EventKind::TaskCreate, 0, 9_999); // ignored
        log.push_span(EventKind::Task, 1_000, 1_020);
        let h = TaskSizeHistogram::from_logs(&[log]);
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets[2], 1); // 150
        assert_eq!(h.buckets[1], 1); // 20
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        a.record(10);
        let mut b = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        b.record(100_000);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.min_ticks, 10);
        assert_eq!(a.max_ticks, 100_000);
    }

    #[test]
    fn render_is_humane() {
        let mut h = TaskSizeHistogram {
            min_ticks: u64::MAX,
            ..Default::default()
        };
        for _ in 0..5 {
            h.record(500);
        }
        let s = h.render();
        assert!(s.contains("tasks=5"));
        assert!(s.contains("10^2..10^3"));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = TaskSizeHistogram::from_logs(&[]);
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min_ticks, 0);
    }
}
