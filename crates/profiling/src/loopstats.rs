//! Cross-generation telemetry of the data-parallel loop subsystem.
//!
//! Per-*region* loop counters live in [`WorkerStats`](crate::WorkerStats)
//! (single-writer, collected into each generation's `RegionOutput`).
//! [`LoopTelemetry`] is the *persistent* counterpart a long-lived server
//! hangs onto across pause/resume cycles and config swaps: one shared
//! block of per-schedule chunk/iteration/steal counters, updated once
//! per completed `parallel_for` (not per chunk), so plain `fetch_add`
//! contention is irrelevant.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of loop-schedule families tracked (Static / Dynamic / Guided /
/// Adaptive / the LB4OMP portfolio TSS / Factoring / WeightedFactoring /
/// AWF, plus the `Auto` selector — in that index order; see
/// `xgomp_core::loops::LoopSchedule`).
pub const LOOP_SCHEDULES: usize = 9;

/// Canonical schedule names, index-aligned with the counters. Loops
/// submitted as `Auto` are recorded under `"auto"` (their chunks ran
/// under whichever concrete member the selector picked — that breakdown
/// is the selector's own `selected_counts`).
pub const LOOP_SCHEDULE_NAMES: [&str; LOOP_SCHEDULES] = [
    "static",
    "dynamic",
    "guided",
    "adaptive",
    "tss",
    "factoring",
    "weighted_factoring",
    "awf",
    "auto",
];

/// Number of iteration-space shape families tracked (1D range / 2D
/// rectangle / triangular, in that index order — see
/// `xgomp_core::loops::SpaceKind`).
pub const LOOP_SPACE_KINDS: usize = 3;

/// Canonical space-kind names, index-aligned with the counters.
pub const LOOP_SPACE_KIND_NAMES: [&str; LOOP_SPACE_KINDS] = ["range1d", "rect2d", "triangular"];

/// One schedule family's counter block.
#[derive(Debug, Default)]
struct ScheduleCounters {
    loops: AtomicU64,
    chunks: AtomicU64,
    iters: AtomicU64,
    range_steals: AtomicU64,
    rebalances: AtomicU64,
}

/// One space-kind family's counter block.
#[derive(Debug, Default)]
struct SpaceKindCounters {
    loops: AtomicU64,
    iters: AtomicU64,
}

/// Persistent per-schedule and per-space-kind loop counters (see the
/// [module docs](self)). All iteration counts are u64 end-to-end — a
/// completed >u32::MAX-iteration waved loop folds in without truncation.
#[derive(Debug, Default)]
pub struct LoopTelemetry {
    per_schedule: [ScheduleCounters; LOOP_SCHEDULES],
    per_space: [SpaceKindCounters; LOOP_SPACE_KINDS],
}

impl LoopTelemetry {
    /// A zeroed telemetry block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed loop's totals into schedule `schedule` and
    /// space kind `space_kind` (index orders of [`LOOP_SCHEDULE_NAMES`]
    /// / [`LOOP_SPACE_KIND_NAMES`]; out-of-range indices are clamped
    /// into the last family rather than dropped).
    pub fn record_loop(
        &self,
        schedule: usize,
        space_kind: usize,
        chunks: u64,
        iters: u64,
        range_steals: u64,
        rebalances: u64,
    ) {
        let s = &self.per_schedule[schedule.min(LOOP_SCHEDULES - 1)];
        s.loops.fetch_add(1, Ordering::Relaxed);
        s.chunks.fetch_add(chunks, Ordering::Relaxed);
        s.iters.fetch_add(iters, Ordering::Relaxed);
        s.range_steals.fetch_add(range_steals, Ordering::Relaxed);
        s.rebalances.fetch_add(rebalances, Ordering::Relaxed);
        let k = &self.per_space[space_kind.min(LOOP_SPACE_KINDS - 1)];
        k.loops.fetch_add(1, Ordering::Relaxed);
        k.iters.fetch_add(iters, Ordering::Relaxed);
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> LoopTelemetrySnapshot {
        let mut snap = LoopTelemetrySnapshot::default();
        for (i, s) in self.per_schedule.iter().enumerate() {
            snap.per_schedule[i] = ScheduleSnapshot {
                schedule: LOOP_SCHEDULE_NAMES[i],
                loops: s.loops.load(Ordering::Relaxed),
                chunks: s.chunks.load(Ordering::Relaxed),
                iters: s.iters.load(Ordering::Relaxed),
                range_steals: s.range_steals.load(Ordering::Relaxed),
                rebalances: s.rebalances.load(Ordering::Relaxed),
            };
        }
        for (i, k) in self.per_space.iter().enumerate() {
            snap.per_space[i] = SpaceKindSnapshot {
                space: LOOP_SPACE_KIND_NAMES[i],
                loops: k.loops.load(Ordering::Relaxed),
                iters: k.iters.load(Ordering::Relaxed),
            };
        }
        snap
    }
}

/// Snapshot of one schedule family's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleSnapshot {
    /// Schedule family name ([`LOOP_SCHEDULE_NAMES`] entry).
    pub schedule: &'static str,
    /// Completed `parallel_for` regions.
    pub loops: u64,
    /// Chunks executed.
    pub chunks: u64,
    /// Iterations executed.
    pub iters: u64,
    /// Cross-zone range steal-splits performed.
    pub range_steals: u64,
    /// Inter-socket rebalances the loop balancer applied to loops of
    /// this schedule while they ran.
    pub rebalances: u64,
}

/// Snapshot of one space-kind family's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpaceKindSnapshot {
    /// Space-kind name (`"range1d"` / `"rect2d"` / `"triangular"`).
    pub space: &'static str,
    /// Completed `parallel_for` regions over this shape.
    pub loops: u64,
    /// Elements executed over this shape.
    pub iters: u64,
}

/// Snapshot of a whole [`LoopTelemetry`] block.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoopTelemetrySnapshot {
    /// One entry per schedule family, index-aligned with
    /// [`LOOP_SCHEDULE_NAMES`].
    pub per_schedule: [ScheduleSnapshot; LOOP_SCHEDULES],
    /// One entry per space-kind family, index-aligned with
    /// [`LOOP_SPACE_KIND_NAMES`].
    pub per_space: [SpaceKindSnapshot; LOOP_SPACE_KINDS],
}

impl LoopTelemetrySnapshot {
    /// Totals across all schedule families:
    /// `(loops, chunks, iters, range_steals, rebalances)`.
    pub fn totals(&self) -> (u64, u64, u64, u64, u64) {
        self.per_schedule.iter().fold((0, 0, 0, 0, 0), |acc, s| {
            (
                acc.0 + s.loops,
                acc.1 + s.chunks,
                acc.2 + s.iters,
                acc.3 + s.range_steals,
                acc.4 + s.rebalances,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_schedule_and_space() {
        let t = LoopTelemetry::new();
        t.record_loop(0, 0, 10, 1_000, 0, 0);
        t.record_loop(1, 2, 20, 2_000, 3, 2);
        t.record_loop(1, 2, 5, 500, 1, 1);
        let snap = t.snapshot();
        assert_eq!(snap.per_schedule[0].loops, 1);
        assert_eq!(snap.per_schedule[0].chunks, 10);
        assert_eq!(snap.per_schedule[1].loops, 2);
        assert_eq!(snap.per_schedule[1].chunks, 25);
        assert_eq!(snap.per_schedule[1].range_steals, 4);
        assert_eq!(snap.per_schedule[1].rebalances, 3);
        assert_eq!(snap.totals(), (3, 35, 3_500, 4, 3));
        assert_eq!(snap.per_space[0].loops, 1);
        assert_eq!(snap.per_space[0].iters, 1_000);
        assert_eq!(snap.per_space[2].loops, 2);
        assert_eq!(snap.per_space[2].iters, 2_500);
    }

    #[test]
    fn giant_loop_iters_fold_in_without_truncation() {
        // The u32 boundary: a waved loop one past u32::MAX and one
        // under must both survive the fold and the snapshot exactly.
        let t = LoopTelemetry::new();
        let over = u32::MAX as u64 + 1;
        let under = u32::MAX as u64 - 1;
        t.record_loop(1, 0, 7, over, 0, 0);
        t.record_loop(1, 0, 7, under, 0, 0);
        let snap = t.snapshot();
        assert_eq!(snap.per_schedule[1].iters, over + under);
        assert_eq!(snap.per_space[0].iters, over + under);
        assert_eq!(snap.totals().2, over + under);
    }

    #[test]
    fn out_of_range_indices_clamp() {
        let t = LoopTelemetry::new();
        t.record_loop(99, 99, 1, 1, 0, 0);
        let snap = t.snapshot();
        assert_eq!(snap.per_schedule[LOOP_SCHEDULES - 1].loops, 1);
        assert_eq!(snap.per_space[LOOP_SPACE_KINDS - 1].loops, 1);
    }
}
