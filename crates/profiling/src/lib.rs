//! # xgomp-profiling
//!
//! Reproduction of the paper's §V software profiling tools: light-weight
//! per-thread event timelines stamped with the processor timestamp counter
//! and per-thread statistical counters, plus the renderers that produce
//! the paper's Fig. 3 (per-thread timeline summary and task-count
//! summary) and the Tables II/III statistics rows.
//!
//! Design points carried over from the paper:
//!
//! * **`rdtscp`-class timestamps.** On x86-64 we use `rdtsc` (the paper
//!   uses `rdtscp`; both are monotone non-serializing reads of the TSC —
//!   the `p` variant additionally orders prior loads, a distinction that
//!   does not matter for coarse event bracketing). Elsewhere we fall back
//!   to a monotonic-nanosecond clock.
//! * **Event classes**: `TASK` (running a task body), `GOMP_TASK` (task
//!   creation), `TASKWAIT`, `BARRIER`, `STALL` (idle polling).
//! * **Thread-local, non-atomic recording.** Each worker owns its log and
//!   counter block; nothing is shared while profiling, so the overhead is
//!   a store per event as in the paper.
//! * **`xomp_perflog_dump`**: JSON dump of logs + counters to a path from
//!   the `XOMP_PERFLOG_PATH` environment variable or an explicit path.

#![warn(missing_docs)]

pub mod clock;
mod counters;
mod events;
mod histogram;
mod live;
mod loopstats;
pub mod stream;
mod timeline;
pub mod trace;

pub use counters::{StatsSnapshot, TeamStats, WorkerStats};
pub use events::{EventKind, EventRecord, PerfLog, ProfileDump};
pub use histogram::{decade_index, TaskSizeHistogram};
pub use live::LiveTaskSampler;
pub use loopstats::{
    LoopTelemetry, LoopTelemetrySnapshot, ScheduleSnapshot, SpaceKindSnapshot, LOOP_SCHEDULES,
    LOOP_SCHEDULE_NAMES, LOOP_SPACE_KINDS, LOOP_SPACE_KIND_NAMES,
};
pub use stream::{
    chrome_json_from_dir, chrome_json_from_jsonl, TraceStream, TraceStreamConfig, TraceStreamStats,
};
pub use timeline::{render_task_counts, render_timeline, state_summary, StateSummaryRow};
pub use trace::{PromText, TraceEvent, TraceLevel, TraceSnapshot, Tracer};
