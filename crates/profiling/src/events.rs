//! Per-thread event logs (the paper's `perf_record` markers).

use serde::{Deserialize, Serialize};

use crate::clock;
use crate::counters::StatsSnapshot;

/// The event classes of §V, plus the flight-recorder runtime kinds.
/// Values are stable (used in dumps and in binary ring records); the
/// first five are exactly the paper's `perf_record` markers and must
/// never change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum EventKind {
    /// Cycles spent executing a task body (`TASK`).
    Task = 0,
    /// Cycles spent creating a task — allocation, dependency setup,
    /// enqueue (`GOMP_TASK`). "Crucial because fine-grained tasks can
    /// spend a large portion of their lifecycle on task creation."
    TaskCreate = 1,
    /// Cycles inside a `taskwait` scheduling point (`TASKWAIT`).
    TaskWait = 2,
    /// Cycles inside the team barrier (`BARRIER`).
    Barrier = 3,
    /// Unoccupied cycles: polling queues with nothing scheduled (`STALL`).
    Stall = 4,
    /// A worker parked on the OS primitive (flight recorder; instant).
    Park = 5,
    /// A parked worker woke (instant).
    Wake = 6,
    /// A worker obtained at least one task by stealing (instant;
    /// payload `b` = tasks stolen in the batch).
    Steal = 7,
    /// The DLB engine granted a steal request, migrating tasks to
    /// another worker (instant; payload `b` = requests granted).
    Migrate = 8,
    /// A loop-balancer probe migrated iteration ranges between zones
    /// (instant; payload `a` = probing worker's pool index).
    Rebalance = 9,
    /// A loop chunk claimed from a zone pool (instant; payload
    /// `a` = pool, `b` = range lo, `c` = range hi).
    ChunkClaim = 10,
    /// A cross-zone loop range steal-split (instant; payload as
    /// [`ChunkClaim`](Self::ChunkClaim)).
    RangeSteal = 11,
    /// A job's body started executing (payload `b` = job id,
    /// `c` = submission timestamp — the span `[c, ts]` is the job's
    /// queue wait).
    JobStart = 12,
    /// A job's body finished (payload `a` = 0 ok / 1 panicked,
    /// `b` = job id, `c` = start timestamp — the span `[c, ts]` is the
    /// job's run time).
    JobEnd = 13,
    /// A task-server generation opened (payload `b` = generation,
    /// `c` = worker count).
    GenOpen = 14,
    /// A task-server generation closed (payload `b` = generation).
    GenClose = 15,
    /// The adaptive controller (or `swap_tuning`) hot-swapped the DLB
    /// tuning (payload `b` = cumulative retune count).
    Retune = 16,
    /// A job was cancelled cooperatively (instant; payload `a` = 0
    /// explicit cancel / 1 deadline, `b` = job id).
    Cancel = 17,
    /// A queued job was shed before its body ever ran (instant; payload
    /// `a` = 0 cancel / 1 deadline, `b` = job id).
    Shed = 18,
    /// A job's deadline expired (instant; payload `b` = job id,
    /// `c` = deadline tick). Emitted whether the job is then shed
    /// (still queued) or cancelled (already running).
    DeadlineMiss = 19,
    /// One streaming-drain collector cycle completed (instant; payload
    /// `a` = file rotations so far, `b` = records drained this cycle,
    /// `c` = cumulative records the stream's cursors lost to ring
    /// overwrite). Synthetic: written by the rolling trace sink into
    /// the on-disk stream only — the collector thread never emits into
    /// a worker's SPSC ring.
    DrainCycle = 20,
}

impl EventKind {
    /// The §V kinds, in rendering order (matches Fig. 3's legend
    /// order). Deliberately *not* extended by the flight-recorder
    /// kinds: the timeline renderers and `PerfLog` totals are the
    /// paper's five-way breakdown.
    pub const ALL: [EventKind; 5] = [
        EventKind::Task,
        EventKind::TaskCreate,
        EventKind::TaskWait,
        EventKind::Barrier,
        EventKind::Stall,
    ];

    /// Every kind, §V five first, then the flight-recorder kinds in
    /// discriminant order.
    pub const FULL_SET: [EventKind; 21] = [
        EventKind::Task,
        EventKind::TaskCreate,
        EventKind::TaskWait,
        EventKind::Barrier,
        EventKind::Stall,
        EventKind::Park,
        EventKind::Wake,
        EventKind::Steal,
        EventKind::Migrate,
        EventKind::Rebalance,
        EventKind::ChunkClaim,
        EventKind::RangeSteal,
        EventKind::JobStart,
        EventKind::JobEnd,
        EventKind::GenOpen,
        EventKind::GenClose,
        EventKind::Retune,
        EventKind::Cancel,
        EventKind::Shed,
        EventKind::DeadlineMiss,
        EventKind::DrainCycle,
    ];

    /// Decodes a stable discriminant (ring records store the `u8`).
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::FULL_SET.get(v as usize).copied()
    }

    /// Short label used in summaries.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Task => "TASK",
            EventKind::TaskCreate => "GOMP_TASK",
            EventKind::TaskWait => "TASKWAIT",
            EventKind::Barrier => "BARRIER",
            EventKind::Stall => "STALL",
            EventKind::Park => "PARK",
            EventKind::Wake => "WAKE",
            EventKind::Steal => "STEAL",
            EventKind::Migrate => "MIGRATE",
            EventKind::Rebalance => "REBALANCE",
            EventKind::ChunkClaim => "CHUNK_CLAIM",
            EventKind::RangeSteal => "RANGE_STEAL",
            EventKind::JobStart => "JOB_START",
            EventKind::JobEnd => "JOB_END",
            EventKind::GenOpen => "GEN_OPEN",
            EventKind::GenClose => "GEN_CLOSE",
            EventKind::Retune => "RETUNE",
            EventKind::Cancel => "CANCEL",
            EventKind::Shed => "SHED",
            EventKind::DeadlineMiss => "DEADLINE_MISS",
            EventKind::DrainCycle => "DRAIN_CYCLE",
        }
    }

    /// One-character glyph for the ASCII Gantt renderer.
    pub fn glyph(self) -> char {
        match self {
            EventKind::Task => 'T',
            EventKind::TaskCreate => 'C',
            EventKind::TaskWait => 'w',
            EventKind::Barrier => 'B',
            EventKind::Stall => '.',
            EventKind::Park => 'p',
            EventKind::Wake => '!',
            EventKind::Steal => 's',
            EventKind::Migrate => 'm',
            EventKind::Rebalance => 'R',
            EventKind::ChunkClaim => 'c',
            EventKind::RangeSteal => 'r',
            EventKind::JobStart => '[',
            EventKind::JobEnd => ']',
            EventKind::GenOpen => '<',
            EventKind::GenClose => '>',
            EventKind::Retune => '~',
            EventKind::Cancel => 'x',
            EventKind::Shed => '/',
            EventKind::DeadlineMiss => 'd',
            EventKind::DrainCycle => 'D',
        }
    }
}

/// One recorded event: a `[start, end)` interval in clock ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Event class.
    pub kind: EventKind,
    /// Start timestamp ([`clock::now`] ticks).
    pub start: u64,
    /// End timestamp.
    pub end: u64,
}

impl EventRecord {
    /// Interval length in ticks (saturating — cross-thread TSC skew can
    /// produce tiny negative intervals on pathological hardware).
    #[inline]
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A per-worker event log. Owned by its worker thread while profiling
/// (no synchronization on the record path), collected by the team
/// afterwards.
#[derive(Debug, Serialize, Deserialize)]
pub struct PerfLog {
    worker: usize,
    enabled: bool,
    events: Vec<EventRecord>,
}

impl PerfLog {
    /// Creates a log for `worker`; when `enabled` is false every call is
    /// a no-op (the runtime's default, matching the paper's observation
    /// that logging has measurable overhead on fine-grained tasks).
    pub fn new(worker: usize, enabled: bool) -> Self {
        PerfLog {
            worker,
            enabled,
            events: if enabled {
                Vec::with_capacity(4096)
            } else {
                Vec::new()
            },
        }
    }

    /// The worker this log belongs to.
    #[inline]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Whether recording is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Marks the start of an event; returns the timestamp to hand back to
    /// [`push`](Self::push). Zero-cost when disabled.
    #[inline]
    pub fn start(&self) -> u64 {
        if self.enabled {
            clock::now()
        } else {
            0
        }
    }

    /// Records an event of `kind` that began at `start` and ends now.
    #[inline]
    pub fn push(&mut self, kind: EventKind, start: u64) {
        if self.enabled {
            let end = clock::now();
            self.events.push(EventRecord { kind, start, end });
        }
    }

    /// Records a fully specified interval (used by tests and replay).
    #[inline]
    pub fn push_span(&mut self, kind: EventKind, start: u64, end: u64) {
        if self.enabled {
            self.events.push(EventRecord { kind, start, end });
        }
    }

    /// The recorded events.
    #[inline]
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Total recorded ticks per §V event kind ([`EventKind::ALL`]
    /// order). Flight-recorder kinds (discriminant ≥ 5) are instant
    /// markers, not intervals — they do not appear in the five-way
    /// breakdown and are skipped here.
    pub fn totals(&self) -> [u64; 5] {
        let mut t = [0u64; 5];
        for e in &self.events {
            if let Some(slot) = t.get_mut(e.kind as usize) {
                *slot += e.duration();
            }
        }
        t
    }

    /// Drops all recorded events, keeping the capacity.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Everything `xomp_perflog_dump` writes: per-worker logs, per-worker
/// counter snapshots, and the clock calibration needed to convert ticks
/// to seconds offline.
#[derive(Debug, Serialize, Deserialize)]
pub struct ProfileDump {
    /// Per-worker event logs.
    pub logs: Vec<PerfLog>,
    /// Per-worker counter snapshots.
    pub stats: Vec<StatsSnapshot>,
    /// Host timestamp ticks per nanosecond at dump time.
    pub cycles_per_ns: f64,
}

impl ProfileDump {
    /// Bundles logs and counters with the clock calibration.
    pub fn new(logs: Vec<PerfLog>, stats: Vec<StatsSnapshot>) -> Self {
        ProfileDump {
            logs,
            stats,
            cycles_per_ns: clock::cycles_per_ns(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ProfileDump serializes")
    }

    /// Writes JSON to `path` (the `xomp_perflog_dump` API).
    pub fn dump_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes to the path named by `XOMP_PERFLOG_PATH`, if set. Returns
    /// whether a dump was written.
    pub fn dump_from_env(&self) -> std::io::Result<bool> {
        match std::env::var_os("XOMP_PERFLOG_PATH") {
            Some(p) => {
                self.dump_to(std::path::Path::new(&p))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Parses a dump back (for offline analysis tools and tests).
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = PerfLog::new(0, false);
        let t = log.start();
        assert_eq!(t, 0);
        log.push(EventKind::Task, t);
        assert!(log.events().is_empty());
    }

    #[test]
    fn enabled_log_records_ordered_intervals() {
        let mut log = PerfLog::new(3, true);
        let t = log.start();
        std::hint::spin_loop();
        log.push(EventKind::TaskCreate, t);
        let t2 = log.start();
        log.push(EventKind::Task, t2);
        assert_eq!(log.events().len(), 2);
        assert!(log.events()[0].end <= log.events()[1].start + 1_000_000);
        assert_eq!(log.worker(), 3);
        assert!(
            log.totals()[EventKind::TaskCreate as usize] > 0 || cfg!(not(target_arch = "x86_64"))
        );
    }

    #[test]
    fn dump_roundtrips_through_json() {
        let mut log = PerfLog::new(0, true);
        log.push_span(EventKind::Barrier, 100, 250);
        let dump = ProfileDump::new(vec![log], vec![StatsSnapshot::default()]);
        let parsed = ProfileDump::from_json(&dump.to_json()).unwrap();
        assert_eq!(parsed.logs.len(), 1);
        assert_eq!(parsed.logs[0].events()[0].duration(), 150);
        assert_eq!(parsed.stats.len(), 1);
    }

    #[test]
    fn full_kind_set_round_trips_through_serde_with_stable_discriminants() {
        // The §V five are frozen…
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "§V discriminants must not move");
        }
        // …and every kind (including the flight-recorder additions)
        // survives a serde round trip and decodes from its discriminant.
        for k in EventKind::FULL_SET {
            let json = serde_json::to_string(&k).unwrap();
            let back: EventKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, k, "serde round trip for {}", k.label());
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
        // FULL_SET is index == discriminant, exhaustive and duplicate-free.
        for (i, k) in EventKind::FULL_SET.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
        assert_eq!(EventKind::from_u8(EventKind::FULL_SET.len() as u8), None);
        // The pre-cancellation kinds are frozen at their PR 6 values…
        assert_eq!(EventKind::JobStart as u8, 12);
        assert_eq!(EventKind::JobEnd as u8, 13);
        assert_eq!(EventKind::Retune as u8, 16);
        // …and the serving-robustness kinds extend, never renumber.
        assert_eq!(EventKind::Cancel as u8, 17);
        assert_eq!(EventKind::Shed as u8, 18);
        assert_eq!(EventKind::DeadlineMiss as u8, 19);
        // …as does the streaming-drain collector kind.
        assert_eq!(EventKind::DrainCycle as u8, 20);
        assert_eq!(
            serde_json::to_string(&EventKind::DeadlineMiss).unwrap(),
            "\"DeadlineMiss\""
        );
    }

    #[test]
    fn totals_ignore_flight_recorder_kinds() {
        let mut log = PerfLog::new(0, true);
        log.push_span(EventKind::Task, 0, 100);
        log.push_span(EventKind::Park, 0, 9_999); // instant marker kind
        let t = log.totals();
        assert_eq!(t[EventKind::Task as usize], 100);
        assert_eq!(t.iter().sum::<u64>(), 100);
    }

    #[test]
    fn dump_to_env_path() {
        let dir = std::env::temp_dir().join("xgomp_perflog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.json");
        let dump = ProfileDump::new(vec![], vec![]);
        dump.dump_to(&path).unwrap();
        let loaded = ProfileDump::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(loaded.logs.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
