//! Per-thread statistical counters (§V).
//!
//! Each worker owns one [`WorkerStats`] block. Counters are `AtomicU64`
//! written with `Relaxed` ordering by their single writer — the cost of a
//! plain store, but safely readable by the harness from any thread. The
//! full §V counter list is reproduced, including the DLB-specific
//! request/steal accounting that Tables II and III report.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};
use xgomp_topology::Locality;

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Live counter block owned by one worker (single-writer,
        /// any-reader).
        #[derive(Debug, Default)]
        pub struct WorkerStats {
            $($(#[$doc])* pub $name: AtomicU64,)+
        }

        /// Plain-value snapshot of a [`WorkerStats`] block.
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl WorkerStats {
            /// Copies every counter with `Relaxed` loads.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }
        }

        impl StatsSnapshot {
            /// Element-wise sum (team aggregation).
            pub fn add(&mut self, other: &StatsSnapshot) {
                $(self.$name += other.$name;)+
            }
        }
    };
}

counters! {
    /// Tasks created by this worker (`GOMP_TASK` occurrences).
    tasks_created,
    /// Tasks executed by this worker.
    tasks_executed,
    /// Executed tasks that were created by this same worker
    /// (`NTASKS_SELF`).
    ntasks_self,
    /// Executed tasks created by another worker in the same NUMA zone
    /// (`NTASKS_LOCAL`).
    ntasks_local,
    /// Executed tasks created in another NUMA zone (`NTASKS_REMOTE`).
    ntasks_remote,
    /// Tasks pushed by the static round-robin balancer
    /// (`NTASKS_STATIC_PUSH`).
    ntasks_static_push,
    /// Tasks executed immediately because the target queue was full
    /// (`NTASKS_IMM_EXEC`).
    ntasks_imm_exec,
    /// Steal requests sent while this worker was a thief (`NREQ_SENT`).
    nreq_sent,
    /// Requests this worker handled as a victim (`NREQ_HANDLED`).
    nreq_handled,
    /// Handled requests that moved at least one task
    /// (`NREQ_HAS_STEAL`).
    nreq_has_steal,
    /// Handled requests that failed because the victim's queues were
    /// empty (`NREQ_SRC_EMPTY`).
    nreq_src_empty,
    /// Handled requests that failed because the thief's queue was full
    /// (`NREQ_TARGET_FULL`).
    nreq_target_full,
    /// Tasks migrated away from this worker by DLB (`NTASKS_STOLEN`).
    ntasks_stolen,
    /// Of the stolen tasks, how many went to a NUMA-local thief.
    nsteal_local,
    /// Of the stolen tasks, how many went to a NUMA-remote thief.
    nsteal_remote,
    /// Loop chunks executed by this worker (`parallel_for`).
    nloop_chunks,
    /// Loop iterations executed by this worker.
    nloop_iters,
    /// Of the executed chunks, how many were claimed from the worker's
    /// own zone's range pool (the zone-local-first fast path).
    nloop_claim_local,
    /// Cross-zone range steal-splits performed by this worker (its own
    /// zone's pool ran dry; a remote pool's upper half was taken).
    nloop_range_steals,
    /// Inter-socket loop rebalances performed by probes this worker ran
    /// (the coarse level of two-level loop balancing: a back-half range
    /// proactively migrated from a rich zone's pool into a starved
    /// zone's inbox).
    nloop_rebalances,
    /// Iterations migrated *into* starved zones by this worker's
    /// rebalance probes.
    nloop_migrated_in,
    /// Iterations migrated *out of* rich zones by this worker's
    /// rebalance probes. Conservation: team-wide, `in == out` — a
    /// migration that takes iterations from one pool must land all of
    /// them in another.
    nloop_migrated_out,
    /// Loop iterations abandoned (never executed) because their loop was
    /// cancelled while ranges were still pooled. Conservation for a
    /// cancelled loop: `nloop_iters + nloop_cancelled_iters` accounts
    /// for every iteration of the range exactly once.
    nloop_cancelled_iters,
}

impl WorkerStats {
    /// Relaxed single-writer increment.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.store(counter.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
    }

    /// Relaxed single-writer add.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.store(counter.load(Ordering::Relaxed) + n, Ordering::Relaxed);
    }

    /// Records the locality of an executed task (updates the
    /// self/local/remote triple and `tasks_executed`).
    #[inline]
    pub fn record_execution(&self, locality: Locality) {
        Self::inc(&self.tasks_executed);
        match locality {
            Locality::SelfCore => Self::inc(&self.ntasks_self),
            Locality::Local => Self::inc(&self.ntasks_local),
            Locality::Remote => Self::inc(&self.ntasks_remote),
        }
    }
}

/// Team-level aggregation of per-worker snapshots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TeamStats {
    /// One snapshot per worker, in worker order.
    pub workers: Vec<StatsSnapshot>,
}

impl TeamStats {
    /// Collects snapshots from live counter blocks.
    pub fn collect(stats: &[WorkerStats]) -> Self {
        TeamStats {
            workers: stats.iter().map(WorkerStats::snapshot).collect(),
        }
    }

    /// Element-wise total across the team (the numbers Tables II/III
    /// report).
    pub fn total(&self) -> StatsSnapshot {
        let mut acc = StatsSnapshot::default();
        for w in &self.workers {
            acc.add(w);
        }
        acc
    }

    /// Consistency invariants that must hold after any quiescent run.
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let t = self.total();
        if t.tasks_executed != t.ntasks_self + t.ntasks_local + t.ntasks_remote {
            return Err(format!(
                "executed {} != self {} + local {} + remote {}",
                t.tasks_executed, t.ntasks_self, t.ntasks_local, t.ntasks_remote
            ));
        }
        if t.nreq_handled > t.nreq_sent {
            return Err(format!("handled {} > sent {}", t.nreq_handled, t.nreq_sent));
        }
        if t.nreq_has_steal > t.nreq_handled {
            return Err(format!(
                "has_steal {} > handled {}",
                t.nreq_has_steal, t.nreq_handled
            ));
        }
        if t.nsteal_local + t.nsteal_remote != t.ntasks_stolen {
            return Err(format!(
                "steal locality {}+{} != stolen {}",
                t.nsteal_local, t.nsteal_remote, t.ntasks_stolen
            ));
        }
        if t.nloop_iters < t.nloop_chunks {
            return Err(format!(
                "loop iters {} < chunks {} (every chunk runs ≥ 1 iteration)",
                t.nloop_iters, t.nloop_chunks
            ));
        }
        if t.nloop_claim_local > t.nloop_chunks {
            return Err(format!(
                "local claims {} > chunks {}",
                t.nloop_claim_local, t.nloop_chunks
            ));
        }
        if t.nloop_range_steals > t.nloop_chunks {
            return Err(format!(
                "range steals {} > chunks {} (a thief executes ≥ 1 chunk per steal)",
                t.nloop_range_steals, t.nloop_chunks
            ));
        }
        if t.nloop_migrated_in != t.nloop_migrated_out {
            return Err(format!(
                "rebalance conservation: migrated in {} != migrated out {}",
                t.nloop_migrated_in, t.nloop_migrated_out
            ));
        }
        if t.nloop_rebalances > t.nloop_migrated_in {
            return Err(format!(
                "rebalances {} > iterations migrated {} (every rebalance moves ≥ 1)",
                t.nloop_rebalances, t.nloop_migrated_in
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let s = WorkerStats::default();
        WorkerStats::inc(&s.tasks_created);
        WorkerStats::add(&s.ntasks_stolen, 5);
        WorkerStats::add(&s.nsteal_local, 5);
        s.record_execution(Locality::SelfCore);
        s.record_execution(Locality::Remote);
        let snap = s.snapshot();
        assert_eq!(snap.tasks_created, 1);
        assert_eq!(snap.tasks_executed, 2);
        assert_eq!(snap.ntasks_self, 1);
        assert_eq!(snap.ntasks_remote, 1);
        assert_eq!(snap.ntasks_stolen, 5);
    }

    #[test]
    fn team_total_and_invariants() {
        let blocks: Vec<WorkerStats> = (0..4).map(|_| WorkerStats::default()).collect();
        for b in &blocks {
            b.record_execution(Locality::Local);
            WorkerStats::inc(&b.nreq_sent);
        }
        WorkerStats::inc(&blocks[0].nreq_handled);
        let team = TeamStats::collect(&blocks);
        let total = team.total();
        assert_eq!(total.tasks_executed, 4);
        assert_eq!(total.ntasks_local, 4);
        assert_eq!(total.nreq_sent, 4);
        team.check_invariants().unwrap();
    }

    #[test]
    fn invariant_violations_are_reported() {
        let b = WorkerStats::default();
        WorkerStats::inc(&b.tasks_executed); // executed without locality
        let team = TeamStats::collect(&[b]);
        assert!(team.check_invariants().is_err());
    }
}
