//! Fig. 3 renderers: per-thread timeline summary (ASCII Gantt), state
//! summaries, and the task-count summary.

use crate::counters::StatsSnapshot;
use crate::events::{EventKind, PerfLog};

/// Aggregated per-worker state times (the stacked bars on the left of
/// Fig. 3).
#[derive(Debug, Clone)]
pub struct StateSummaryRow {
    /// Worker id.
    pub worker: usize,
    /// Ticks per event kind, indexed by `EventKind as usize`.
    pub ticks: [u64; 5],
}

impl StateSummaryRow {
    /// Ticks spent doing useful work (the paper's "utilized time": task
    /// execution + task creation).
    pub fn utilized(&self) -> u64 {
        self.ticks[EventKind::Task as usize] + self.ticks[EventKind::TaskCreate as usize]
    }

    /// Total recorded ticks.
    pub fn total(&self) -> u64 {
        self.ticks.iter().sum()
    }
}

/// Computes per-worker state totals from the team's logs.
pub fn state_summary(logs: &[PerfLog]) -> Vec<StateSummaryRow> {
    logs.iter()
        .map(|log| StateSummaryRow {
            worker: log.worker(),
            ticks: log.totals(),
        })
        .collect()
}

/// Renders the Fig. 3 "Timeline Summary": one row per worker, the wall
/// time divided into `width` columns, each column showing the event class
/// that dominated it (`T` task, `C` creation, `w` taskwait, `B` barrier,
/// `.` stall, space = unrecorded).
pub fn render_timeline(logs: &[PerfLog], width: usize) -> String {
    let width = width.max(10);
    let (t_min, t_max) = match global_time_range(logs) {
        Some(r) => r,
        None => return String::from("(no events recorded)\n"),
    };
    let span = (t_max - t_min).max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "Timeline Summary  [T]=TASK [C]=GOMP_TASK [w]=TASKWAIT [B]=BARRIER [.]=STALL  span={:.3}s\n",
        crate::clock::ticks_to_secs(span)
    ));
    for log in logs {
        // Per-column tick totals per kind.
        let mut cols = vec![[0u64; 5]; width];
        for e in log.events() {
            let s = e.start.max(t_min);
            let t = e.end.min(t_max).max(s);
            let c0 = ((s - t_min) as u128 * width as u128 / span as u128) as usize;
            let c1 = ((t - t_min) as u128 * width as u128 / span as u128) as usize;
            let c1 = c1.min(width - 1);
            if c0 == c1 {
                cols[c0][e.kind as usize] += e.duration();
            } else {
                // Spread proportionally across covered columns.
                let per = e.duration() / ((c1 - c0 + 1) as u64);
                for col in cols.iter_mut().take(c1 + 1).skip(c0) {
                    col[e.kind as usize] += per;
                }
            }
        }
        out.push_str(&format!("t{:<4}|", log.worker()));
        for col in &cols {
            let (best_kind, best_ticks) = col
                .iter()
                .enumerate()
                .max_by_key(|(_, &t)| t)
                .map(|(k, &t)| (k, t))
                .unwrap();
            if best_ticks == 0 {
                out.push(' ');
            } else {
                out.push(EventKind::ALL[best_kind].glyph());
            }
        }
        out.push_str("|\n");
    }
    out
}

fn global_time_range(logs: &[PerfLog]) -> Option<(u64, u64)> {
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for log in logs {
        for e in log.events() {
            t_min = t_min.min(e.start);
            t_max = t_max.max(e.end);
        }
    }
    if t_min == u64::MAX {
        None
    } else {
        Some((t_min, t_max))
    }
}

/// Renders the Fig. 3 "Task Count Summary": per-worker bars of tasks
/// created (`#`) and executed (`=`), with max/min annotations.
pub fn render_task_counts(stats: &[StatsSnapshot]) -> String {
    let total: u64 = stats.iter().map(|s| s.tasks_created).sum();
    let max_any = stats
        .iter()
        .map(|s| s.tasks_created.max(s.tasks_executed))
        .max()
        .unwrap_or(0)
        .max(1);
    let bar_width = 40usize;
    let mut out = String::new();
    out.push_str(&format!(
        "Task Count Summary (tasks={total})  [#]=created [=]=executed\n"
    ));
    for (w, s) in stats.iter().enumerate() {
        let c = (s.tasks_created as u128 * bar_width as u128 / max_any as u128) as usize;
        let e = (s.tasks_executed as u128 * bar_width as u128 / max_any as u128) as usize;
        out.push_str(&format!(
            "t{:<4}|{:<width$}| {:>10}\n     |{:<width$}| {:>10}\n",
            w,
            "#".repeat(c),
            s.tasks_created,
            "=".repeat(e),
            s.tasks_executed,
            width = bar_width
        ));
    }
    let created_max = stats.iter().map(|s| s.tasks_created).max().unwrap_or(0);
    let created_min = stats.iter().map(|s| s.tasks_created).min().unwrap_or(0);
    let exec_max = stats.iter().map(|s| s.tasks_executed).max().unwrap_or(0);
    let exec_min = stats.iter().map(|s| s.tasks_executed).min().unwrap_or(0);
    out.push_str(&format!(
        "created max/min = {created_max}/{created_min}   executed max/min = {exec_max}/{exec_min}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::PerfLog;

    fn synthetic_logs() -> Vec<PerfLog> {
        let mut a = PerfLog::new(0, true);
        a.push_span(EventKind::TaskCreate, 0, 100);
        a.push_span(EventKind::Task, 100, 500);
        a.push_span(EventKind::Barrier, 500, 600);
        let mut b = PerfLog::new(1, true);
        b.push_span(EventKind::Stall, 0, 450);
        b.push_span(EventKind::Task, 450, 600);
        vec![a, b]
    }

    #[test]
    fn state_summary_totals() {
        let rows = state_summary(&synthetic_logs());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].ticks[EventKind::Task as usize], 400);
        assert_eq!(rows[0].utilized(), 500);
        assert_eq!(rows[1].ticks[EventKind::Stall as usize], 450);
        assert_eq!(rows[1].utilized(), 150);
    }

    #[test]
    fn timeline_shows_dominant_states() {
        let s = render_timeline(&synthetic_logs(), 60);
        // Worker 0's row should be mostly 'T'; worker 1 mostly '.'.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].matches('T').count() > lines[1].matches('.').count());
        assert!(lines[2].matches('.').count() > lines[2].matches('T').count());
    }

    #[test]
    fn empty_logs_render_gracefully() {
        let s = render_timeline(&[PerfLog::new(0, true)], 40);
        assert!(s.contains("no events"));
    }

    #[test]
    fn task_count_bars_scale() {
        let a = StatsSnapshot {
            tasks_created: 100,
            tasks_executed: 50,
            ..Default::default()
        };
        let b = StatsSnapshot {
            tasks_created: 10,
            tasks_executed: 160,
            ..Default::default()
        };
        let s = render_task_counts(&[a, b]);
        assert!(s.contains("tasks=110"));
        assert!(s.contains("max/min = 100/10"));
        assert!(s.contains("160/50"));
    }
}
