//! Property tests: placement invariants over arbitrary machine shapes,
//! team sizes, and affinity policies.

use proptest::prelude::*;
use xgomp_topology::{Affinity, Locality, MachineTopology, Placement};

fn arb_affinity() -> impl Strategy<Value = Affinity> {
    prop_oneof![Just(Affinity::Close), Just(Affinity::Spread)]
}

proptest! {
    #[test]
    fn zone_lists_partition_the_team(
        sockets in 1usize..9,
        cores in 1usize..9,
        smt in 1usize..3,
        workers in 1usize..65,
        affinity in arb_affinity(),
    ) {
        let topo = MachineTopology::new(sockets, cores, smt);
        let p = Placement::new(topo, workers, affinity);
        // Every worker appears in exactly one zone list.
        let mut seen = vec![0u32; workers];
        for z in 0..p.topology().zones() {
            for &w in p.workers_in_zone(z) {
                prop_assert_eq!(p.zone_of(w), z);
                seen[w] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "zone lists not a partition");
    }

    #[test]
    fn peers_are_consistent_with_zones(
        sockets in 1usize..6,
        cores in 1usize..6,
        workers in 1usize..33,
        affinity in arb_affinity(),
    ) {
        let topo = MachineTopology::new(sockets, cores, 1);
        let p = Placement::new(topo, workers, affinity);
        for w in 0..workers {
            prop_assert_eq!(
                p.local_peers(w).len() + p.remote_peers(w).len() + 1,
                workers
            );
            for &l in p.local_peers(w) {
                prop_assert!(p.is_numa_local(w, l));
                prop_assert_ne!(l, w);
            }
            for &r in p.remote_peers(w) {
                prop_assert!(!p.is_numa_local(w, r));
            }
        }
    }

    #[test]
    fn locality_is_symmetric_for_non_self(
        workers in 2usize..33,
        a in 0usize..32,
        b in 0usize..32,
    ) {
        let p = Placement::default_for(workers);
        let (a, b) = (a % workers, b % workers);
        match (p.locality(a, b), p.locality(b, a)) {
            (Locality::SelfCore, Locality::SelfCore) => prop_assert_eq!(a, b),
            (Locality::Local, Locality::Local) | (Locality::Remote, Locality::Remote) => {}
            (x, y) => prop_assert!(false, "asymmetric locality {x:?}/{y:?}"),
        }
    }

    #[test]
    fn close_affinity_is_contiguous_per_zone(
        sockets in 1usize..5,
        cores in 1usize..7,
        smt in 1usize..3,
    ) {
        let topo = MachineTopology::new(sockets, cores, smt);
        let workers = topo.total_hw_threads(); // exactly fill the machine
        let p = Placement::new(topo, workers, Affinity::Close);
        // Under close affinity, each zone's workers are one contiguous
        // id range.
        for z in 0..p.topology().zones() {
            let ws = p.workers_in_zone(z);
            if ws.is_empty() {
                continue;
            }
            let lo = *ws.first().unwrap();
            let hi = *ws.last().unwrap();
            prop_assert_eq!(hi - lo + 1, ws.len(), "zone {} not contiguous", z);
        }
    }

    #[test]
    fn distances_form_a_valid_slit(sockets in 1usize..9) {
        let topo = MachineTopology::new(sockets, 2, 1);
        for a in 0..topo.zones() {
            for b in 0..topo.zones() {
                let d = topo.distance(a, b);
                prop_assert_eq!(d == 10, a == b, "local distance iff same zone");
                prop_assert_eq!(topo.distance(a, b), topo.distance(b, a));
            }
        }
    }
}
