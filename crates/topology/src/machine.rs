//! The machine model: sockets × cores × SMT with one NUMA zone per socket
//! and a SLIT-style distance matrix.

use serde::{Deserialize, Serialize};

/// Identifier of a NUMA zone (== socket in this model, as on the paper's
/// Skylake machine: 8 sockets, 8 zones).
pub type ZoneId = usize;

/// Normalized SLIT distance to the local node (ACPI convention).
pub const LOCAL_DISTANCE: u32 = 10;
/// Normalized SLIT distance to a remote node (typical two-hop value).
pub const REMOTE_DISTANCE: u32 = 21;

/// A simulated multi-socket machine.
///
/// Hardware threads are numbered the way Linux numbers them under
/// `OMP_PROC_BIND=close` enumeration: hardware thread `h` lives on core
/// `h / smt`, and core `c` lives on socket `c / cores_per_socket`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineTopology {
    sockets: usize,
    cores_per_socket: usize,
    smt: usize,
}

impl MachineTopology {
    /// Builds a topology; every argument must be ≥ 1.
    pub fn new(sockets: usize, cores_per_socket: usize, smt: usize) -> Self {
        assert!(sockets >= 1 && cores_per_socket >= 1 && smt >= 1);
        MachineTopology {
            sockets,
            cores_per_socket,
            smt,
        }
    }

    /// The paper's evaluation machine: Intel Skylake, 192 cores / 384
    /// hardware threads, eight NUMA zones (8 sockets × 24 cores × SMT-2).
    pub fn skylake192() -> Self {
        MachineTopology::new(8, 24, 2)
    }

    /// A small dual-socket machine useful for tests (2 × 4 × 1).
    pub fn dual_socket8() -> Self {
        MachineTopology::new(2, 4, 1)
    }

    /// Picks a topology that exercises NUMA logic for `n_workers` workers:
    /// at least two zones whenever there are two or more workers, with
    /// zone sizes balanced. Used by the bench harness when running on
    /// machines much smaller than the paper's.
    pub fn fit_workers(n_workers: usize) -> Self {
        if n_workers <= 1 {
            return MachineTopology::new(1, 1, 1);
        }
        // Prefer the paper's 8 zones when enough workers exist for ≥2
        // workers per zone; otherwise 2 zones.
        let sockets = if n_workers >= 16 { 8 } else { 2 };
        let cores = n_workers.div_ceil(sockets).max(1);
        MachineTopology::new(sockets, cores, 1)
    }

    /// Number of sockets (== NUMA zones).
    #[inline]
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Number of NUMA zones (one per socket in this model).
    #[inline]
    pub fn zones(&self) -> usize {
        self.sockets
    }

    /// Physical cores per socket.
    #[inline]
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Hardware threads per core.
    #[inline]
    pub fn smt(&self) -> usize {
        self.smt
    }

    /// Total physical cores.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total hardware threads (placement slots).
    #[inline]
    pub fn total_hw_threads(&self) -> usize {
        self.total_cores() * self.smt
    }

    /// Core that hardware thread `hw` lives on.
    #[inline]
    pub fn core_of_hw(&self, hw: usize) -> usize {
        debug_assert!(hw < self.total_hw_threads());
        hw / self.smt
    }

    /// Zone that core `core` lives on.
    #[inline]
    pub fn zone_of_core(&self, core: usize) -> ZoneId {
        debug_assert!(core < self.total_cores());
        core / self.cores_per_socket
    }

    /// SLIT-style distance between two zones.
    #[inline]
    pub fn distance(&self, a: ZoneId, b: ZoneId) -> u32 {
        if a == b {
            LOCAL_DISTANCE
        } else {
            REMOTE_DISTANCE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_matches_paper_machine() {
        let m = MachineTopology::skylake192();
        assert_eq!(m.total_cores(), 192);
        assert_eq!(m.total_hw_threads(), 384);
        assert_eq!(m.zones(), 8);
    }

    #[test]
    fn hw_thread_to_zone_mapping() {
        let m = MachineTopology::skylake192();
        // First hw thread of socket 1 is hw 48 (24 cores * 2 smt).
        assert_eq!(m.zone_of_core(m.core_of_hw(0)), 0);
        assert_eq!(m.zone_of_core(m.core_of_hw(47)), 0);
        assert_eq!(m.zone_of_core(m.core_of_hw(48)), 1);
        assert_eq!(m.zone_of_core(m.core_of_hw(383)), 7);
    }

    #[test]
    fn distance_is_symmetric_and_reflexive() {
        let m = MachineTopology::skylake192();
        for a in 0..m.zones() {
            assert_eq!(m.distance(a, a), LOCAL_DISTANCE);
            for b in 0..m.zones() {
                assert_eq!(m.distance(a, b), m.distance(b, a));
            }
        }
    }

    #[test]
    fn fit_workers_always_multizone_for_teams() {
        for n in 2..64 {
            let m = MachineTopology::fit_workers(n);
            assert!(m.zones() >= 2, "{n} workers got {} zones", m.zones());
            assert!(m.total_hw_threads() >= n);
        }
        assert_eq!(MachineTopology::fit_workers(1).zones(), 1);
    }
}
