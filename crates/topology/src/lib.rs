//! # xgomp-topology
//!
//! A software model of the multi-socket NUMA machine the paper evaluates
//! on (an Intel Skylake with 192 cores / 384 hardware threads across eight
//! NUMA zones), plus the worker-placement and locality primitives the
//! XGOMP runtime's NUMA-aware load balancing needs.
//!
//! ## Why a model
//!
//! This reproduction runs wherever `cargo test` runs — typically a small
//! container without 8 sockets and without permission to pin threads (and
//! `libc` is outside the allowed dependency set). Following DESIGN.md
//! §3.2, the *topology is virtual*: worker `i` is deterministically
//! assigned a core, socket, and NUMA zone exactly as OpenMP's
//! `OMP_PROC_BIND=close` would, and every policy decision in the runtime
//! (victim choice under `p_local`, self/local/remote accounting, steal
//! locality) is driven by this assignment. The latency asymmetry that
//! makes those policies matter is reproduced by an optional calibrated
//! [`CostModel`] that injects a spin-wait when a task runs away from the
//! core/zone where it was created (the paper quotes ≈100 ns lower-bound
//! remote access vs a few ns through shared cache, §IV-B).

#![warn(missing_docs)]

mod cost;
mod machine;
mod placement;

pub use cost::{CostModel, SpinCalibration};
pub use machine::{MachineTopology, ZoneId};
pub use placement::{Affinity, Locality, Placement};
