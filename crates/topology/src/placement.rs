//! Worker → hardware-thread placement and locality classification.

use serde::{Deserialize, Serialize};

use crate::machine::{MachineTopology, ZoneId};

/// Thread-affinity policy, mirroring `OMP_PROC_BIND`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Affinity {
    /// Consecutive workers on consecutive hardware threads (fills a socket
    /// before spilling to the next). The paper binds threads this way.
    Close,
    /// Workers round-robined across sockets.
    Spread,
}

/// Locality of a task execution relative to its creation site (the
/// classification behind the paper's `NTASKS_SELF` / `NTASKS_LOCAL` /
/// `NTASKS_REMOTE` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Executed by the worker that created it (first-level cache hits).
    SelfCore,
    /// Executed by a different worker in the creating NUMA zone (shared
    /// cache, local memory).
    Local,
    /// Executed in a different NUMA zone (remote memory access).
    Remote,
}

/// A fixed assignment of `n_workers` workers to hardware threads of a
/// [`MachineTopology`], with precomputed zone membership lists used by the
/// DLB victim-selection fast path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Placement {
    topo: MachineTopology,
    affinity: Affinity,
    /// worker → hardware thread
    hw_of_worker: Vec<usize>,
    /// worker → zone (cached)
    zone_of_worker: Vec<ZoneId>,
    /// zone → workers in it (ascending)
    workers_in_zone: Vec<Vec<usize>>,
    /// worker → other workers in its zone (excludes self)
    local_peers: Vec<Vec<usize>>,
    /// worker → workers outside its zone
    remote_peers: Vec<Vec<usize>>,
}

impl Placement {
    /// Places `n_workers` workers on `topo` under `affinity`.
    ///
    /// More workers than hardware threads is allowed (oversubscription —
    /// the normal case in this reproduction); extra workers wrap around
    /// the hardware-thread list, which preserves the zone structure.
    pub fn new(topo: MachineTopology, n_workers: usize, affinity: Affinity) -> Self {
        assert!(n_workers >= 1);
        let hw_total = topo.total_hw_threads();
        let hw_of_worker: Vec<usize> = (0..n_workers)
            .map(|w| match affinity {
                Affinity::Close => w % hw_total,
                Affinity::Spread => {
                    // Round-robin sockets, then cores within a socket.
                    let slot = w % hw_total;
                    let socket = slot % topo.sockets();
                    let within = slot / topo.sockets();
                    let hw_per_socket = topo.cores_per_socket() * topo.smt();
                    socket * hw_per_socket + (within % hw_per_socket)
                }
            })
            .collect();
        let zone_of_worker: Vec<ZoneId> = hw_of_worker
            .iter()
            .map(|&hw| topo.zone_of_core(topo.core_of_hw(hw)))
            .collect();
        let mut workers_in_zone = vec![Vec::new(); topo.zones()];
        for (w, &z) in zone_of_worker.iter().enumerate() {
            workers_in_zone[z].push(w);
        }
        let local_peers: Vec<Vec<usize>> = (0..n_workers)
            .map(|w| {
                workers_in_zone[zone_of_worker[w]]
                    .iter()
                    .copied()
                    .filter(|&p| p != w)
                    .collect()
            })
            .collect();
        let remote_peers: Vec<Vec<usize>> = (0..n_workers)
            .map(|w| {
                (0..n_workers)
                    .filter(|&p| p != w && zone_of_worker[p] != zone_of_worker[w])
                    .collect()
            })
            .collect();
        Placement {
            topo,
            affinity,
            hw_of_worker,
            zone_of_worker,
            workers_in_zone,
            local_peers,
            remote_peers,
        }
    }

    /// Convenience: close-affinity placement on a topology fitted to the
    /// worker count (the runtime's default).
    pub fn default_for(n_workers: usize) -> Self {
        Placement::new(
            MachineTopology::fit_workers(n_workers),
            n_workers,
            Affinity::Close,
        )
    }

    /// Number of placed workers.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.hw_of_worker.len()
    }

    /// The underlying machine model.
    #[inline]
    pub fn topology(&self) -> &MachineTopology {
        &self.topo
    }

    /// The affinity policy used.
    #[inline]
    pub fn affinity(&self) -> Affinity {
        self.affinity
    }

    /// Hardware thread worker `w` is (virtually) bound to.
    #[inline]
    pub fn hw_thread_of(&self, w: usize) -> usize {
        self.hw_of_worker[w]
    }

    /// NUMA zone of worker `w`.
    #[inline]
    pub fn zone_of(&self, w: usize) -> ZoneId {
        self.zone_of_worker[w]
    }

    /// Workers bound to zone `z` (ascending worker ids).
    #[inline]
    pub fn workers_in_zone(&self, z: ZoneId) -> &[usize] {
        &self.workers_in_zone[z]
    }

    /// Other workers in `w`'s zone (victim candidates under `p_local`).
    #[inline]
    pub fn local_peers(&self, w: usize) -> &[usize] {
        &self.local_peers[w]
    }

    /// Workers outside `w`'s zone (victim candidates with prob.
    /// `1 - p_local`).
    #[inline]
    pub fn remote_peers(&self, w: usize) -> &[usize] {
        &self.remote_peers[w]
    }

    /// Classifies where `executor` ran a task created by `creator`.
    #[inline]
    pub fn locality(&self, creator: usize, executor: usize) -> Locality {
        if creator == executor {
            Locality::SelfCore
        } else if self.zone_of_worker[creator] == self.zone_of_worker[executor] {
            Locality::Local
        } else {
            Locality::Remote
        }
    }

    /// Whether two workers share a NUMA zone.
    #[inline]
    pub fn is_numa_local(&self, a: usize, b: usize) -> bool {
        self.zone_of_worker[a] == self.zone_of_worker[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_affinity_fills_sockets_in_order() {
        let topo = MachineTopology::new(2, 2, 1); // 4 hw threads
        let p = Placement::new(topo, 4, Affinity::Close);
        assert_eq!(
            (0..4).map(|w| p.zone_of(w)).collect::<Vec<_>>(),
            vec![0, 0, 1, 1]
        );
    }

    #[test]
    fn spread_affinity_alternates_sockets() {
        let topo = MachineTopology::new(2, 2, 1);
        let p = Placement::new(topo, 4, Affinity::Spread);
        assert_eq!(
            (0..4).map(|w| p.zone_of(w)).collect::<Vec<_>>(),
            vec![0, 1, 0, 1]
        );
    }

    #[test]
    fn oversubscription_wraps_preserving_zones() {
        let topo = MachineTopology::new(2, 1, 1); // 2 hw threads
        let p = Placement::new(topo, 6, Affinity::Close);
        assert_eq!(
            (0..6).map(|w| p.zone_of(w)).collect::<Vec<_>>(),
            vec![0, 1, 0, 1, 0, 1]
        );
    }

    #[test]
    fn peers_partition_the_team() {
        let p = Placement::new(MachineTopology::skylake192(), 192, Affinity::Close);
        for w in 0..192 {
            let locals = p.local_peers(w);
            let remotes = p.remote_peers(w);
            assert_eq!(locals.len() + remotes.len() + 1, 192);
            assert!(!locals.contains(&w));
            assert!(!remotes.contains(&w));
            for &l in locals {
                assert!(p.is_numa_local(w, l));
            }
            for &r in remotes {
                assert!(!p.is_numa_local(w, r));
            }
        }
        // Paper setup: 24 cores per socket -> close affinity puts workers
        // 0..48 on zone 0 (SMT-2) ... with 192 workers over 384 hw threads
        // zone 0 holds the first 48 worker slots.
        assert_eq!(p.zone_of(0), 0);
        assert_eq!(p.zone_of(47), 0);
        assert_eq!(p.zone_of(48), 1);
    }

    #[test]
    fn locality_classification() {
        let p = Placement::new(MachineTopology::new(2, 2, 1), 4, Affinity::Close);
        assert_eq!(p.locality(1, 1), Locality::SelfCore);
        assert_eq!(p.locality(0, 1), Locality::Local);
        assert_eq!(p.locality(0, 2), Locality::Remote);
    }
}
