//! Calibrated NUMA-latency cost model.
//!
//! On the paper's machine, remote-zone memory traffic costs ≈100 ns per
//! access at the lower bound while cache-served local communication costs
//! a few ns (§IV-B). Our container has no real NUMA, so experiments that
//! depend on that asymmetry (the `p_local` sweeps, the locality-driven
//! wins of NA-RP/NA-WS on STRAS/Sort) inject it: when a task executes
//! away from its creation site, the runtime spins for the configured
//! latency multiplied by a per-task access estimate.
//!
//! The spin is calibrated once against the monotonic clock so the injected
//! delays are in real nanoseconds regardless of host speed.

use std::sync::OnceLock;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::placement::Locality;

/// How many spin-loop iterations buy one nanosecond on this host.
#[derive(Debug, Clone, Copy)]
pub struct SpinCalibration {
    iters_per_ns: f64,
}

impl SpinCalibration {
    /// Measures spin-loop throughput. Cached process-wide; call
    /// [`SpinCalibration::get`] instead of constructing repeatedly.
    fn measure() -> Self {
        // Warm up, then time a fixed iteration count.
        spin_iters(10_000);
        let iters: u64 = 2_000_000;
        let t0 = Instant::now();
        spin_iters(iters);
        let elapsed = t0.elapsed().as_nanos().max(1) as f64;
        SpinCalibration {
            iters_per_ns: (iters as f64 / elapsed).max(0.01),
        }
    }

    /// The process-wide calibration (measured on first use).
    pub fn get() -> Self {
        static CAL: OnceLock<SpinCalibration> = OnceLock::new();
        *CAL.get_or_init(Self::measure)
    }

    /// Spin for approximately `ns` nanoseconds.
    #[inline]
    pub fn spin_ns(&self, ns: u64) {
        spin_iters((ns as f64 * self.iters_per_ns) as u64);
    }
}

#[inline]
fn spin_iters(n: u64) {
    for _ in 0..n {
        std::hint::spin_loop();
    }
}

/// NUMA access-cost model applied when a task runs away from its creator.
///
/// `Disabled` is the default for unit tests; benches enable
/// [`CostModel::paper_default`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Master switch; when false all penalties are zero.
    pub enabled: bool,
    /// Injected ns when a task executes on another worker in the same
    /// zone (shared L3 / local DRAM).
    pub local_ns: u64,
    /// Injected ns when a task executes in a remote zone.
    pub remote_ns: u64,
    /// Number of modeled memory accesses per task (scales the penalty;
    /// tasks touching big arrays — STRAS, Sort — model more traffic).
    pub accesses_per_task: u64,
}

impl CostModel {
    /// No penalties (unit tests, pure-throughput micro-benches).
    pub const fn disabled() -> Self {
        CostModel {
            enabled: false,
            local_ns: 0,
            remote_ns: 0,
            accesses_per_task: 0,
        }
    }

    /// The DESIGN.md §3.2 defaults: 25 ns same-zone, 100 ns remote-zone
    /// (paper's §IV-B lower bounds), one modeled access per task.
    pub const fn paper_default() -> Self {
        CostModel {
            enabled: true,
            local_ns: 25,
            remote_ns: 100,
            accesses_per_task: 1,
        }
    }

    /// A model for data-heavy tasks (large arrays per task, e.g.
    /// Strassen/Sort): the locality gap dominates task runtime.
    pub const fn data_heavy(accesses: u64) -> Self {
        CostModel {
            enabled: true,
            local_ns: 25,
            remote_ns: 100,
            accesses_per_task: accesses,
        }
    }

    /// Penalty in ns for executing a task with the given locality.
    #[inline]
    pub fn penalty_ns(&self, locality: Locality) -> u64 {
        if !self.enabled {
            return 0;
        }
        let per_access = match locality {
            Locality::SelfCore => 0,
            Locality::Local => self.local_ns,
            Locality::Remote => self.remote_ns,
        };
        per_access * self.accesses_per_task
    }

    /// Applies the penalty (spin-waits; no-op when zero).
    #[inline]
    pub fn apply(&self, locality: Locality) {
        let ns = self.penalty_ns(locality);
        if ns > 0 {
            SpinCalibration::get().spin_ns(ns);
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_free() {
        let m = CostModel::disabled();
        assert_eq!(m.penalty_ns(Locality::Remote), 0);
        assert_eq!(m.penalty_ns(Locality::SelfCore), 0);
    }

    #[test]
    fn penalties_are_ordered_by_distance() {
        let m = CostModel::paper_default();
        assert_eq!(m.penalty_ns(Locality::SelfCore), 0);
        assert!(m.penalty_ns(Locality::Local) > 0);
        assert!(m.penalty_ns(Locality::Remote) > m.penalty_ns(Locality::Local));
    }

    #[test]
    fn accesses_scale_penalty() {
        let m = CostModel::data_heavy(10);
        assert_eq!(
            m.penalty_ns(Locality::Remote),
            10 * CostModel::paper_default().penalty_ns(Locality::Remote)
        );
    }

    #[test]
    fn calibrated_spin_is_roughly_monotone() {
        let cal = SpinCalibration::get();
        let t0 = Instant::now();
        cal.spin_ns(50_000); // 50 µs
        let short = t0.elapsed();
        let t1 = Instant::now();
        cal.spin_ns(500_000); // 500 µs
        let long = t1.elapsed();
        // Generous bounds: scheduling noise exists, but 10x more spin
        // must take measurably longer.
        assert!(long > short, "spin_ns not monotone: {short:?} vs {long:?}");
    }
}
