//! Micro-benchmark of the lock-less messaging protocol (§IV-B):
//! request-deposit / validate / round-bump cycles, single-threaded and
//! under thief contention.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xgomp_core::dlb::MsgCell;

const OPS: u64 = 100_000;

fn bench_protocol_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("messaging");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("send_validate_bump_cycle", |b| {
        let cell = MsgCell::new();
        b.iter(|| {
            for _ in 0..OPS {
                assert!(cell.try_send_request(3));
                assert_eq!(cell.take_valid_request(), Some(3));
                cell.bump_round();
            }
        });
    });
    g.bench_function("victim_poll_no_request", |b| {
        let cell = MsgCell::new();
        b.iter(|| {
            for _ in 0..OPS {
                std::hint::black_box(cell.take_valid_request());
            }
        });
    });
    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("messaging_contended");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("victim_with_3_thieves", |b| {
        let cell = Arc::new(MsgCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let thieves: Vec<_> = (0..3)
            .map(|t| {
                let cell = cell.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::black_box(cell.try_send_request(t + 1));
                    }
                })
            })
            .collect();
        b.iter(|| {
            let mut handled = 0u64;
            while handled < OPS {
                if cell.take_valid_request().is_some() {
                    cell.bump_round();
                    handled += 1;
                }
            }
        });
        stop.store(true, Ordering::Relaxed);
        for t in thieves {
            t.join().unwrap();
        }
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_protocol_cycle, bench_contended
}
criterion_main!(benches);
