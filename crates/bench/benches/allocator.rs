//! Allocator ablation (the §VI-A analysis behind Fig. 4's crossover):
//! the same XQueue runtime with malloc-per-task vs the LOMP-style
//! multi-level allocator, on an allocation-bound storm (tiny tasks) and
//! an execution-bound one (tasks with real work).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xgomp_core::{AllocKind, RuntimeConfig};

const TASKS: usize = 4_000;

fn bench_allocation_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_bound_storm");
    g.throughput(Throughput::Elements(TASKS as u64));
    for (label, kind) in [
        ("malloc", AllocKind::Malloc),
        ("multi_level", AllocKind::MultiLevel),
    ] {
        g.bench_function(label, |b| {
            let rt = RuntimeConfig::xgomptb(4).allocator(kind).build();
            b.iter(|| {
                // Tiny bodies: allocation dominates (the Fib/NQueens
                // regime where LOMP's allocator wins in the paper).
                let out = rt.parallel(|ctx| {
                    ctx.scope(|s| {
                        for _ in 0..TASKS {
                            s.spawn(|_| std::hint::black_box(()));
                        }
                    });
                });
                std::hint::black_box(out.wall);
            });
        });
    }
    g.finish();
}

fn bench_execution_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_bound_storm");
    g.throughput(Throughput::Elements((TASKS / 8) as u64));
    for (label, kind) in [
        ("malloc", AllocKind::Malloc),
        ("multi_level", AllocKind::MultiLevel),
    ] {
        g.bench_function(label, |b| {
            let rt = RuntimeConfig::xgomptb(4).allocator(kind).build();
            b.iter(|| {
                // Heavier bodies: the allocator should stop mattering
                // (the FFT/STRAS/Sort/Align regime).
                let out = rt.parallel(|ctx| {
                    ctx.scope(|s| {
                        for i in 0..TASKS / 8 {
                            s.spawn(move |_| {
                                let mut acc = i as u64;
                                for k in 0..2_000u64 {
                                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                                }
                                std::hint::black_box(acc);
                            });
                        }
                    });
                });
                std::hint::black_box(out.wall);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_allocation_bound, bench_execution_bound
}
criterion_main!(benches);
