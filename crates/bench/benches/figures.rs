//! `cargo bench` entry point that regenerates **every figure and table**
//! of the paper at `Test` scale in one pass (the full-scale runs are the
//! `src/bin/` binaries; see DESIGN.md §5). Not a Criterion bench — this
//! is a smoke-level reproduction so the complete pipeline is exercised
//! on every benchmark run.

fn main() {
    // `cargo bench -- --quick-skip` style filtering is not needed; this
    // whole harness runs in well under a minute at Test scale.
    let ctx = xgomp_bench::ExpCtx::smoke();
    eprintln!("[figures] regenerating all figures/tables at Test scale");

    let t = xgomp_bench::experiments::fig01(&ctx);
    t.print();
    print!("{}", xgomp_bench::experiments::fig03(&ctx));
    let (fig4, fig5) = xgomp_bench::experiments::fig04_05(&ctx);
    fig4.print();
    fig5.print();
    let t = xgomp_bench::experiments::fig06(&ctx);
    t.print();
    let study = xgomp_bench::experiments::dlb_study(&ctx);
    study.table1.print();
    study.fig7.print();
    study.table2.print();
    study.table3.print();
    let t = xgomp_bench::experiments::fig08(&ctx);
    t.print();
    let t = xgomp_bench::experiments::surface(&ctx, xgomp_core::DlbStrategy::RedirectPush);
    t.print();
    let t = xgomp_bench::experiments::surface(&ctx, xgomp_core::DlbStrategy::WorkSteal);
    t.print();
    let t = xgomp_bench::experiments::table4();
    t.print();
    let t = xgomp_bench::experiments::fig11(&ctx);
    t.print();
    eprintln!("[figures] done");
}
