//! Ingress-tier benchmark: submission throughput and handle-completion
//! latency of the persistent task server, sharded vs single-queue
//! ingress, as the number of submitter threads grows.
//!
//! Two sections:
//!
//! * Criterion-style throughput groups (`jobs/s` per configuration): one
//!   iteration = a full burst of `JOBS` trivial jobs pushed by N
//!   submitter threads and joined.
//! * A latency table (p50/p99 of submit → job-body-completion), printed
//!   once per configuration after the groups.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xgomp_core::{DlbConfig, DlbStrategy, MachineTopology, RuntimeConfig};
use xgomp_service::{ServerConfig, TaskServer};

const JOBS: u64 = 4_000;
const THREADS: usize = 8;

/// Sharded = two-socket topology (one ingress shard per zone);
/// single-queue = everything on one zone, collapsing to one shard.
fn server(sharded: bool) -> TaskServer {
    let topology = if sharded {
        MachineTopology::new(2, THREADS / 2, 1)
    } else {
        MachineTopology::new(1, THREADS, 1)
    };
    let runtime = RuntimeConfig::xgomptb(THREADS)
        .topology(topology)
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(256));
    TaskServer::start(
        ServerConfig::new(THREADS)
            .runtime(runtime)
            .max_in_flight(4_096)
            .adapt_every(0), // fixed config: measure ingress, not tuning
    )
}

/// Pushes `JOBS` trivial jobs from `submitters` threads and joins them.
fn burst(server: &TaskServer, submitters: u64) {
    std::thread::scope(|s| {
        for t in 0..submitters {
            let server = &server;
            s.spawn(move || {
                let per = JOBS / submitters;
                let handles: Vec<_> = (0..per)
                    .map(|i| server.submit(move |_| t * per + i).expect("open"))
                    .collect();
                for h in handles {
                    h.join().expect("job ok");
                }
            });
        }
    });
}

fn bench_throughput(c: &mut Criterion) {
    for sharded in [false, true] {
        let label = if sharded { "sharded" } else { "single_queue" };
        let mut g = c.benchmark_group(format!("ingress_throughput_{label}"));
        g.throughput(Throughput::Elements(JOBS));
        for submitters in [1u64, 2, 4, 8] {
            let srv = server(sharded);
            g.bench_function(format!("{submitters}_submitters"), |b| {
                b.iter(|| burst(&srv, submitters));
            });
            srv.shutdown();
        }
        g.finish();
    }
}

/// Latency of submit → job-body completion, measured inside the job.
fn latency_table(_c: &mut Criterion) {
    println!("\n== ingress_latency (submit -> completion) ==");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "ingress", "submitters", "p50", "p99", "max"
    );
    for sharded in [false, true] {
        for submitters in [1usize, 4, 8] {
            let srv = server(sharded);
            // Warm the team up before measuring.
            burst(&srv, submitters as u64);

            let lats: Vec<Duration> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..submitters)
                    .map(|_| {
                        let srv = &srv;
                        s.spawn(move || {
                            let per = JOBS as usize / submitters;
                            let mut local = Vec::with_capacity(per);
                            for _ in 0..per {
                                let t0 = Instant::now();
                                let h = srv.submit(move |_| t0.elapsed()).expect("open");
                                local.push(h);
                            }
                            local
                                .into_iter()
                                .map(|h| h.join().expect("job ok"))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("submitter"))
                    .collect()
            });
            srv.shutdown();

            let mut lats = lats;
            lats.sort_unstable();
            let pick = |q: f64| lats[((lats.len() - 1) as f64 * q) as usize];
            println!(
                "{:<14} {:>10} {:>12?} {:>12?} {:>12?}",
                if sharded { "sharded" } else { "single_queue" },
                submitters,
                pick(0.50),
                pick(0.99),
                lats.last().copied().unwrap_or_default(),
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_throughput, latency_table
}
criterion_main!(benches);
