//! Ingress-tier benchmark: submission throughput and handle-completion
//! latency of the persistent task server, as the number of submitter
//! threads grows — across the idle-policy and placement axes this PR
//! tree exposes:
//!
//! * sharded (one ingress shard per NUMA zone) vs single-queue;
//! * event-driven idling (`park_idle`, the doorbell path) vs the pure
//!   spinning baseline (`park_idle(false)`);
//! * anonymous claim-path submitters vs registered (pinned-lane) ones.
//!
//! Three sections:
//!
//! * Criterion-style throughput groups (`jobs/s` per configuration): one
//!   iteration = a full burst of `JOBS` trivial jobs pushed by N
//!   submitter threads and joined.
//! * A latency table (p50/p99 of submit → job-body-completion under
//!   continuous load), printed once per configuration.
//! * A parked-wake table: the server is allowed to park *everyone*, then
//!   a single job is timed — the doorbell's wake-from-idle latency that
//!   the spinning baseline buys with a permanently burned core.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xgomp_core::{DlbConfig, DlbStrategy, MachineTopology, RuntimeConfig};
use xgomp_service::{ServerConfig, TaskServer};

const JOBS: u64 = 4_000;
const THREADS: usize = 8;

/// Sharded = two-socket topology (one ingress shard per zone);
/// single-queue = everything on one zone, collapsing to one shard.
/// `park` selects the event-driven idle path vs the spinning baseline.
fn server(sharded: bool, park: bool) -> TaskServer {
    let topology = if sharded {
        MachineTopology::new(2, THREADS / 2, 1)
    } else {
        MachineTopology::new(1, THREADS, 1)
    };
    let runtime = RuntimeConfig::xgomptb(THREADS)
        .topology(topology)
        .park_idle(park)
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(256));
    TaskServer::start(
        ServerConfig::new(THREADS)
            .runtime(runtime)
            .max_in_flight(4_096)
            .lanes_per_shard(THREADS + 1) // room to pin every submitter
            .adapt_every(0), // fixed config: measure ingress, not tuning
    )
}

/// Pushes `JOBS` trivial jobs from `submitters` threads and joins them.
/// `registered` pins each submitter to a reserved lane.
fn burst(server: &TaskServer, submitters: u64, registered: bool) {
    std::thread::scope(|s| {
        for t in 0..submitters {
            let server = &server;
            s.spawn(move || {
                let per = JOBS / submitters;
                let mut sub = registered
                    .then(|| server.register_submitter(t as usize % server.stats().shards));
                let handles: Vec<_> = (0..per)
                    .map(|i| match &mut sub {
                        Some(sub) => sub.submit(move |_| t * per + i).expect("open"),
                        None => server.submit(move |_| t * per + i).expect("open"),
                    })
                    .collect();
                for h in handles {
                    h.join().expect("job ok");
                }
            });
        }
    });
}

fn bench_throughput(c: &mut Criterion) {
    // The headline axis: sharded vs single-queue (event-driven idling
    // on, anonymous submitters — comparable with the pre-doorbell
    // numbers tracked in CHANGES.md).
    for sharded in [false, true] {
        let label = if sharded { "sharded" } else { "single_queue" };
        let mut g = c.benchmark_group(format!("ingress_throughput_{label}"));
        g.throughput(Throughput::Elements(JOBS));
        for submitters in [1u64, 2, 4, 8] {
            let srv = server(sharded, true);
            g.bench_function(format!("{submitters}_submitters"), |b| {
                b.iter(|| burst(&srv, submitters, false));
            });
            srv.shutdown();
        }
        g.finish();
    }
    // Idle-policy axis at the contended point: parking must not tax a
    // busy server (it never reaches the parking path under load).
    {
        let mut g = c.benchmark_group("ingress_throughput_idle_policy");
        g.throughput(Throughput::Elements(JOBS));
        for park in [false, true] {
            let srv = server(true, park);
            let label = if park { "park_doorbell" } else { "spin" };
            g.bench_function(format!("{label}_8_submitters"), |b| {
                b.iter(|| burst(&srv, 8, false));
            });
            srv.shutdown();
        }
        g.finish();
    }
    // Submission-path axis: registered (pinned SPSC lane, no claims) vs
    // anonymous (claim rotation).
    {
        let mut g = c.benchmark_group("ingress_throughput_submitter_kind");
        g.throughput(Throughput::Elements(JOBS));
        for registered in [false, true] {
            let srv = server(true, true);
            let label = if registered {
                "registered"
            } else {
                "anonymous"
            };
            g.bench_function(format!("{label}_8_submitters"), |b| {
                b.iter(|| burst(&srv, 8, registered));
            });
            srv.shutdown();
        }
        g.finish();
    }
}

fn quantiles(mut lats: Vec<Duration>) -> (Duration, Duration, Duration) {
    lats.sort_unstable();
    let pick = |q: f64| lats[((lats.len() - 1) as f64 * q) as usize];
    (
        pick(0.50),
        pick(0.99),
        lats.last().copied().unwrap_or_default(),
    )
}

/// Latency of submit → job-body completion under continuous load.
fn latency_table(_c: &mut Criterion) {
    println!("\n== ingress_latency (submit -> completion, loaded) ==");
    println!(
        "{:<6} {:<14} {:>10} {:>12} {:>12} {:>12}",
        "idle", "ingress", "submitters", "p50", "p99", "max"
    );
    for park in [false, true] {
        for sharded in [false, true] {
            for submitters in [1usize, 4, 8] {
                let srv = server(sharded, park);
                // Warm the team up before measuring.
                burst(&srv, submitters as u64, false);

                let lats: Vec<Duration> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..submitters)
                        .map(|_| {
                            let srv = &srv;
                            s.spawn(move || {
                                let per = JOBS as usize / submitters;
                                let mut local = Vec::with_capacity(per);
                                for _ in 0..per {
                                    let t0 = Instant::now();
                                    let h = srv.submit(move |_| t0.elapsed()).expect("open");
                                    local.push(h);
                                }
                                local
                                    .into_iter()
                                    .map(|h| h.join().expect("job ok"))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("submitter"))
                        .collect()
                });
                srv.shutdown();

                let (p50, p99, max) = quantiles(lats);
                println!(
                    "{:<6} {:<14} {:>10} {:>12?} {:>12?} {:>12?}",
                    if park { "park" } else { "spin" },
                    if sharded { "sharded" } else { "single_queue" },
                    submitters,
                    p50,
                    p99,
                    max,
                );
            }
        }
    }
}

/// Wake-from-fully-idle latency: everyone parked, one job submitted.
fn parked_wake_table(_c: &mut Criterion) {
    const PROBES: usize = 200;
    println!("\n== ingress_wake_latency (fully parked -> first job done) ==");
    println!("{:<6} {:>12} {:>12} {:>12}", "idle", "p50", "p99", "max");
    for park in [true, false] {
        let srv = server(true, park);
        burst(&srv, 4, false); // warm-up
        let mut lats = Vec::with_capacity(PROBES);
        for _ in 0..PROBES {
            if park {
                // Wait for the whole team (master included) to park.
                let deadline = Instant::now() + Duration::from_secs(10);
                while srv.parked_workers() < THREADS {
                    assert!(Instant::now() < deadline, "team never parked");
                    std::hint::spin_loop();
                }
            } else {
                // Spinning baseline: an equivalent quiet period.
                std::thread::sleep(Duration::from_micros(200));
            }
            let t0 = Instant::now();
            let h = srv.submit(move |_| t0.elapsed()).expect("open");
            lats.push(h.join().expect("job ok"));
        }
        srv.shutdown();
        let (p50, p99, max) = quantiles(lats);
        println!(
            "{:<6} {:>12?} {:>12?} {:>12?}",
            if park { "park" } else { "spin" },
            p50,
            p99,
            max,
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_throughput, latency_table, parked_wake_table
}
criterion_main!(benches);
