//! Criterion-style throughput comparison of the `parallel_for`
//! schedules on the skewed triangular kernel (the statically
//! unbalanceable case), plus a uniform-cost baseline — the quick
//! regression companion of the `loop_schedules` binary's full matrix.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xgomp_bots::dataloops::{CostProfile, Kernel, Triangular};
use xgomp_core::{DlbConfig, DlbStrategy, LoopSchedule, MachineTopology, Runtime, RuntimeConfig};

const N: u64 = 4_000;
const THREADS: usize = 8;

fn runtime() -> Runtime {
    Runtime::new(
        RuntimeConfig::xgomptb(THREADS)
            .topology(MachineTopology::new(2, THREADS / 2, 1))
            .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(64)),
    )
}

fn bench_schedules(c: &mut Criterion) {
    for profile in [CostProfile::Skewed, CostProfile::Uniform] {
        let kernel = Triangular::new(N, profile, 11);
        let expect = kernel.seq_checksum();
        let mut group = c.benchmark_group(format!("parallel_for/{}", profile.name()));
        group.throughput(Throughput::Elements(N));
        for sched in [
            LoopSchedule::Static,
            LoopSchedule::Dynamic(64),
            LoopSchedule::Guided(16),
            LoopSchedule::Adaptive,
        ] {
            let rt = runtime();
            let kernel = &kernel;
            group.bench_function(sched.name(), |b| {
                b.iter(|| {
                    let out = rt.parallel(|ctx| {
                        let acc = AtomicU64::new(0);
                        ctx.parallel_for(0..kernel.len(), sched, |i, _| {
                            acc.fetch_add(kernel.value(i), Ordering::Relaxed);
                        });
                        acc.load(Ordering::Relaxed)
                    });
                    assert_eq!(out.result, expect);
                });
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    targets = bench_schedules
}
criterion_main!(benches);
