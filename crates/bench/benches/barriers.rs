//! Barrier ablation: the same XQueue scheduler under the three barrier
//! designs (centralized lock, shared atomic counter, distributed tree),
//! measured as whole-region cost for a fixed task storm. Isolates the
//! §III-B contribution (XGOMP → XGOMPTB).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xgomp_core::{BarrierKind, RuntimeConfig};

const TASKS: usize = 2_000;

fn bench_barriers(c: &mut Criterion) {
    let threads = 4;
    let mut g = c.benchmark_group("barrier_region_cost");
    g.throughput(Throughput::Elements(TASKS as u64));
    for (label, kind) in [
        ("centralized", BarrierKind::Centralized),
        ("atomic_count", BarrierKind::AtomicCount),
        ("tree", BarrierKind::Tree),
    ] {
        g.bench_function(label, |b| {
            let rt = RuntimeConfig::xgomptb(threads).barrier(kind).build();
            b.iter(|| {
                let out = rt.parallel(|ctx| {
                    ctx.scope(|s| {
                        for _ in 0..TASKS {
                            s.spawn(|_| std::hint::black_box(()));
                        }
                    });
                });
                std::hint::black_box(out.wall);
            });
        });
    }
    g.finish();
}

fn bench_empty_region(c: &mut Criterion) {
    // Pure barrier open/close cost (no tasks at all).
    let mut g = c.benchmark_group("empty_region");
    for (label, kind) in [
        ("centralized", BarrierKind::Centralized),
        ("atomic_count", BarrierKind::AtomicCount),
        ("tree", BarrierKind::Tree),
    ] {
        g.bench_function(label, |b| {
            let rt = RuntimeConfig::xgomptb(4).barrier(kind).build();
            b.iter(|| {
                std::hint::black_box(rt.parallel(|_| ()).wall);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_barriers, bench_empty_region
}
criterion_main!(benches);
