//! The headline micro-benchmark: how fast can each runtime push a storm
//! of empty fine-grained tasks through a region? This is the
//! tasks-per-second number behind Fig. 8's batch-size-1 column
//! (XGOMPTB 7.8 M tasks/s vs GOMP 40 K tasks/s on the paper's machine).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use xgomp_core::{DlbConfig, DlbStrategy, RuntimeConfig};

const TASKS: usize = 5_000;

fn storm(rt: &xgomp_core::Runtime) {
    let out = rt.parallel(|ctx| {
        ctx.scope(|s| {
            for _ in 0..TASKS {
                s.spawn(|_| std::hint::black_box(()));
            }
        });
    });
    std::hint::black_box(out.wall);
}

fn bench_task_storm(c: &mut Criterion) {
    let threads = 4;
    let mut g = c.benchmark_group("empty_task_storm");
    g.throughput(Throughput::Elements(TASKS as u64));
    let configs = [
        ("GOMP", RuntimeConfig::gomp(threads)),
        ("LOMP", RuntimeConfig::lomp(threads)),
        ("XGOMP", RuntimeConfig::xgomp(threads)),
        ("XGOMPTB", RuntimeConfig::xgomptb(threads)),
        (
            "XGOMPTB+NA-WS",
            RuntimeConfig::xgomptb(threads).dlb(DlbConfig::new(DlbStrategy::WorkSteal)),
        ),
    ];
    for (label, cfg) in configs {
        g.bench_function(label, |b| {
            let rt = cfg.clone().build();
            b.iter(|| storm(&rt));
        });
    }
    g.finish();
}

fn bench_nested_storm(c: &mut Criterion) {
    // Recursive spawning (fib-shaped) rather than flat: stresses the
    // taskwait help loop and dependency counting.
    let mut g = c.benchmark_group("fib18_region");
    for (label, cfg) in [
        ("GOMP", RuntimeConfig::gomp(4)),
        ("XGOMPTB", RuntimeConfig::xgomptb(4)),
    ] {
        g.bench_function(label, |b| {
            let rt = cfg.clone().build();
            b.iter(|| {
                let out = rt.parallel(|ctx| xgomp_bots::fib::par(ctx, 18));
                assert_eq!(out.result, 2584);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_task_storm, bench_nested_storm
}
criterion_main!(benches);
