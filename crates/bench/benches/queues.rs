//! Micro-benchmarks: the lock-less B-queue / XQueue lattice against a
//! mutex-guarded queue baseline (the data-structure-level version of the
//! paper's GOMP-vs-XQueue comparison).

use std::collections::VecDeque;
use std::ptr::NonNull;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parking_lot::Mutex;
use xgomp_xqueue::{BQueue, PushCursor, XQueueLattice};

const OPS: u64 = 10_000;

fn leak(v: u64) -> NonNull<u64> {
    NonNull::new(Box::into_raw(Box::new(v))).unwrap()
}

unsafe fn unleak(p: NonNull<u64>) {
    drop(unsafe { Box::from_raw(p.as_ptr()) });
}

fn bench_spsc(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc_pingpong");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("bqueue", |b| {
        let q = BQueue::<u64>::with_capacity(256);
        b.iter(|| unsafe {
            for i in 0..OPS {
                q.enqueue(leak(i)).unwrap();
                unleak(q.dequeue().unwrap());
            }
        });
    });
    g.bench_function("mutex_vecdeque", |b| {
        let q: Mutex<VecDeque<NonNull<u64>>> = Mutex::new(VecDeque::with_capacity(256));
        b.iter(|| unsafe {
            for i in 0..OPS {
                q.lock().push_back(leak(i));
                let p = q.lock().pop_front().unwrap();
                unleak(p);
            }
        });
    });
    g.finish();
}

fn bench_lattice(c: &mut Criterion) {
    let mut g = c.benchmark_group("xqueue_lattice");
    g.throughput(Throughput::Elements(OPS));
    for n in [2usize, 4, 8] {
        g.bench_function(format!("push_pop_rr_n{n}"), |b| {
            let l = XQueueLattice::<u64>::new(n, 256);
            let mut cursor = PushCursor::new(n, 0);
            b.iter(|| unsafe {
                for i in 0..OPS {
                    let target = cursor.next();
                    match l.push(0, target, leak(i)) {
                        Ok(()) => {}
                        Err(p) => unleak(p),
                    }
                    // Consume from the pushed-to row like its owner would.
                    if let Some(p) = l.pop(target) {
                        unleak(p);
                    }
                }
                for w in 0..n {
                    l.drain_with(w, |p| unleak(p));
                }
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_spsc, bench_lattice
}
criterion_main!(benches);
