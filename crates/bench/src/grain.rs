//! Synthetic task-grain workload for the Figs. 9/10 surfaces (§VIII).
//!
//! The paper sweeps *task size* (per-task `rdtscp` cycles) against
//! *steal size* (Eq. 1) and plots DLB improvement over static balancing.
//! This workload controls both axes precisely: leaf tasks spin for an
//! exact cycle budget, and load imbalance comes from a deterministic
//! heavy tail — most leaves cost `task_cycles`, a fixed 2% cost 32× that
//! — so static round-robin spreads task *counts* evenly but not *work*.

use xgomp_bots::rng::mix64;
use xgomp_core::{clock, TaskCtx};

/// Synthetic workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct GrainParams {
    /// Producer tasks spawned by the master (work sources).
    pub n_groups: usize,
    /// Leaf tasks per producer.
    pub fan: usize,
    /// Baseline leaf cost in timestamp cycles.
    pub task_cycles: u64,
}

impl GrainParams {
    /// Sizes the workload so the whole run costs roughly
    /// `budget_cycles` of single-core compute at the given grain, with
    /// bounded task counts. Task counts are kept low enough that the
    /// heavy tail produces *per-worker* work variance (thousands of
    /// tasks per worker would average it away — the paper's imbalance
    /// comes from skewed task sizes, not skewed counts).
    pub fn for_task_size(task_cycles: u64, budget_cycles: u64) -> Self {
        // Average weight of the heavy tail: 0.96·1 + 0.04·64 ≈ 3.5.
        let avg = (task_cycles as f64 * 3.5).max(1.0);
        let n_tasks = ((budget_cycles as f64 / avg) as usize).clamp(256, 16_384);
        let n_groups = 8;
        GrainParams {
            n_groups,
            fan: n_tasks.div_ceil(n_groups),
            task_cycles,
        }
    }

    /// Total leaf tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_groups * self.fan
    }
}

/// Spins for ~`cycles` timestamp cycles.
#[inline]
pub fn spin_cycles(cycles: u64) {
    let t0 = clock::now();
    while clock::now().wrapping_sub(t0) < cycles {
        std::hint::spin_loop();
    }
}

/// Leaf weight: deterministic heavy tail (4% of leaves cost 64×, so the
/// heavies carry ~73% of the total work — the skew that makes static
/// count-balanced distribution work-imbalanced).
#[inline]
fn weight(leaf_id: u64) -> u64 {
    if mix64(leaf_id).is_multiple_of(25) {
        64
    } else {
        1
    }
}

/// Runs the workload on an open region; returns the number of leaf
/// tasks executed (for sanity checks).
pub fn run(ctx: &TaskCtx<'_>, p: &GrainParams) -> u64 {
    let fan = p.fan;
    let cycles = p.task_cycles;
    ctx.scope(|s| {
        for g in 0..p.n_groups {
            s.spawn(move |ctx| {
                ctx.scope(|s2| {
                    for j in 0..fan {
                        let leaf = (g * fan + j) as u64;
                        s2.spawn(move |_| {
                            spin_cycles(cycles * weight(leaf));
                        });
                    }
                });
            });
        }
    });
    p.n_tasks() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgomp_core::{Runtime, RuntimeConfig};

    #[test]
    fn sizing_respects_budget_bounds() {
        for s in [10u64, 100, 1_000, 10_000, 100_000] {
            let p = GrainParams::for_task_size(s, 50_000_000);
            assert!(p.n_tasks() >= 256);
            assert!(p.n_tasks() <= 66_000);
        }
    }

    #[test]
    fn heavy_tail_is_roughly_four_percent() {
        let heavy = (0..100_000u64).filter(|&i| weight(i) == 64).count();
        assert!((2_500..6_000).contains(&heavy), "heavy={heavy}");
    }

    #[test]
    fn workload_runs_and_counts_tasks() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let p = GrainParams {
            n_groups: 4,
            fan: 64,
            task_cycles: 100,
        };
        let out = rt.parallel(|ctx| run(ctx, &p));
        assert_eq!(out.result, 256);
        // groups + leaves were all real tasks
        assert_eq!(out.stats.total().tasks_created, 4 + 256);
    }
}
