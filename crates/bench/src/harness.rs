//! Shared experiment machinery: CLI options, timed/verified runs.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;
use std::sync::OnceLock;

use xgomp_bots::{BotsApp, Scale};
use xgomp_core::{RuntimeConfig, TeamStats};

/// Options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpCtx {
    /// Input scale.
    pub scale: Scale,
    /// Team size.
    pub threads: usize,
    /// Repetitions (median reported).
    pub reps: usize,
    /// Directory for CSV outputs.
    pub out_dir: PathBuf,
}

impl Default for ExpCtx {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        ExpCtx {
            scale: Scale::Quick,
            threads: (2 * cores).max(4),
            reps: 3,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExpCtx {
    /// A fast configuration for smoke tests and the `figures` bench.
    pub fn smoke() -> Self {
        ExpCtx {
            scale: Scale::Test,
            threads: 4,
            reps: 1,
            ..Self::default()
        }
    }
}

/// Parses the common CLI flags (see crate docs). Unknown flags abort
/// with usage help.
pub fn parse_args() -> ExpCtx {
    let mut ctx = ExpCtx::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned();
        let take = |name: &str| -> String {
            value.clone().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag {
            "--scale" => {
                ctx.scale = match take("--scale").as_str() {
                    "test" => Scale::Test,
                    "quick" => Scale::Quick,
                    "paper" => Scale::Paper,
                    other => {
                        eprintln!("unknown scale `{other}` (test|quick|paper)");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--threads" => {
                ctx.threads = take("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a number");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--reps" => {
                ctx.reps = take("--reps").parse().unwrap_or_else(|_| {
                    eprintln!("--reps expects a number");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out" => {
                ctx.out_dir = PathBuf::from(take("--out"));
                i += 2;
            }
            "--help" | "-h" => {
                println!("flags: --scale test|quick|paper  --threads N  --reps N  --out DIR");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    ctx
}

/// One timed, verified application run.
#[derive(Debug)]
pub struct Measured {
    /// Median wall-clock seconds over the repetitions.
    pub secs: f64,
    /// §V counter totals from the median run.
    pub stats: TeamStats,
}

/// Sequential-reference digests, computed once per (app, scale).
fn expected_digest(app: BotsApp, scale: Scale) -> u64 {
    static CACHE: OnceLock<Mutex<HashMap<(BotsApp, Scale), u64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&d) = cache.lock().unwrap().get(&(app, scale)) {
        return d;
    }
    let d = app.run_seq(scale);
    cache.lock().unwrap().insert((app, scale), d);
    d
}

/// Runs `app` on a runtime built from `cfg`, `reps` times; verifies the
/// digest against the sequential reference every time; returns the
/// median time and the stats of the median run.
pub fn time_app(cfg: &RuntimeConfig, app: BotsApp, scale: Scale, reps: usize) -> Measured {
    let expect = expected_digest(app, scale);
    let rt = cfg.clone().build();
    // Warmup run (first-touch allocation, thread spawn paths), excluded.
    let warm = rt.parallel(|ctx| app.run_par(ctx, scale));
    assert_eq!(warm.result, expect, "{} warmup wrong", app.name());
    let mut runs: Vec<(f64, TeamStats)> = (0..reps.max(1))
        .map(|_| {
            let out = rt.parallel(|ctx| app.run_par(ctx, scale));
            assert_eq!(
                out.result,
                expect,
                "{} produced a wrong result under {}",
                app.name(),
                cfg.name()
            );
            (out.wall.as_secs_f64(), out.stats)
        })
        .collect();
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Lower median: on a noisy shared host, scheduler outliers only
    // inflate, so the lower median is the better central estimate.
    let mid = (runs.len() - 1) / 2;
    let (secs, stats) = runs.swap_remove(mid);
    Measured { secs, stats }
}

/// Times an arbitrary region body (synthetic workloads, PoSp).
pub fn time_region<F>(cfg: &RuntimeConfig, reps: usize, mut body: F) -> Measured
where
    F: FnMut(&xgomp_core::TaskCtx<'_>),
{
    let rt = cfg.clone().build();
    let _warm = rt.parallel(|ctx| body(ctx));
    let mut runs: Vec<(f64, TeamStats)> = (0..reps.max(1))
        .map(|_| {
            let out = rt.parallel(|ctx| body(ctx));
            (out.wall.as_secs_f64(), out.stats)
        })
        .collect();
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mid = (runs.len() - 1) / 2;
    let (secs, stats) = runs.swap_remove(mid);
    Measured { secs, stats }
}

/// Pretty seconds: `12.3ms`, `1.234s`, …
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Pretty counts: `1.23M`, `45.6K`, …
pub fn fmt_count(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}B", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}
