//! One function per figure/table of the paper (DESIGN.md §5 maps each
//! to its binary). Every function returns [`Table`]s that the binaries
//! print and write to CSV; EXPERIMENTS.md records paper-vs-measured.

use xgomp_bots::{BotsApp, Scale};
use xgomp_core::{
    render_task_counts, render_timeline, DlbConfig, DlbStrategy, RuntimeConfig, StatsSnapshot,
};
use xgomp_posp::plot::{generate_par, PlotParams};

use crate::grain::{self, GrainParams};
use crate::harness::{fmt_count, fmt_secs, time_app, time_region, ExpCtx, Measured};
use crate::table::Table;

/// The five runtime presets of Figs. 1/4/5, in presentation order.
fn preset(name: &str, threads: usize) -> RuntimeConfig {
    match name {
        "GOMP" => RuntimeConfig::gomp(threads),
        "LOMP" => RuntimeConfig::lomp(threads),
        "XLOMP" => RuntimeConfig::xlomp(threads),
        "XGOMP" => RuntimeConfig::xgomp(threads),
        "XGOMPTB" => RuntimeConfig::xgomptb(threads),
        other => panic!("unknown preset {other}"),
    }
}

fn app_config(name: &str, app: BotsApp, ctx: &ExpCtx) -> RuntimeConfig {
    preset(name, ctx.threads).cost_model(app.suggested_cost_model())
}

// ---------------------------------------------------------------- Fig 1

/// Fig. 1: the motivation plot — GOMP vs LOMP vs XLOMP execution times
/// across the BOTS suite.
pub fn fig01(ctx: &ExpCtx) -> Table {
    let runtimes = ["GOMP", "LOMP", "XLOMP"];
    let mut t = Table::new(
        format!(
            "Fig. 1: BOTS execution time, {} threads (lower is better)",
            ctx.threads
        ),
        &["app", "GOMP", "LOMP", "XLOMP", "GOMP/XLOMP"],
    );
    for app in BotsApp::ALL {
        let times: Vec<f64> = runtimes
            .iter()
            .map(|r| time_app(&app_config(r, app, ctx), app, ctx.scale, ctx.reps).secs)
            .collect();
        t.row(vec![
            app.name().into(),
            fmt_secs(times[0]),
            fmt_secs(times[1]),
            fmt_secs(times[2]),
            format!("{:.1}x", times[0] / times[2].max(1e-9)),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Fig 3

/// Fig. 3: per-thread load-imbalance profile of Fib and Sort under
/// XGOMP: timeline summary (left) and task-count summary (right).
pub fn fig03(ctx: &ExpCtx) -> String {
    let mut out = String::new();
    for app in [BotsApp::Fib, BotsApp::Sort] {
        let cfg = RuntimeConfig::xgomp(ctx.threads)
            .cost_model(app.suggested_cost_model())
            .profiling(true);
        let rt = cfg.build();
        let run = rt.parallel(|c| app.run_par(c, ctx.scale));
        out.push_str(&format!("\n===== {} under XGOMP =====\n", app.name()));
        out.push_str(&render_timeline(&run.logs, 96));
        out.push_str(&render_task_counts(&run.stats.workers));
    }
    out
}

// ------------------------------------------------------------ Figs 4, 5

/// Figs. 4 and 5: absolute execution time of all five runtimes, and the
/// XGOMP/XGOMPTB improvement over GOMP derived from the same runs.
pub fn fig04_05(ctx: &ExpCtx) -> (Table, Table) {
    let runtimes = ["GOMP", "XGOMP", "XGOMPTB", "LOMP", "XLOMP"];
    let mut fig4 = Table::new(
        format!(
            "Fig. 4: absolute BOTS execution time, {} threads (lower is better)",
            ctx.threads
        ),
        &["app", "GOMP", "XGOMP", "XGOMPTB", "LOMP", "XLOMP"],
    );
    let mut fig5 = Table::new(
        "Fig. 5: improvement over GOMP (higher is better)",
        &["app", "XGOMP", "XGOMPTB"],
    );
    for app in BotsApp::ALL {
        let times: Vec<f64> = runtimes
            .iter()
            .map(|r| time_app(&app_config(r, app, ctx), app, ctx.scale, ctx.reps).secs)
            .collect();
        fig4.row(vec![
            app.name().into(),
            fmt_secs(times[0]),
            fmt_secs(times[1]),
            fmt_secs(times[2]),
            fmt_secs(times[3]),
            fmt_secs(times[4]),
        ]);
        fig5.row(vec![
            app.name().into(),
            format!("{:.1}x", times[0] / times[1].max(1e-9)),
            format!("{:.1}x", times[0] / times[2].max(1e-9)),
        ]);
    }
    (fig4, fig5)
}

// ---------------------------------------------------------------- Fig 6

/// Fig. 6: scaling — execution time vs thread count for GOMP, XGOMP,
/// XGOMPTB on every app.
pub fn fig06(ctx: &ExpCtx) -> Table {
    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    if !threads.contains(&ctx.threads) {
        threads.push(ctx.threads);
    }
    threads.sort_unstable();
    threads.dedup();
    let mut t = Table::new(
        "Fig. 6: scaling, execution time vs threads (lower is better)",
        &["app", "runtime", "threads", "time"],
    );
    for app in BotsApp::ALL {
        for rt_name in ["GOMP", "XGOMP", "XGOMPTB"] {
            for &n in &threads {
                let cfg = preset(rt_name, n).cost_model(app.suggested_cost_model());
                let m = time_app(&cfg, app, ctx.scale, ctx.reps);
                t.row(vec![
                    app.name().into(),
                    rt_name.into(),
                    n.to_string(),
                    fmt_secs(m.secs),
                ]);
            }
        }
    }
    t
}

// --------------------------------------------- Table I, Fig 7, Tables II/III

/// The DLB parameter grid for one scale (the paper's §VI-B sweep,
/// reduced at smaller scales to keep wall time sane).
fn dlb_grid(scale: Scale) -> Vec<DlbConfig> {
    let (vic, steal, tint, ploc): (&[usize], &[usize], &[u64], &[f64]) = match scale {
        Scale::Test => (&[1, 4], &[4, 32], &[100, 10_000], &[0.5, 1.0]),
        Scale::Quick => (&[1, 8, 24], &[1, 32], &[1_000, 100_000], &[0.03, 1.0]),
        Scale::Paper => (
            &[1, 8, 16, 24],
            &[1, 8, 16, 32],
            &[1_000, 10_000, 100_000],
            &[0.03, 0.5, 1.0],
        ),
    };
    let mut grid = Vec::new();
    for &v in vic {
        for &s in steal {
            for &t in tint {
                for &p in ploc {
                    grid.push(
                        DlbConfig::new(DlbStrategy::WorkSteal)
                            .n_victim(v)
                            .n_steal(s)
                            .t_interval(t)
                            .p_local(p),
                    );
                }
            }
        }
    }
    grid
}

/// Everything the §VI-B DLB study produces.
pub struct DlbStudy {
    /// Table I: best settings per app per strategy.
    pub table1: Table,
    /// Fig. 7: best NA-RP / NA-WS vs static (XGOMPTB).
    pub fig7: Table,
    /// Table II: runtime statistics under the best DLB settings.
    pub table2: Table,
    /// Table III: runtime statistics under static balancing.
    pub table3: Table,
}

fn stats_row(app: BotsApp, label: &str, secs: f64, s: &StatsSnapshot) -> Vec<String> {
    vec![
        app.name().into(),
        label.into(),
        fmt_secs(secs),
        fmt_count(s.ntasks_self),
        fmt_count(s.ntasks_local),
        fmt_count(s.ntasks_remote),
        fmt_count(s.ntasks_static_push),
        fmt_count(s.ntasks_imm_exec),
        fmt_count(s.nreq_sent),
        fmt_count(s.nreq_handled),
        fmt_count(s.nreq_has_steal),
        fmt_count(s.ntasks_stolen),
        fmt_count(s.nsteal_local),
    ]
}

const STATS_HEADERS: [&str; 13] = [
    "app",
    "strategy",
    "time",
    "self",
    "local",
    "remote",
    "static-push",
    "imm-exec",
    "req-sent",
    "req-handled",
    "req-w/steal",
    "total-steal",
    "local-steal",
];

/// Runs the full §VI-B study: parameter sweep per app per strategy,
/// best-vs-static comparison, and the statistics tables.
pub fn dlb_study(ctx: &ExpCtx) -> DlbStudy {
    let mut table1 = Table::new(
        "Table I: optimal DLB settings (sweep winners)",
        &[
            "app",
            "strategy",
            "n_victim",
            "n_steal",
            "t_interval",
            "p_local",
            "time",
        ],
    );
    let mut fig7 = Table::new(
        "Fig. 7: best DLB vs static load balancing (lower is better)",
        &[
            "app",
            "STATIC",
            "BEST(NA-RP)",
            "BEST(NA-WS)",
            "RP gain",
            "WS gain",
        ],
    );
    let mut table2 = Table::new(
        "Table II: runtime statistics with NA-RP / NA-WS",
        &STATS_HEADERS,
    );
    let mut table3 = Table::new("Table III: runtime statistics with SLB", &STATS_HEADERS);

    for app in BotsApp::ALL {
        let base = RuntimeConfig::xgomptb(ctx.threads).cost_model(app.suggested_cost_model());
        // Static baseline (+ its §V statistics → Table III).
        let slb = time_app(&base, app, ctx.scale, ctx.reps);
        table3.row(stats_row(app, "SLB", slb.secs, &slb.stats.total()));

        let mut best_times = Vec::new();
        for strategy in [DlbStrategy::RedirectPush, DlbStrategy::WorkSteal] {
            let mut best: Option<(f64, DlbConfig, Measured)> = None;
            for cfg in dlb_grid(ctx.scale) {
                let cfg = DlbConfig { strategy, ..cfg };
                let run = time_app(&base.clone().dlb(cfg), app, ctx.scale, 1);
                if best.as_ref().map(|(b, _, _)| run.secs < *b).unwrap_or(true) {
                    best = Some((run.secs, cfg, run));
                }
            }
            let (_, cfg, _) = best.as_ref().unwrap();
            // Re-measure the winner at full reps for stable reporting.
            let confirmed = time_app(&base.clone().dlb(*cfg), app, ctx.scale, ctx.reps);
            table1.row(vec![
                app.name().into(),
                strategy.name().into(),
                cfg.n_victim.to_string(),
                cfg.n_steal.to_string(),
                cfg.t_interval.to_string(),
                format!("{:.2}", cfg.p_local),
                fmt_secs(confirmed.secs),
            ]);
            table2.row(stats_row(
                app,
                strategy.name(),
                confirmed.secs,
                &confirmed.stats.total(),
            ));
            best_times.push(confirmed.secs);
        }
        fig7.row(vec![
            app.name().into(),
            fmt_secs(slb.secs),
            fmt_secs(best_times[0]),
            fmt_secs(best_times[1]),
            format!("{:.2}x", slb.secs / best_times[0].max(1e-9)),
            format!("{:.2}x", slb.secs / best_times[1].max(1e-9)),
        ]);
    }
    DlbStudy {
        table1,
        fig7,
        table2,
        table3,
    }
}

// ---------------------------------------------------------------- Fig 8

/// Fig. 8: PoSp throughput (MH/s) vs task batch size, GOMP vs XGOMPTB.
pub fn fig08(ctx: &ExpCtx) -> Table {
    let (k, batches): (u32, &[usize]) = match ctx.scale {
        Scale::Test => (10, &[1, 16, 256]),
        Scale::Quick => (14, &[1, 4, 16, 64, 256, 1024, 4096]),
        Scale::Paper => (17, &[1, 4, 16, 64, 256, 1024, 4096, 8192, 16384]),
    };
    let mut t = Table::new(
        format!("Fig. 8: PoSp throughput vs batch size (2^{k} puzzles, MH/s, higher is better)"),
        &["batch", "GOMP MH/s", "XGOMPTB MH/s", "speedup"],
    );
    for &batch in batches {
        let params = PlotParams {
            k,
            batch,
            challenge: 0xC41A,
            n_buckets: 256,
        };
        let hashes = params.n_puzzles() as f64;
        let mut rates = Vec::new();
        for rt_name in ["GOMP", "XGOMPTB"] {
            let cfg = preset(rt_name, ctx.threads);
            let m = time_region(&cfg, ctx.reps, |c| {
                let plot = generate_par(c, &params);
                assert_eq!(plot.len(), params.n_puzzles());
            });
            rates.push(hashes / m.secs / 1e6);
        }
        t.row(vec![
            batch.to_string(),
            format!("{:.2}", rates[0]),
            format!("{:.2}", rates[1]),
            format!("{:.2}x", rates[1] / rates[0].max(1e-12)),
        ]);
    }
    t
}

// ----------------------------------------------------------- Figs 9, 10

/// Steal-size axis of the surfaces: Eq. 1 values ≈ {2,10,64,404,2560}
/// realized by concrete (n_victim, n_steal, t_interval) triples.
fn steal_points() -> Vec<(f64, DlbConfig)> {
    let mk = |v: usize, s: usize, t: u64| {
        DlbConfig::new(DlbStrategy::WorkSteal)
            .n_victim(v)
            .n_steal(s)
            .t_interval(t)
    };
    vec![
        (2.0, mk(1, 8, 10_000)),
        (10.0, mk(4, 10, 10_000)),
        (64.0, mk(8, 32, 10_000)),
        (404.0, mk(24, 67, 10_000)),
        (2560.0, mk(24, 320, 1_000)),
    ]
}

/// Figs. 9/10: DLB improvement over static XGOMPTB as a function of
/// task size × steal size (the 3-D surface, printed as a grid).
pub fn surface(ctx: &ExpCtx, strategy: DlbStrategy) -> Table {
    let fig = match strategy {
        DlbStrategy::RedirectPush => "Fig. 9 (NA-RP)",
        DlbStrategy::WorkSteal => "Fig. 10 (NA-WS)",
    };
    let budget: u64 = match ctx.scale {
        Scale::Test => 20_000_000,
        Scale::Quick => 150_000_000,
        Scale::Paper => 1_000_000_000,
    };
    let task_sizes: &[u64] = &[10, 100, 1_000, 10_000, 100_000];
    let mut t = Table::new(
        format!("{fig}: improvement over static (×) by task size × steal size"),
        &["task_cycles", "s=2", "s=10", "s=64", "s=404", "s=2560"],
    );
    // p_local follows the Table IV guidance per task-size class.
    for &size in task_sizes {
        let p = GrainParams::for_task_size(size, budget);
        // Tasks model memory traffic proportional to their compute (the
        // paper's tasks touch real arrays; pure spin would make NUMA
        // locality free). Calibrated so a remote execution costs ~5-10%
        // of the task's own time, as on real NUMA parts.
        let accesses = (size / 5_000).clamp(1, 100);
        let base = RuntimeConfig::xgomptb(ctx.threads)
            .cost_model(xgomp_core::CostModel::data_heavy(accesses));
        let t_static = time_region(&base, ctx.reps, |c| {
            grain::run(c, &p);
        })
        .secs;
        let mut row = vec![size.to_string()];
        for (_s, cfg) in steal_points() {
            let p_local = xgomp_core::guidelines::recommend_dlb(size).p_local;
            let dlb = DlbConfig {
                strategy,
                p_local,
                ..cfg
            };
            let t_dlb = time_region(&base.clone().dlb(dlb), ctx.reps, |c| {
                grain::run(c, &p);
            })
            .secs;
            row.push(format!("{:.2}", t_static / t_dlb.max(1e-9)));
        }
        t.row(row);
    }
    t
}

// ------------------------------------------------- §VI-A task-size survey

/// The §VI-A task-size characterization: per-app task-size histograms
/// measured with the §V profiler (the data behind the paper's "we order
/// applications based on their task size" and Table IV's classes).
pub fn task_sizes(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "§VI-A: measured task-size distribution per app (profiler TASK events)",
        &["app", "tasks", "mean cycles", "modal decade", "min", "max"],
    );
    for app in BotsApp::ALL {
        let cfg = RuntimeConfig::xgomptb(ctx.threads).profiling(true);
        let rt = cfg.build();
        let run = rt.parallel(|c| app.run_par(c, ctx.scale));
        let h = xgomp_core::TaskSizeHistogram::from_logs(&run.logs);
        t.row(vec![
            app.name().into(),
            h.count.to_string(),
            h.mean().to_string(),
            format!("10^{}", h.modal_decade().ilog10()),
            h.min_ticks.to_string(),
            h.max_ticks.to_string(),
        ]);
    }
    t
}

// -------------------------------------------------------- Table IV, Fig 11

/// Table IV: the tuning guidelines, as encoded in
/// [`xgomp_core::guidelines`].
pub fn table4() -> Table {
    let mut t = Table::new(
        "Table IV: optimal DLB settings per task size (guidelines)",
        &[
            "task size (cycles)",
            "best DLB",
            "best P_local",
            "steal size",
            "realized config",
        ],
    );
    for g in xgomp_core::guidelines::guidelines() {
        t.row(vec![
            g.label.into(),
            g.strategy.name().into(),
            format!("{:.0}%", g.p_local * 100.0),
            if g.steal_size.1.is_infinite() {
                format!(">{:.0}", g.steal_size.0)
            } else {
                format!("{:.0}-{:.0}", g.steal_size.0, g.steal_size.1)
            },
            format!(
                "v={} s={} t={} p={:.2}",
                g.config.n_victim, g.config.n_steal, g.config.t_interval, g.config.p_local
            ),
        ]);
    }
    t
}

/// Fig. 11: STATIC vs NA-RP vs NA-WS with Table IV-guided parameters on
/// every app.
pub fn fig11(ctx: &ExpCtx) -> Table {
    let mut t = Table::new(
        "Fig. 11: guided DLB vs static (lower is better)",
        &["app", "STATIC", "NA-RP", "NA-WS", "best"],
    );
    for app in BotsApp::ALL {
        let base = RuntimeConfig::xgomptb(ctx.threads).cost_model(app.suggested_cost_model());
        let guided = xgomp_core::guidelines::recommend_dlb(app.typical_task_cycles());
        let t_static = time_app(&base, app, ctx.scale, ctx.reps).secs;
        let t_rp = time_app(
            &base.clone().dlb(DlbConfig {
                strategy: DlbStrategy::RedirectPush,
                ..guided
            }),
            app,
            ctx.scale,
            ctx.reps,
        )
        .secs;
        let t_ws = time_app(
            &base.clone().dlb(DlbConfig {
                strategy: DlbStrategy::WorkSteal,
                ..guided
            }),
            app,
            ctx.scale,
            ctx.reps,
        )
        .secs;
        let best = if t_static <= t_rp && t_static <= t_ws {
            "STATIC"
        } else if t_rp <= t_ws {
            "NA-RP"
        } else {
            "NA-WS"
        };
        t.row(vec![
            app.name().into(),
            fmt_secs(t_static),
            fmt_secs(t_rp),
            fmt_secs(t_ws),
            best.into(),
        ]);
    }
    t
}
