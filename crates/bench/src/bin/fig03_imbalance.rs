//! Reproduces Fig. 3: per-thread timeline + task-count imbalance of
//! Fib and Sort under XGOMP (profiling enabled).
fn main() {
    let ctx = xgomp_bench::parse_args();
    print!("{}", xgomp_bench::experiments::fig03(&ctx));
}
