//! Reproduces Fig. 4: absolute execution time, five runtimes × 9 apps.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let (fig4, _fig5) = xgomp_bench::experiments::fig04_05(&ctx);
    fig4.print();
    fig4.write_csv(&ctx.out_dir, "fig04").expect("csv");
}
