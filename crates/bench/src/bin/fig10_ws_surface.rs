//! Reproduces Fig. 10: NA-WS improvement surface (task × steal size).
fn main() {
    let ctx = xgomp_bench::parse_args();
    let t = xgomp_bench::experiments::surface(&ctx, xgomp_core::DlbStrategy::WorkSteal);
    t.print();
    t.write_csv(&ctx.out_dir, "fig10").expect("csv");
}
