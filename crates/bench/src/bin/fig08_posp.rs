//! Reproduces Fig. 8: PoSp throughput vs batch size, GOMP vs XGOMPTB.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let t = xgomp_bench::experiments::fig08(&ctx);
    t.print();
    t.write_csv(&ctx.out_dir, "fig08").expect("csv");
}
