//! Reproduces Fig. 6: execution time vs thread count per app.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let t = xgomp_bench::experiments::fig06(&ctx);
    t.print();
    t.write_csv(&ctx.out_dir, "fig06").expect("csv");
}
