//! §VI-A survey: measured per-app task-size distributions (the data
//! behind the paper's task-size ordering and Table IV's classes).
fn main() {
    let ctx = xgomp_bench::parse_args();
    let t = xgomp_bench::experiments::task_sizes(&ctx);
    t.print();
    t.write_csv(&ctx.out_dir, "task_sizes").expect("csv");
}
