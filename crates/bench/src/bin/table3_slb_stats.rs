//! Reproduces Table III: runtime statistics under static balancing.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let study = xgomp_bench::experiments::dlb_study(&ctx);
    study.table3.print();
    study.table3.write_csv(&ctx.out_dir, "table3").expect("csv");
}
