//! Continuous-observability pipeline driver for CI: starts a
//! [`TaskServer`] with both halves of the pipeline on — the streaming
//! trace collector rolling segments into `--dir` and the in-process
//! `/metrics` + `/healthz` listener on `--addr` — then sustains a mixed
//! jobs-plus-loops load for `--secs` seconds so an *external* scraper
//! (CI uses `python3 -c 'urllib...'`) can exercise the endpoint over
//! real TCP while the server is hot.
//!
//! ```text
//! cargo run --release -p xgomp-bench --bin obs_pipeline -- \
//!     --addr 127.0.0.1:9184 --dir results/obs --secs 5
//! ```
//!
//! On the way out it shuts the server down and re-checks the pipeline
//! contract from the rolled files: zero collector drops, ≥ 3 segment
//! rotations, and exact `drained + dropped == emitted` conservation in
//! the final on-disk summary.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use xgomp_bench::harness::fmt_count;
use xgomp_core::{chrome_json_from_dir, LoopSchedule, RuntimeConfig, TraceLevel};
use xgomp_service::{ServerConfig, TaskServer};

struct Opts {
    addr: String,
    dir: PathBuf,
    secs: u64,
    threads: usize,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: "127.0.0.1:0".to_string(),
        dir: std::env::temp_dir().join(format!("xgomp-obs-pipeline-{}", std::process::id())),
        secs: 5,
        threads: 4,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--addr" => opts.addr = take(i),
            "--dir" => opts.dir = PathBuf::from(take(i)),
            "--secs" => {
                opts.secs = take(i).parse().unwrap_or_else(|_| {
                    eprintln!("--secs expects a number");
                    std::process::exit(2);
                })
            }
            "--threads" => {
                opts.threads = take(i).parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown flag `{other}`\nusage: obs_pipeline [--addr HOST:PORT] [--dir DIR] \
                     [--secs N] [--threads N]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    opts
}

fn spin(n: u64) -> u64 {
    let mut x = 0u64;
    for i in 0..n {
        x = std::hint::black_box(x.wrapping_mul(6364136223846793005).wrapping_add(i));
    }
    std::hint::black_box(x)
}

/// First `"key":<number>` occurrence in a JSONL line.
fn json_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).map(|i| i + pat.len()).unwrap_or(0);
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

fn main() {
    let opts = parse_opts();
    let _ = std::fs::remove_dir_all(&opts.dir);
    let threads = opts.threads.max(2);
    let rt = RuntimeConfig::xgomptb(threads).trace(TraceLevel::Lifecycle);
    let server = TaskServer::start(
        ServerConfig::new(threads)
            .runtime(rt)
            .adapt_every(0)
            .trace_stream(&opts.dir, 256 * 1024, 64)
            .trace_stream_interval(Duration::from_micros(500))
            .metrics_addr(&opts.addr),
    );
    let addr = server.metrics_local_addr().unwrap_or_else(|| {
        eprintln!("metrics listener failed to bind {}", opts.addr);
        std::process::exit(1);
    });
    // The scraping side (CI) parses this line to find the endpoint.
    println!(
        "obs_pipeline: serving http://{addr}/metrics for {}s",
        opts.secs
    );

    let deadline = Instant::now() + Duration::from_secs(opts.secs);
    let mut batches = 0u64;
    while Instant::now() < deadline {
        let handles: Vec<_> = (0..256)
            .map(|j| {
                let grain = if j % 8 == 0 { 32_768 } else { 2_048 };
                server.submit(move |_| spin(grain)).expect("submit")
            })
            .collect();
        let lh = server
            .submit_for(0..2_000u64, LoopSchedule::Guided(16), |i, _| {
                spin(64 + (i & 63));
            })
            .expect("submit loop");
        for h in handles {
            h.join().expect("job");
        }
        lh.join().expect("loop");
        batches += 1;
    }
    let stats = server.stats();
    let stream = server.trace_stream_stats().expect("stream configured");
    server.shutdown();

    // Contract re-check from the files (same checks as the
    // trace_overhead stream leg).
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&opts.dir)
        .expect("stream dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    segments.sort();
    let newest = std::fs::read_to_string(segments.last().expect("segments exist")).expect("read");
    let summary = newest
        .lines()
        .rev()
        .find(|l| l.starts_with("{\"drain\""))
        .expect("final drain summary");
    let drained = json_u64(summary, "drained");
    let dropped = json_u64(summary, "dropped");
    let rotations = json_u64(summary, "rotations");
    let emitted_sum: u64 = summary
        .match_indices("\"emitted\":")
        .map(|(i, _)| json_u64(&summary[i..], "emitted"))
        .sum();
    assert_eq!(dropped, 0, "collector must keep up under load");
    assert!(rotations >= 3, "expected ≥ 3 rotations, saw {rotations}");
    assert_eq!(drained + dropped, emitted_sum, "on-disk conservation");
    let chrome = chrome_json_from_dir(&opts.dir).expect("trace2chrome");
    assert!(chrome.starts_with('{'));

    println!(
        "obs_pipeline OK: {} jobs in {batches} batches; {} records drained across {} segments \
         ({rotations} rotations), 0 dropped; live-counter floor {}; chrome conversion {} bytes",
        fmt_count(stats.completed),
        fmt_count(drained),
        segments.len(),
        fmt_count(stream.drained),
        fmt_count(chrome.len() as u64),
    );
}
