//! Reproduces Table II: runtime statistics under NA-RP / NA-WS.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let study = xgomp_bench::experiments::dlb_study(&ctx);
    study.table2.print();
    study.table2.write_csv(&ctx.out_dir, "table2").expect("csv");
}
