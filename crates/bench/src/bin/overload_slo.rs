//! Open-loop overload SLO harness: fixed-rate load past saturation,
//! mixed QoS classes, per-class latency percentiles and shed accounting.
//!
//! The serving claim under test: past saturation, admission quotas and
//! deadlines convert unbounded queueing into *typed, bounded* loss —
//! latency-sensitive work keeps a bounded p99 while background work is
//! shed (deadline) or refused (quota), and the outcome partition stays
//! exact: `submitted == completed + cancelled + shed`.
//!
//! Method: a closed-loop burst first calibrates the saturation
//! throughput; the measured phase then offers jobs *open-loop* at 2×
//! that rate — submission times are scheduled on a wall clock, never
//! gated on completions, which is what makes overload visible (a
//! closed loop self-throttles; an open loop queues). The mix is 20%
//! latency-sensitive (no deadline), 40% normal (roomy deadline), 40%
//! background (deadline shorter than the steady-state queue delay, so
//! admitted background jobs shed deterministically once the queue
//! fills).
//!
//! ```text
//! cargo run --release -p xgomp-bench --bin overload_slo -- --scale test
//! ```
//!
//! Emits the human table, `overload_slo.csv`, and a machine-readable
//! `overload_slo.json` under `--out` (CI schema-checks the JSON).

use std::time::{Duration, Instant};

use xgomp_bench::{parse_args, Table};
use xgomp_bots::Scale;
use xgomp_core::clock;
use xgomp_service::{QosClass, ServerConfig, SubmitOptions, TaskServer};

/// Spins for `ticks` timestamp-counter cycles; returns the end stamp.
fn spin_work(ticks: u64) -> u64 {
    let end = clock::now().saturating_add(ticks);
    loop {
        let t = clock::now();
        if t >= end {
            return t;
        }
        std::hint::spin_loop();
    }
}

/// Closed-loop calibration: blocking submits self-throttle at
/// `max_in_flight`, so the completion rate *is* the service capacity.
fn calibrate(server: &TaskServer, work_ticks: u64, jobs: usize) -> f64 {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|_| server.submit(move |_| spin_work(work_ticks)).unwrap())
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    jobs as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// The `q`-quantile (0..=1) of an unsorted latency sample, in seconds.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let ctx = parse_args();
    // (job cycles-equivalent in ns, calibration jobs, open-loop window,
    // background deadline multiple of the job time, LS p99 budget).
    let (job_ns, calib_jobs, window, bg_deadline_mul, ls_budget) = match ctx.scale {
        Scale::Test => (800_000u64, 300, Duration::from_millis(400), 1.0, 0.25),
        Scale::Quick => (1_000_000, 1_000, Duration::from_millis(1_500), 1.0, 0.15),
        Scale::Paper => (1_000_000, 3_000, Duration::from_secs(5), 1.0, 0.10),
    };
    // Spin bodies: never oversubscribe physical cores (the pacing
    // thread needs one too), whatever --threads asked for.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let threads = ctx.threads.min((cores / 2).clamp(2, 8));
    let max_in_flight = threads * 4;
    let server = TaskServer::start(
        ServerConfig::new(threads)
            .max_in_flight(max_in_flight)
            .ls_reserve(max_in_flight / 4)
            .background_cap(max_in_flight / 2),
    );
    let work_ticks = clock::ns_to_ticks(job_ns);
    let job_secs = job_ns as f64 * 1e-9;
    let bg_deadline = Duration::from_secs_f64(job_secs * bg_deadline_mul);
    let normal_deadline = Duration::from_secs_f64((job_secs * 100.0).max(0.1));

    let saturation = calibrate(&server, work_ticks, calib_jobs);
    // Blocking calibration submits count as normal-class jobs and bump
    // `rejected` on every internal backpressure retry; the open-loop
    // accounting (tables, JSON, per-class goodput) starts here.
    let rejected_before = server.stats().rejected;
    let class_base = server.class_stats();
    let offered = 2.0 * saturation;
    let n_total = ((offered * window.as_secs_f64()) as usize).clamp(100, 50_000);

    // 20% LS / 40% normal / 40% background, interleaved so every class
    // sees the whole window.
    const PATTERN: [QosClass; 10] = [
        QosClass::LatencySensitive,
        QosClass::Normal,
        QosClass::Background,
        QosClass::Normal,
        QosClass::Background,
        QosClass::LatencySensitive,
        QosClass::Normal,
        QosClass::Background,
        QosClass::Normal,
        QosClass::Background,
    ];
    let mut pending = Vec::with_capacity(n_total);
    let mut rejected = [0u64; 3];
    let start = Instant::now();
    for i in 0..n_total {
        // Open loop: the i-th submission is due at a fixed wall-clock
        // offset, regardless of how far behind the server is.
        let due = start + Duration::from_secs_f64(i as f64 / offered);
        while Instant::now() < due {
            std::hint::spin_loop();
        }
        let qos = PATTERN[i % PATTERN.len()];
        let opts = match qos {
            QosClass::LatencySensitive => SubmitOptions::from(qos),
            QosClass::Normal => SubmitOptions::from(qos).deadline(normal_deadline),
            QosClass::Background => SubmitOptions::from(qos).deadline(bg_deadline),
        };
        let t_submit = clock::now();
        match server.try_submit_with(opts, move |_| spin_work(work_ticks)) {
            Ok(h) => pending.push((qos, t_submit, h)),
            Err(e) => {
                assert!(e.is_backpressure(), "overload refusals are typed: {e:?}");
                rejected[qos.index()] += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();

    // Drain: completed jobs yield their end stamp (latency = end −
    // submit, both on the TSC); shed/cancelled ones their typed error.
    let mut lat: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (qos, t_submit, h) in pending {
        match h.join() {
            Ok(end) => lat[qos.index()].push(clock::ticks_to_secs(end.saturating_sub(t_submit))),
            Err(e) => assert!(
                e.is_deadline_exceeded() || e.is_cancelled(),
                "only typed loss: {e:?}"
            ),
        }
    }
    while server.stats().in_flight != 0 {
        std::thread::yield_now();
    }
    for l in &mut lat {
        l.sort_by(f64::total_cmp);
    }
    let by_class = server.class_stats();

    let mut t = Table::new(
        format!(
            "open-loop overload SLO: {:.0}/s offered over {:.0}/s saturation ({threads} workers, \
             max_in_flight {max_in_flight}, ls_reserve {}, background_cap {})",
            offered,
            saturation,
            max_in_flight / 4,
            max_in_flight / 2,
        ),
        &[
            "class",
            "submitted",
            "completed",
            "cancelled",
            "shed",
            "rejected",
            "goodput/s",
            "p50",
            "p99",
            "p99.9",
        ],
    );
    let ms = |s: f64| format!("{:.3}ms", s * 1e3);
    let mut json_classes = Vec::new();
    for c in &by_class {
        let i = c.class.index();
        let base = &class_base[i];
        let (submitted, completed, cancelled, shed) = (
            c.submitted - base.submitted,
            c.completed - base.completed,
            c.cancelled - base.cancelled,
            c.shed - base.shed,
        );
        let l = &lat[i];
        let (p50, p99, p999) = (
            percentile(l, 0.50),
            percentile(l, 0.99),
            percentile(l, 0.999),
        );
        let goodput = completed as f64 / wall;
        t.row(vec![
            c.class.name().to_string(),
            submitted.to_string(),
            completed.to_string(),
            cancelled.to_string(),
            shed.to_string(),
            rejected[i].to_string(),
            format!("{goodput:.0}"),
            ms(p50),
            ms(p99),
            ms(p999),
        ]);
        json_classes.push(format!(
            "{{\"class\":\"{}\",\"submitted\":{submitted},\"completed\":{completed},\
             \"cancelled\":{cancelled},\"shed\":{shed},\"rejected\":{},\
             \"goodput_jobs_per_sec\":{goodput:.3},\
             \"p50_secs\":{p50:.6},\"p99_secs\":{p99:.6},\"p999_secs\":{p999:.6}}}",
            c.class.name(),
            rejected[i],
        ));
    }
    t.print();
    t.write_csv(&ctx.out_dir, "overload_slo").expect("csv");

    // The SLO claims, asserted at every scale.
    let ls = &by_class[QosClass::LatencySensitive.index()];
    let bg = &by_class[QosClass::Background.index()];
    let ls_p99 = percentile(&lat[QosClass::LatencySensitive.index()], 0.99);
    assert!(ls.completed > 0, "LS work must flow under overload");
    assert_eq!(ls.shed, 0, "LS jobs carry no deadline and are never shed");
    assert_eq!(ls.cancelled, 0, "nothing cancels LS jobs in this harness");
    assert!(
        bg.shed > 0,
        "2x overload must shed background work past its deadline \
         (bg submitted {}, completed {})",
        bg.submitted,
        bg.completed,
    );
    assert!(
        ls_p99 <= ls_budget,
        "LS p99 {:.3}ms exceeds the {:.0}ms budget — bounded in-flight \
         must bound LS latency under overload",
        ls_p99 * 1e3,
        ls_budget * 1e3,
    );
    let report = server.shutdown();
    let s = &report.stats;
    assert_eq!(
        s.submitted,
        s.completed + s.cancelled + s.shed,
        "outcome partition must be exact"
    );
    assert_eq!(s.rejected - rejected_before, rejected.iter().sum::<u64>());

    // Top-level counts are the open-loop window only (the calibration
    // burst is subtracted), matching the per-class entries.
    let open = |total: u64, calib: fn(&xgomp_service::QosClassStats) -> u64| -> u64 {
        total - class_base.iter().map(calib).sum::<u64>()
    };
    let json = format!(
        "{{\"bench\":\"overload_slo\",\"threads\":{threads},\"max_in_flight\":{max_in_flight},\
         \"saturation_jobs_per_sec\":{saturation:.3},\"offered_jobs_per_sec\":{offered:.3},\
         \"window_secs\":{:.3},\"submitted\":{},\"completed\":{},\"cancelled\":{},\"shed\":{},\
         \"rejected\":{},\"classes\":[{}]}}",
        wall,
        open(s.submitted, |c| c.submitted),
        open(s.completed, |c| c.completed),
        open(s.cancelled, |c| c.cancelled),
        open(s.shed, |c| c.shed),
        s.rejected - rejected_before,
        json_classes.join(","),
    );
    // Structural self-check before CI ever sees it.
    let _: serde_json::Value = serde_json::from_str(&json).expect("well-formed summary JSON");
    std::fs::create_dir_all(&ctx.out_dir).expect("out dir");
    let json_path = ctx.out_dir.join("overload_slo.json");
    std::fs::write(&json_path, &json).expect("write json");

    println!();
    println!(
        "OK: LS p99 {:.3}ms within {:.0}ms budget; background shed {} + refused {} under \
         2x overload; partition exact ({} = {} + {} + {}). JSON: {}",
        ls_p99 * 1e3,
        ls_budget * 1e3,
        bg.shed,
        rejected[QosClass::Background.index()],
        s.submitted,
        s.completed,
        s.cancelled,
        s.shed,
        json_path.display(),
    );
}
