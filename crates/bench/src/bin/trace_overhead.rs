//! Flight-recorder overhead measurement: the same mixed-grain ingress
//! workload served under `TraceLevel::Off` / `Lifecycle` / `Full`,
//! against an untraced baseline leg.
//!
//! Every instrumentation site added with the flight recorder is gated on
//! one relaxed load + branch when tracing is off; this binary checks that
//! claim end to end: the `off` leg must match the `baseline` leg (also
//! `Off` — the pair measures pure run-to-run noise) within the noise
//! band, and the `lifecycle`/`full` legs report their measured per-event
//! cost so regressions in the emit path are visible in CI artifacts.
//!
//! ```text
//! cargo run --release -p xgomp-bench --bin trace_overhead -- \
//!     --scale test --emit-artifacts results/trace
//! ```
//!
//! With `--emit-artifacts DIR`, the `full` leg also writes
//! `DIR/trace.json` (Chrome-tracing / Perfetto) and `DIR/metrics.prom`
//! (Prometheus text) — the single-command observability artifact flow.

use std::path::{Path, PathBuf};
use std::time::Instant;

use xgomp_bench::harness::fmt_count;
use xgomp_bench::Table;
use xgomp_core::{LoopSchedule, RuntimeConfig, TraceLevel};
use xgomp_service::{ServerConfig, TaskServer};

struct Opts {
    scale: String,
    threads: usize,
    reps: usize,
    artifacts: Option<PathBuf>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        scale: "quick".to_string(),
        threads: 4,
        reps: 5,
        artifacts: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => opts.scale = take(i),
            "--threads" => {
                opts.threads = take(i).parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a number");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                opts.reps = take(i).parse().unwrap_or_else(|_| {
                    eprintln!("--reps expects a number");
                    std::process::exit(2);
                })
            }
            "--emit-artifacts" => opts.artifacts = Some(PathBuf::from(take(i))),
            other => {
                eprintln!(
                    "unknown flag `{other}`\nusage: trace_overhead [--scale test|quick|paper] \
                     [--threads N] [--reps N] [--emit-artifacts DIR]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    opts
}

/// Busy-work of `n` dependent steps (the optimizer cannot elide it).
fn spin(n: u64) -> u64 {
    let mut x = 0u64;
    for i in 0..n {
        x = std::hint::black_box(x.wrapping_mul(6364136223846793005).wrapping_add(i));
    }
    std::hint::black_box(x)
}

struct Leg {
    name: &'static str,
    median_secs: f64,
    events: u64,
    dropped: u64,
}

/// Scrapes one metric value out of a Prometheus text exposition.
fn scrape(prom: &str, name: &str) -> u64 {
    prom.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
        .unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn run_leg(
    name: &'static str,
    level: TraceLevel,
    threads: usize,
    jobs: usize,
    loops: usize,
    loop_len: u64,
    reps: usize,
    artifacts: Option<&Path>,
) -> Leg {
    let rt = RuntimeConfig::xgomptb(threads).trace(level);
    // adapt_every(0): the controller's retunes are workload-dependent
    // timing noise this comparison does not want.
    let server = TaskServer::start(ServerConfig::new(threads).runtime(rt).adapt_every(0));

    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let mut handles = Vec::with_capacity(jobs);
        for j in 0..jobs {
            // Mixed grain: mostly fine tasks, every 8th an order of
            // magnitude coarser — the ingress mix a task server sees.
            let grain = if j % 8 == 0 { 32_768 } else { 2_048 };
            handles.push(server.submit(move |_| spin(grain)).expect("submit"));
        }
        let mut loop_handles = Vec::with_capacity(loops);
        for _ in 0..loops {
            loop_handles.push(
                server
                    .submit_for(0..loop_len, LoopSchedule::Guided(16), |i, _| {
                        spin(64 + (i & 63));
                    })
                    .expect("submit loop"),
            );
        }
        for h in handles {
            h.join().expect("job");
        }
        for h in loop_handles {
            h.join().expect("loop job");
        }
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let median_secs = times[times.len() / 2];

    let prom = server.render_prometheus();
    let events = scrape(&prom, "xgomp_trace_events_emitted_total");
    let dropped = scrape(&prom, "xgomp_trace_events_dropped_total");
    if let Some(dir) = artifacts {
        std::fs::create_dir_all(dir).expect("artifact dir");
        server
            .dump_trace(dir.join("trace.json"))
            .expect("trace dump");
        std::fs::write(dir.join("metrics.prom"), &prom).expect("metrics dump");
        println!(
            "artifacts: {} ({} events), {}",
            dir.join("trace.json").display(),
            fmt_count(events),
            dir.join("metrics.prom").display()
        );
    }
    server.shutdown();
    Leg {
        name,
        median_secs,
        events,
        dropped,
    }
}

fn main() {
    let opts = parse_opts();
    let (jobs, loops, loop_len) = match opts.scale.as_str() {
        "test" => (3_000, 2, 2_000),
        "quick" => (12_000, 4, 8_000),
        "paper" => (60_000, 8, 32_000),
        other => {
            eprintln!("unknown scale `{other}` (test|quick|paper)");
            std::process::exit(2);
        }
    };
    let threads = opts.threads.max(2);
    let reps = opts.reps.max(3);

    // Warm-up: page in the allocator, spin the team up once.
    run_leg(
        "warmup",
        TraceLevel::Off,
        threads,
        jobs / 4,
        1,
        loop_len / 4,
        1,
        None,
    );

    let baseline = run_leg(
        "baseline",
        TraceLevel::Off,
        threads,
        jobs,
        loops,
        loop_len,
        reps,
        None,
    );
    let off = run_leg(
        "off",
        TraceLevel::Off,
        threads,
        jobs,
        loops,
        loop_len,
        reps,
        None,
    );
    let lifecycle = run_leg(
        "lifecycle",
        TraceLevel::Lifecycle,
        threads,
        jobs,
        loops,
        loop_len,
        reps,
        None,
    );
    let full = run_leg(
        "full",
        TraceLevel::Full,
        threads,
        jobs,
        loops,
        loop_len,
        reps,
        opts.artifacts.as_deref(),
    );

    let mut t = Table::new(
        format!(
            "flight-recorder overhead: {jobs} mixed-grain jobs + {loops} guided loops per rep, \
             {threads} workers, median of {reps} reps"
        ),
        &["leg", "median", "vs off", "events", "dropped", "cost/event"],
    );
    for leg in [&baseline, &off, &lifecycle, &full] {
        let rel = leg.median_secs / off.median_secs.max(1e-12);
        let cost = if leg.events > 0 {
            let delta = leg.median_secs - off.median_secs;
            format!("{:.1} ns", delta * 1e9 / leg.events as f64)
        } else {
            "-".to_string()
        };
        t.row(vec![
            leg.name.to_string(),
            format!("{:.3} ms", leg.median_secs * 1e3),
            format!("{rel:.3}x"),
            fmt_count(leg.events),
            fmt_count(leg.dropped),
            cost,
        ]);
    }
    t.print();

    assert_eq!(baseline.events, 0, "Off must record nothing");
    assert_eq!(off.events, 0, "Off must record nothing");
    assert!(lifecycle.events > 0, "Lifecycle must record job spans");
    assert!(
        full.events > lifecycle.events,
        "Full must add task/steal/chunk events on top of Lifecycle"
    );

    // Off-mode overhead must be indistinguishable from run-to-run noise:
    // `off` and `baseline` measure the *same* configuration, so their
    // spread *is* the noise band. The tolerance is deliberately generous
    // at test scale (shared CI runners) — the assertion exists to catch
    // an accidentally un-gated emit path (an order-of-magnitude effect),
    // not single-percent drift.
    let noise = (off.median_secs - baseline.median_secs).abs() / baseline.median_secs.max(1e-12);
    let tolerance = if opts.scale == "test" { 0.50 } else { 0.25 };
    println!(
        "\noff-vs-baseline delta: {:.1}% (tolerance {:.0}%)",
        noise * 1e2,
        tolerance * 1e2
    );
    assert!(
        noise < tolerance,
        "Off-mode trace gating cost exceeded the noise band: off {:.3} ms vs baseline {:.3} ms",
        off.median_secs * 1e3,
        baseline.median_secs * 1e3
    );
    println!("OK: Off-mode tracing is free to within noise; per-event costs above.");
}
