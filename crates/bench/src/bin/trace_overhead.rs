//! Flight-recorder overhead measurement: the same mixed-grain ingress
//! workload served under `TraceLevel::Off` / `Lifecycle` / `Full`,
//! against an untraced baseline leg.
//!
//! Every instrumentation site added with the flight recorder is gated on
//! one relaxed load + branch when tracing is off; this binary checks that
//! claim end to end: the `off` leg must match the `baseline` leg (also
//! `Off` — the pair measures pure run-to-run noise) within the noise
//! band, and the `lifecycle`/`full` legs report their measured per-event
//! cost so regressions in the emit path are visible in CI artifacts.
//!
//! ```text
//! cargo run --release -p xgomp-bench --bin trace_overhead -- \
//!     --scale test --emit-artifacts results/trace
//! ```
//!
//! With `--emit-artifacts DIR`, the `full` leg also writes
//! `DIR/trace.json` (Chrome-tracing / Perfetto) and `DIR/metrics.prom`
//! (Prometheus text) — the single-command observability artifact flow.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use xgomp_bench::harness::fmt_count;
use xgomp_bench::Table;
use xgomp_core::{chrome_json_from_dir, LoopSchedule, RuntimeConfig, TraceLevel};
use xgomp_service::{ServerConfig, TaskServer, STABLE_METRIC_FAMILIES};

struct Opts {
    scale: String,
    threads: usize,
    reps: usize,
    artifacts: Option<PathBuf>,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        scale: "quick".to_string(),
        threads: 4,
        reps: 5,
        artifacts: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => opts.scale = take(i),
            "--threads" => {
                opts.threads = take(i).parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a number");
                    std::process::exit(2);
                })
            }
            "--reps" => {
                opts.reps = take(i).parse().unwrap_or_else(|_| {
                    eprintln!("--reps expects a number");
                    std::process::exit(2);
                })
            }
            "--emit-artifacts" => opts.artifacts = Some(PathBuf::from(take(i))),
            other => {
                eprintln!(
                    "unknown flag `{other}`\nusage: trace_overhead [--scale test|quick|paper] \
                     [--threads N] [--reps N] [--emit-artifacts DIR]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    opts
}

/// Busy-work of `n` dependent steps (the optimizer cannot elide it).
fn spin(n: u64) -> u64 {
    let mut x = 0u64;
    for i in 0..n {
        x = std::hint::black_box(x.wrapping_mul(6364136223846793005).wrapping_add(i));
    }
    std::hint::black_box(x)
}

struct Leg {
    name: &'static str,
    median_secs: f64,
    events: u64,
    dropped: u64,
}

/// Scrapes one metric value out of a Prometheus text exposition.
fn scrape(prom: &str, name: &str) -> u64 {
    prom.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
        .unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn run_leg(
    name: &'static str,
    level: TraceLevel,
    threads: usize,
    jobs: usize,
    loops: usize,
    loop_len: u64,
    reps: usize,
    artifacts: Option<&Path>,
) -> Leg {
    let rt = RuntimeConfig::xgomptb(threads).trace(level);
    // adapt_every(0): the controller's retunes are workload-dependent
    // timing noise this comparison does not want.
    let server = TaskServer::start(ServerConfig::new(threads).runtime(rt).adapt_every(0));

    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let mut handles = Vec::with_capacity(jobs);
        for j in 0..jobs {
            // Mixed grain: mostly fine tasks, every 8th an order of
            // magnitude coarser — the ingress mix a task server sees.
            let grain = if j % 8 == 0 { 32_768 } else { 2_048 };
            handles.push(server.submit(move |_| spin(grain)).expect("submit"));
        }
        let mut loop_handles = Vec::with_capacity(loops);
        for _ in 0..loops {
            loop_handles.push(
                server
                    .submit_for(0..loop_len, LoopSchedule::Guided(16), |i, _| {
                        spin(64 + (i & 63));
                    })
                    .expect("submit loop"),
            );
        }
        for h in handles {
            h.join().expect("job");
        }
        for h in loop_handles {
            h.join().expect("loop job");
        }
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let median_secs = times[times.len() / 2];

    let prom = server.render_prometheus();
    let events = scrape(&prom, "xgomp_trace_events_emitted_total");
    let dropped = scrape(&prom, "xgomp_trace_events_dropped_total");
    if let Some(dir) = artifacts {
        std::fs::create_dir_all(dir).expect("artifact dir");
        server
            .dump_trace(dir.join("trace.json"))
            .expect("trace dump");
        std::fs::write(dir.join("metrics.prom"), &prom).expect("metrics dump");
        println!(
            "artifacts: {} ({} events), {}",
            dir.join("trace.json").display(),
            fmt_count(events),
            dir.join("metrics.prom").display()
        );
    }
    server.shutdown();
    Leg {
        name,
        median_secs,
        events,
        dropped,
    }
}

/// One plain-text HTTP/1.1 GET against the in-process listener; returns
/// the response body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "expected 200 from {path}, got: {head}"
    );
    body.to_string()
}

/// First `"key":<number>` occurrence in a JSONL line (the stream's drain
/// summaries put the cumulative totals before the per-worker rows).
fn json_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat).map(|i| i + pat.len()).unwrap_or(0);
    line[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// The streaming-drain leg: the same workload at `Lifecycle`, with the
/// continuous pipeline on — collector tailing the rings into small
/// rolling segments (forcing rotations) and the `/metrics` listener
/// scraped mid-load. Asserts the pipeline's CI contract: zero
/// collector drops, ≥ 3 rotations, exact conservation in the final
/// on-disk summary, every stable metric family in the live scrape.
#[allow(clippy::too_many_arguments)]
fn run_stream_leg(
    threads: usize,
    jobs: usize,
    loops: usize,
    loop_len: u64,
    reps: usize,
    artifacts: Option<&Path>,
) -> Leg {
    let dir = artifacts.map(|d| d.join("stream")).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("xgomp-trace-stream-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&dir);
    let rt = RuntimeConfig::xgomptb(threads).trace(TraceLevel::Lifecycle);
    let server = TaskServer::start(
        ServerConfig::new(threads)
            .runtime(rt)
            .adapt_every(0)
            .trace_stream(&dir, 256 * 1024, 64)
            .trace_stream_interval(Duration::from_micros(500))
            .metrics_addr("127.0.0.1:0"),
    );
    let addr = server
        .metrics_local_addr()
        .expect("metrics listener bound on an ephemeral port");

    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let mut handles = Vec::with_capacity(jobs);
        for j in 0..jobs {
            let grain = if j % 8 == 0 { 32_768 } else { 2_048 };
            handles.push(server.submit(move |_| spin(grain)).expect("submit"));
        }
        let mut loop_handles = Vec::with_capacity(loops);
        for _ in 0..loops {
            loop_handles.push(
                server
                    .submit_for(0..loop_len, LoopSchedule::Guided(16), |i, _| {
                        spin(64 + (i & 63));
                    })
                    .expect("submit loop"),
            );
        }
        for h in handles {
            h.join().expect("job");
        }
        for h in loop_handles {
            h.join().expect("loop job");
        }
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let median_secs = times[times.len() / 2];

    // Live scrape under load: a parseable exposition carrying every
    // stable family, and a healthy serve state.
    let scraped = http_get(addr, "/metrics");
    for name in STABLE_METRIC_FAMILIES {
        assert!(
            scraped.contains(&format!("# TYPE {name} ")),
            "live /metrics scrape is missing family {name}"
        );
    }
    assert!(scrape(&scraped, "xgomp_metrics_scrapes_total") >= 1);
    let health = http_get(addr, "/healthz");
    assert!(
        health.contains("\"state\":\"serving\""),
        "loaded server must report serving, got: {health}"
    );

    let prom = server.render_prometheus();
    let events = scrape(&prom, "xgomp_trace_events_emitted_total");
    let live = server.trace_stream_stats().expect("stream configured");
    server.shutdown();

    // The files carry the contract. Final summary = the *last* drain
    // line of the newest segment (cumulative totals + per-worker rows).
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("stream dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    segments.sort();
    let newest = std::fs::read_to_string(segments.last().expect("segments exist")).expect("read");
    let summary = newest
        .lines()
        .rev()
        .find(|l| l.starts_with("{\"drain\""))
        .expect("final drain summary");
    let drained = json_u64(summary, "drained");
    let dropped = json_u64(summary, "dropped");
    let rotations = json_u64(summary, "rotations");
    let emitted_sum: u64 = summary
        .match_indices("\"emitted\":")
        .map(|(i, _)| json_u64(&summary[i..], "emitted"))
        .sum();
    assert_eq!(
        dropped, 0,
        "collector must keep up with the rings at Lifecycle load"
    );
    assert!(
        rotations >= 3,
        "small segments under load must rotate ≥ 3 times, saw {rotations}"
    );
    assert_eq!(
        drained + dropped,
        emitted_sum,
        "conservation must hold exactly across every rotation"
    );
    assert!(
        live.drained <= drained,
        "live counters never exceed the final accounting"
    );
    // And the retained concatenation still converts to Chrome JSON.
    let chrome = chrome_json_from_dir(&dir).expect("trace2chrome over rolled segments");
    assert!(chrome.starts_with('{'), "chrome trace is a JSON object");
    println!(
        "stream: {} records drained across {} segments ({rotations} rotations), 0 dropped; \
         chrome conversion {} bytes",
        fmt_count(drained),
        segments.len(),
        fmt_count(chrome.len() as u64)
    );
    if artifacts.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Leg {
        name: "stream",
        median_secs,
        events,
        dropped,
    }
}

fn main() {
    let opts = parse_opts();
    let (jobs, loops, loop_len) = match opts.scale.as_str() {
        "test" => (3_000, 2, 2_000),
        "quick" => (12_000, 4, 8_000),
        "paper" => (60_000, 8, 32_000),
        other => {
            eprintln!("unknown scale `{other}` (test|quick|paper)");
            std::process::exit(2);
        }
    };
    let threads = opts.threads.max(2);
    let reps = opts.reps.max(3);

    // Warm-up: page in the allocator, spin the team up once.
    run_leg(
        "warmup",
        TraceLevel::Off,
        threads,
        jobs / 4,
        1,
        loop_len / 4,
        1,
        None,
    );

    let baseline = run_leg(
        "baseline",
        TraceLevel::Off,
        threads,
        jobs,
        loops,
        loop_len,
        reps,
        None,
    );
    let off = run_leg(
        "off",
        TraceLevel::Off,
        threads,
        jobs,
        loops,
        loop_len,
        reps,
        None,
    );
    let lifecycle = run_leg(
        "lifecycle",
        TraceLevel::Lifecycle,
        threads,
        jobs,
        loops,
        loop_len,
        reps,
        None,
    );
    let full = run_leg(
        "full",
        TraceLevel::Full,
        threads,
        jobs,
        loops,
        loop_len,
        reps,
        opts.artifacts.as_deref(),
    );
    let stream = run_stream_leg(
        threads,
        jobs,
        loops,
        loop_len,
        reps,
        opts.artifacts.as_deref(),
    );

    let mut t = Table::new(
        format!(
            "flight-recorder overhead: {jobs} mixed-grain jobs + {loops} guided loops per rep, \
             {threads} workers, median of {reps} reps"
        ),
        &["leg", "median", "vs off", "events", "dropped", "cost/event"],
    );
    for leg in [&baseline, &off, &lifecycle, &full, &stream] {
        let rel = leg.median_secs / off.median_secs.max(1e-12);
        let cost = if leg.events > 0 {
            let delta = leg.median_secs - off.median_secs;
            format!("{:.1} ns", delta * 1e9 / leg.events as f64)
        } else {
            "-".to_string()
        };
        t.row(vec![
            leg.name.to_string(),
            format!("{:.3} ms", leg.median_secs * 1e3),
            format!("{rel:.3}x"),
            fmt_count(leg.events),
            fmt_count(leg.dropped),
            cost,
        ]);
    }
    t.print();

    assert_eq!(baseline.events, 0, "Off must record nothing");
    assert_eq!(off.events, 0, "Off must record nothing");
    assert!(lifecycle.events > 0, "Lifecycle must record job spans");
    assert!(
        full.events > lifecycle.events,
        "Full must add task/steal/chunk events on top of Lifecycle"
    );

    // Off-mode overhead must be indistinguishable from run-to-run noise:
    // `off` and `baseline` measure the *same* configuration, so their
    // spread *is* the noise band. The tolerance is deliberately generous
    // at test scale (shared CI runners) — the assertion exists to catch
    // an accidentally un-gated emit path (an order-of-magnitude effect),
    // not single-percent drift.
    let noise = (off.median_secs - baseline.median_secs).abs() / baseline.median_secs.max(1e-12);
    let tolerance = if opts.scale == "test" { 0.50 } else { 0.25 };
    println!(
        "\noff-vs-baseline delta: {:.1}% (tolerance {:.0}%)",
        noise * 1e2,
        tolerance * 1e2
    );
    assert!(
        noise < tolerance,
        "Off-mode trace gating cost exceeded the noise band: off {:.3} ms vs baseline {:.3} ms",
        off.median_secs * 1e3,
        baseline.median_secs * 1e3
    );
    println!("OK: Off-mode tracing is free to within noise; per-event costs above.");
}
