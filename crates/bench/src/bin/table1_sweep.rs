//! Reproduces Table I: the DLB parameter sweep's winning settings.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let study = xgomp_bench::experiments::dlb_study(&ctx);
    study.table1.print();
    study.table1.write_csv(&ctx.out_dir, "table1").expect("csv");
}
