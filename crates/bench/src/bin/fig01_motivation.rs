//! Reproduces Fig. 1: GOMP vs LOMP vs XLOMP on the BOTS suite.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let t = xgomp_bench::experiments::fig01(&ctx);
    t.print();
    t.write_csv(&ctx.out_dir, "fig01").expect("csv");
}
