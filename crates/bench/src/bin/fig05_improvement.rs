//! Reproduces Fig. 5: XGOMP / XGOMPTB improvement over GOMP.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let (fig4, fig5) = xgomp_bench::experiments::fig04_05(&ctx);
    fig4.print();
    fig5.print();
    fig5.write_csv(&ctx.out_dir, "fig05").expect("csv");
}
