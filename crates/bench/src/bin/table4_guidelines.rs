//! Reproduces Table IV: the practitioner tuning guidelines.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let t = xgomp_bench::experiments::table4();
    t.print();
    t.write_csv(&ctx.out_dir, "table4").expect("csv");
}
