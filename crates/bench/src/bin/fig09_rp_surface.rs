//! Reproduces Fig. 9: NA-RP improvement surface (task × steal size).
fn main() {
    let ctx = xgomp_bench::parse_args();
    let t = xgomp_bench::experiments::surface(&ctx, xgomp_core::DlbStrategy::RedirectPush);
    t.print();
    t.write_csv(&ctx.out_dir, "fig09").expect("csv");
}
