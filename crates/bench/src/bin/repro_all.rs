//! Runs the complete reproduction — every figure and table — in one
//! pass, printing each and writing all CSVs. This is the binary behind
//! EXPERIMENTS.md.
fn main() {
    let ctx = xgomp_bench::parse_args();
    eprintln!(
        "reproducing all experiments: scale={:?} threads={} reps={}",
        ctx.scale, ctx.threads, ctx.reps
    );
    let t = xgomp_bench::experiments::fig01(&ctx);
    t.print();
    t.write_csv(&ctx.out_dir, "fig01").expect("csv");
    print!("{}", xgomp_bench::experiments::fig03(&ctx));
    let (fig4, fig5) = xgomp_bench::experiments::fig04_05(&ctx);
    fig4.print();
    fig4.write_csv(&ctx.out_dir, "fig04").expect("csv");
    fig5.print();
    fig5.write_csv(&ctx.out_dir, "fig05").expect("csv");
    let t = xgomp_bench::experiments::fig06(&ctx);
    t.print();
    t.write_csv(&ctx.out_dir, "fig06").expect("csv");
    let study = xgomp_bench::experiments::dlb_study(&ctx);
    study.table1.print();
    study.table1.write_csv(&ctx.out_dir, "table1").expect("csv");
    study.fig7.print();
    study.fig7.write_csv(&ctx.out_dir, "fig07").expect("csv");
    study.table2.print();
    study.table2.write_csv(&ctx.out_dir, "table2").expect("csv");
    study.table3.print();
    study.table3.write_csv(&ctx.out_dir, "table3").expect("csv");
    let t = xgomp_bench::experiments::fig08(&ctx);
    t.print();
    t.write_csv(&ctx.out_dir, "fig08").expect("csv");
    let t = xgomp_bench::experiments::surface(&ctx, xgomp_core::DlbStrategy::RedirectPush);
    t.print();
    t.write_csv(&ctx.out_dir, "fig09").expect("csv");
    let t = xgomp_bench::experiments::surface(&ctx, xgomp_core::DlbStrategy::WorkSteal);
    t.print();
    t.write_csv(&ctx.out_dir, "fig10").expect("csv");
    let t = xgomp_bench::experiments::table4();
    t.print();
    t.write_csv(&ctx.out_dir, "table4").expect("csv");
    let t = xgomp_bench::experiments::fig11(&ctx);
    t.print();
    t.write_csv(&ctx.out_dir, "fig11").expect("csv");
    eprintln!("done; CSVs in {}", ctx.out_dir.display());
}
