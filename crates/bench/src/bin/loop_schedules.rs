//! Schedule comparison for the data-parallel loop subsystem: static vs
//! dynamic vs guided vs adaptive under uniform / skewed / bimodal
//! per-iteration cost, on the `dataloops` kernels.
//!
//! Every cell is checksum-verified against the kernel's sequential
//! reference, and the skewed rows assert the subsystem's acceptance
//! property: a dynamic-family schedule (guided or adaptive) beats the
//! static partition wall-clock, with the range-steal counters showing
//! the zone-local-first flow that got it there.
//!
//! ```text
//! cargo run --release -p xgomp-bench --bin loop_schedules -- --scale test
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use xgomp_bench::harness::fmt_secs;
use xgomp_bench::{parse_args, Table};
use xgomp_bots::dataloops::{CostProfile, Kernel, Mandelbrot, SkewedSpmv, Triangular};
use xgomp_bots::Scale;
use xgomp_core::{
    DlbConfig, DlbStrategy, LoopReport, LoopSchedule, MachineTopology, Runtime, RuntimeConfig,
    TaskCtx,
};

fn schedules() -> [LoopSchedule; 9] {
    [
        LoopSchedule::Static,
        LoopSchedule::Dynamic(64),
        LoopSchedule::Guided(16),
        LoopSchedule::Adaptive,
        LoopSchedule::Tss {
            first: 1024,
            last: 32,
        },
        LoopSchedule::Factoring,
        LoopSchedule::WeightedFactoring,
        LoopSchedule::Awf,
        // Falls back to a fixed concrete member on a plain Runtime (no
        // server selector) — the column shows the fallback's cost.
        LoopSchedule::Auto,
    ]
}

/// Column headers matching [`schedules`], in order.
const SCHEDULE_COLS: [&str; 9] = [
    "static",
    "dynamic",
    "guided",
    "adaptive",
    "tss",
    "factoring",
    "wf",
    "awf",
    "auto",
];

/// Runs `kernel` under `sched`, verifying the checksum; returns the
/// median wall time and the last run's loop report.
fn run_one(
    cfg: &RuntimeConfig,
    kernel: &dyn Kernel,
    sched: LoopSchedule,
    reps: usize,
) -> (f64, LoopReport) {
    let rt = Runtime::new(cfg.clone());
    let expect = kernel.seq_checksum();
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = rt.parallel(|ctx| {
            let acc = AtomicU64::new(0);
            let report = ctx.parallel_for(0..kernel.len(), sched, |i, _| {
                acc.fetch_add(kernel.value(i), Ordering::Relaxed);
            });
            (acc.load(Ordering::Relaxed), report)
        });
        times.push(t0.elapsed().as_secs_f64());
        let (sum, report) = out.result;
        assert_eq!(sum, expect, "{}/{} checksum", kernel.name(), sched.name());
        assert_eq!(report.iterations, kernel.len());
        last = Some(report);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.unwrap())
}

/// Times one checksummed run of an arbitrary iteration-space shape:
/// `run` drives whatever `parallel_for` flavour fits the shape and
/// returns `(checksum, report)`; the median wall time and last report
/// come back.
fn run_space(
    cfg: &RuntimeConfig,
    reps: usize,
    sched: LoopSchedule,
    expect: u64,
    run: impl Fn(&TaskCtx<'_>, LoopSchedule) -> (u64, LoopReport) + Sync,
) -> (f64, LoopReport) {
    let rt = Runtime::new(cfg.clone());
    let mut times = Vec::with_capacity(reps.max(1));
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = rt.parallel(|ctx| run(ctx, sched));
        times.push(t0.elapsed().as_secs_f64());
        let (sum, report) = out.result;
        assert_eq!(sum, expect, "space checksum under {}", sched.name());
        last = Some(report);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.unwrap())
}

fn main() {
    let ctx = parse_args();
    let (spmv_n, tri_n, mandel) = match ctx.scale {
        Scale::Test => (30_000, 6_000, (96, 48, 384)),
        Scale::Quick => (150_000, 16_000, (256, 128, 768)),
        Scale::Paper => (600_000, 40_000, (512, 256, 2_048)),
    };

    // Two-socket topology so the per-zone pools and cross-zone range
    // stealing are actually exercised.
    let threads = ctx.threads.max(4);
    let cfg = RuntimeConfig::xgomptb(threads)
        .topology(MachineTopology::new(2, threads.div_ceil(2), 1))
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(64));

    let cases: Vec<(Box<dyn Kernel>, CostProfile)> = vec![
        (
            Box::new(SkewedSpmv::new(spmv_n, CostProfile::Uniform, 11)),
            CostProfile::Uniform,
        ),
        (
            Box::new(SkewedSpmv::new(spmv_n, CostProfile::Skewed, 11)),
            CostProfile::Skewed,
        ),
        (
            Box::new(SkewedSpmv::new(spmv_n, CostProfile::Bimodal, 11)),
            CostProfile::Bimodal,
        ),
        (
            Box::new(Triangular::new(tri_n, CostProfile::Skewed, 11)),
            CostProfile::Skewed,
        ),
        (
            Box::new(Mandelbrot::new(mandel.0, mandel.1, mandel.2)),
            CostProfile::Bimodal,
        ),
    ];

    let mut headers = vec!["kernel", "profile"];
    headers.extend_from_slice(&SCHEDULE_COLS);
    headers.extend_from_slice(&["best/static", "chunks", "local", "steals"]);
    let mut t = Table::new(
        format!(
            "parallel_for schedule comparison ({threads} workers, 2 sockets, NA-WS; \
             median of {} reps; checksum-verified)",
            ctx.reps
        ),
        &headers,
    );

    let mut skewed_ok = true;
    for (kernel, profile) in &cases {
        let mut times = Vec::new();
        let mut best_report = None;
        for sched in schedules() {
            let (secs, report) = run_one(&cfg, kernel.as_ref(), sched, ctx.reps);
            times.push(secs);
            if best_report.is_none() || secs <= *times.iter().min_by(|a, b| a.total_cmp(b)).unwrap()
            {
                best_report = Some(report);
            }
        }
        let t_static = times[0];
        // Every dynamic-family member competes against the static wall.
        let best_dyn = times[1..].iter().copied().fold(f64::INFINITY, f64::min);
        let speedup = t_static / best_dyn;
        if matches!(profile, CostProfile::Skewed) && best_dyn >= t_static {
            skewed_ok = false;
        }
        let r = best_report.unwrap();
        let mut row = vec![kernel.name().to_string(), profile.name().to_string()];
        row.extend(times.iter().map(|&s| fmt_secs(s)));
        row.extend([
            format!("{speedup:.2}x"),
            r.chunks.to_string(),
            r.claimed_local.to_string(),
            r.range_steals.to_string(),
        ]);
        t.row(row);
    }
    t.print();
    t.write_csv(&ctx.out_dir, "loop_schedules").expect("csv");

    // ---- first-class iteration spaces × schedules ----------------------
    //
    // The same kernels driven through their *natural* shapes: the
    // Mandelbrot strip as a tiled 2-D rectangle (`parallel_for_2d`),
    // the triangular nest as a first-class triangular space
    // (`parallel_for_tri`) vs the legacy guarded square. Every cell is
    // checksum-verified; the `sched pts` / `noops cut` columns show the
    // guard iterations the triangular space never schedules.
    let mut sheaders = vec!["space", "kernel"];
    sheaders.extend_from_slice(&SCHEDULE_COLS);
    sheaders.extend_from_slice(&["iters", "sched pts", "noops cut"]);
    let mut st = Table::new(
        format!(
            "iteration-space shapes ({threads} workers, 2 sockets, NA-WS; \
             median of {} reps; checksum-verified)",
            ctx.reps
        ),
        &sheaders,
    );

    let mandel_k = Mandelbrot::new(mandel.0, mandel.1, mandel.2);
    let mandel_expect = mandel_k.seq_checksum();
    let (w, h) = (mandel.0, mandel.1);
    let tri_k = Triangular::new(tri_n, CostProfile::Skewed, 11);
    let tri_expect = tri_k.seq_checksum();
    let tri_pts = tri_n * (tri_n + 1) / 2;

    struct SpaceRow {
        space: &'static str,
        kernel: &'static str,
        times: Vec<f64>,
        report: LoopReport,
        sched_pts: u64,
        noops_cut: u64,
    }
    let mut rows: Vec<SpaceRow> = Vec::new();

    // 2-D rectangle: one point per pixel, row-major tiles.
    {
        let (mut times, mut report) = (Vec::new(), None);
        for sched in schedules() {
            let (secs, r) = run_space(&cfg, ctx.reps, sched, mandel_expect, |ctx, sched| {
                let acc = AtomicU64::new(0);
                let r = ctx.parallel_for_2d(h, w, sched, |(row, col), _| {
                    acc.fetch_add(mandel_k.value(row * w + col), Ordering::Relaxed);
                });
                (acc.load(Ordering::Relaxed), r)
            });
            times.push(secs);
            report = Some(r);
        }
        rows.push(SpaceRow {
            space: "rect2d",
            kernel: "mandelbrot",
            times,
            report: report.unwrap(),
            sched_pts: w * h,
            noops_cut: 0,
        });
    }

    // Legacy triangular shape: a square with a `c <= r` guard.
    {
        let (mut times, mut report) = (Vec::new(), None);
        for sched in schedules() {
            let (secs, r) = run_space(&cfg, ctx.reps, sched, tri_expect, |ctx, sched| {
                let acc = AtomicU64::new(0);
                let r = ctx.parallel_for_2d(tri_n, tri_n, sched, |(row, col), _| {
                    if col <= row {
                        acc.fetch_add(tri_k.pair_value(row, col), Ordering::Relaxed);
                    }
                });
                (acc.load(Ordering::Relaxed), r)
            });
            times.push(secs);
            report = Some(r);
        }
        rows.push(SpaceRow {
            space: "square+guard",
            kernel: "triangular",
            times,
            report: report.unwrap(),
            sched_pts: tri_n * tri_n,
            noops_cut: 0,
        });
    }

    // First-class triangular space: only the valid pairs exist.
    {
        let (mut times, mut report) = (Vec::new(), None);
        for sched in schedules() {
            let (secs, r) = run_space(&cfg, ctx.reps, sched, tri_expect, |ctx, sched| {
                let acc = AtomicU64::new(0);
                let r = ctx.parallel_for_tri(tri_n, sched, |(row, col), _| {
                    acc.fetch_add(tri_k.pair_value(row, col), Ordering::Relaxed);
                });
                (acc.load(Ordering::Relaxed), r)
            });
            times.push(secs);
            assert_eq!(r.iterations, tri_pts, "triangular runs only valid pairs");
            report = Some(r);
        }
        rows.push(SpaceRow {
            space: "triangular",
            kernel: "triangular",
            times,
            report: report.unwrap(),
            sched_pts: tri_pts,
            noops_cut: tri_k.eliminated_noops(),
        });
    }

    for r in &rows {
        let mut row = vec![r.space.to_string(), r.kernel.to_string()];
        row.extend(r.times.iter().map(|&s| fmt_secs(s)));
        row.extend([
            r.report.iterations.to_string(),
            r.sched_pts.to_string(),
            r.noops_cut.to_string(),
        ]);
        st.row(row);
    }
    st.print();
    st.write_csv(&ctx.out_dir, "loop_spaces").expect("csv");

    // ---- giant waved 1-D completion ------------------------------------
    //
    // A range past u32::MAX lowers onto panes and waves through the
    // one-CAS-per-chunk pools; completion must conserve exactly in u64.
    let giant = u32::MAX as u64 + 5;
    let rt = Runtime::new(cfg.clone());
    let t0 = Instant::now();
    let out = rt.parallel(|ctx| {
        ctx.parallel_for(0..giant, LoopSchedule::Dynamic(1 << 20), |i, _| {
            std::hint::black_box(i);
        })
    });
    let secs = t0.elapsed().as_secs_f64();
    let report = out.result;
    assert_eq!(
        report.iterations, giant,
        "giant waved loop conserves in u64"
    );
    println!();
    println!(
        "giant waved loop: {giant} iterations (u32::MAX + 5) completed in {} \
         ({} chunks, {} range steals)",
        fmt_secs(secs),
        report.chunks,
        report.range_steals,
    );

    println!();
    if skewed_ok {
        println!(
            "OK: guided/adaptive beat static wall-clock on every skewed-cost kernel \
             (zone-local-first range flow; see local/steal counters above)."
        );
    } else {
        println!(
            "WARN: static won a skewed-cost row — expected only on heavily \
             oversubscribed or single-core hosts."
        );
    }
}
