//! Schedule comparison for the data-parallel loop subsystem: static vs
//! dynamic vs guided vs adaptive under uniform / skewed / bimodal
//! per-iteration cost, on the `dataloops` kernels.
//!
//! Every cell is checksum-verified against the kernel's sequential
//! reference, and the skewed rows assert the subsystem's acceptance
//! property: a dynamic-family schedule (guided or adaptive) beats the
//! static partition wall-clock, with the range-steal counters showing
//! the zone-local-first flow that got it there.
//!
//! ```text
//! cargo run --release -p xgomp-bench --bin loop_schedules -- --scale test
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use xgomp_bench::harness::fmt_secs;
use xgomp_bench::{parse_args, Table};
use xgomp_bots::dataloops::{CostProfile, Kernel, Mandelbrot, SkewedSpmv, Triangular};
use xgomp_bots::Scale;
use xgomp_core::{
    DlbConfig, DlbStrategy, LoopReport, LoopSchedule, MachineTopology, Runtime, RuntimeConfig,
};

fn schedules() -> [LoopSchedule; 4] {
    [
        LoopSchedule::Static,
        LoopSchedule::Dynamic(64),
        LoopSchedule::Guided(16),
        LoopSchedule::Adaptive,
    ]
}

/// Runs `kernel` under `sched`, verifying the checksum; returns the
/// median wall time and the last run's loop report.
fn run_one(
    cfg: &RuntimeConfig,
    kernel: &dyn Kernel,
    sched: LoopSchedule,
    reps: usize,
) -> (f64, LoopReport) {
    let rt = Runtime::new(cfg.clone());
    let expect = kernel.seq_checksum();
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = rt.parallel(|ctx| {
            let acc = AtomicU64::new(0);
            let report = ctx.parallel_for(0..kernel.len(), sched, |i, _| {
                acc.fetch_add(kernel.value(i), Ordering::Relaxed);
            });
            (acc.load(Ordering::Relaxed), report)
        });
        times.push(t0.elapsed().as_secs_f64());
        let (sum, report) = out.result;
        assert_eq!(sum, expect, "{}/{} checksum", kernel.name(), sched.name());
        assert_eq!(report.iterations, kernel.len());
        last = Some(report);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.unwrap())
}

fn main() {
    let ctx = parse_args();
    let (spmv_n, tri_n, mandel) = match ctx.scale {
        Scale::Test => (30_000, 6_000, (96, 48, 384)),
        Scale::Quick => (150_000, 16_000, (256, 128, 768)),
        Scale::Paper => (600_000, 40_000, (512, 256, 2_048)),
    };

    // Two-socket topology so the per-zone pools and cross-zone range
    // stealing are actually exercised.
    let threads = ctx.threads.max(4);
    let cfg = RuntimeConfig::xgomptb(threads)
        .topology(MachineTopology::new(2, threads.div_ceil(2), 1))
        .dlb(DlbConfig::new(DlbStrategy::WorkSteal).t_interval(64));

    let cases: Vec<(Box<dyn Kernel>, CostProfile)> = vec![
        (
            Box::new(SkewedSpmv::new(spmv_n, CostProfile::Uniform, 11)),
            CostProfile::Uniform,
        ),
        (
            Box::new(SkewedSpmv::new(spmv_n, CostProfile::Skewed, 11)),
            CostProfile::Skewed,
        ),
        (
            Box::new(SkewedSpmv::new(spmv_n, CostProfile::Bimodal, 11)),
            CostProfile::Bimodal,
        ),
        (
            Box::new(Triangular::new(tri_n, CostProfile::Skewed, 11)),
            CostProfile::Skewed,
        ),
        (
            Box::new(Mandelbrot::new(mandel.0, mandel.1, mandel.2)),
            CostProfile::Bimodal,
        ),
    ];

    let mut t = Table::new(
        format!(
            "parallel_for schedule comparison ({threads} workers, 2 sockets, NA-WS; \
             median of {} reps; checksum-verified)",
            ctx.reps
        ),
        &[
            "kernel",
            "profile",
            "static",
            "dynamic",
            "guided",
            "adaptive",
            "best/static",
            "chunks",
            "local",
            "steals",
        ],
    );

    let mut skewed_ok = true;
    for (kernel, profile) in &cases {
        let mut times = Vec::new();
        let mut best_report = None;
        for sched in schedules() {
            let (secs, report) = run_one(&cfg, kernel.as_ref(), sched, ctx.reps);
            times.push(secs);
            if best_report.is_none() || secs <= *times.iter().min_by(|a, b| a.total_cmp(b)).unwrap()
            {
                best_report = Some(report);
            }
        }
        let (t_static, t_dynamic, t_guided, t_adaptive) = (times[0], times[1], times[2], times[3]);
        let best_dyn = t_guided.min(t_adaptive);
        let speedup = t_static / best_dyn;
        if matches!(profile, CostProfile::Skewed) && best_dyn >= t_static {
            skewed_ok = false;
        }
        let r = best_report.unwrap();
        t.row(vec![
            kernel.name().to_string(),
            profile.name().to_string(),
            fmt_secs(t_static),
            fmt_secs(t_dynamic),
            fmt_secs(t_guided),
            fmt_secs(t_adaptive),
            format!("{speedup:.2}x"),
            r.chunks.to_string(),
            r.claimed_local.to_string(),
            r.range_steals.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&ctx.out_dir, "loop_schedules").expect("csv");

    println!();
    if skewed_ok {
        println!(
            "OK: guided/adaptive beat static wall-clock on every skewed-cost kernel \
             (zone-local-first range flow; see local/steal counters above)."
        );
    } else {
        println!(
            "WARN: static won a skewed-cost row — expected only on heavily \
             oversubscribed or single-core hosts."
        );
    }
}
