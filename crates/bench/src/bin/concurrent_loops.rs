//! Concurrent-loops makespan comparison: the inter-socket loop balancer
//! (coarse level of two-level DLB) against the dry-pool-steal baseline.
//!
//! Several skewed-cost loop jobs are served *simultaneously* by one
//! `TaskServer` on a two-socket topology, with the balancer off
//! (`rebalance_interval = 0` — exactly the PR 4 reactive behavior) and
//! on. Every loop is checksum-verified against its kernel's sequential
//! reference in both configurations, the off leg must report zero
//! rebalances, the on leg must report some — and the summary table
//! carries makespan, rebalance/steal counters and the per-worker
//! drain-rate spread (max/min executed iterations) for the CI artifact.
//!
//! ```text
//! cargo run --release -p xgomp-bench --bin concurrent_loops -- --scale test
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use xgomp_bench::harness::{fmt_count, fmt_secs};
use xgomp_bench::{parse_args, Table};
use xgomp_bots::dataloops::{CostProfile, Kernel, SkewedSpmv, Triangular};
use xgomp_bots::Scale;
use xgomp_core::{DlbConfig, DlbStrategy, LoopSchedule, MachineTopology, RuntimeConfig};
use xgomp_service::{ServerConfig, TaskServer};

/// One measured configuration of the comparison.
struct Leg {
    makespan: f64,
    rebalances: u64,
    range_steals: u64,
    migrated: u64,
    /// max/min per-worker executed loop iterations (drain spread; 1.0 is
    /// perfectly level).
    spread: f64,
}

fn run_leg(threads: usize, interval: u64, kernels: &[Arc<dyn Kernel>], reps: usize) -> Leg {
    let rt = RuntimeConfig::xgomptb(threads)
        .topology(MachineTopology::new(2, threads.div_ceil(2), 1))
        .dlb(
            DlbConfig::new(DlbStrategy::WorkSteal)
                .t_interval(64)
                .rebalance_interval(interval),
        );
    let server = TaskServer::start(ServerConfig::new(threads).runtime(rt).adapt_every(0));

    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let handles: Vec<_> = kernels
            .iter()
            .map(|k| {
                let kernel = k.clone();
                let acc = Arc::new(AtomicU64::new(0));
                let a = acc.clone();
                let h = server
                    .submit_for(0..kernel.len(), LoopSchedule::Dynamic(64), move |i, _| {
                        a.fetch_add(kernel.value(i), Ordering::Relaxed);
                    })
                    .expect("submit loop job");
                (h, acc, k)
            })
            .collect();
        for (h, acc, k) in handles {
            let report = h.join().expect("loop job");
            assert_eq!(report.iterations, k.len(), "{}", k.name());
            assert_eq!(
                report.migrated_in,
                report.migrated_out,
                "{}: migration accounting must conserve",
                k.name()
            );
            assert_eq!(
                acc.load(Ordering::Relaxed),
                k.seq_checksum(),
                "{}: parallel checksum diverged from the sequential reference",
                k.name()
            );
        }
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let makespan = times[times.len() / 2];

    let stats = server.stats();
    let migrated = server.loop_balancer().iterations_migrated();
    let report = server.shutdown();
    let workers = &report.region.expect("clean serve").stats.workers;
    let iters: Vec<u64> = workers.iter().map(|w| w.nloop_iters).collect();
    let (min, max) = (
        iters.iter().copied().min().unwrap_or(0).max(1),
        iters.iter().copied().max().unwrap_or(0).max(1),
    );
    Leg {
        makespan,
        rebalances: stats.loop_rebalances,
        range_steals: stats.loop_range_steals,
        migrated,
        spread: max as f64 / min as f64,
    }
}

fn main() {
    let ctx = parse_args();
    let (spmv_n, tri_n, jobs_per_kernel) = match ctx.scale {
        Scale::Test => (20_000, 4_000, 2),
        Scale::Quick => (100_000, 12_000, 3),
        Scale::Paper => (400_000, 30_000, 4),
    };
    let threads = ctx.threads.max(4);

    // Kernel×profile cells, each a set of concurrent skewed loop jobs
    // (distinct seeds, so the rich tails differ per job).
    let spmv: Vec<Arc<dyn Kernel>> = (0..jobs_per_kernel)
        .map(|j| Arc::new(SkewedSpmv::new(spmv_n, CostProfile::Skewed, 11 + j as u64)) as _)
        .collect();
    let tri: Vec<Arc<dyn Kernel>> = (0..jobs_per_kernel)
        .map(|j| Arc::new(Triangular::new(tri_n, CostProfile::Skewed, 23 + j as u64)) as _)
        .collect();
    let mixed: Vec<Arc<dyn Kernel>> = spmv.iter().chain(tri.iter()).cloned().collect();
    let cells: [(&str, &[Arc<dyn Kernel>]); 3] = [
        ("spmv/skewed", &spmv),
        ("triangular/skewed", &tri),
        ("mixed/skewed", &mixed),
    ];

    let mut t = Table::new(
        format!(
            "concurrent skewed loops, balancer on vs off ({threads} workers, 2 sockets, \
             dynamic/64; median of {} reps; checksum-verified)",
            ctx.reps
        ),
        &[
            "cell",
            "jobs",
            "off",
            "on",
            "off/on",
            "rebalances",
            "iters migrated",
            "steals off→on",
            "spread off→on",
        ],
    );

    let mut best_speedup = 0.0f64;
    for (name, kernels) in cells {
        let off = run_leg(threads, 0, kernels, ctx.reps);
        let on = run_leg(threads, 2_048, kernels, ctx.reps);
        assert_eq!(
            off.rebalances, 0,
            "{name}: rebalance_interval = 0 must reproduce the dry-pool-steal baseline"
        );
        assert!(
            on.rebalances > 0,
            "{name}: skewed concurrent loops under an active balancer must migrate ranges"
        );
        let speedup = off.makespan / on.makespan.max(1e-9);
        best_speedup = best_speedup.max(speedup);
        t.row(vec![
            name.to_string(),
            kernels.len().to_string(),
            fmt_secs(off.makespan),
            fmt_secs(on.makespan),
            format!("{speedup:.2}x"),
            on.rebalances.to_string(),
            fmt_count(on.migrated),
            format!(
                "{}\u{2192}{}",
                fmt_count(off.range_steals),
                fmt_count(on.range_steals)
            ),
            format!("{:.2}x\u{2192}{:.2}x", off.spread, on.spread),
        ]);
    }
    t.print();
    t.write_csv(&ctx.out_dir, "concurrent_loops").expect("csv");

    println!();
    if best_speedup >= 1.0 {
        println!(
            "OK: balancer reduced skewed-kernel makespan on \u{2265}1 cell (best {best_speedup:.2}x), \
             rebalance counters > 0, checksums unchanged."
        );
    } else {
        println!(
            "WARN: no cell improved (best {best_speedup:.2}x) — expected only on heavily \
             oversubscribed or single-core hosts; rebalance counters and checksums still verified."
        );
    }
}
