//! Reproduces Fig. 11: STATIC vs guided NA-RP vs guided NA-WS.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let t = xgomp_bench::experiments::fig11(&ctx);
    t.print();
    t.write_csv(&ctx.out_dir, "fig11").expect("csv");
}
