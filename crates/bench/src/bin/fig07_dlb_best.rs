//! Reproduces Fig. 7: best NA-RP / NA-WS vs static balancing.
fn main() {
    let ctx = xgomp_bench::parse_args();
    let study = xgomp_bench::experiments::dlb_study(&ctx);
    study.fig7.print();
    study.fig7.write_csv(&ctx.out_dir, "fig07").expect("csv");
}
