//! Minimal aligned-table rendering + CSV emission for experiment output.

use std::io::Write;
use std::path::Path;

/// A titled table: printed aligned to stdout and written as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Shown above the table (figure/table number + caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes `<dir>/<name>.csv` (creating the directory).
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_and_csvs() {
        let mut t = Table::new("Demo", &["app", "time"]);
        t.row(vec!["FIB".into(), "1.2s".into()]);
        t.row(vec!["NQUEENS".into(), "10.0s".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("FIB"));
        let dir = std::env::temp_dir().join("xgomp_table_test");
        t.write_csv(&dir, "demo").unwrap();
        let csv = std::fs::read_to_string(dir.join("demo.csv")).unwrap();
        assert!(csv.contains("app,time"));
        assert!(csv.contains("NQUEENS,10.0s"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
