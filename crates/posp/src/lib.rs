//! # xgomp-posp
//!
//! The paper's §VII case study: a Proof-of-Space (PoSp) blockchain
//! plotting workload, built on a from-scratch portable [`blake3`]
//! implementation and the `xgomp-core` task API.
//!
//! PoSp replaces Proof-of-Work's compute race with a storage commitment:
//! a *plot* of 2^k cryptographic puzzles (28-byte BLAKE3 hash + 4-byte
//! nonce, the layout used by Chia-class chains) generated once and
//! queried cheaply at consensus time. Plot generation is expressed as
//! OpenMP-style tasks whose *batch size* sets the task grain — the knob
//! Fig. 8 sweeps from 1 to 16384 to locate each runtime's throughput
//! peak (XGOMPTB: 217 MH/s at batch 1024 on the paper's machine;
//! GOMP: 164 MH/s only at batch 8192).
//!
//! ```
//! use xgomp_core::{Runtime, RuntimeConfig};
//! use xgomp_posp::plot::{generate_par, PlotParams};
//!
//! let rt = Runtime::new(RuntimeConfig::xgomptb(2));
//! let params = PlotParams { k: 8, batch: 16, challenge: 7, n_buckets: 16 };
//! let out = rt.parallel(|ctx| generate_par(ctx, &params));
//! assert_eq!(out.result.len(), 256);
//! ```

#![warn(missing_docs)]

pub mod blake3;
pub mod plot;

pub use blake3::{hash, Hasher};
pub use plot::{generate_par, generate_seq, make_puzzle, Plot, PlotParams, Puzzle};
