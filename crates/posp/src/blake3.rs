//! Portable BLAKE3 (scalar reference implementation, from the public
//! BLAKE3 specification).
//!
//! The paper's Proof-of-Space application hashes every cryptographic
//! puzzle with BLAKE3 (chosen over SHA-256 "due to its excellent
//! performance on a wide range of hardware", §VII). To keep this
//! reproduction dependency-free we implement the full hash from the
//! spec: the 7-round compression function, chunk chaining, the binary
//! Merkle tree over chunk chaining values, and extendable output.
//! Validated against the official test vectors (see `tests/`).

/// Output size of the default hash (bytes).
pub const OUT_LEN: usize = 32;
/// Block size (bytes).
pub const BLOCK_LEN: usize = 64;
/// Chunk size (bytes).
pub const CHUNK_LEN: usize = 1024;

const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

const MSG_PERMUTATION: [usize; 16] = [2, 6, 3, 10, 7, 0, 4, 13, 1, 11, 12, 5, 9, 14, 15, 8];

const CHUNK_START: u32 = 1 << 0;
const CHUNK_END: u32 = 1 << 1;
const PARENT: u32 = 1 << 2;
const ROOT: u32 = 1 << 3;

/// The quarter-round.
#[inline(always)]
fn g(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, mx: u32, my: u32) {
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(mx);
    state[d] = (state[d] ^ state[a]).rotate_right(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(12);
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(my);
    state[d] = (state[d] ^ state[a]).rotate_right(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(7);
}

#[inline(always)]
fn round(state: &mut [u32; 16], m: &[u32; 16]) {
    // Columns.
    g(state, 0, 4, 8, 12, m[0], m[1]);
    g(state, 1, 5, 9, 13, m[2], m[3]);
    g(state, 2, 6, 10, 14, m[4], m[5]);
    g(state, 3, 7, 11, 15, m[6], m[7]);
    // Diagonals.
    g(state, 0, 5, 10, 15, m[8], m[9]);
    g(state, 1, 6, 11, 12, m[10], m[11]);
    g(state, 2, 7, 8, 13, m[12], m[13]);
    g(state, 3, 4, 9, 14, m[14], m[15]);
}

#[inline(always)]
fn permute(m: &mut [u32; 16]) {
    let mut out = [0u32; 16];
    for i in 0..16 {
        out[i] = m[MSG_PERMUTATION[i]];
    }
    *m = out;
}

/// The compression function; returns the full 16-word state (the first
/// 8 words are the new chaining value; all 16 feed extendable output).
fn compress(
    chaining_value: &[u32; 8],
    block_words: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 16] {
    let mut state = [
        chaining_value[0],
        chaining_value[1],
        chaining_value[2],
        chaining_value[3],
        chaining_value[4],
        chaining_value[5],
        chaining_value[6],
        chaining_value[7],
        IV[0],
        IV[1],
        IV[2],
        IV[3],
        counter as u32,
        (counter >> 32) as u32,
        block_len,
        flags,
    ];
    let mut m = *block_words;
    round(&mut state, &m); // round 1
    for _ in 0..6 {
        permute(&mut m);
        round(&mut state, &m); // rounds 2–7
    }
    for i in 0..8 {
        state[i] ^= state[i + 8];
        state[i + 8] ^= chaining_value[i];
    }
    state
}

#[inline]
fn words_from_block(block: &[u8]) -> [u32; 16] {
    debug_assert!(block.len() <= BLOCK_LEN);
    let mut words = [0u32; 16];
    for (i, chunk) in block.chunks(4).enumerate() {
        let mut b = [0u8; 4];
        b[..chunk.len()].copy_from_slice(chunk);
        words[i] = u32::from_le_bytes(b);
    }
    words
}

#[inline]
fn first_8(words: [u32; 16]) -> [u32; 8] {
    [
        words[0], words[1], words[2], words[3], words[4], words[5], words[6], words[7],
    ]
}

/// A deferred output: the final compression's inputs, so ROOT can be
/// applied (and extended output generated) at finalization time.
struct Output {
    input_cv: [u32; 8],
    block_words: [u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
}

impl Output {
    fn chaining_value(&self) -> [u32; 8] {
        first_8(compress(
            &self.input_cv,
            &self.block_words,
            self.counter,
            self.block_len,
            self.flags,
        ))
    }

    /// Root output bytes (XOF): output block `i` uses counter `i`.
    fn root_bytes(&self, out: &mut [u8]) {
        for (i, out_block) in out.chunks_mut(2 * OUT_LEN).enumerate() {
            let words = compress(
                &self.input_cv,
                &self.block_words,
                i as u64,
                self.block_len,
                self.flags | ROOT,
            );
            for (word, dst) in words.iter().zip(out_block.chunks_mut(4)) {
                dst.copy_from_slice(&word.to_le_bytes()[..dst.len()]);
            }
        }
    }
}

/// Streaming state for one 1024-byte chunk.
struct ChunkState {
    cv: [u32; 8],
    chunk_counter: u64,
    block: [u8; BLOCK_LEN],
    block_len: u8,
    blocks_compressed: u8,
}

impl ChunkState {
    fn new(key: [u32; 8], chunk_counter: u64) -> Self {
        ChunkState {
            cv: key,
            chunk_counter,
            block: [0; BLOCK_LEN],
            block_len: 0,
            blocks_compressed: 0,
        }
    }

    fn len(&self) -> usize {
        BLOCK_LEN * self.blocks_compressed as usize + self.block_len as usize
    }

    fn start_flag(&self) -> u32 {
        if self.blocks_compressed == 0 {
            CHUNK_START
        } else {
            0
        }
    }

    fn update(&mut self, mut input: &[u8]) {
        while !input.is_empty() {
            // If the block buffer is full, compress it (it cannot be the
            // chunk's final block — more input is coming).
            if self.block_len as usize == BLOCK_LEN {
                let words = words_from_block(&self.block);
                self.cv = first_8(compress(
                    &self.cv,
                    &words,
                    self.chunk_counter,
                    BLOCK_LEN as u32,
                    self.start_flag(),
                ));
                self.blocks_compressed += 1;
                self.block = [0; BLOCK_LEN];
                self.block_len = 0;
            }
            let want = BLOCK_LEN - self.block_len as usize;
            let take = want.min(input.len());
            self.block[self.block_len as usize..self.block_len as usize + take]
                .copy_from_slice(&input[..take]);
            self.block_len += take as u8;
            input = &input[take..];
        }
    }

    fn output(&self) -> Output {
        Output {
            input_cv: self.cv,
            block_words: words_from_block(&self.block[..self.block_len as usize]),
            counter: self.chunk_counter,
            block_len: self.block_len as u32,
            flags: self.start_flag() | CHUNK_END,
        }
    }
}

fn parent_output(left: [u32; 8], right: [u32; 8], key: [u32; 8]) -> Output {
    let mut block_words = [0u32; 16];
    block_words[..8].copy_from_slice(&left);
    block_words[8..].copy_from_slice(&right);
    Output {
        input_cv: key,
        block_words,
        counter: 0,
        block_len: BLOCK_LEN as u32,
        flags: PARENT,
    }
}

/// Incremental BLAKE3 hasher (default mode, no key).
pub struct Hasher {
    chunk: ChunkState,
    key: [u32; 8],
    /// Chaining values of completed subtrees, leftmost at the bottom.
    cv_stack: Vec<[u32; 8]>,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Fresh hasher.
    pub fn new() -> Self {
        Hasher {
            chunk: ChunkState::new(IV, 0),
            key: IV,
            cv_stack: Vec::new(),
        }
    }

    fn add_chunk_cv(&mut self, mut cv: [u32; 8], mut total_chunks: u64) {
        // Merge completed subtrees: one per trailing-zero bit of the
        // completed-chunk count.
        while total_chunks & 1 == 0 {
            let left = self.cv_stack.pop().expect("stack underflow");
            cv = parent_output(left, cv, self.key).chaining_value();
            total_chunks >>= 1;
        }
        self.cv_stack.push(cv);
    }

    /// Absorbs input bytes.
    pub fn update(&mut self, mut input: &[u8]) -> &mut Self {
        while !input.is_empty() {
            // A full chunk with more input coming is finalized as a
            // non-root chunk and pushed onto the CV stack.
            if self.chunk.len() == CHUNK_LEN {
                let cv = self.chunk.output().chaining_value();
                let total_chunks = self.chunk.chunk_counter + 1;
                self.add_chunk_cv(cv, total_chunks);
                self.chunk = ChunkState::new(self.key, total_chunks);
            }
            let want = CHUNK_LEN - self.chunk.len();
            let take = want.min(input.len());
            self.chunk.update(&input[..take]);
            input = &input[take..];
        }
        self
    }

    /// Produces `out.len()` bytes of extendable output.
    pub fn finalize_xof(&self, out: &mut [u8]) {
        // Fold the CV stack from the top down into the final output.
        let mut output = self.chunk.output();
        for &left in self.cv_stack.iter().rev() {
            output = parent_output(left, output.chaining_value(), self.key);
        }
        output.root_bytes(out);
    }

    /// Produces the default 32-byte hash.
    pub fn finalize(&self) -> [u8; OUT_LEN] {
        let mut out = [0u8; OUT_LEN];
        self.finalize_xof(&mut out);
        out
    }
}

/// One-shot convenience hash.
pub fn hash(input: &[u8]) -> [u8; OUT_LEN] {
    let mut h = Hasher::new();
    h.update(input);
    h.finalize()
}

/// Hex rendering for test vectors and display.
pub fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official BLAKE3 test-vector input: bytes 0,1,…,249 repeating.
    fn tv_input(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn empty_input_matches_official_vector() {
        // First vector of the official BLAKE3 test-vector file.
        assert_eq!(
            to_hex(&hash(b"")),
            "af1349b9f5f9a1a6a0404dea36dcc9499bcb25c9adc112b7cc9a93cae41f3262"
        );
    }

    #[test]
    fn incremental_equals_one_shot_across_chunkings() {
        let input = tv_input(5000);
        let expect = hash(&input);
        for split in [1usize, 7, 63, 64, 65, 1023, 1024, 1025, 2048] {
            let mut h = Hasher::new();
            for part in input.chunks(split) {
                h.update(part);
            }
            assert_eq!(h.finalize(), expect, "split={split}");
        }
    }

    #[test]
    fn chunk_boundary_lengths_are_all_distinct() {
        let lengths = [
            0usize, 1, 63, 64, 65, 1023, 1024, 1025, 2047, 2048, 2049, 4096,
        ];
        let hashes: Vec<String> = lengths
            .iter()
            .map(|&n| to_hex(&hash(&tv_input(n))))
            .collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "lengths {i} vs {j} collided");
            }
        }
    }

    #[test]
    fn xof_prefix_property() {
        let input = tv_input(100);
        let mut h = Hasher::new();
        h.update(&input);
        let mut out64 = [0u8; 64];
        h.finalize_xof(&mut out64);
        let mut out32 = [0u8; 32];
        h.finalize_xof(&mut out32);
        assert_eq!(&out64[..32], &out32[..], "XOF must be prefix-stable");
        assert_ne!(&out64[..32], &out64[32..], "extended blocks must differ");
    }

    #[test]
    fn avalanche_on_single_bit() {
        let a = hash(b"proof of space puzzle 0");
        let b = hash(b"proof of space puzzle 1");
        let differing: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        // Expect ~128 differing bits of 256; anything above 80 is a
        // comfortable avalanche check.
        assert!(differing > 80, "only {differing} bits differ");
    }
}
