//! The Proof-of-Space plotting workload (§VII).
//!
//! PoSp turns consensus into a storage problem: 2^k cryptographic
//! puzzles — each a 28-byte BLAKE3 hash plus its 4-byte nonce — are
//! generated and organized into buckets for later efficient retrieval
//! (Chia-style plotting). Generation is embarrassingly parallel but
//! *irregular at the runtime level*: the batch size decides the task
//! grain, and Fig. 8 sweeps it from 1 (7.8 M tasks/s stress test) to
//! 16384 (load-imbalance regime).

use serde::{Deserialize, Serialize};
use xgomp_core::TaskCtx;

use crate::blake3;

/// One cryptographic puzzle: 28-byte BLAKE3 hash + 4-byte nonce (§VII's
/// exact layout: 32 bytes per puzzle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Puzzle {
    /// First 28 bytes of `BLAKE3(challenge ‖ nonce)`.
    pub hash: [u8; 28],
    /// The nonce that produced it.
    pub nonce: u32,
}

/// Plot parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlotParams {
    /// log2 of the number of puzzles (the paper's K; production Chia
    /// uses K = 32, the evaluation uses small K for sweep time).
    pub k: u32,
    /// Puzzles generated per task (Fig. 8's swept batch size).
    pub batch: usize,
    /// Challenge the nonces are hashed against.
    pub challenge: u64,
    /// Number of buckets the plot is organized into (power of two).
    pub n_buckets: usize,
}

impl PlotParams {
    /// Total puzzles (`2^k`).
    pub fn n_puzzles(&self) -> usize {
        1usize << self.k
    }
}

/// Computes one puzzle.
#[inline]
pub fn make_puzzle(challenge: u64, nonce: u32) -> Puzzle {
    let mut input = [0u8; 12];
    input[..8].copy_from_slice(&challenge.to_le_bytes());
    input[8..].copy_from_slice(&nonce.to_le_bytes());
    let h = blake3::hash(&input);
    let mut hash = [0u8; 28];
    hash.copy_from_slice(&h[..28]);
    Puzzle { hash, nonce }
}

/// A finished plot: puzzles bucketed by hash prefix.
#[derive(Debug)]
pub struct Plot {
    /// `n_buckets` buckets; bucket index = first hash byte folded onto
    /// the bucket count.
    pub buckets: Vec<Vec<Puzzle>>,
}

impl Plot {
    fn bucket_of(p: &Puzzle, n_buckets: usize) -> usize {
        (u16::from_le_bytes([p.hash[0], p.hash[1]]) as usize) % n_buckets
    }

    fn from_puzzles(puzzles: Vec<Puzzle>, n_buckets: usize) -> Plot {
        let mut buckets = vec![Vec::new(); n_buckets];
        for p in puzzles {
            buckets[Self::bucket_of(&p, n_buckets)].push(p);
        }
        // Deterministic layout: order within a bucket by nonce.
        for b in &mut buckets {
            b.sort_unstable_by_key(|p| p.nonce);
        }
        Plot { buckets }
    }

    /// Total puzzles stored.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// True when no puzzles are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Order-insensitive digest for verification.
    pub fn digest(&self) -> u64 {
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            for p in b {
                let mut x = u64::from_le_bytes(p.hash[..8].try_into().unwrap());
                x ^= (i as u64) << 56 ^ p.nonce as u64;
                // Commutative mix so bucket fill order is irrelevant
                // (it is deterministic here, but cheap insurance).
                acc = acc.wrapping_add(x.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        acc
    }

    /// Looks up the puzzles whose hash starts with `prefix` (the
    /// retrieval path a PoSp prover runs; exercises bucket locality).
    pub fn lookup(&self, prefix: &[u8]) -> Vec<&Puzzle> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter())
            .filter(|p| p.hash.starts_with(prefix))
            .collect()
    }
}

/// Sequential plot generation (reference).
pub fn generate_seq(p: &PlotParams) -> Plot {
    let puzzles: Vec<Puzzle> = (0..p.n_puzzles() as u32)
        .map(|nonce| make_puzzle(p.challenge, nonce))
        .collect();
    Plot::from_puzzles(puzzles, p.n_buckets)
}

/// Task-parallel plot generation: one task per `batch` nonces, exactly
/// the §VII structure ("the batch size determines the number of
/// cryptographic puzzles to be generated in a single task").
pub fn generate_par(ctx: &TaskCtx<'_>, p: &PlotParams) -> Plot {
    let n = p.n_puzzles();
    let mut puzzles = vec![
        Puzzle {
            hash: [0; 28],
            nonce: 0
        };
        n
    ];
    let challenge = p.challenge;
    let batch = p.batch.max(1);
    ctx.scope(|s| {
        for (chunk_idx, chunk) in puzzles.chunks_mut(batch).enumerate() {
            let base = (chunk_idx * batch) as u32;
            s.spawn(move |_| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = make_puzzle(challenge, base + i as u32);
                }
            });
        }
    });
    Plot::from_puzzles(puzzles, p.n_buckets)
}

/// Hashes performed per generated plot (for MH/s reporting).
pub fn hashes_per_plot(p: &PlotParams) -> u64 {
    p.n_puzzles() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgomp_core::{Runtime, RuntimeConfig};

    fn params(k: u32, batch: usize) -> PlotParams {
        PlotParams {
            k,
            batch,
            challenge: 0xC4A1_1E46E,
            n_buckets: 64,
        }
    }

    #[test]
    fn puzzles_are_deterministic_and_distinct() {
        let a = make_puzzle(1, 0);
        let b = make_puzzle(1, 0);
        assert_eq!(a, b);
        let c = make_puzzle(1, 1);
        assert_ne!(a.hash, c.hash);
        let d = make_puzzle(2, 0);
        assert_ne!(a.hash, d.hash);
    }

    #[test]
    fn plot_holds_every_nonce_exactly_once() {
        let plot = generate_seq(&params(10, 1));
        assert_eq!(plot.len(), 1024);
        let mut nonces: Vec<u32> = plot
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|p| p.nonce))
            .collect();
        nonces.sort_unstable();
        assert_eq!(nonces, (0..1024).collect::<Vec<_>>());
    }

    #[test]
    fn buckets_are_reasonably_balanced() {
        let plot = generate_seq(&params(12, 1));
        let max = plot.buckets.iter().map(Vec::len).max().unwrap();
        let min = plot.buckets.iter().map(Vec::len).min().unwrap();
        // 4096 puzzles over 64 buckets: expect ~64 ± noise per bucket.
        assert!(max < 64 * 3 && min > 0, "min={min} max={max}");
    }

    #[test]
    fn par_matches_seq_for_every_batch_size() {
        let expect = generate_seq(&params(10, 1)).digest();
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        for batch in [1usize, 4, 33, 256, 4096] {
            let p = params(10, batch);
            let out = rt.parallel(|ctx| generate_par(ctx, &p).digest());
            assert_eq!(out.result, expect, "batch={batch}");
        }
    }

    #[test]
    fn batch_size_controls_task_count() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(2));
        let p1 = params(10, 1);
        let p64 = params(10, 64);
        let t1 = rt
            .parallel(|ctx| drop(generate_par(ctx, &p1)))
            .stats
            .total()
            .tasks_created;
        let t64 = rt
            .parallel(|ctx| drop(generate_par(ctx, &p64)))
            .stats
            .total()
            .tasks_created;
        assert_eq!(t1, 1024);
        assert_eq!(t64, 16);
    }

    #[test]
    fn lookup_finds_prefix_matches() {
        let plot = generate_seq(&params(10, 1));
        let target = plot.buckets.iter().find(|b| !b.is_empty()).unwrap()[0];
        let found = plot.lookup(&target.hash[..4]);
        assert!(found.iter().any(|p| p.nonce == target.nonce));
    }
}
