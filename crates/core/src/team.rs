//! Team construction and the worker scheduling loop: the runtime's
//! equivalent of `gomp_team_start` / `gomp_thread_start` (§III-A).
//!
//! [`Runtime::parallel`] opens a parallel region: it builds the team
//! (scheduler, barrier, allocator, message cells, profiler), runs the
//! region closure on the master as the *implicit task* (the BOTS
//! `parallel` + `single` idiom), and lets every worker run the
//! scheduling loop until the team barrier detects quiescence.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xgomp_profiling::{clock, EventKind, PerfLog, TeamStats, WorkerStats};
use xgomp_topology::{CostModel, Placement};
use xgomp_xqueue::Backoff;

use crate::alloc::TaskAllocator;
use crate::barrier::TeamBarrier;
use crate::config::RuntimeConfig;
use crate::ctx::TaskCtx;
use crate::sched::Scheduler;
use crate::task::Task;
use crate::util::PerWorker;

/// Everything a team of workers shares for one parallel region.
pub(crate) struct TeamShared {
    pub n: usize,
    pub sched: Box<dyn Scheduler>,
    pub barrier: Box<dyn TeamBarrier>,
    pub alloc: TaskAllocator,
    pub stats: Arc<Vec<WorkerStats>>,
    pub placement: Arc<Placement>,
    pub cost: CostModel,
    pub logs: PerWorker<PerfLog>,
    pub profiling: bool,
    /// Set when any task body panicked; workers drain out instead of
    /// spinning on a barrier that can no longer release.
    pub poisoned: AtomicBool,
}

impl TeamShared {
    /// Records a profiling span ending now (no-op when profiling is off).
    #[inline]
    pub(crate) fn log_span(&self, w: usize, kind: EventKind, t0: u64) {
        if self.profiling {
            // SAFETY: worker-ownership contract; leaf access.
            unsafe { self.logs.with(w, |l| l.push_span(kind, t0, clock::now())) };
        }
    }
}

/// Executes one task on worker `w`: locality accounting, NUMA cost
/// model, the body itself, then completion (dependency updates, barrier
/// notification, record release) — which a drop guard performs even if
/// the body unwinds.
pub(crate) fn execute(team: &TeamShared, w: usize, task: NonNull<Task>) {
    // SAFETY: we hold the task's handle reference; the record is alive.
    let creator = unsafe { task.as_ref() }.creator();
    let locality = team.placement.locality(creator, w);
    team.stats[w].record_execution(locality);
    team.cost.apply(locality);

    let t0 = if team.profiling { clock::now() } else { 0 };

    struct CompletionGuard<'a> {
        team: &'a TeamShared,
        w: usize,
        task: NonNull<Task>,
    }
    impl Drop for CompletionGuard<'_> {
        fn drop(&mut self) {
            let team = self.team;
            let w = self.w;
            if std::thread::panicking() {
                team.poisoned.store(true, Ordering::Release);
            }
            // SAFETY: record alive until our release below.
            let t = unsafe { self.task.as_ref() };
            if let Some(parent) = t.parent() {
                // SAFETY: the child holds a reference to the parent, so
                // the parent record is alive here.
                let p = unsafe { parent.as_ref() };
                p.child_completed();
                if p.release_ref() {
                    // SAFETY: last reference gone; worker slot owned.
                    unsafe { team.alloc.free(w, parent) };
                }
            }
            team.barrier.task_finished(w);
            if t.release_ref() {
                // SAFETY: as above.
                unsafe { team.alloc.free(w, self.task) };
            }
        }
    }

    let guard = CompletionGuard { team, w, task };
    // SAFETY: single-executor discipline — the handle reference we hold
    // is the only execution claim on this task.
    if let Some(body) = unsafe { Task::take_body(task) } {
        let ctx = TaskCtx {
            team,
            worker: w,
            task,
        };
        body(&ctx);
    }
    drop(guard);
    team.log_span(w, EventKind::Task, t0);
}

/// The scheduling loop every worker runs inside the region-end barrier:
/// execute whatever the scheduler yields; when idle, fire the DLB thief
/// hook and poll the barrier.
pub(crate) fn worker_loop(team: &TeamShared, w: usize) {
    let mut backoff = Backoff::new();
    // One merged span per idle period: closed as STALL when work shows
    // up, as BARRIER when the region ends (keeps logs bounded).
    let mut idle_t0: Option<u64> = None;
    loop {
        if team.poisoned.load(Ordering::Acquire) {
            break;
        }
        if let Some(t) = team.sched.next_task(w) {
            if let Some(t0) = idle_t0.take() {
                team.log_span(w, EventKind::Stall, t0);
            }
            team.sched.pre_execute(w);
            execute(team, w, t);
            backoff.reset();
            continue;
        }
        team.sched.on_idle(w);
        if team.profiling && idle_t0.is_none() {
            idle_t0 = Some(clock::now());
        }
        if team.barrier.try_release(w) {
            if let Some(t0) = idle_t0.take() {
                team.log_span(w, EventKind::Barrier, t0);
            }
            break;
        }
        backoff.snooze();
    }
}

/// Master path: run the region closure as the implicit task, then join
/// the barrier loop like any other worker.
fn master_main<R>(team: &TeamShared, f: impl FnOnce(&TaskCtx<'_>) -> R) -> R {
    // The implicit (root) task anchoring the region's task tree.
    // SAFETY: master owns worker slot 0.
    let root = unsafe { team.alloc.alloc(0, None, None, 0) };

    struct PoisonOnUnwind<'a>(&'a TeamShared);
    impl Drop for PoisonOnUnwind<'_> {
        fn drop(&mut self) {
            self.0.poisoned.store(true, Ordering::Release);
        }
    }

    let result = {
        let ctx = TaskCtx {
            team,
            worker: 0,
            task: root,
        };
        let bomb = PoisonOnUnwind(team);
        let r = f(&ctx);
        std::mem::forget(bomb);
        r
    };

    team.barrier.arrive(0);
    worker_loop(team, 0);

    // SAFETY: region quiesced; all children released their references.
    let root_ref = unsafe { root.as_ref() };
    if root_ref.release_ref() {
        // SAFETY: last reference; worker slot 0 owned.
        unsafe { team.alloc.free(0, root) };
    }
    result
}

/// A configured runtime; cheap to construct, owns no threads. Each
/// [`parallel`](Runtime::parallel) call creates a fresh team (matching
/// the paper's per-region measurement methodology).
pub struct Runtime {
    cfg: RuntimeConfig,
}

impl Runtime {
    /// Builds a runtime from `cfg` (validated).
    pub fn new(cfg: RuntimeConfig) -> Self {
        assert!(cfg.threads >= 1, "a team needs at least one worker");
        assert!(
            cfg.threads <= (1 << 24),
            "worker ids must fit the 24-bit message-cell field"
        );
        Runtime { cfg }
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Opens a parallel region: `f` runs on the master as the implicit
    /// single task; the region returns when every transitively spawned
    /// task has completed (detected by the configured barrier).
    pub fn parallel<R>(&self, f: impl FnOnce(&TaskCtx<'_>) -> R) -> RegionOutput<R> {
        let cfg = &self.cfg;
        let n = cfg.threads;
        let placement = Arc::new(Placement::new(cfg.topology.clone(), n, cfg.affinity));
        let stats: Arc<Vec<WorkerStats>> =
            Arc::new((0..n).map(|_| WorkerStats::default()).collect());
        let team = TeamShared {
            n,
            sched: cfg.scheduler.build(
                n,
                cfg.queue_capacity,
                stats.clone(),
                placement.clone(),
                cfg.dlb,
            ),
            barrier: cfg.barrier.build(n),
            alloc: TaskAllocator::new(cfg.allocator, n),
            stats,
            placement,
            cost: cfg.cost_model,
            logs: PerWorker::new(n, |w| PerfLog::new(w, cfg.profiling)),
            profiling: cfg.profiling,
            poisoned: AtomicBool::new(false),
        };

        let started = Instant::now();
        let mut result: Option<R> = None;
        std::thread::scope(|s| {
            for w in 1..n {
                let team = &team;
                s.spawn(move || {
                    team.barrier.arrive(w);
                    worker_loop(team, w);
                });
            }
            result = Some(master_main(&team, f));
        });
        let wall = started.elapsed();

        // Teardown sanity: a correct barrier leaves nothing queued.
        let mut leaked = 0usize;
        team.sched.drain_all(&mut |ptr| {
            leaked += 1;
            discard_task(&team, ptr);
        });
        assert_eq!(
            leaked,
            0,
            "scheduler `{}` retained {leaked} task(s) after `{}` released",
            team.sched.name(),
            team.barrier.name()
        );
        debug_assert_eq!(
            team.alloc.outstanding(),
            0,
            "task records leaked by the region"
        );

        let TeamShared { stats, logs, .. } = team;
        RegionOutput {
            result: result.expect("master ran"),
            stats: TeamStats::collect(&stats),
            logs: logs.into_values(),
            wall,
        }
    }
}

/// Drops an unexecuted task cleanly (teardown of aborted regions).
fn discard_task(team: &TeamShared, task: NonNull<Task>) {
    // SAFETY: drain handed us the only handle.
    let t = unsafe { task.as_ref() };
    if let Some(parent) = t.parent() {
        // SAFETY: child holds a parent reference.
        let p = unsafe { parent.as_ref() };
        p.child_completed();
        if p.release_ref() {
            // SAFETY: last reference; single-threaded teardown.
            unsafe { team.alloc.free(0, parent) };
        }
    }
    if t.release_ref() {
        // SAFETY: as above.
        unsafe { team.alloc.free(0, task) };
    }
}

/// What a parallel region returns: the closure's result plus the region's
/// telemetry.
#[derive(Debug)]
pub struct RegionOutput<R> {
    /// Value returned by the region closure.
    pub result: R,
    /// Per-worker counter snapshots (§V statistics).
    pub stats: TeamStats,
    /// Per-worker event logs (empty unless profiling was enabled).
    pub logs: Vec<PerfLog>,
    /// Wall-clock duration of the region (team start to last join).
    pub wall: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;

    fn smoke(cfg: RuntimeConfig) {
        let rt = Runtime::new(cfg);
        let out = rt.parallel(|ctx| {
            let mut acc = vec![0u64; 64];
            ctx.scope(|s| {
                for (i, slot) in acc.iter_mut().enumerate() {
                    s.spawn(move |_| {
                        *slot = (i as u64) * 2;
                    });
                }
            });
            acc.iter().sum::<u64>()
        });
        assert_eq!(out.result, (0..64u64).map(|i| i * 2).sum::<u64>());
        let total = out.stats.total();
        assert_eq!(total.tasks_created, 64);
        assert_eq!(total.tasks_executed, 64);
        out.stats.check_invariants().unwrap();
    }

    #[test]
    fn all_presets_run_a_region() {
        for threads in [1usize, 2, 4] {
            smoke(RuntimeConfig::gomp(threads));
            smoke(RuntimeConfig::lomp(threads));
            smoke(RuntimeConfig::xgomp(threads));
            smoke(RuntimeConfig::xgomptb(threads));
            smoke(RuntimeConfig::xlomp(threads));
        }
    }

    #[test]
    fn nested_scopes_and_taskwait() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let out = rt.parallel(|ctx| {
            let mut outer = [0u64; 8];
            ctx.scope(|s| {
                for (i, o) in outer.iter_mut().enumerate() {
                    s.spawn(move |ctx| {
                        let mut inner = [0u64; 4];
                        ctx.scope(|s2| {
                            for (j, v) in inner.iter_mut().enumerate() {
                                s2.spawn(move |_| *v = (i * 10 + j) as u64);
                            }
                        });
                        *o = inner.iter().sum();
                    });
                }
            });
            outer.iter().sum::<u64>()
        });
        let expect: u64 = (0..8u64)
            .map(|i| (0..4u64).map(|j| i * 10 + j).sum::<u64>())
            .sum();
        assert_eq!(out.result, expect);
    }

    #[test]
    fn empty_region_terminates_immediately() {
        for cfg in [
            RuntimeConfig::gomp(3),
            RuntimeConfig::xgomp(3),
            RuntimeConfig::xgomptb(3),
        ] {
            let rt = Runtime::new(cfg);
            let out = rt.parallel(|_| 42);
            assert_eq!(out.result, 42);
            assert_eq!(out.stats.total().tasks_created, 0);
        }
    }

    #[test]
    fn detached_static_spawns_complete_before_region_ends() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let out = rt.parallel(move |ctx| {
            for _ in 0..100 {
                let c = c2.clone();
                ctx.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        drop(out);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn deep_recursion_via_immediate_execution() {
        // Tiny queues force the overflow → execute-immediately path.
        let cfg = RuntimeConfig::xgomptb(2).queue_capacity(2);
        let rt = Runtime::new(cfg);
        let out = rt.parallel(|ctx| {
            fn fib(ctx: &TaskCtx<'_>, n: u64) -> u64 {
                if n < 2 {
                    return n;
                }
                let (mut a, mut b) = (0, 0);
                ctx.scope(|s| {
                    s.spawn(|ctx| a = fib(ctx, n - 1));
                    s.spawn(|ctx| b = fib(ctx, n - 2));
                });
                a + b
            }
            fib(ctx, 16)
        });
        assert_eq!(out.result, 987);
        assert!(out.stats.total().ntasks_imm_exec > 0);
    }

    #[test]
    fn profiling_collects_events() {
        let cfg = RuntimeConfig::xgomptb(2).profiling(true);
        let rt = Runtime::new(cfg);
        let out = rt.parallel(|ctx| {
            ctx.scope(|s| {
                for _ in 0..32 {
                    s.spawn(|_| std::hint::spin_loop());
                }
            });
        });
        assert_eq!(out.logs.len(), 2);
        let events: usize = out.logs.iter().map(|l| l.events().len()).sum();
        assert!(events > 0, "profiling produced no events");
    }

    #[test]
    fn dlb_configs_run_clean() {
        use crate::dlb::{DlbConfig, DlbStrategy};
        for strat in [DlbStrategy::WorkSteal, DlbStrategy::RedirectPush] {
            let cfg = RuntimeConfig::xgomptb(4)
                .dlb(DlbConfig::new(strat).n_steal(4).t_interval(16));
            let rt = Runtime::new(cfg);
            let out = rt.parallel(|ctx| {
                let mut acc = vec![0u64; 256];
                ctx.scope(|s| {
                    for (i, slot) in acc.iter_mut().enumerate() {
                        s.spawn(move |_| {
                            // Unbalanced grains provoke stealing.
                            let spins = (i % 7) * 100;
                            for _ in 0..spins {
                                std::hint::spin_loop();
                            }
                            *slot = 1;
                        });
                    }
                });
                acc.iter().sum::<u64>()
            });
            assert_eq!(out.result, 256);
            out.stats.check_invariants().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "task body panicked")]
    fn task_panic_propagates_without_hanging() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(2));
        rt.parallel(|ctx| {
            ctx.spawn(|_| panic!("task body panicked"));
            // Give the panicking task a chance to run on either worker.
            ctx.taskwait();
        });
    }
}
