//! Team construction and the worker scheduling loop: the runtime's
//! equivalent of `gomp_team_start` / `gomp_thread_start` (§III-A).
//!
//! Two execution engines share the same region machinery:
//!
//! * [`Runtime::parallel`] opens a *one-shot* parallel region with
//!   scoped threads (the paper's per-region measurement methodology): it
//!   builds the team (scheduler, barrier, allocator, message cells,
//!   profiler), runs the region closure on the master as the *implicit
//!   task* (the BOTS `parallel` + `single` idiom), and lets every worker
//!   run the scheduling loop until the team barrier detects quiescence.
//! * [`PersistentTeam`] keeps its worker threads alive across regions:
//!   workers park on a generation-stamped [start gate](StartGate) between
//!   regions instead of being respawned, which is what a long-lived task
//!   server needs. Each `run` call opens one *generation* — a region with
//!   fresh barrier/scheduler state — and optionally wires in an
//!   [`IngressSource`] that idle workers poll for externally submitted
//!   work, plus a [`LiveTaskSampler`](xgomp_profiling::LiveTaskSampler) /
//!   [`DlbTuning`] pair for online Table-IV adaptation (`xgomp-service`
//!   builds on exactly this hook set).

use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use xgomp_profiling::{
    clock, EventKind, LiveTaskSampler, LoopTelemetry, PerfLog, TeamStats, TraceLevel, Tracer,
    WorkerStats,
};
use xgomp_topology::{CostModel, Placement};
use xgomp_xqueue::{Backoff, EventRing, Parker};

use crate::alloc::TaskAllocator;
use crate::barrier::TeamBarrier;
use crate::config::RuntimeConfig;
use crate::ctx::TaskCtx;
use crate::dlb::DlbTuning;
use crate::loops::{AutoSelector, LoopBalancer};
use crate::sched::Scheduler;
use crate::task::Task;
use crate::util::PerWorker;

/// Stack size for worker threads. The scheduling loops *help*: an
/// executing task that waits (taskwait, overflow → execute-immediately)
/// picks up further tasks in a nested `execute` frame, so recursion
/// depth scales with the task backlog, not with user recursion. 32 MiB
/// of (virtual, lazily-committed) stack keeps deep fine-grained
/// workloads like BOTS fib off the guard page.
const WORKER_STACK_BYTES: usize = 32 * 1024 * 1024;

/// External work feed polled by idle workers (the persistent executor's
/// job-injection hook).
///
/// `poll` runs on an idle worker with a context rooted at the region's
/// implicit task; it may spawn any number of tasks through `ctx` and
/// returns how many it spawned. Implementations must stop yielding work
/// once their shutdown drain has completed — after the region master has
/// arrived at the barrier *and* the team has quiesced, nothing may be
/// injected anymore (the runtime guarantees this is unreachable as long
/// as every accepted job is spawned before it is counted as drained).
pub trait IngressSource: Send + Sync {
    /// Polls for external work; returns the number of tasks spawned.
    fn poll(&self, ctx: &TaskCtx<'_>) -> usize;

    /// Racy hint that a `poll` right now could yield work — the
    /// pre-park re-check of the event-driven idle path. The default is
    /// deliberately conservative (`true`): a source that cannot answer
    /// keeps its workers spinning, never parked, preserving the old
    /// behavior. Implementations that *do* answer must wake a worker
    /// (ring the team's doorbell) after every enqueue, or a sleeping
    /// team will miss the work their `false` allowed it to sleep
    /// through.
    fn has_pending(&self) -> bool {
        true
    }
}

/// Optional per-region extensions (persistent-executor hook set).
#[derive(Default)]
pub(crate) struct TeamExtras {
    pub source: Option<Arc<dyn IngressSource>>,
    pub sampler: Option<Arc<LiveTaskSampler>>,
    pub tuning: Option<Arc<DlbTuning>>,
    /// Cross-generation loop-subsystem counters (`parallel_for` folds
    /// its per-loop totals in here when present).
    pub loop_stats: Option<Arc<LoopTelemetry>>,
    /// Inter-socket loop balancer shared across generations (a task
    /// server owns one for its whole life so live loops keep their
    /// registry across pause/resume); `None` builds a per-region one.
    pub balancer: Option<Arc<LoopBalancer>>,
    /// `Schedule::Auto` per-loop-site selector, server-owned so
    /// selection state (trial windows, converged picks) survives
    /// pause/resume; `None` makes `Auto` fall back to a fixed member.
    pub auto_select: Option<Arc<AutoSelector>>,
    /// Catch task-body panics instead of poisoning the team: the payload
    /// is carried to the parent's next `taskwait`, which re-raises it
    /// (per-job isolation in `xgomp-service`).
    pub isolate_panics: bool,
    /// Flight-recorder tracer shared across generations (a task server
    /// owns one for its whole life so the ring windows survive
    /// pause/resume reshaping); `None` falls back to
    /// [`RuntimeConfig::trace`] (which builds a per-team tracer when the
    /// level is not `Off`).
    pub tracer: Option<Arc<Tracer>>,
}

/// The team-generation view of the flight recorder: the shared
/// [`Tracer`] plus each worker's ring `Arc`, materialized once at
/// generation start so the emit path never touches the tracer's mutex.
pub(crate) struct TeamTracer {
    pub tracer: Arc<Tracer>,
    pub rings: Box<[Arc<EventRing>]>,
}

/// Everything a team of workers shares for one parallel region.
pub(crate) struct TeamShared {
    pub n: usize,
    pub sched: Box<dyn Scheduler>,
    pub barrier: Box<dyn TeamBarrier>,
    pub alloc: TaskAllocator,
    pub stats: Arc<Vec<WorkerStats>>,
    pub placement: Arc<Placement>,
    pub cost: CostModel,
    pub logs: PerWorker<PerfLog>,
    pub profiling: bool,
    /// Set when any task body panicked; workers drain out instead of
    /// spinning on a barrier that can no longer release.
    pub poisoned: AtomicBool,
    /// External work feed polled by idle workers (persistent executor).
    pub source: Option<Arc<dyn IngressSource>>,
    /// Online task-size sampling (always-on when present).
    pub sampler: Option<Arc<LiveTaskSampler>>,
    /// Cross-generation loop counters (see [`TeamExtras::loop_stats`]).
    pub loop_stats: Option<Arc<LoopTelemetry>>,
    /// Inter-socket loop balancer (coarse level of two-level loop
    /// balancing); probed by loop-drain tasks and the DLB idle hook.
    pub balancer: Arc<LoopBalancer>,
    /// `Schedule::Auto` selector (see [`TeamExtras::auto_select`]).
    pub auto_select: Option<Arc<AutoSelector>>,
    /// The region's implicit task, published by the master so idle
    /// workers can parent injected tasks to it; null outside a region.
    pub root: AtomicPtr<Task>,
    /// See [`TeamExtras::isolate_panics`].
    pub isolate_panics: bool,
    /// NUMA-aware idle parker (zone wake sets follow the placement).
    /// Always present; whether workers actually park is `park_idle`.
    pub parker: Arc<Parker>,
    /// Event-driven idling on/off (`RuntimeConfig::park_idle`).
    pub park_idle: bool,
    /// Flight recorder (`None` when tracing is off *by construction*;
    /// a live level flip to `Off` keeps the rings but mutes every
    /// site behind one relaxed load).
    pub tracer: Option<TeamTracer>,
}

/// Builds the shared state for one region of `cfg` with the given
/// extension hooks (used by both execution engines).
fn build_team(cfg: &RuntimeConfig, extras: TeamExtras) -> TeamShared {
    let n = cfg.threads;
    let placement = Arc::new(Placement::new(cfg.topology.clone(), n, cfg.affinity));
    let stats: Arc<Vec<WorkerStats>> = Arc::new((0..n).map(|_| WorkerStats::default()).collect());
    let parker = Arc::new(Parker::new(
        &(0..n).map(|w| placement.zone_of(w)).collect::<Vec<_>>(),
    ));
    // The tuning cell is hoisted here (instead of being created inside
    // the scheduler) so the loop balancer can ride its
    // `rebalance_interval` knob — hot-swappable exactly like the task
    // DLB knobs.
    let tuning = extras
        .tuning
        .or_else(|| cfg.dlb.map(|d| Arc::new(DlbTuning::new(d))));
    let balancer = extras
        .balancer
        .unwrap_or_else(|| Arc::new(LoopBalancer::new()));
    if let Some(t) = &tuning {
        balancer.bind_tuning(t);
    }
    let tracer = extras
        .tracer
        .or_else(|| (cfg.trace != TraceLevel::Off).then(|| Arc::new(Tracer::new(cfg.trace))))
        .map(|t| {
            let rings = (0..n).map(|w| t.ring(w)).collect();
            TeamTracer { tracer: t, rings }
        });
    TeamShared {
        n,
        sched: cfg.scheduler.build(
            n,
            cfg.queue_capacity,
            stats.clone(),
            placement.clone(),
            tuning,
            parker.clone(),
            balancer.clone(),
        ),
        barrier: cfg.barrier.build(n, parker.clone()),
        alloc: TaskAllocator::new(cfg.allocator, n),
        stats,
        placement,
        cost: cfg.cost_model,
        logs: PerWorker::new(n, |w| PerfLog::new(w, cfg.profiling)),
        profiling: cfg.profiling,
        poisoned: AtomicBool::new(false),
        source: extras.source,
        sampler: extras.sampler,
        loop_stats: extras.loop_stats,
        balancer,
        auto_select: extras.auto_select,
        root: AtomicPtr::new(std::ptr::null_mut()),
        isolate_panics: extras.isolate_panics,
        parker,
        park_idle: cfg.park_idle,
        tracer,
    }
}

/// Teardown checks + telemetry collection for a quiesced region.
fn finish_region<R>(team: TeamShared, result: R, wall: Duration) -> RegionOutput<R> {
    // Teardown sanity: a correct barrier leaves nothing queued.
    let mut leaked = 0usize;
    team.sched.drain_all(&mut |ptr| {
        leaked += 1;
        discard_task(&team, ptr);
    });
    assert_eq!(
        leaked,
        0,
        "scheduler `{}` retained {leaked} task(s) after `{}` released",
        team.sched.name(),
        team.barrier.name()
    );
    debug_assert_eq!(
        team.alloc.outstanding(),
        0,
        "task records leaked by the region"
    );

    let TeamShared { stats, logs, .. } = team;
    RegionOutput {
        result,
        stats: TeamStats::collect(&stats),
        logs: logs.into_values(),
        wall,
    }
}

impl TeamShared {
    /// Records a profiling span ending now (no-op when profiling is off).
    #[inline]
    pub(crate) fn log_span(&self, w: usize, kind: EventKind, t0: u64) {
        if self.profiling {
            // SAFETY: worker-ownership contract; leaf access.
            unsafe { self.logs.with(w, |l| l.push_span(kind, t0, clock::now())) };
        }
    }

    /// Marks the team poisoned and wakes every parked worker so the
    /// abort is observed — a sleeping worker cannot poll the flag.
    pub(crate) fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.parker.unpark_all();
    }

    /// The Off-cost trace gate: `false` unless a tracer is attached
    /// *and* its live level admits `min` (one relaxed load + branch).
    #[inline]
    pub(crate) fn trace_on(&self, min: TraceLevel) -> bool {
        match &self.tracer {
            Some(t) => t.tracer.enabled(min),
            None => false,
        }
    }

    /// Emits one flight-recorder record from worker `w` when the live
    /// level admits `min`. The emit itself is four relaxed stores plus
    /// one release publish into `w`'s own SPSC ring — no RMW, no lock.
    #[inline]
    pub(crate) fn trace_emit(
        &self,
        w: usize,
        min: TraceLevel,
        kind: EventKind,
        a: u32,
        b: u64,
        c: u64,
    ) {
        if let Some(t) = &self.tracer {
            if t.tracer.enabled(min) {
                t.rings[w].emit(clock::now(), kind as u8, a, b, c);
            }
        }
    }
}

/// Executes one task on worker `w`: locality accounting, NUMA cost
/// model, the body itself, then completion (dependency updates, barrier
/// notification, record release) — which a drop guard performs even if
/// the body unwinds.
pub(crate) fn execute(team: &TeamShared, w: usize, task: NonNull<Task>) {
    // SAFETY: we hold the task's handle reference; the record is alive.
    let creator = unsafe { task.as_ref() }.creator();
    let locality = team.placement.locality(creator, w);
    team.stats[w].record_execution(locality);
    team.cost.apply(locality);

    let tracing_tasks = team.trace_on(TraceLevel::Full);
    let timed = team.profiling || team.sampler.is_some() || tracing_tasks;
    let t0 = if timed { clock::now() } else { 0 };

    struct CompletionGuard<'a> {
        team: &'a TeamShared,
        w: usize,
        task: NonNull<Task>,
    }
    impl Drop for CompletionGuard<'_> {
        fn drop(&mut self) {
            let team = self.team;
            let w = self.w;
            if std::thread::panicking() {
                team.poison();
            }
            // SAFETY: record alive until our release below.
            let t = unsafe { self.task.as_ref() };
            if let Some(parent) = t.parent() {
                // SAFETY: the child holds a reference to the parent, so
                // the parent record is alive here.
                let p = unsafe { parent.as_ref() };
                p.child_completed();
                if p.release_ref() {
                    // SAFETY: last reference gone; worker slot owned.
                    unsafe { team.alloc.free(w, parent) };
                }
            }
            team.barrier.task_finished(w);
            if t.release_ref() {
                // SAFETY: as above.
                unsafe { team.alloc.free(w, self.task) };
            }
        }
    }

    let guard = CompletionGuard { team, w, task };
    // SAFETY: single-executor discipline — the handle reference we hold
    // is the only execution claim on this task.
    if let Some(body) = unsafe { Task::take_body(task) } {
        let ctx = TaskCtx {
            team,
            worker: w,
            task,
        };
        if team.isolate_panics {
            run_body_isolated(&ctx, task, body);
        } else {
            body(&ctx);
        }
    }
    drop(guard);
    if timed {
        let t1 = clock::now();
        if let Some(sampler) = &team.sampler {
            sampler.record(w, t1.saturating_sub(t0));
        }
        if team.profiling {
            // SAFETY: worker-ownership contract; leaf access.
            unsafe { team.logs.with(w, |l| l.push_span(EventKind::Task, t0, t1)) };
        }
        if tracing_tasks {
            if let Some(t) = &team.tracer {
                // Emit with the measured end stamp (payload `c` carries
                // the start) so the trace span matches the sampled span.
                t.rings[w].emit(t1, EventKind::Task as u8, 0, 0, t0);
            }
        }
    }
}

/// Panic-isolating teams (the task server): a panicking body fails only
/// its own job. The payload travels to the parent, whose next `taskwait`
/// re-raises it; the completion guard then runs on the normal
/// (non-unwinding) path, so the team is not poisoned.
///
/// Kept out of [`execute`] (`inline(never)`) so the `catch_unwind`
/// landing-pad state doesn't enlarge the classic path's stack frame —
/// `execute` frames nest deeply under the immediate-execution overflow
/// rule, where every byte per frame counts.
#[inline(never)]
fn run_body_isolated(ctx: &TaskCtx<'_>, task: NonNull<Task>, body: crate::task::TaskBody) {
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(ctx))) {
        // SAFETY: we hold a reference; the record is alive.
        if let Some(parent) = unsafe { task.as_ref() }.parent() {
            // SAFETY: the child retains its parent.
            unsafe { parent.as_ref() }.record_child_panic(payload);
        }
    }
}

/// The scheduling loop every worker runs inside the region-end barrier:
/// execute whatever the scheduler yields; when idle, fire the DLB thief
/// hook and poll the barrier.
///
/// ## The event-driven idle arm
///
/// With [`RuntimeConfig::park_idle`](crate::RuntimeConfig::park_idle) on
/// (the default), a worker that has exhausted its spin backoff parks on
/// the team's NUMA-aware [`Parker`] instead of yield-looping. Every
/// event that could end its idleness has a waker:
///
/// * a producer pushing into its lattice row (or any queue it can
///   reach) wakes it from the scheduler's `spawn`;
/// * a DLB victim migrating tasks into its row wakes it from the engine;
/// * an external submitter wakes it through the ingress doorbell
///   (`xgomp-service`);
/// * tree-barrier gather progress wakes it from the hand-off, so the
///   quiescence protocol counts parked workers correctly;
/// * region teardown and poison wake *everyone* — whichever worker
///   observes release or poisons the team calls
///   [`Parker::unpark_all`] before leaving its loop.
///
/// The announce → re-check → commit protocol (see `xgomp_xqueue::parker`)
/// makes the sleep race-free: the re-check below covers exactly the
/// conditions those wakers signal.
pub(crate) fn worker_loop(team: &TeamShared, w: usize) {
    let mut backoff = Backoff::new();
    // One merged span per idle period: closed as STALL when work shows
    // up, as BARRIER when the region ends (keeps logs bounded).
    let mut idle_t0: Option<u64> = None;
    // Set by a stay-awake park cancellation: skip the next park attempt
    // so the iteration after a cancel re-probes immediately (the hint
    // may be work we can take right now) but, if that probe comes up
    // empty, lands in the snooze below instead of hard-spinning the
    // announce/cancel counters while e.g. another worker holds the
    // drain claim the hint points at.
    let mut skip_park = false;
    // Flight-recorder baseline for this worker's own victim-side DLB
    // counters (single-writer, so deltas are exact): a grown
    // `nreq_has_steal` means a steal request we served moved tasks, a
    // grown `ntasks_stolen` counts the tasks migrated away. Sampling
    // our own counters here avoids threading the tracer through the
    // scheduler/engine call graph.
    let mut steal_base: Option<(u64, u64)> = None;
    loop {
        if team.poisoned.load(Ordering::Acquire) {
            team.parker.unpark_all();
            break;
        }
        if team.trace_on(TraceLevel::Full) {
            let stats = &team.stats[w];
            let served = stats.nreq_has_steal.load(Ordering::Relaxed);
            let stolen = stats.ntasks_stolen.load(Ordering::Relaxed);
            if let Some((served0, stolen0)) = steal_base {
                if served > served0 {
                    team.trace_emit(
                        w,
                        TraceLevel::Full,
                        EventKind::Steal,
                        0,
                        served - served0,
                        0,
                    );
                }
                if stolen > stolen0 {
                    team.trace_emit(
                        w,
                        TraceLevel::Full,
                        EventKind::Migrate,
                        0,
                        stolen - stolen0,
                        0,
                    );
                }
            }
            steal_base = Some((served, stolen));
        } else {
            steal_base = None;
        }
        if let Some(t) = team.sched.next_task(w) {
            if let Some(t0) = idle_t0.take() {
                team.log_span(w, EventKind::Stall, t0);
            }
            team.sched.pre_execute(w);
            execute(team, w, t);
            backoff.reset();
            skip_park = false;
            continue;
        }
        team.sched.on_idle(w);
        // Persistent-executor hook: before concluding the region might be
        // over, pull externally submitted work into the scheduler. The
        // injected tasks become children of the region's implicit task.
        if let Some(src) = &team.source {
            if let Some(root) = NonNull::new(team.root.load(Ordering::Acquire)) {
                let ctx = TaskCtx {
                    team,
                    worker: w,
                    task: root,
                };
                if src.poll(&ctx) > 0 {
                    if let Some(t0) = idle_t0.take() {
                        team.log_span(w, EventKind::Stall, t0);
                    }
                    backoff.reset();
                    skip_park = false;
                    continue;
                }
            }
        }
        if team.profiling && idle_t0.is_none() {
            idle_t0 = Some(clock::now());
        }
        if team.barrier.try_release(w) {
            if let Some(t0) = idle_t0.take() {
                team.log_span(w, EventKind::Barrier, t0);
            }
            // Wake the sleepers so they observe the release too; for the
            // tree barrier this also chases the broadcast down the tree
            // (each releasing ancestor re-wakes everyone after
            // propagating to its children).
            team.parker.unpark_all();
            break;
        }
        if team.park_idle
            && backoff.is_completed()
            && !std::mem::take(&mut skip_park)
            && team.parker.prepare_park(w)
        {
            // Announced. Re-check everything a waker could have
            // signalled between our last probes and the announcement.
            let stay_awake = team.poisoned.load(Ordering::Acquire)
                || team.sched.has_work_hint(w)
                || team.source.as_ref().is_some_and(|s| s.has_pending());
            // The release probe participates in the gather, so run it
            // even though we polled just above: a releaser may have
            // scanned the park set before our announcement.
            let released = !stay_awake && team.barrier.try_release(w);
            if stay_awake || released {
                team.parker.cancel_park(w);
                if released {
                    if let Some(t0) = idle_t0.take() {
                        team.log_span(w, EventKind::Barrier, t0);
                    }
                    team.parker.unpark_all();
                    break;
                }
                // Stay-awake cancel: re-probe immediately, but throttle
                // the next park attempt (see `skip_park`).
                skip_park = true;
            } else {
                team.trace_emit(w, TraceLevel::Lifecycle, EventKind::Park, 0, 0, 0);
                team.parker.park(w);
                team.trace_emit(w, TraceLevel::Lifecycle, EventKind::Wake, 0, 0, 0);
                // Woken for a reason: probe aggressively again.
                backoff.reset();
            }
            continue;
        }
        backoff.snooze();
    }
}

/// Master path: run the region closure as the implicit task, then join
/// the barrier loop like any other worker.
fn master_main<R>(team: &TeamShared, f: impl FnOnce(&TaskCtx<'_>) -> R) -> R {
    // The implicit (root) task anchoring the region's task tree,
    // published so idle workers can parent injected tasks to it.
    // SAFETY: master owns worker slot 0.
    let root = unsafe { team.alloc.alloc(0, None, None, 0) };
    team.root.store(root.as_ptr(), Ordering::Release);

    struct PoisonOnUnwind<'a>(&'a TeamShared);
    impl Drop for PoisonOnUnwind<'_> {
        fn drop(&mut self) {
            self.0.poison();
        }
    }

    let result = {
        let ctx = TaskCtx {
            team,
            worker: 0,
            task: root,
        };
        let bomb = PoisonOnUnwind(team);
        let r = f(&ctx);
        std::mem::forget(bomb);
        r
    };

    team.barrier.arrive(0);
    worker_loop(team, 0);

    // Region quiesced: retire the implicit task. The published pointer is
    // cleared first; released workers have already left their loops.
    team.root.store(std::ptr::null_mut(), Ordering::Release);
    // SAFETY: region quiesced; all children released their references.
    let root_ref = unsafe { root.as_ref() };
    if root_ref.release_ref() {
        // SAFETY: last reference; worker slot 0 owned.
        unsafe { team.alloc.free(0, root) };
    }
    result
}

/// A configured runtime; cheap to construct, owns no threads. Each
/// [`parallel`](Runtime::parallel) call creates a fresh team (matching
/// the paper's per-region measurement methodology).
pub struct Runtime {
    cfg: RuntimeConfig,
}

impl Runtime {
    /// Builds a runtime from `cfg` (validated).
    pub fn new(cfg: RuntimeConfig) -> Self {
        assert!(cfg.threads >= 1, "a team needs at least one worker");
        assert!(
            cfg.threads <= (1 << 24),
            "worker ids must fit the 24-bit message-cell field"
        );
        Runtime { cfg }
    }

    /// The configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Opens a parallel region: `f` runs on the master as the implicit
    /// single task; the region returns when every transitively spawned
    /// task has completed (detected by the configured barrier).
    pub fn parallel<R>(&self, f: impl FnOnce(&TaskCtx<'_>) -> R) -> RegionOutput<R> {
        let team = build_team(&self.cfg, TeamExtras::default());
        let n = team.n;

        let started = Instant::now();
        let mut result: Option<R> = None;
        std::thread::scope(|s| {
            for w in 1..n {
                let team = &team;
                std::thread::Builder::new()
                    .name(format!("xgomp-region-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(s, move || {
                        team.barrier.arrive(w);
                        worker_loop(team, w);
                    })
                    .expect("spawn region worker");
            }
            result = Some(master_main(&team, f));
        });
        let wall = started.elapsed();

        finish_region(team, result.expect("master ran"), wall)
    }
}

/// The generation-stamped gate persistent workers park on between
/// regions.
struct StartGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    /// Bumped once per opened region; workers run exactly the generations
    /// they observe.
    generation: u64,
    /// The open generation's team (present iff a region is running).
    team: Option<Arc<TeamShared>>,
    /// Workers that have finished the current generation.
    retired: usize,
    /// Set once, on drop: workers exit their park loop.
    shutdown: bool,
}

impl StartGate {
    fn new() -> Self {
        StartGate {
            state: Mutex::new(GateState {
                generation: 0,
                team: None,
                retired: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The park loop persistent workers run for their whole life: wait for a
/// generation to open, run its region, retire, repeat.
fn parked_worker(gate: Arc<StartGate>, w: usize) {
    let mut last_gen = 0u64;
    loop {
        let team = {
            let mut st = gate.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > last_gen {
                    break;
                }
                st = gate
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            last_gen = st.generation;
            Arc::clone(st.team.as_ref().expect("open generation has a team"))
        };
        // A panicking task body must not kill the persistent worker: the
        // completion guard has already poisoned the team (ending the
        // region for everyone); catching here keeps the thread parkable
        // for the next generation.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            team.barrier.arrive(w);
            worker_loop(&team, w);
        }))
        .is_err();
        if unwound {
            team.poison();
        }
        drop(team);
        let mut st = gate.lock();
        st.retired += 1;
        gate.cv.notify_all();
    }
}

/// A team of workers that stays alive across parallel regions.
///
/// Construction spawns `threads - 1` OS threads which immediately park on
/// a [start gate](StartGate). Each [`run`](Self::run) call stamps a new
/// *generation*: fresh barrier/scheduler/allocator state is published
/// through the gate, the parked workers pick it up, run the region's
/// scheduling loop to quiescence, and park again — no thread is ever
/// respawned. The calling thread acts as worker 0 (the region master),
/// exactly as in [`Runtime::parallel`].
///
/// This is the execution engine behind `xgomp-service`'s persistent task
/// server; [`run_with`](Self::run_with) additionally wires in the
/// ingress/sampling/tuning hook set.
pub struct PersistentTeam {
    cfg: RuntimeConfig,
    gate: Arc<StartGate>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PersistentTeam {
    /// Builds the team and parks `cfg.threads - 1` workers on the gate.
    pub fn new(cfg: RuntimeConfig) -> Self {
        assert!(cfg.threads >= 1, "a team needs at least one worker");
        assert!(
            cfg.threads <= (1 << 24),
            "worker ids must fit the 24-bit message-cell field"
        );
        let gate = Arc::new(StartGate::new());
        let workers = (1..cfg.threads)
            .map(|w| {
                let gate = gate.clone();
                std::thread::Builder::new()
                    .name(format!("xgomp-worker-{w}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn(move || parked_worker(gate, w))
                    .expect("spawn persistent worker")
            })
            .collect();
        PersistentTeam { cfg, gate, workers }
    }

    /// The configuration this team was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The team size (workers, master included).
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Replaces the team's configuration between generations (the next
    /// [`run`](Self::run) builds its region from `cfg`).
    ///
    /// When the worker count is unchanged the parked threads are reused
    /// as-is — scheduler, barrier, DLB and allocator settings all take
    /// effect at the next generation, since each generation builds fresh
    /// region state anyway. A changed worker count rebuilds the thread
    /// set: the old workers (idle on the start gate — `&mut self` proves
    /// no generation is open) are released and joined, and a new set is
    /// spawned parked. This is the growth/shrink path of a persistent
    /// server's config swap; it costs thread spawn/join once per resize,
    /// never per generation.
    pub fn reconfigure(&mut self, cfg: RuntimeConfig) {
        assert!(cfg.threads >= 1, "a team needs at least one worker");
        assert!(
            cfg.threads <= (1 << 24),
            "worker ids must fit the 24-bit message-cell field"
        );
        if cfg.threads == self.cfg.threads {
            self.cfg = cfg;
            return;
        }
        // Different shape: spawn the new team first, then drop (join) the
        // old one. The old workers are parked on their gate, so the join
        // is immediate.
        *self = PersistentTeam::new(cfg);
    }

    /// Runs one region on the persistent workers (see
    /// [`Runtime::parallel`] for region semantics).
    ///
    /// # Panics
    ///
    /// Panics when a task body panicked inside the region (mirroring the
    /// join-propagation of the scoped engine); the team itself survives
    /// and can run further generations.
    pub fn run<R>(&mut self, f: impl FnOnce(&TaskCtx<'_>) -> R) -> RegionOutput<R> {
        self.run_with(TeamExtras::default(), f)
    }

    /// Runs one region with an ingress source polled by idle workers and
    /// optional live sampling / DLB tuning hooks. Task-body panics are
    /// isolated (see [`TeamExtras::isolate_panics`]): they re-raise at
    /// the parent's next `taskwait` instead of poisoning the team.
    ///
    /// # Panics
    ///
    /// Panics when `sampler` has fewer lanes than the team has workers —
    /// aliased lanes would break its single-writer counters.
    #[allow(clippy::too_many_arguments)]
    pub fn run_serving<R>(
        &mut self,
        source: Arc<dyn IngressSource>,
        sampler: Option<Arc<LiveTaskSampler>>,
        tuning: Option<Arc<DlbTuning>>,
        loop_stats: Option<Arc<LoopTelemetry>>,
        balancer: Option<Arc<LoopBalancer>>,
        auto_select: Option<Arc<AutoSelector>>,
        tracer: Option<Arc<Tracer>>,
        f: impl FnOnce(&TaskCtx<'_>) -> R,
    ) -> RegionOutput<R> {
        if let Some(s) = &sampler {
            assert!(
                s.n_lanes() >= self.cfg.threads,
                "LiveTaskSampler has {} lanes for a team of {} workers \
                 (lanes would alias, racing their single-writer counters)",
                s.n_lanes(),
                self.cfg.threads
            );
        }
        self.run_with(
            TeamExtras {
                source: Some(source),
                sampler,
                tuning,
                loop_stats,
                balancer,
                auto_select,
                isolate_panics: true,
                tracer,
            },
            f,
        )
    }

    fn run_with<R>(
        &mut self,
        extras: TeamExtras,
        f: impl FnOnce(&TaskCtx<'_>) -> R,
    ) -> RegionOutput<R> {
        let n_aux = self.workers.len();
        {
            // A master that unwound out of a previous `run` may have left
            // that generation's workers mid-drain; wait for them to
            // retire before opening a new generation.
            let mut st = self.gate.lock();
            while st.generation > 0 && st.retired < n_aux {
                st = self
                    .gate
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        let team = Arc::new(build_team(&self.cfg, extras));
        {
            let mut st = self.gate.lock();
            st.team = Some(team.clone());
            st.retired = 0;
            st.generation += 1;
            self.gate.cv.notify_all();
        }

        let started = Instant::now();
        let result = master_main(&team, f);

        // Join phase: wait for every worker to retire this generation.
        {
            let mut st = self.gate.lock();
            while st.retired < n_aux {
                st = self
                    .gate
                    .cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.team = None;
        }
        let wall = started.elapsed();

        let team = Arc::into_inner(team).expect("workers retired their team handles");
        if team.poisoned.load(Ordering::Acquire) {
            panic!("a task body panicked inside the persistent region");
        }
        finish_region(team, result, wall)
    }
}

impl Drop for PersistentTeam {
    fn drop(&mut self) {
        {
            let mut st = self.gate.lock();
            st.shutdown = true;
            self.gate.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            // A worker that unwound due to a bug would surface here; the
            // park loop itself never panics.
            let _ = h.join();
        }
    }
}

/// Drops an unexecuted task cleanly (teardown of aborted regions).
fn discard_task(team: &TeamShared, task: NonNull<Task>) {
    // SAFETY: drain handed us the only handle.
    let t = unsafe { task.as_ref() };
    if let Some(parent) = t.parent() {
        // SAFETY: child holds a parent reference.
        let p = unsafe { parent.as_ref() };
        p.child_completed();
        if p.release_ref() {
            // SAFETY: last reference; single-threaded teardown.
            unsafe { team.alloc.free(0, parent) };
        }
    }
    if t.release_ref() {
        // SAFETY: as above.
        unsafe { team.alloc.free(0, task) };
    }
}

/// What a parallel region returns: the closure's result plus the region's
/// telemetry.
#[derive(Debug)]
pub struct RegionOutput<R> {
    /// Value returned by the region closure.
    pub result: R,
    /// Per-worker counter snapshots (§V statistics).
    pub stats: TeamStats,
    /// Per-worker event logs (empty unless profiling was enabled).
    pub logs: Vec<PerfLog>,
    /// Wall-clock duration of the region (team start to last join).
    pub wall: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;

    fn smoke(cfg: RuntimeConfig) {
        let rt = Runtime::new(cfg);
        let out = rt.parallel(|ctx| {
            let mut acc = vec![0u64; 64];
            ctx.scope(|s| {
                for (i, slot) in acc.iter_mut().enumerate() {
                    s.spawn(move |_| {
                        *slot = (i as u64) * 2;
                    });
                }
            });
            acc.iter().sum::<u64>()
        });
        assert_eq!(out.result, (0..64u64).map(|i| i * 2).sum::<u64>());
        let total = out.stats.total();
        assert_eq!(total.tasks_created, 64);
        assert_eq!(total.tasks_executed, 64);
        out.stats.check_invariants().unwrap();
    }

    #[test]
    fn all_presets_run_a_region() {
        for threads in [1usize, 2, 4] {
            smoke(RuntimeConfig::gomp(threads));
            smoke(RuntimeConfig::lomp(threads));
            smoke(RuntimeConfig::xgomp(threads));
            smoke(RuntimeConfig::xgomptb(threads));
            smoke(RuntimeConfig::xlomp(threads));
        }
    }

    #[test]
    fn nested_scopes_and_taskwait() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let out = rt.parallel(|ctx| {
            let mut outer = [0u64; 8];
            ctx.scope(|s| {
                for (i, o) in outer.iter_mut().enumerate() {
                    s.spawn(move |ctx| {
                        let mut inner = [0u64; 4];
                        ctx.scope(|s2| {
                            for (j, v) in inner.iter_mut().enumerate() {
                                s2.spawn(move |_| *v = (i * 10 + j) as u64);
                            }
                        });
                        *o = inner.iter().sum();
                    });
                }
            });
            outer.iter().sum::<u64>()
        });
        let expect: u64 = (0..8u64)
            .map(|i| (0..4u64).map(|j| i * 10 + j).sum::<u64>())
            .sum();
        assert_eq!(out.result, expect);
    }

    #[test]
    fn empty_region_terminates_immediately() {
        for cfg in [
            RuntimeConfig::gomp(3),
            RuntimeConfig::xgomp(3),
            RuntimeConfig::xgomptb(3),
        ] {
            let rt = Runtime::new(cfg);
            let out = rt.parallel(|_| 42);
            assert_eq!(out.result, 42);
            assert_eq!(out.stats.total().tasks_created, 0);
        }
    }

    #[test]
    fn detached_static_spawns_complete_before_region_ends() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let out = rt.parallel(move |ctx| {
            for _ in 0..100 {
                let c = c2.clone();
                ctx.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        drop(out);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn deep_recursion_via_immediate_execution() {
        // Tiny queues force the overflow → execute-immediately path.
        let cfg = RuntimeConfig::xgomptb(2).queue_capacity(2);
        let rt = Runtime::new(cfg);
        let out = rt.parallel(|ctx| {
            fn fib(ctx: &TaskCtx<'_>, n: u64) -> u64 {
                if n < 2 {
                    return n;
                }
                let (mut a, mut b) = (0, 0);
                ctx.scope(|s| {
                    s.spawn(|ctx| a = fib(ctx, n - 1));
                    s.spawn(|ctx| b = fib(ctx, n - 2));
                });
                a + b
            }
            fib(ctx, 16)
        });
        assert_eq!(out.result, 987);
        assert!(out.stats.total().ntasks_imm_exec > 0);
    }

    #[test]
    fn profiling_collects_events() {
        let cfg = RuntimeConfig::xgomptb(2).profiling(true);
        let rt = Runtime::new(cfg);
        let out = rt.parallel(|ctx| {
            ctx.scope(|s| {
                for _ in 0..32 {
                    s.spawn(|_| std::hint::spin_loop());
                }
            });
        });
        assert_eq!(out.logs.len(), 2);
        let events: usize = out.logs.iter().map(|l| l.events().len()).sum();
        assert!(events > 0, "profiling produced no events");
    }

    #[test]
    fn dlb_configs_run_clean() {
        use crate::dlb::{DlbConfig, DlbStrategy};
        for strat in [DlbStrategy::WorkSteal, DlbStrategy::RedirectPush] {
            let cfg =
                RuntimeConfig::xgomptb(4).dlb(DlbConfig::new(strat).n_steal(4).t_interval(16));
            let rt = Runtime::new(cfg);
            let out = rt.parallel(|ctx| {
                let mut acc = vec![0u64; 256];
                ctx.scope(|s| {
                    for (i, slot) in acc.iter_mut().enumerate() {
                        s.spawn(move |_| {
                            // Unbalanced grains provoke stealing.
                            let spins = (i % 7) * 100;
                            for _ in 0..spins {
                                std::hint::spin_loop();
                            }
                            *slot = 1;
                        });
                    }
                });
                acc.iter().sum::<u64>()
            });
            assert_eq!(out.result, 256);
            out.stats.check_invariants().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "task body panicked")]
    fn task_panic_propagates_without_hanging() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(2));
        rt.parallel(|ctx| {
            ctx.spawn(|_| panic!("task body panicked"));
            // Give the panicking task a chance to run on either worker.
            ctx.taskwait();
        });
    }

    #[test]
    fn parked_workers_wake_for_late_work_and_release() {
        // The master stays busy (no spawns) long enough for every other
        // worker to exhaust its backoff and park; the late spawns must
        // wake them, and region teardown must release the sleepers.
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let out = rt.parallel(|ctx| {
            std::thread::sleep(Duration::from_millis(100));
            let mut acc = vec![0u64; 64];
            ctx.scope(|s| {
                for (i, slot) in acc.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i as u64 + 1);
                }
            });
            acc.iter().sum::<u64>()
        });
        assert_eq!(out.result, (1..=64u64).sum());
        out.stats.check_invariants().unwrap();
    }

    #[test]
    fn persistent_team_parks_between_and_inside_generations() {
        let mut team = PersistentTeam::new(RuntimeConfig::xgomptb(4));
        for round in 0..3u64 {
            let out = team.run(move |ctx| {
                // Idle phase: aux workers park mid-region.
                std::thread::sleep(Duration::from_millis(60));
                let mut acc = vec![0u64; 32];
                ctx.scope(|s| {
                    for (i, slot) in acc.iter_mut().enumerate() {
                        s.spawn(move |_| *slot = round * 100 + i as u64);
                    }
                });
                acc.iter().sum::<u64>()
            });
            let expect: u64 = (0..32u64).map(|i| round * 100 + i).sum();
            assert_eq!(out.result, expect);
        }
    }

    #[test]
    fn spin_mode_still_works_with_parking_disabled() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(4).park_idle(false));
        let out = rt.parallel(|ctx| {
            let mut acc = vec![0u64; 128];
            ctx.scope(|s| {
                for (i, slot) in acc.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i as u64);
                }
            });
            acc.iter().sum::<u64>()
        });
        assert_eq!(out.result, (0..128u64).sum());
    }

    #[test]
    fn persistent_team_reuses_workers_across_generations() {
        use std::sync::atomic::AtomicUsize;

        let mut team = PersistentTeam::new(RuntimeConfig::xgomptb(4));
        for round in 0..16u64 {
            let hits = Arc::new(AtomicUsize::new(0));
            let h2 = hits.clone();
            let out = team.run(move |ctx| {
                ctx.scope(|s| {
                    for _ in 0..64 {
                        let h = h2.clone();
                        s.spawn(move |_| {
                            h.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                round * 2
            });
            assert_eq!(out.result, round * 2);
            assert_eq!(hits.load(Ordering::Relaxed), 64);
            assert_eq!(out.stats.total().tasks_executed, 64);
            out.stats.check_invariants().unwrap();
        }
    }

    #[test]
    fn persistent_team_reconfigures_between_generations() {
        let mut team = PersistentTeam::new(RuntimeConfig::xgomptb(2));
        let run_sum = |team: &mut PersistentTeam, n: usize| {
            let out = team.run(move |ctx| {
                let mut acc = vec![0u64; n * 8];
                ctx.scope(|s| {
                    for (i, slot) in acc.iter_mut().enumerate() {
                        s.spawn(move |_| *slot = i as u64);
                    }
                });
                acc.iter().sum::<u64>()
            });
            out.result
        };
        assert_eq!(run_sum(&mut team, 2), (0..16u64).sum());
        // Grow: 2 → 4 workers, and swap the barrier kind with it.
        team.reconfigure(RuntimeConfig::xgomp(4));
        assert_eq!(team.threads(), 4);
        assert_eq!(run_sum(&mut team, 4), (0..32u64).sum());
        // Shrink back, same-size swap keeps the threads.
        team.reconfigure(RuntimeConfig::xgomptb(4).queue_capacity(16));
        assert_eq!(team.config().queue_capacity, 16);
        assert_eq!(run_sum(&mut team, 4), (0..32u64).sum());
        team.reconfigure(RuntimeConfig::xgomptb(1));
        assert_eq!(run_sum(&mut team, 1), (0..8u64).sum());
    }

    #[test]
    fn persistent_team_survives_a_panicked_generation() {
        let mut team = PersistentTeam::new(RuntimeConfig::xgomptb(2));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            team.run(|ctx| {
                ctx.spawn(|_| panic!("poisoned generation"));
                ctx.taskwait();
            })
        }))
        .is_err();
        assert!(unwound, "task panic must propagate out of run()");
        // The workers parked again; the next generation runs normally.
        let out = team.run(|ctx| {
            let mut acc = vec![0u64; 32];
            ctx.scope(|s| {
                for (i, slot) in acc.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i as u64);
                }
            });
            acc.iter().sum::<u64>()
        });
        assert_eq!(out.result, (0..32u64).sum());
    }

    #[test]
    fn idle_workers_drain_an_ingress_source() {
        use std::sync::atomic::AtomicUsize;

        const JOBS: usize = 500;

        struct CountSource {
            remaining: AtomicUsize,
            hits: Arc<AtomicUsize>,
        }
        impl IngressSource for CountSource {
            fn poll(&self, ctx: &TaskCtx<'_>) -> usize {
                let mut injected = 0;
                // Claim up to 8 pending jobs per poll.
                while injected < 8 {
                    let claimed = self
                        .remaining
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
                        .is_ok();
                    if !claimed {
                        break;
                    }
                    let hits = self.hits.clone();
                    ctx.spawn_boxed(Box::new(move |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }));
                    injected += 1;
                }
                injected
            }
        }

        let hits = Arc::new(AtomicUsize::new(0));
        let source = Arc::new(CountSource {
            remaining: AtomicUsize::new(JOBS),
            hits: hits.clone(),
        });
        let sampler = Arc::new(xgomp_profiling::LiveTaskSampler::new(4));
        let mut team = PersistentTeam::new(RuntimeConfig::xgomptb(4));
        let h2 = hits.clone();
        let out = team.run_serving(
            source,
            Some(sampler.clone()),
            None,
            None,
            None,
            None,
            None,
            move |ctx| {
                // The master helps until every injected job has executed.
                while h2.load(Ordering::Relaxed) < JOBS {
                    ctx.run_pending(32);
                    std::hint::spin_loop();
                }
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), JOBS);
        assert_eq!(out.stats.total().tasks_executed as usize, JOBS);
        assert_eq!(sampler.tasks_observed() as usize, JOBS);
    }
}
