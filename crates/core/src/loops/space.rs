//! First-class iteration spaces: the logical shapes `parallel_for`
//! schedules over, and how they lower to flat **scheduling units**.
//!
//! An [`IterSpace`] describes *what* a loop iterates — a 1-D range of
//! u64 indices, a row-major 2-D rectangle, or a lower-triangular space —
//! independently of *how* it is drained. Every space lowers to a dense
//! unit space `[0, units)`:
//!
//! * [`Range1D`](IterSpace::Range1D): one unit = one iteration.
//! * [`Rect2D`](IterSpace::Rect2D): one unit = one `tile_rows ×
//!   tile_cols` tile, row-major over the `⌈rows/tr⌉ × ⌈cols/tc⌉` grid.
//! * [`Triangular`](IterSpace::Triangular): one unit = one tile of the
//!   lower-triangular tile grid — tile `(R, C)` with `C ≤ R` has linear
//!   index `R(R+1)/2 + C`; diagonal tiles are triangular-clipped,
//!   off-diagonal tiles are full rectangles (the diagonal/square block
//!   typing of triangular self-scheduling balancers).
//!
//! Units are what the pools, schedules and balancer move: zone shares
//! are contiguous unit blocks (NUMA-aware because row-major/triangular
//! tile order keeps a zone's tiles in contiguous row bands), chunk sizes
//! are unit counts, and a migrated "tile range" is a unit range. The
//! *element* ↔ unit conversion ([`elems_in`](IterSpace::elems_in)) is
//! closed-form O(1) per space, so abandoning billions of units under
//! cancellation never iterates them.
//!
//! [`LoopSpace`] is the user-facing trait: anything that names a space
//! and can decode a unit range into typed points. Plain `Range<u64>`
//! (and friends) implement it with `Point = u64`, which is what keeps
//! every pre-existing `parallel_for(0..n, …, |i, _| …)` call site
//! compiling unchanged; the 2-D/triangular spaces yield
//! `Point = (row, col)`.

use std::ops::Range;

use super::LoopError;

/// Default tile edge of [`IterSpace::rect`] and
/// [`IterSpace::triangular`] (64×64 = 4096 elements per unit: coarse
/// enough to amortize a claim CAS over a cheap body, fine enough to
/// leave a schedulable tail on test-sized spaces).
pub const DEFAULT_TILE: u32 = 64;

/// Which shape family an [`IterSpace`] is — the telemetry key of the
/// per-space-kind loop counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// 1-D u64 range.
    Range1D,
    /// Tiled row-major rectangle (collapse(2)).
    Rect2D,
    /// Tiled lower-triangular space.
    Triangular,
}

impl SpaceKind {
    /// Stable index into the per-space-kind telemetry
    /// ([`xgomp_profiling::LOOP_SPACE_KIND_NAMES`] order).
    pub fn index(self) -> usize {
        match self {
            SpaceKind::Range1D => 0,
            SpaceKind::Rect2D => 1,
            SpaceKind::Triangular => 2,
        }
    }

    /// Human-readable kind name.
    pub fn name(self) -> &'static str {
        xgomp_profiling::LOOP_SPACE_KIND_NAMES[self.index()]
    }
}

/// A logical iteration space (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterSpace {
    /// `start .. start + len` of u64 indices.
    Range1D {
        /// First index.
        start: u64,
        /// Iteration count.
        len: u64,
    },
    /// A `rows × cols` rectangle iterated as `(row, col)` pairs,
    /// row-major, scheduled as tiles.
    Rect2D {
        /// Row count.
        rows: u64,
        /// Column count.
        cols: u64,
        /// Tile height (≥ 1).
        tile_rows: u32,
        /// Tile width (≥ 1).
        tile_cols: u32,
    },
    /// The lower triangle `{(row, col) : col ≤ row < n}` — the natural
    /// space of pairwise kernels — scheduled as tiles of the triangular
    /// tile grid.
    Triangular {
        /// Row count (the triangle has `n(n+1)/2` elements).
        n: u64,
        /// Tile edge (≥ 1).
        tile: u32,
    },
}

impl IterSpace {
    /// A 1-D space over `range` (empty if `end ≤ start`).
    pub fn range(range: Range<u64>) -> Self {
        IterSpace::Range1D {
            start: range.start,
            len: range.end.saturating_sub(range.start),
        }
    }

    /// A `rows × cols` collapse(2) space with [`DEFAULT_TILE`] tiles.
    pub fn rect(rows: u64, cols: u64) -> Self {
        Self::rect_tiled(rows, cols, DEFAULT_TILE, DEFAULT_TILE)
    }

    /// A `rows × cols` collapse(2) space with explicit tiling (tile
    /// edges are clamped to ≥ 1).
    pub fn rect_tiled(rows: u64, cols: u64, tile_rows: u32, tile_cols: u32) -> Self {
        IterSpace::Rect2D {
            rows,
            cols,
            tile_rows: tile_rows.max(1),
            tile_cols: tile_cols.max(1),
        }
    }

    /// A lower-triangular space over `n` rows with [`DEFAULT_TILE`]
    /// tiles.
    pub fn triangular(n: u64) -> Self {
        Self::triangular_tiled(n, DEFAULT_TILE)
    }

    /// A lower-triangular space with an explicit tile edge (clamped to
    /// ≥ 1).
    pub fn triangular_tiled(n: u64, tile: u32) -> Self {
        IterSpace::Triangular {
            n,
            tile: tile.max(1),
        }
    }

    /// The space's shape family.
    pub fn kind(&self) -> SpaceKind {
        match self {
            IterSpace::Range1D { .. } => SpaceKind::Range1D,
            IterSpace::Rect2D { .. } => SpaceKind::Rect2D,
            IterSpace::Triangular { .. } => SpaceKind::Triangular,
        }
    }

    /// Scheduling-unit count (iterations / tiles — what the pools and
    /// the balancer move).
    pub fn units(&self) -> u64 {
        match *self {
            IterSpace::Range1D { len, .. } => len,
            IterSpace::Rect2D {
                rows,
                cols,
                tile_rows,
                tile_cols,
            } => rows.div_ceil(tile_rows as u64) * cols.div_ceil(tile_cols as u64),
            IterSpace::Triangular { n, tile } => {
                let g = n.div_ceil(tile as u64);
                g * (g + 1) / 2
            }
        }
    }

    /// Logical element count — what [`LoopReport::iterations`]
    /// (`super::LoopReport`) conserves against.
    pub fn len(&self) -> u64 {
        match *self {
            IterSpace::Range1D { len, .. } => len,
            IterSpace::Rect2D { rows, cols, .. } => rows * cols,
            IterSpace::Triangular { n, .. } => n * (n + 1) / 2,
        }
    }

    /// Whether the space has no elements.
    pub fn is_empty(&self) -> bool {
        self.units() == 0
    }

    /// Validates the space against the waving layer's bounds: unit and
    /// element counts must fit ([`MAX_SHARE_UNITS`]
    /// (xgomp_xqueue::MAX_SHARE_UNITS) units, u64 elements). The single
    /// definition of the rule — `try_parallel_for` and the service
    /// layer's `submit_for` admission both call this.
    pub fn validate(&self) -> Result<(), LoopError> {
        let too_large = |len| Err(LoopError::RangeTooLarge { len });
        match *self {
            IterSpace::Range1D { len, .. } => {
                if len > xgomp_xqueue::MAX_SHARE_UNITS {
                    return too_large(len);
                }
            }
            IterSpace::Rect2D {
                rows,
                cols,
                tile_rows,
                tile_cols,
            } => {
                let Some(elems) = rows.checked_mul(cols) else {
                    return too_large(u64::MAX);
                };
                let units = rows.div_ceil(tile_rows as u64) as u128
                    * cols.div_ceil(tile_cols as u64) as u128;
                if units > xgomp_xqueue::MAX_SHARE_UNITS as u128 {
                    return too_large(elems);
                }
            }
            IterSpace::Triangular { n, tile } => {
                let elems = n as u128 * (n as u128 + 1) / 2;
                if elems > u64::MAX as u128 {
                    return too_large(u64::MAX);
                }
                let g = n.div_ceil(tile as u64) as u128;
                if g * (g + 1) / 2 > xgomp_xqueue::MAX_SHARE_UNITS as u128 {
                    return too_large(elems as u64);
                }
            }
        }
        Ok(())
    }

    /// Elements in the unit prefix `[0, unit)` — closed-form O(1), the
    /// primitive behind [`elems_in`](Self::elems_in).
    pub fn elems_before(&self, unit: u64) -> u64 {
        match *self {
            IterSpace::Range1D { len, .. } => unit.min(len),
            IterSpace::Rect2D {
                rows,
                cols,
                tile_rows,
                tile_cols,
            } => {
                let (tr, tc) = (tile_rows as u64, tile_cols as u64);
                let (gr, gc) = (rows.div_ceil(tr), cols.div_ceil(tc));
                if unit >= gr * gc {
                    return rows * cols;
                }
                // Full tile-rows above, plus the claimed columns of the
                // tile-row the unit sits in.
                let (tile_r, tile_c) = (unit / gc, unit % gc);
                let h = tr.min(rows - tile_r * tr);
                tile_r * tr * cols + h * (tile_c * tc).min(cols)
            }
            IterSpace::Triangular { n, tile } => {
                let t = tile as u64;
                let g = n.div_ceil(t);
                if unit >= g * (g + 1) / 2 {
                    return n * (n + 1) / 2;
                }
                // Tile-rows r < R are full-height (h = t): each holds r
                // off-diagonal t×t tiles plus a t(t+1)/2 diagonal tile.
                let r = tri_row(unit);
                let c = unit - r * (r + 1) / 2;
                let full_rows = (t as u128 * t as u128)
                    * (r as u128 * (r as u128).saturating_sub(1) / 2)
                    + r as u128 * (t as u128 * (t as u128 + 1) / 2);
                // C off-diagonal tiles of the current tile-row, height
                // clipped at the space's ragged bottom edge.
                let h = t.min(n - r * t) as u128;
                (full_rows + c as u128 * t as u128 * h) as u64
            }
        }
    }

    /// Elements covered by the unit range `[lo, hi)` — closed-form
    /// O(1), so cancellation can conserve abandoned unit ranges of any
    /// size without iterating them.
    pub fn elems_in(&self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            return 0;
        }
        self.elems_before(hi) - self.elems_before(lo)
    }
}

/// Largest `R` with `R(R+1)/2 ≤ k` — the tile-row of triangular unit
/// `k`. f64 seed, integer fix-up (exact for every representable k).
fn tri_row(k: u64) -> u64 {
    let tri = |r: u64| r as u128 * (r as u128 + 1) / 2;
    let mut r = (((8.0 * k as f64 + 1.0).sqrt() - 1.0) / 2.0) as u64;
    while tri(r) > k as u128 {
        r -= 1;
    }
    while tri(r + 1) <= k as u128 {
        r += 1;
    }
    r
}

/// Anything `parallel_for` can schedule: names an [`IterSpace`] and
/// decodes flat unit ranges back into typed points.
///
/// The decode is an associated *function* over the space description —
/// not a method over `self` — so the hot per-element loop monomorphizes
/// per space type while the scheduling machinery stays one shared,
/// unit-typed implementation.
pub trait LoopSpace {
    /// What the loop body receives per element (the range's own element
    /// type for 1-D ranges — keeping integer-literal type inference
    /// working exactly as a concrete `Range` API would — and
    /// `(row, col)` for 2-D and triangular spaces).
    type Point: Copy;

    /// The space this value describes.
    fn to_space(&self) -> IterSpace;

    /// Runs `f` over every element of units `[lo, hi)` of `space`,
    /// returning the element count (= `space.elems_in(lo, hi)`).
    fn run_units<F: FnMut(Self::Point)>(space: &IterSpace, lo: u64, hi: u64, f: F) -> u64;
}

macro_rules! impl_loop_space_for_range {
    ($($ty:ty),*) => {$(
        impl LoopSpace for Range<$ty> {
            // The range's own element type: a body written against
            // `0..4_000` sees the same index type it would from a plain
            // `for` loop, so literal arithmetic/inference is unchanged.
            type Point = $ty;

            fn to_space(&self) -> IterSpace {
                // Negative bounds of signed ranges clamp to 0 — the
                // iteration indices are non-negative by contract.
                let start = if self.start < 0 as $ty { 0 } else { self.start as u64 };
                let end = if self.end < 0 as $ty { 0 } else { self.end as u64 };
                IterSpace::range(start..end)
            }

            fn run_units<F: FnMut($ty)>(space: &IterSpace, lo: u64, hi: u64, mut f: F) -> u64 {
                let IterSpace::Range1D { start, .. } = *space else {
                    unreachable!("1-D range driven with a non-1-D space");
                };
                for u in lo..hi {
                    // In-bounds by construction: units index the
                    // validated `[start, start+len)` of the source range.
                    f((start + u) as $ty);
                }
                hi - lo
            }
        }
    )*};
}

impl_loop_space_for_range!(u64, u32, usize, i32, i64);

impl LoopSpace for IterSpace {
    type Point = (u64, u64);

    fn to_space(&self) -> IterSpace {
        *self
    }

    /// Decodes units to `(row, col)` points. 1-D spaces yield
    /// `(index, 0)` — prefer the `Range` impls for those (typed
    /// `Point = u64`).
    fn run_units<F: FnMut((u64, u64))>(space: &IterSpace, lo: u64, hi: u64, mut f: F) -> u64 {
        match *space {
            IterSpace::Range1D { start, .. } => {
                for u in lo..hi {
                    f((start + u, 0));
                }
                hi - lo
            }
            IterSpace::Rect2D {
                rows,
                cols,
                tile_rows,
                tile_cols,
            } => {
                let (tr, tc) = (tile_rows as u64, tile_cols as u64);
                let gc = cols.div_ceil(tc);
                let mut elems = 0u64;
                for u in lo..hi {
                    let r0 = (u / gc) * tr;
                    let c0 = (u % gc) * tc;
                    let r1 = (r0 + tr).min(rows);
                    let c1 = (c0 + tc).min(cols);
                    for r in r0..r1 {
                        for c in c0..c1 {
                            f((r, c));
                        }
                    }
                    elems += (r1 - r0) * (c1 - c0);
                }
                elems
            }
            IterSpace::Triangular { n, tile } => {
                let t = tile as u64;
                let mut elems = 0u64;
                for u in lo..hi {
                    let tile_r = tri_row(u);
                    let tile_c = u - tile_r * (tile_r + 1) / 2;
                    let r0 = tile_r * t;
                    let r1 = (r0 + t).min(n);
                    let c0 = tile_c * t;
                    for r in r0..r1 {
                        // Diagonal tiles clip at the r=c edge; for
                        // off-diagonal tiles c0+t ≤ r0 ≤ r, so the min
                        // is the full tile width.
                        let c1 = (c0 + t).min(r + 1);
                        for c in c0..c1 {
                            f((r, c));
                        }
                        elems += c1 - c0;
                    }
                }
                elems
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force element count of units `[lo, hi)` via the decoder.
    fn count(space: &IterSpace, lo: u64, hi: u64) -> u64 {
        let mut seen = 0u64;
        let ran = IterSpace::run_units(space, lo, hi, |_| seen += 1);
        assert_eq!(ran, seen, "run_units return value matches calls");
        seen
    }

    #[test]
    fn range1d_units_are_iterations() {
        let s = IterSpace::range(10..25);
        assert_eq!(s.units(), 15);
        assert_eq!(s.len(), 15);
        assert_eq!(s.elems_in(3, 9), 6);
        let mut pts = Vec::new();
        IterSpace::run_units(&s, 0, 3, |p| pts.push(p));
        assert_eq!(pts, vec![(10, 0), (11, 0), (12, 0)]);
    }

    #[test]
    fn rect2d_covers_every_cell_exactly_once() {
        // Ragged in both dimensions: 10×7 with 4×3 tiles → 3×3 grid.
        let s = IterSpace::rect_tiled(10, 7, 4, 3);
        assert_eq!(s.units(), 9);
        assert_eq!(s.len(), 70);
        let mut hits = vec![0u32; 70];
        let ran = IterSpace::run_units(&s, 0, s.units(), |(r, c)| {
            assert!(r < 10 && c < 7);
            hits[(r * 7 + c) as usize] += 1;
        });
        assert_eq!(ran, 70);
        assert!(hits.iter().all(|&h| h == 1), "every cell exactly once");
    }

    #[test]
    fn triangular_covers_the_lower_triangle_exactly_once() {
        // n=11, tile 4 → 3 tile-rows, 6 tiles, ragged bottom edge.
        let s = IterSpace::triangular_tiled(11, 4);
        assert_eq!(s.units(), 6);
        assert_eq!(s.len(), 66);
        let mut hits = std::collections::HashMap::new();
        let ran = IterSpace::run_units(&s, 0, s.units(), |(r, c)| {
            assert!(c <= r && r < 11, "({r},{c}) outside the triangle");
            *hits.entry((r, c)).or_insert(0u32) += 1;
        });
        assert_eq!(ran, 66);
        assert_eq!(hits.len(), 66);
        assert!(hits.values().all(|&h| h == 1));
    }

    #[test]
    fn elems_before_matches_brute_force_on_ragged_spaces() {
        let spaces = [
            IterSpace::rect_tiled(10, 7, 4, 3),
            IterSpace::rect_tiled(1, 100, 8, 8),
            IterSpace::rect_tiled(64, 64, 16, 16),
            IterSpace::triangular_tiled(11, 4),
            IterSpace::triangular_tiled(1, 4),
            IterSpace::triangular_tiled(16, 4),
            IterSpace::triangular_tiled(100, 7),
        ];
        for s in &spaces {
            for u in 0..=s.units() {
                assert_eq!(
                    s.elems_before(u),
                    count(s, 0, u),
                    "{s:?} prefix at unit {u}"
                );
            }
            assert_eq!(s.elems_before(s.units()), s.len(), "{s:?} total");
            assert_eq!(s.elems_before(s.units() + 10), s.len(), "{s:?} clamped");
        }
    }

    #[test]
    fn tri_row_is_exact_at_scale() {
        for r in [0u64, 1, 2, 100, 1 << 20, (1 << 31) - 7] {
            let base = r * (r + 1) / 2;
            assert_eq!(tri_row(base), r);
            assert_eq!(tri_row(base + r), r, "last tile of row {r}");
            if r > 0 {
                assert_eq!(tri_row(base - 1), r - 1);
            }
        }
    }

    #[test]
    fn giant_spaces_validate_and_count_in_o1() {
        // >u32::MAX 1-D: valid now (the waving layer's job).
        let s = IterSpace::range(0..u32::MAX as u64 + 2);
        s.validate().unwrap();
        assert_eq!(s.elems_in(0, u32::MAX as u64 + 2), u32::MAX as u64 + 2);
        // A 2^80-element rect overflows u64 elements: typed error.
        let s = IterSpace::rect(1 << 40, 1 << 40);
        assert!(matches!(s.validate(), Err(LoopError::RangeTooLarge { .. })));
        // Triangular beyond the n(n+1)/2 u64 bound: typed error.
        let s = IterSpace::triangular(1 << 60);
        assert!(matches!(s.validate(), Err(LoopError::RangeTooLarge { .. })));
        // A giant-but-valid triangular space: O(1) prefix math works.
        let s = IterSpace::triangular_tiled(3_000_000_000, 1 << 16);
        s.validate().unwrap();
        assert_eq!(s.elems_before(s.units()), s.len());
        assert_eq!(s.len(), 3_000_000_000u64 * 3_000_000_001 / 2);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // inverted ranges are the point
    fn signed_and_unsigned_ranges_name_the_same_space() {
        assert_eq!((5i32..9).to_space(), (5u64..9).to_space());
        assert_eq!((5usize..9).to_space(), (5u32..9).to_space());
        assert_eq!((-3i32..4).to_space(), IterSpace::range(0..4));
        assert_eq!((7u64..3).to_space().len(), 0, "inverted range is empty");
    }
}
