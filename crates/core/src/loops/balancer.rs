//! The inter-socket loop rebalancer — the **coarse** level of two-level
//! dynamic loop balancing.
//!
//! PR 4's per-zone range pools balance *within* one loop reactively: a
//! worker whose zone pool runs dry steal-splits a remote pool. That fine
//! level leaves two gaps, both closed here in the spirit of the
//! two-level DLB literature (Mohammed et al.) with LB4OMP-style measured
//! cost driving the coarse decisions:
//!
//! 1. **Proactivity** — a zone about to starve waits passively until it
//!    is dry, then pays a cold cross-zone steal on the critical path.
//!    The balancer watches per-zone *drain rates* (claims-per-tick EWMAs
//!    sampled from each [`RangePool`](xgomp_xqueue::RangePool)) and
//!    migrates a back-half range from the slowest-to-finish zone into a
//!    starved zone's *inbox pool* **before** it runs dry.
//! 2. **Concurrent loops** — every live `parallel_for` registers its
//!    [`LoopCore`] here, so one probe arbitrates iteration space across
//!    *all* loops sharing the team, not just the loop the probing worker
//!    happens to drain.
//!
//! ## Cadence and tuning
//!
//! Probes ride the [`DlbTuning`] atomics: the
//! [`rebalance_interval`](crate::DlbConfig::rebalance_interval) knob
//! (clock ticks; `0` = off) is re-read on every gate check, so the
//! Table-IV controller and `TaskServer::swap_tuning` re-tune the cadence
//! live, mid-loop. The gate itself is called from loop-drain tasks at
//! chunk boundaries and from the DLB engine's idle hook — one clock read
//! plus one relaxed load when the interval has not elapsed.
//!
//! ## Migration safety
//!
//! A migration is two linearizable steps (back-half steal from the rich
//! pool, deposit into the starved inbox) with a window where the range is
//! in *neither* pool. Loop-drain tasks must not conclude "the iteration
//! space is fully claimed" during that window, so each [`LoopCore`]
//! carries a seqlock-style epoch: odd while a migration is in flight,
//! bumped again when it lands. The drain exit path re-validates its
//! all-pools-empty scan against an even, unchanged epoch — exactly a
//! seqlock read — making lost-iteration exits impossible.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use xgomp_profiling::{clock, WorkerStats};
use xgomp_xqueue::PaneSet;

use super::LoopCore;
use crate::dlb::{DlbTuning, DEFAULT_REBALANCE_INTERVAL};

/// The rich zone's estimated time-to-drain must exceed the starved
/// zone's by this factor before a migration fires (hysteresis against
/// ping-ponging ranges between near-balanced zones).
const STARVE_RATIO: f64 = 2.0;

/// A rich pool must still hold at least this many scheduling units for a
/// back-half migration to be worth the two CASes.
const MIN_MIGRATE: u64 = 16;

/// Per-team (or, under a task server, per-*server*) inter-socket loop
/// rebalancer; see the [module docs](self).
///
/// The balancer is passive state plus a probe: it owns no thread.
/// Whichever worker's gate check finds the interval elapsed runs the
/// probe inline (single-prober lock, so pool rate sampling stays
/// single-writer), and its per-worker stats block absorbs the rebalance
/// counters.
#[derive(Debug)]
pub struct LoopBalancer {
    /// Live pool-backed loops (registered by `parallel_for`, removed on
    /// completion — panics included, via drop guard).
    loops: Mutex<Vec<Arc<LoopCore>>>,
    /// Live tuning cell; when bound, `rebalance_interval` is read from
    /// it so controller retunes and `swap_tuning` apply immediately.
    tuning: OnceLock<Arc<DlbTuning>>,
    /// Probe cadence in ticks when no tuning cell is bound.
    fixed_interval: AtomicU64,
    /// Tick of the next allowed probe.
    next_probe: AtomicU64,
    /// Single-prober gate (also the single-sampler guarantee for the
    /// pools' rate EWMAs).
    probing: AtomicBool,
    probes: AtomicU64,
    rebalances: AtomicU64,
    iterations_migrated: AtomicU64,
}

impl Default for LoopBalancer {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopBalancer {
    /// A balancer with the default probe cadence
    /// ([`DEFAULT_REBALANCE_INTERVAL`] ticks until a tuning cell is
    /// bound). `Default` is this constructor.
    pub fn new() -> Self {
        LoopBalancer {
            loops: Mutex::new(Vec::new()),
            tuning: OnceLock::new(),
            fixed_interval: AtomicU64::new(DEFAULT_REBALANCE_INTERVAL),
            next_probe: AtomicU64::new(0),
            probing: AtomicBool::new(false),
            probes: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            iterations_migrated: AtomicU64::new(0),
        }
    }

    /// Binds the live [`DlbTuning`] cell the probe cadence is read from
    /// (first bind wins; later binds of the same server-owned cell are
    /// no-ops, which is what the per-generation team rebuild wants).
    pub fn bind_tuning(&self, tuning: &Arc<DlbTuning>) {
        let _ = self.tuning.set(tuning.clone());
    }

    /// The active probe interval in clock ticks (`0` = balancer off).
    #[inline]
    pub fn interval_ticks(&self) -> u64 {
        match self.tuning.get() {
            Some(t) => t.rebalance_interval(),
            None => self.fixed_interval.load(Ordering::Relaxed),
        }
    }

    /// Registers a live loop's pool set for rebalancing.
    pub(crate) fn register(&self, core: &Arc<LoopCore>) {
        self.lock_loops().push(core.clone());
    }

    /// Removes a completed (or unwound) loop.
    pub(crate) fn deregister(&self, core: &Arc<LoopCore>) {
        let mut loops = self.lock_loops();
        if let Some(i) = loops.iter().position(|c| Arc::ptr_eq(c, core)) {
            loops.swap_remove(i);
        }
    }

    fn lock_loops(&self) -> std::sync::MutexGuard<'_, Vec<Arc<LoopCore>>> {
        self.loops.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The probe gate: cheap when the interval has not elapsed (one
    /// clock read + relaxed loads), otherwise claims the single-prober
    /// lock and runs one probe over every registered loop. Returns
    /// whether this call performed at least one migration.
    ///
    /// `stats`, when given, is the calling worker's own stats block (the
    /// per-worker single-writer contract is the caller's).
    pub fn maybe_probe(&self, stats: Option<&WorkerStats>) -> bool {
        let interval = self.interval_ticks();
        if interval == 0 {
            return false;
        }
        let now = clock::now();
        if now < self.next_probe.load(Ordering::Relaxed) {
            return false;
        }
        if self.probing.swap(true, Ordering::Acquire) {
            return false; // someone else is probing
        }
        // Release the gate even if the probe unwinds (a stuck-true flag
        // would silently disable the balancer for the process lifetime).
        struct Gate<'a>(&'a AtomicBool);
        impl Drop for Gate<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        let _gate = Gate(&self.probing);
        self.next_probe.store(now + interval, Ordering::Relaxed);
        self.probe(now, stats)
    }

    /// One probe: refresh every registered loop's per-zone drain rates
    /// and apply at most one migration per loop (rich back-half → the
    /// most-starved zone's inbox).
    fn probe(&self, now: u64, stats: Option<&WorkerStats>) -> bool {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let loops = self.lock_loops();
        let mut any = false;
        for core in loops.iter() {
            if let Some(landed) = Self::rebalance_loop(core, now, stats) {
                any = true;
                self.rebalances.fetch_add(1, Ordering::Relaxed);
                self.iterations_migrated
                    .fetch_add(landed, Ordering::Relaxed);
            }
        }
        any
    }

    /// Probes one loop; returns the migrated unit count, if any.
    ///
    /// Policy: per zone, estimate the time-to-drain
    /// `ETA = remaining / claim-rate` (`0` when already dry, `∞` while
    /// unsampled or stalled). The *starved* zone is the minimal-ETA zone
    /// whose inbox is free; the *rich* zone is the maximal-ETA zone
    /// still holding a block worth splitting. Migrate the rich back
    /// half when the imbalance exceeds [`STARVE_RATIO`] — which includes
    /// the reactive dry case (`ETA = 0`) and fires *before* dryness once
    /// the rate samples make a small finite ETA visible.
    fn rebalance_loop(core: &LoopCore, now: u64, stats: Option<&WorkerStats>) -> Option<u64> {
        let n = core.pools.len();
        if n < 2 {
            return None;
        }
        let mut poor: Option<(usize, f64)> = None;
        let mut rich: Option<(usize, f64)> = None;
        for (i, p) in core.pools.iter().enumerate() {
            let rate = p.0.main.sample_rate(now) + p.0.inbox.sample_rate(now);
            let rem = p.0.remaining() as f64;
            let eta = if rem == 0.0 {
                0.0
            } else if rate <= f64::EPSILON {
                f64::INFINITY
            } else {
                rem / rate
            };
            if eta.is_finite() && p.0.inbox.is_empty() && poor.is_none_or(|(_, e)| eta < e) {
                poor = Some((i, eta));
            }
            if p.0.main.remaining() >= MIN_MIGRATE && rich.is_none_or(|(_, e)| eta > e) {
                rich = Some((i, eta));
            }
        }
        let ((poor, poor_eta), (rich, rich_eta)) = (poor?, rich?);
        if poor == rich || rich_eta <= STARVE_RATIO * poor_eta {
            return None;
        }
        // Seqlock bracket: drain tasks must not mistake the in-flight
        // window (range in neither pool) for a completed iteration space.
        core.epoch.fetch_add(1, Ordering::SeqCst);
        let landed = Self::migrate(
            core,
            &core.pools[rich].0.main,
            &core.pools[poor].0.inbox,
            stats,
        );
        core.epoch.fetch_add(1, Ordering::SeqCst);
        landed
    }

    /// Moves the back half of `src` into `dst`. A pane-set back-steal
    /// prefers a run of whole pending panes, so what migrates from a
    /// waved or tiled space is a contiguous run of panes/tiles — the
    /// issue's "migrate tiles, not scalar ranges". Each side is
    /// accounted **at its own linearization point** (in units):
    /// `migrated_out` at the steal, `migrated_in` at the deposit, and
    /// the out-count reverted together with the range when the give-back
    /// path fires. A migration path that loses a range therefore shows
    /// up as `out > in` and fails the conservation invariant — the
    /// identity the tests assert is falsifiable, not a double-count of
    /// one value.
    ///
    /// `dst` is the starved zone's inbox, and this prober is the *only*
    /// writer of inboxes (single-prober gate), so the deposit can only
    /// fail transiently (a claimer-side refill holding the seq word, or
    /// a stale emptiness read). Unlike the flat-pool era there is no
    /// `unsteal` — pane adjacency is ill-defined across panes — so the
    /// fallback re-homes the range into whichever side empties first;
    /// drain tasks keep claiming throughout, so one of the two deposits
    /// lands in bounded time. The seqlock epoch is held odd by the
    /// caller for the whole window.
    fn migrate(
        core: &LoopCore,
        src: &PaneSet,
        dst: &PaneSet,
        stats: Option<&WorkerStats>,
    ) -> Option<u64> {
        if !dst.is_empty() {
            return None;
        }
        let (lo, hi) = src.steal_half()?;
        let n = hi - lo;
        core.migrated_out.fetch_add(n, Ordering::Relaxed);
        if let Some(st) = stats {
            WorkerStats::add(&st.nloop_migrated_out, n);
        }
        loop {
            if dst.deposit_if_empty(lo, hi) {
                core.migrated_in.fetch_add(n, Ordering::Relaxed);
                core.rebalances.fetch_add(1, Ordering::Relaxed);
                if let Some(st) = stats {
                    WorkerStats::add(&st.nloop_migrated_in, n);
                    WorkerStats::inc(&st.nloop_rebalances);
                }
                return Some(n);
            }
            // `dst` raced non-empty (stale scan / refill in flight):
            // hand the range back to `src` once it drains, and revert
            // the out-count with it — nothing migrated.
            if src.deposit_if_empty(lo, hi) {
                core.migrated_out.fetch_sub(n, Ordering::Relaxed);
                if let Some(st) = stats {
                    let out = &st.nloop_migrated_out;
                    out.store(
                        out.load(Ordering::Relaxed).saturating_sub(n),
                        Ordering::Relaxed,
                    );
                }
                return None;
            }
            std::hint::spin_loop();
        }
    }

    /// Currently registered (live) loops.
    pub fn live_loops(&self) -> usize {
        self.lock_loops().len()
    }

    /// Probes run so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Migrations performed so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances.load(Ordering::Relaxed)
    }

    /// Iterations migrated so far.
    pub fn iterations_migrated(&self) -> u64 {
        self.iterations_migrated.load(Ordering::Relaxed)
    }
}
