//! Data-parallel loops: NUMA-aware iteration-space scheduling
//! ([`TaskCtx::parallel_for`]) with **two-level dynamic load balancing**.
//!
//! The runtime's tasking side reproduces the paper's *task* parallelism;
//! this module adds the other half of the fine-grained-parallelism
//! story, in the spirit of LB4OMP's dynamic loop-scheduling library and
//! the two-level balancing literature: a `parallel_for` over an
//! iteration space with a family of [`LoopSchedule`]s, built so loop
//! work flows through the *same* NUMA machinery as tasks.
//!
//! ## Architecture
//!
//! * The logical [`IterSpace`] (1D range, 2D rectangle, triangular —
//!   see the [`space`] module) lowers to flat u64 *scheduling units*,
//!   blocked across NUMA zones proportionally to each zone's worker
//!   count; each zone's share is seeded into the `main`
//!   [`PaneSet`](xgomp_xqueue::PaneSet) of its [`ZonePool`], which waves
//!   it through ≤u32 panes drained by one packed atomic word — claims
//!   and steals cost one CAS per *chunk*, never per iteration, plus one
//!   CAS per pane refill. Each zone also carries an initially empty
//!   `inbox` pane set, the landing pad for balancer migrations.
//! * One *loop-drain task* per worker is spawned with zone-affine
//!   placement ([`Scope::spawn_on`](crate::Scope::spawn_on) → the
//!   scheduler's targeted push). Drain tasks are ordinary tasks: the DLB
//!   engine can migrate them like any other task, the tree barrier
//!   counts them, and parked workers are woken for them through the
//!   ordinary `xqueue::parker` push-wake path — loop quiescence needs no
//!   second mechanism.
//! * **Fine level (reactive, intra-loop):** a drain task claims chunks
//!   from **its executor's own zone pools first** (main, then inbox);
//!   only when both are dry does it *steal-split* a remote zone's pools
//!   (taking the upper half, exactly like stealing the cold end of a
//!   deque), visiting remote pools in nearest-first rotation — the NA-RP
//!   zone-local-first victim order applied to iteration ranges. A stolen
//!   range's tail is re-deposited into the thief's own zone pool when
//!   that pool is empty, so one steal feeds a whole zone.
//! * **Coarse level (proactive, cross-loop):** every pool-backed loop
//!   registers with the team's [`LoopBalancer`], which watches per-zone
//!   claim-rate EWMAs across *all* live loops and migrates back-half
//!   ranges from the slowest zone into starved zones' inboxes *before*
//!   they run dry — see the [`balancer`] module docs for the policy and
//!   the seqlock protocol that keeps migrations invisible to the drain
//!   tasks' exit scan.
//! * The loop completes through the ordinary structured-spawn path: the
//!   calling task `scope`s the drain tasks (helping while it waits), and
//!   every drain task `taskwait`s its own children, so a body that
//!   spawns nested tasks is fully quiesced before `parallel_for`
//!   returns — which is what lets loops compose with the task server's
//!   `pause()`/generation machinery unchanged.
//!
//! ## Schedules
//!
//! | Schedule | Chunking | Use |
//! |----------|----------|-----|
//! | [`Static`](LoopSchedule::Static) | one NUMA-blocked contiguous block per worker, no pools | uniform iteration cost |
//! | [`Dynamic(c)`](LoopSchedule::Dynamic) | fixed chunks of `c` from the zone pools | known-irregular cost, small loops |
//! | [`Guided(m)`](LoopSchedule::Guided) | `remaining / (2 · zone workers)`, floored at `m` | irregular cost, decreasing tail |
//! | [`Adaptive`](LoopSchedule::Adaptive) | chunk ≈ `TARGET_TICKS` ÷ live per-iteration cost estimate (decade histogram, LB4OMP-style), scaled down per zone by its relative drain rate | unknown or shifting cost |
//! | [`Tss { first, last }`](LoopSchedule::Tss) | trapezoid: linear decrement from `first` to `last` over `⌈2N/(first+last)⌉` chunks | mildly decreasing cost, low scheduling overhead |
//! | [`Factoring`](LoopSchedule::Factoring) | batched halving: `⌈N/(P·2^(b+1))⌉` per chunk of batch `b` (P chunks per batch) | high-variance cost |
//! | [`WeightedFactoring`](LoopSchedule::WeightedFactoring) | factoring × per-zone weight from the balancer's claim-rate EWMAs | high variance on asymmetric sockets |
//! | [`Awf`](LoopSchedule::Awf) | factoring × per-zone weight from *measured* chunk execution rates | variance + unknown machine asymmetry |
//! | [`Auto`](LoopSchedule::Auto) | online per-loop-site selection over the portfolio (server-owned [`AutoSelector`]) | repeated loop sites with unknown best schedule |
//!
//! The TSS/Factoring/WF/AWF family is a pure *chunk-size policy layer*
//! ([`portfolio`] module) over the same pane-set claim path — see its
//! docs for the closed-form series and the `Auto` selection policy.

mod balancer;
mod portfolio;
mod space;

pub use balancer::LoopBalancer;
pub use portfolio::{
    auto_portfolio_member, AutoPick, AutoSelector, AutoSiteStatus, ChunkPolicy, LoopId,
    AUTO_CONFIRM_WINDOWS, AUTO_FALLBACK, AUTO_PORTFOLIO_LEN, AUTO_TRIALS_PER_MEMBER,
};
pub use space::{IterSpace, LoopSpace, SpaceKind, DEFAULT_TILE};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use xgomp_profiling::{clock, decade_index, EventKind, TraceLevel, WorkerStats};
// (`serde` is used by `LoopReport`; the shim derive cannot handle the
// data-carrying variants of `LoopSchedule`, which stays plain.)
use xgomp_xqueue::{Backoff, PaneSet, DEFAULT_PANE_UNITS};

use crate::ctx::TaskCtx;
use crate::util::CachePadded;

/// Iteration-space scheduling policy of a [`TaskCtx::parallel_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopSchedule {
    /// NUMA-blocked static partition: each worker gets one contiguous
    /// block, zone-affinely placed; no pools, no stealing. Lowest
    /// overhead, no balancing.
    Static,
    /// Fixed-size chunks claimed from the zone pools (OpenMP
    /// `schedule(dynamic, c)`); `0` is treated as `1`.
    Dynamic(u32),
    /// Exponentially decreasing chunks — half the pool's remainder
    /// divided by the zone's workers, floored at the given minimum
    /// (OpenMP `schedule(guided, m)`); `0` is treated as `1`.
    Guided(u32),
    /// Chunk size derived online from the loop's live per-iteration
    /// cost: each chunk's duration feeds a decade histogram, and the
    /// next chunk targets a fixed time budget divided by the modal
    /// per-iteration cost (LB4OMP-style self-tuning). v2: the budget is
    /// additionally scaled per *zone* — a zone draining slower than the
    /// fastest one (slow remote memory, fewer effective workers) claims
    /// proportionally smaller chunks, so its tail stays balanceable.
    Adaptive,
    /// Trapezoid self-scheduling (Tzen–Ni): chunk sizes decrease
    /// *linearly* from `first` to `last` over `⌈2N/(first+last)⌉`
    /// chunks — guided's decreasing tail with a bounded, predictable
    /// series. `first`/`last` are clamped into `1 ≤ last ≤ first`.
    Tss {
        /// First chunk's size (a common choice is `N / (2·P)`).
        first: u32,
        /// Smallest chunk the series decays to (commonly `1`).
        last: u32,
    },
    /// Factoring (Hummel–Schonberg–Flynn, exact-halving variant): each
    /// *batch* of `P` chunks hands out half the remaining work, so a
    /// chunk of batch `b` has `⌈N/(P·2^(b+1))⌉` units — more tail
    /// chunks than guided, robust to high iteration-cost variance.
    Factoring,
    /// [`Factoring`](Self::Factoring) with each zone's chunks scaled by
    /// its claim-rate weight (the balancer's EWMA signal): fast zones
    /// take proportionally bigger chunks, slow zones keep their tail
    /// balanceable.
    WeightedFactoring,
    /// Adaptive weighted factoring: like
    /// [`WeightedFactoring`](Self::WeightedFactoring), but the weights
    /// come from *measured* per-chunk execution rates (the same chunk
    /// timing that feeds the live sampler), so they track observed
    /// speed rather than the claim-rate proxy.
    Awf,
    /// Online per-loop-site auto-selection: the serving team's
    /// [`AutoSelector`] trials the portfolio across repeated instances
    /// of the same loop site (keyed by [`LoopId`] or space shape),
    /// scores by measured makespan and converges on the fastest with
    /// two-window hysteresis. Outside a server (no selector attached)
    /// it falls back to [`AUTO_FALLBACK`].
    Auto,
}

impl LoopSchedule {
    /// Stable index into the per-schedule telemetry
    /// ([`xgomp_profiling::LOOP_SCHEDULE_NAMES`] order).
    pub fn index(self) -> usize {
        match self {
            LoopSchedule::Static => 0,
            LoopSchedule::Dynamic(_) => 1,
            LoopSchedule::Guided(_) => 2,
            LoopSchedule::Adaptive => 3,
            LoopSchedule::Tss { .. } => 4,
            LoopSchedule::Factoring => 5,
            LoopSchedule::WeightedFactoring => 6,
            LoopSchedule::Awf => 7,
            LoopSchedule::Auto => 8,
        }
    }

    /// Human-readable schedule name.
    pub fn name(self) -> &'static str {
        xgomp_profiling::LOOP_SCHEDULE_NAMES[self.index()]
    }
}

/// Why a loop could not be run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopError {
    /// The space exceeds what the waving layer can schedule: more than
    /// 2⁶² scheduling units ([`xgomp_xqueue::MAX_SHARE_UNITS`]), or an
    /// element count that overflows u64. Ordinary giant spaces —
    /// including >u32::MAX-iteration ranges — are *not* errors anymore;
    /// they auto-wave through panes.
    RangeTooLarge {
        /// The rejected space's element count (saturated at `u64::MAX`
        /// when the true count overflows).
        len: u64,
    },
}

impl std::fmt::Display for LoopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoopError::RangeTooLarge { len } => write!(
                f,
                "iteration space exceeds the schedulable bound of 2^62 units \
                 (got {len} elements); split it into multiple loops"
            ),
        }
    }
}

impl std::error::Error for LoopError {}

/// What a completed [`TaskCtx::parallel_for`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopReport {
    /// Iterations executed (the full range length unless the job's
    /// cancellation token fired mid-loop).
    pub iterations: u64,
    /// Iterations abandoned *un-executed* because the job's cancellation
    /// token fired mid-loop (drain tasks empty the remaining pools
    /// without running them). `iterations + cancelled_iters` equals the
    /// range length exactly — the cancellation conservation identity.
    pub cancelled_iters: u64,
    /// Chunks the iteration space was claimed in.
    pub chunks: u64,
    /// Chunks claimed from the executing worker's own zone pools (the
    /// zone-local-first fast path; static blocks count when they ran in
    /// their home zone).
    pub claimed_local: u64,
    /// Cross-zone range steal-splits performed (the fine, reactive
    /// balancing level).
    pub range_steals: u64,
    /// Inter-socket balancer migrations applied to this loop (the
    /// coarse, proactive level).
    pub rebalances: u64,
    /// Iterations the balancer moved *into* starved zones' inboxes.
    /// Always equals [`migrated_out`](Self::migrated_out) — the
    /// conservation identity the test suite asserts per loop.
    pub migrated_in: u64,
    /// Iterations the balancer moved *out of* rich zones' pools.
    pub migrated_out: u64,
}

/// Chunk-duration target of the adaptive schedule, in clock ticks
/// (~tens of µs on a GHz-class TSC: long enough to amortize a claim CAS,
/// short enough to rebalance a skewed tail).
const ADAPTIVE_TARGET_TICKS: u64 = 1 << 17;
/// First-chunk size while the cost histogram is still empty.
const ADAPTIVE_SEED_CHUNK: u32 = 32;
/// Hard ceiling on an adaptive chunk (keeps a mis-estimated cheap body
/// from swallowing a whole pool in one claim).
const ADAPTIVE_MAX_CHUNK: u32 = 1 << 16;
/// Static blocks have no chunk boundaries, so they poll the job's
/// cancellation token every this-many iterations instead (a power of
/// two: the gate is one mask + branch per iteration).
const STATIC_CANCEL_STRIDE: u32 = 256;

/// Live per-iteration cost model of one `Adaptive` loop: a decade
/// histogram updated once per chunk (weighted by the chunk's iteration
/// count) and read as its modal decade.
#[derive(Debug)]
struct AdaptiveCost {
    buckets: [AtomicU64; 9],
}

impl AdaptiveCost {
    fn new() -> Self {
        AdaptiveCost {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Folds one chunk of `iters` iterations that took `ticks` in.
    fn record_chunk(&self, iters: u64, ticks: u64) {
        let per_iter = ticks / iters.max(1);
        self.buckets[decade_index(per_iter)].fetch_add(iters, Ordering::Relaxed);
    }

    /// Modal per-iteration cost estimate: the geometric midpoint
    /// (≈ 3·10^i) of the decade holding the most iterations. `None`
    /// before the first sample. Allocation-free: this runs on the chunk
    /// claim path.
    fn estimate(&self) -> Option<u64> {
        let (mut best_i, mut best_c) = (0usize, 0u64);
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > best_c {
                (best_i, best_c) = (i, c);
            }
        }
        if best_c == 0 {
            return None;
        }
        Some(3 * 10u64.pow(best_i as u32))
    }
}

/// Pane-size override for tests: forces waved pools on small spaces so
/// the refill/steal/abandon machinery is exercised without giant loops.
/// `0` = use [`DEFAULT_PANE_UNITS`]. Set-once and process-global (never
/// reset): a consistent small pane size is correctness-neutral for every
/// loop test.
static TEST_PANE_UNITS: AtomicU64 = AtomicU64::new(0);

/// Forces every subsequently seeded zone pool to wave in panes of 4096
/// scheduling units. Test hook — not part of the public API.
#[doc(hidden)]
pub fn force_small_panes_for_tests() {
    TEST_PANE_UNITS.store(4096, Ordering::Relaxed);
}

fn pane_units() -> u64 {
    match TEST_PANE_UNITS.load(Ordering::Relaxed) {
        0 => DEFAULT_PANE_UNITS,
        p => p,
    }
}

/// One NUMA zone's iteration pools: the seeded `main` share plus the
/// balancer-fed `inbox` (empty until a migration lands). Both are
/// [`PaneSet`]s — u64 unit shares waved through ≤u32 panes — so a zone's
/// share of a giant space costs the same one CAS per chunk as before,
/// plus one CAS per pane refill.
#[derive(Debug)]
pub(crate) struct ZonePool {
    /// The zone's seeded share of the unit space.
    pub(crate) main: PaneSet,
    /// Landing pad for inter-socket migrations. A separate pool — rather
    /// than depositing into `main` — is what makes the coarse level
    /// *proactive*: a zone can receive work while its own share still
    /// has units left (deposits only land in empty pools).
    pub(crate) inbox: PaneSet,
}

impl ZonePool {
    fn new(lo: u64, hi: u64, pane: u64) -> Self {
        ZonePool {
            main: PaneSet::with_pane_units(lo, hi, pane),
            inbox: PaneSet::with_pane_units(0, 0, pane),
        }
    }

    /// Racy total remaining units across both pools — the zone's whole
    /// *logical* share (all pending panes), not just the active pane.
    pub(crate) fn remaining(&self) -> u64 {
        self.main.remaining().saturating_add(self.inbox.remaining())
    }

    /// Racy zone claim-rate estimate (units per tick).
    fn claim_rate(&self) -> f64 {
        self.main.claim_rate() + self.inbox.claim_rate()
    }

    /// Seqlock-validated emptiness of both pane sets (a pane mid-refill
    /// is in neither pool, so the racy `remaining() == 0` is not enough
    /// for an exit decision).
    fn definitely_empty(&self) -> bool {
        self.main.is_definitely_empty() && self.inbox.is_definitely_empty()
    }
}

/// The `'static` heart of one running pool-backed loop: the per-zone
/// pools plus the balancer-facing state. Shared between the loop's
/// drain tasks (via [`LoopShared`]) and the team's [`LoopBalancer`]
/// registry, which is why it is split out of the stack-borrowing
/// `LoopShared`.
#[derive(Debug)]
pub(crate) struct LoopCore {
    /// One pool pair per NUMA zone that hosts workers, zone-rank order.
    pub(crate) pools: Box<[CachePadded<ZonePool>]>,
    /// pool index → worker count of that zone (guided/adaptive divisor).
    pub(crate) zone_workers: Box<[u32]>,
    /// Migration seqlock: odd while a balancer migration is in flight
    /// (range in neither pool). Drain tasks validate their final
    /// all-pools-empty scan against an even, unchanged epoch before
    /// concluding the loop's iteration space is fully claimed.
    pub(crate) epoch: AtomicU64,
    /// Balancer migrations applied to this loop.
    pub(crate) rebalances: AtomicU64,
    /// Iterations migrated into inboxes / out of mains (conserved).
    pub(crate) migrated_in: AtomicU64,
    pub(crate) migrated_out: AtomicU64,
}

impl LoopCore {
    /// Seqlock-validated scan: every pool (mains and inboxes) is empty
    /// with no pane refill in flight anywhere.
    fn all_empty(&self) -> bool {
        self.pools.iter().all(|p| p.0.definitely_empty())
    }

    /// Adaptive v2 zone scaling: shrink `base` by this zone's claim rate
    /// relative to the fastest zone's (per worker), clamped to `[¼, 1]`.
    /// Unsampled rates (loop younger than one balancer probe) leave the
    /// chunk unscaled.
    fn zone_chunk_scale(&self, pool: usize, base: u32) -> u32 {
        let per_worker =
            |i: usize| self.pools[i].0.claim_rate() / f64::from(self.zone_workers[i].max(1));
        let mine = per_worker(pool);
        let best = (0..self.pools.len()).map(per_worker).fold(0.0, f64::max);
        if best <= f64::EPSILON || mine >= best {
            return base;
        }
        let scale = (mine / best).clamp(0.25, 1.0);
        (((f64::from(base)) * scale) as u32).max(1)
    }

    /// Weighted-factoring weight of `pool`: its per-worker claim rate
    /// relative to the *mean* across sampled zones, clamped to `[¼, 4]`
    /// (1.0 while this zone — or every zone — is unsampled). Unlike
    /// [`zone_chunk_scale`](Self::zone_chunk_scale) this is symmetric:
    /// fast zones scale *up* past 1, which is what lets WF hand them
    /// proportionally bigger factoring chunks.
    fn zone_weight(&self, pool: usize) -> f64 {
        let per_worker =
            |i: usize| self.pools[i].0.claim_rate() / f64::from(self.zone_workers[i].max(1));
        let mine = per_worker(pool);
        if mine <= f64::EPSILON {
            return 1.0;
        }
        let (sum, n) = (0..self.pools.len())
            .map(per_worker)
            .filter(|r| *r > f64::EPSILON)
            .fold((0.0f64, 0u32), |(s, n), r| (s + r, n + 1));
        if n == 0 {
            return 1.0;
        }
        (mine / (sum / f64::from(n))).clamp(0.25, 4.0)
    }
}

/// The monomorphization boundary between the shared, unit-typed
/// scheduling machinery and a specific space's point decode: runs units
/// `[lo, hi)` through the user body on the given ctx, returning the
/// *element* count executed. Built (generically, so the per-element loop
/// inlines) by `try_parallel_for`.
type UnitRunner<'b> = dyn Fn(u64, u64, &TaskCtx<'_>) -> u64 + Sync + 'b;

/// Shared state of one running loop (lives on `parallel_for`'s frame;
/// drain tasks borrow it through the scope).
struct LoopShared<'b> {
    /// The logical space (`pools` hold its scheduling units; element
    /// accounting converts through its O(1) prefix math).
    space: &'b IterSpace,
    schedule: LoopSchedule,
    /// The registered, balancer-visible pool state.
    core: Arc<LoopCore>,
    /// zone id → pool index (zones without workers map to pool 0 — they
    /// can only appear if a placement changes under a migrated task,
    /// which the runtime never does mid-region).
    pool_of_zone: Box<[usize]>,
    cost: AdaptiveCost,
    /// Per-loop state of the TSS/Factoring/WF/AWF chunk-size policy
    /// layer (`None` for the classic schedules).
    portfolio: Option<ChunkPolicy>,
    /// Loop-wide totals, flushed once per drain task. Iteration counts
    /// are *elements*; chunk/steal counts are claim events; the migrated
    /// counters on [`LoopCore`] are units.
    chunks: AtomicU64,
    iters: AtomicU64,
    claimed_local: AtomicU64,
    range_steals: AtomicU64,
    cancelled_iters: AtomicU64,
    runner: &'b UnitRunner<'b>,
}

/// Per-drain-task counter accumulator (flushed once, so the shared
/// totals see one `fetch_add` per drain task, not per chunk).
#[derive(Default)]
struct DriveStats {
    chunks: u64,
    iters: u64,
    claimed_local: u64,
    range_steals: u64,
    cancelled: u64,
}

impl<'b> LoopShared<'b> {
    /// Runs units `[lo, hi)` through the runner on `ctx`; `pool` is the
    /// zone pool the chunk is accounted to (AWF rate measurement).
    fn run_chunk(
        &self,
        ctx: &TaskCtx<'_>,
        lo: u64,
        hi: u64,
        pool: usize,
        local: bool,
        acc: &mut DriveStats,
    ) {
        let units = hi - lo;
        let adaptive = matches!(self.schedule, LoopSchedule::Adaptive);
        let awf = matches!(self.schedule, LoopSchedule::Awf);
        let sampler = ctx.team.sampler.as_deref();
        // Chunk durations feed the adaptive cost model, the AWF weight
        // accumulators and — when a live sampler is wired (task server)
        // — the Table-IV adaptive controller, so loop-heavy workloads
        // retune the DLB engine from their real chunk grain, not just
        // from whole drain-task sizes.
        let timed = adaptive || awf || sampler.is_some();
        let t0 = if timed { clock::now() } else { 0 };
        acc.iters += (self.runner)(lo, hi, ctx);
        if timed {
            let dt = clock::now().saturating_sub(t0);
            if adaptive {
                // The cost model is per *unit* (a tile for 2D/triangular
                // spaces), matching the unit-typed chunk sizes below.
                self.cost.record_chunk(units, dt);
            }
            if awf {
                if let Some(p) = &self.portfolio {
                    p.record_pool(pool, units, dt);
                }
            }
            if let Some(s) = sampler {
                s.record(ctx.worker_id(), dt);
            }
        }
        acc.chunks += 1;
        if local {
            acc.claimed_local += 1;
        }
    }

    /// Consumes one scheduling step of the portfolio policy (no-op for
    /// the classic schedules). Called once per *successful* claim, so a
    /// dry-pool probe never skips a series entry.
    fn note_claimed(&self) {
        if let Some(p) = &self.portfolio {
            p.advance();
        }
    }

    /// Next chunk size (in units) for a claim from pool `pool` (see the
    /// schedule table in the [module docs](self)).
    fn chunk_size(&self, pool: usize) -> u32 {
        let zone_workers = u64::from(self.core.zone_workers[pool].max(1));
        match self.schedule {
            LoopSchedule::Static => unreachable!("static loops never claim from pools"),
            LoopSchedule::Dynamic(c) => c.max(1),
            LoopSchedule::Guided(min) => {
                // `remaining` spans the zone's whole logical share (all
                // pending panes), so guided decay follows the space, not
                // the active pane.
                let remaining = self.core.pools[pool].0.remaining();
                (remaining / (2 * zone_workers)).clamp(u64::from(min.max(1)), u64::from(u32::MAX))
                    as u32
            }
            LoopSchedule::Adaptive => {
                let base = match self.cost.estimate() {
                    Some(per_unit) => (ADAPTIVE_TARGET_TICKS / per_unit.max(1))
                        .clamp(1, ADAPTIVE_MAX_CHUNK as u64)
                        as u32,
                    None => ADAPTIVE_SEED_CHUNK,
                };
                // v2: per-zone scaling from the balancer's rate signal.
                let base = self.core.zone_chunk_scale(pool, base);
                // Tail cap against the *logical* remaining share — a
                // giant waved loop keeps one continuous cost histogram
                // and its chunks are capped by the space's true tail,
                // never re-shrunk at each pane boundary.
                let fair = (self.core.pools[pool].0.remaining() / zone_workers).max(1);
                u64::from(base).min(fair) as u32
            }
            // The portfolio policies: size from the loop-global series
            // (peeked — the step advances on claim success), weighted
            // per zone for WF (claim-rate EWMAs) and AWF (measured
            // execution rates).
            LoopSchedule::Tss { .. } | LoopSchedule::Factoring => self
                .portfolio
                .as_ref()
                .expect("portfolio schedules build a ChunkPolicy")
                .peek(1.0),
            LoopSchedule::WeightedFactoring => {
                let p = self
                    .portfolio
                    .as_ref()
                    .expect("portfolio schedules build a ChunkPolicy");
                p.peek(self.core.zone_weight(pool))
            }
            LoopSchedule::Awf => {
                let p = self
                    .portfolio
                    .as_ref()
                    .expect("portfolio schedules build a ChunkPolicy");
                p.peek(p.pool_weight(pool))
            }
            LoopSchedule::Auto => {
                unreachable!("Auto resolves to a concrete schedule before run_loop")
            }
        }
    }

    /// The dynamic-family drain loop one worker runs: claim zone-local
    /// (main, then inbox), steal-split remote (nearest-first) when dry,
    /// share stolen tails through the local pool — and, at every chunk
    /// boundary, give the inter-socket balancer its probe chance and the
    /// job's cancellation token a checkpoint.
    fn drive(&self, ctx: &TaskCtx<'_>) {
        let zone = ctx.numa_zone();
        let my = *self.pool_of_zone.get(zone).unwrap_or(&0);
        let n_pools = self.core.pools.len();
        let balancer = &ctx.team.balancer;
        let my_stats = &ctx.team.stats[ctx.worker_id()];
        let token = ctx.cancel_token();
        let mut acc = DriveStats::default();
        let mut backoff = Backoff::new();
        'outer: loop {
            // Cancellation checkpoint, once per chunk claim: a fired
            // token turns this drain task into an abandoner — it empties
            // the remaining pools *without executing them*, conserving
            // every abandoned iteration into `cancelled_iters`.
            if token.as_ref().is_some_and(|t| t.poll().is_some()) {
                self.abandon_pools(&mut acc);
                break 'outer;
            }
            // Coarse level: the probe gate is one clock read when the
            // interval has not elapsed (and a no-op when disabled).
            if balancer.maybe_probe(Some(my_stats)) {
                // Our probe migrated a back-half range between zones —
                // a coarse-level decision worth a lifecycle record.
                ctx.trace_emit(TraceLevel::Lifecycle, EventKind::Rebalance, my as u32, 0, 0);
            }
            // Zone-local first: the claim costs one CAS and keeps the
            // iterations in the zone whose block they belong to. The
            // inbox holds balancer migrations — zone property too.
            let mine = &self.core.pools[my].0;
            let want = self.chunk_size(my);
            let claimed = mine.main.claim(want).or_else(|| mine.inbox.claim(want));
            if let Some((lo, hi)) = claimed {
                self.note_claimed();
                ctx.trace_emit(TraceLevel::Full, EventKind::ChunkClaim, my as u32, lo, hi);
                self.run_chunk(ctx, lo, hi, my, true, &mut acc);
                backoff.reset();
                continue;
            }
            // Local pools dry: steal-split a remote zone, nearest-first
            // rotation (the NA-RP victim order for iteration ranges). A
            // pane-set steal prefers whole pending panes, so a waved
            // space migrates pane tails, not scalar slivers.
            let mut stolen = None;
            for d in 1..n_pools {
                let p = &self.core.pools[(my + d) % n_pools].0;
                if let Some(r) = p.main.steal_half().or_else(|| p.inbox.steal_half()) {
                    stolen = Some(r);
                    break;
                }
            }
            if let Some((mut lo, hi)) = stolen {
                acc.range_steals += 1;
                ctx.trace_emit(TraceLevel::Full, EventKind::RangeSteal, my as u32, lo, hi);
                // Drain the stolen range: keep one chunk, hand the tail
                // to the (empty) local pool so zone peers share the
                // spoils.
                while lo < hi {
                    // A stolen range can be half a pool — keep the
                    // chunk-claim cancellation cadence inside it too.
                    // The un-run remainder is ours alone (already out of
                    // every pool), so its *elements* are counted here
                    // (O(1) prefix math) and the pools are abandoned
                    // separately.
                    if token.as_ref().is_some_and(|t| t.poll().is_some()) {
                        acc.cancelled += self.space.elems_in(lo, hi);
                        self.abandon_pools(&mut acc);
                        break 'outer;
                    }
                    let take = u64::from(self.chunk_size(my)).min(hi - lo);
                    self.note_claimed();
                    let (clo, chi) = (lo, lo + take);
                    lo += take;
                    if lo < hi && mine.main.deposit_if_empty(lo, hi) {
                        lo = hi;
                    }
                    self.run_chunk(ctx, clo, chi, my, false, &mut acc);
                }
                backoff.reset();
                continue;
            }
            // Every pool looked empty — but a balancer migration in
            // flight holds a range in *neither* pool. Seqlock-validate
            // the scan (even epoch, unchanged across a re-scan) before
            // concluding the iteration space is fully claimed; on
            // failure, yield and retry (migrations are two CASes, so the
            // window is nanoseconds unless the prober was preempted).
            let e = self.core.epoch.load(Ordering::SeqCst);
            let empty = e & 1 == 0 && self.core.all_empty();
            // Standard seqlock reader: the fence orders the (relaxed)
            // pool-word scan before the validating epoch re-read, so the
            // scan cannot be satisfied by values newer than the epoch we
            // validate against.
            std::sync::atomic::fence(Ordering::Acquire);
            if empty && self.core.epoch.load(Ordering::SeqCst) == e {
                break 'outer;
            }
            backoff.snooze();
        }
        self.flush(ctx, acc);
    }

    /// Cancellation drain: empties every pool without executing,
    /// counting the abandoned **elements** into `acc.cancelled` — each
    /// drained unit range converts through the space's O(1) prefix math,
    /// so abandoning billions of units never iterates them. The scan is
    /// validated against the migration seqlock exactly like the normal
    /// empty exit — a balancer migration in flight holds a range in
    /// *neither* pool, and a blind drain would strand those units and
    /// break the conservation identity. Concurrent abandoners are fine:
    /// a pane-set drain hands every unit to exactly one drainer.
    fn abandon_pools(&self, acc: &mut DriveStats) {
        let mut backoff = Backoff::new();
        loop {
            for p in self.core.pools.iter() {
                let mut cancelled = 0u64;
                p.0.main
                    .drain_all_with(|lo, hi| cancelled += self.space.elems_in(lo, hi));
                p.0.inbox
                    .drain_all_with(|lo, hi| cancelled += self.space.elems_in(lo, hi));
                acc.cancelled += cancelled;
            }
            let e = self.core.epoch.load(Ordering::SeqCst);
            let empty = e & 1 == 0 && self.core.all_empty();
            std::sync::atomic::fence(Ordering::Acquire);
            if empty && self.core.epoch.load(Ordering::SeqCst) == e {
                return;
            }
            backoff.snooze();
        }
    }

    /// Flushes a drain task's accumulated counters into the worker's
    /// stats block and the loop totals.
    fn flush(&self, ctx: &TaskCtx<'_>, acc: DriveStats) {
        let stats = &ctx.team.stats[ctx.worker_id()];
        WorkerStats::add(&stats.nloop_chunks, acc.chunks);
        WorkerStats::add(&stats.nloop_iters, acc.iters);
        WorkerStats::add(&stats.nloop_claim_local, acc.claimed_local);
        WorkerStats::add(&stats.nloop_range_steals, acc.range_steals);
        WorkerStats::add(&stats.nloop_cancelled_iters, acc.cancelled);
        self.chunks.fetch_add(acc.chunks, Ordering::Relaxed);
        self.iters.fetch_add(acc.iters, Ordering::Relaxed);
        self.claimed_local
            .fetch_add(acc.claimed_local, Ordering::Relaxed);
        self.range_steals
            .fetch_add(acc.range_steals, Ordering::Relaxed);
        self.cancelled_iters
            .fetch_add(acc.cancelled, Ordering::Relaxed);
    }
}

/// Deregisters a loop from the balancer when the loop frame unwinds or
/// returns — a panicking body must not leave its pools registered.
struct Registration {
    balancer: Arc<LoopBalancer>,
    core: Arc<LoopCore>,
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.balancer.deregister(&self.core);
    }
}

impl<'t> TaskCtx<'t> {
    /// Executes `body` for every point of `space`, in parallel, under
    /// the given [`LoopSchedule`] — the data-parallel counterpart of
    /// [`scope`](Self::scope).
    ///
    /// `space` is anything implementing [`LoopSpace`]: a plain integer
    /// range (`Point = u64`; ranges beyond `u32::MAX` iterations
    /// auto-wave through panes) or an explicit [`IterSpace`]
    /// (`Point = (row, col)` for 2D/triangular shapes — see
    /// [`parallel_for_2d`](Self::parallel_for_2d) and
    /// [`parallel_for_tri`](Self::parallel_for_tri)).
    ///
    /// The space is NUMA-blocked across the team's zones and drained
    /// through per-zone pane sets by one loop-drain task per worker
    /// (zone-affinely placed; see the [module docs](self) for the two
    /// balancing levels). The call returns only when every iteration
    /// *and every task spawned by the body* has completed, so `body` may
    /// borrow from the enclosing frame, exactly like
    /// [`Scope::spawn`](crate::Scope::spawn).
    ///
    /// `body` runs on arbitrary workers; it receives the point and the
    /// executing worker's [`TaskCtx`] (for nested spawns and topology
    /// queries).
    ///
    /// # Panics
    ///
    /// Panics on an invalid space ([`LoopError`]: beyond 2⁶² scheduling
    /// units, or an element count overflowing u64); use
    /// [`try_parallel_for`](Self::try_parallel_for) to handle that as a
    /// value instead. Panics from `body` propagate like task panics
    /// (isolated per job under a serving team, poisoning otherwise).
    pub fn parallel_for<S, F>(&self, space: S, schedule: LoopSchedule, body: F) -> LoopReport
    where
        S: LoopSpace,
        F: Fn(S::Point, &TaskCtx<'_>) + Sync,
    {
        self.try_parallel_for(space, schedule, body)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`parallel_for`](Self::parallel_for): an invalid space
    /// comes back as [`LoopError::RangeTooLarge`] instead of a panic,
    /// with the body untouched (zero iterations run).
    pub fn try_parallel_for<S, F>(
        &self,
        space: S,
        schedule: LoopSchedule,
        body: F,
    ) -> Result<LoopReport, LoopError>
    where
        S: LoopSpace,
        F: Fn(S::Point, &TaskCtx<'_>) + Sync,
    {
        self.try_parallel_for_impl(None, space, schedule, body)
    }

    /// [`parallel_for`](Self::parallel_for) with an explicit loop-site
    /// identity: [`LoopSchedule::Auto`] keys its per-site selection
    /// state by `site` instead of the space's shape, so distinct loops
    /// over same-shaped spaces converge independently (and one loop
    /// whose shape varies run-to-run still shares one site).
    ///
    /// # Panics
    ///
    /// As [`parallel_for`](Self::parallel_for).
    pub fn parallel_for_at<S, F>(
        &self,
        site: LoopId,
        space: S,
        schedule: LoopSchedule,
        body: F,
    ) -> LoopReport
    where
        S: LoopSpace,
        F: Fn(S::Point, &TaskCtx<'_>) + Sync,
    {
        self.try_parallel_for_at(site, space, schedule, body)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`parallel_for_at`](Self::parallel_for_at).
    pub fn try_parallel_for_at<S, F>(
        &self,
        site: LoopId,
        space: S,
        schedule: LoopSchedule,
        body: F,
    ) -> Result<LoopReport, LoopError>
    where
        S: LoopSpace,
        F: Fn(S::Point, &TaskCtx<'_>) + Sync,
    {
        self.try_parallel_for_impl(Some(site), space, schedule, body)
    }

    fn try_parallel_for_impl<S, F>(
        &self,
        site: Option<LoopId>,
        space: S,
        schedule: LoopSchedule,
        body: F,
    ) -> Result<LoopReport, LoopError>
    where
        S: LoopSpace,
        F: Fn(S::Point, &TaskCtx<'_>) + Sync,
    {
        let desc = space.to_space();
        desc.validate()?;
        // `Auto` resolution: consult the team's server-owned selector
        // (keyed by the caller's `LoopId`, or the space's shape), run
        // under the concrete pick and report the measured makespan back.
        // Teams without a selector (plain `Runtime` regions) fall back
        // to a fixed member. Telemetry records under the *requested*
        // schedule, so auto-dispatched loops land in the `auto` family.
        let mut auto: Option<(&Arc<AutoSelector>, u64, AutoPick)> = None;
        let effective = if matches!(schedule, LoopSchedule::Auto) {
            match &self.team.auto_select {
                Some(sel) => {
                    let key = site.map_or_else(|| portfolio::space_site_key(&desc), |id| id.0);
                    let pick = sel.pick(key, desc.units(), self.n_workers() as u32);
                    auto = Some((sel, key, pick));
                    pick.schedule
                }
                None => AUTO_FALLBACK,
            }
        } else {
            schedule
        };
        // The monomorphization boundary: the per-element decode loop
        // inlines the body here; everything below `run_loop` is shared,
        // unit-typed machinery behind one dyn call per chunk.
        let runner =
            |lo: u64, hi: u64, ctx: &TaskCtx<'_>| S::run_units(&desc, lo, hi, |p| body(p, ctx));
        let t0 = if auto.is_some() { clock::now() } else { 0 };
        let report = run_loop(self, &desc, effective, &runner);
        if let Some((sel, key, pick)) = auto {
            sel.report(key, pick, clock::now().saturating_sub(t0).max(1));
        }
        if let Some(lt) = &self.team.loop_stats {
            lt.record_loop(
                schedule.index(),
                desc.kind().index(),
                report.chunks,
                report.iterations,
                report.range_steals,
                report.rebalances,
            );
        }
        Ok(report)
    }

    /// collapse(2): executes `body` for every `(row, col)` of the
    /// `rows × cols` rectangle, scheduled as [`DEFAULT_TILE`]² tiles
    /// (use [`IterSpace::rect_tiled`] with
    /// [`parallel_for`](Self::parallel_for) for explicit tiling).
    pub fn parallel_for_2d<F>(
        &self,
        rows: u64,
        cols: u64,
        schedule: LoopSchedule,
        body: F,
    ) -> LoopReport
    where
        F: Fn((u64, u64), &TaskCtx<'_>) + Sync,
    {
        self.parallel_for(IterSpace::rect(rows, cols), schedule, body)
    }

    /// Triangular loop: executes `body` for every `(row, col)` with
    /// `col ≤ row < n` — the natural space of pairwise kernels —
    /// scheduled as tiles of the lower-triangular tile grid, with zero
    /// wasted (guard-skipped) iterations (use
    /// [`IterSpace::triangular_tiled`] with
    /// [`parallel_for`](Self::parallel_for) for explicit tiling).
    pub fn parallel_for_tri<F>(&self, n: u64, schedule: LoopSchedule, body: F) -> LoopReport
    where
        F: Fn((u64, u64), &TaskCtx<'_>) + Sync,
    {
        self.parallel_for(IterSpace::triangular(n), schedule, body)
    }
}

/// Builds the zone layout, seeds the pools, registers with the balancer,
/// spawns the drain tasks and waits the loop (and everything the body
/// spawned) out. Operates purely on the space's scheduling units; the
/// runner owns the unit → point decode.
fn run_loop(
    ctx: &TaskCtx<'_>,
    space: &IterSpace,
    schedule: LoopSchedule,
    runner: &UnitRunner<'_>,
) -> LoopReport {
    let units = space.units();
    if units == 0 {
        return LoopReport {
            iterations: 0,
            cancelled_iters: 0,
            chunks: 0,
            claimed_local: 0,
            range_steals: 0,
            rebalances: 0,
            migrated_in: 0,
            migrated_out: 0,
        };
    }

    let placement = ctx.placement();
    let n = ctx.n_workers() as u64;

    // Zone-major worker order: zones (ascending) that actually host
    // workers, each zone's workers ascending. Position k of this order
    // owns the static block [units·k/n, units·(k+1)/n) — contiguous unit
    // blocks whose per-zone unions are exactly the zone shares the pools
    // seed. Unit order is row-major (tile) order, so a zone's share is a
    // contiguous band of tile rows — the NUMA-aware zone blocking for
    // 2D/triangular spaces. u128 intermediate: units can reach 2⁶².
    let zones: Vec<usize> = (0..placement.topology().zones())
        .filter(|&z| !placement.workers_in_zone(z).is_empty())
        .collect();
    let mut pool_of_zone = vec![0usize; placement.topology().zones()];
    for (rank, &z) in zones.iter().enumerate() {
        pool_of_zone[z] = rank;
    }
    let block = |k: u64| (units as u128 * k as u128 / n as u128) as u64;

    if matches!(schedule, LoopSchedule::Static) {
        return run_static(ctx, space, &zones, block, runner);
    }

    // Seed one pool pair per zone with the zone's contiguous unit share.
    let pane = pane_units();
    let mut pools = Vec::with_capacity(zones.len());
    let mut zone_workers = Vec::with_capacity(zones.len());
    let mut pos = 0u64;
    for &z in &zones {
        let w = placement.workers_in_zone(z).len() as u64;
        pools.push(CachePadded(ZonePool::new(block(pos), block(pos + w), pane)));
        zone_workers.push(w as u32);
        pos += w;
    }

    let core = Arc::new(LoopCore {
        pools: pools.into_boxed_slice(),
        zone_workers: zone_workers.into_boxed_slice(),
        epoch: AtomicU64::new(0),
        rebalances: AtomicU64::new(0),
        migrated_in: AtomicU64::new(0),
        migrated_out: AtomicU64::new(0),
    });

    // Coarse-level registration: the balancer only arbitrates across
    // zones, so single-zone loops stay off its probe list. The guard
    // deregisters on every exit path (body panics included).
    let _registration = (core.pools.len() > 1).then(|| {
        let balancer = ctx.team.balancer.clone();
        balancer.register(&core);
        Registration {
            balancer,
            core: core.clone(),
        }
    });

    let shared = LoopShared {
        space,
        schedule,
        portfolio: ChunkPolicy::for_schedule(schedule, units, n as u32, core.pools.len()),
        core: core.clone(),
        pool_of_zone: pool_of_zone.into_boxed_slice(),
        cost: AdaptiveCost::new(),
        chunks: AtomicU64::new(0),
        iters: AtomicU64::new(0),
        claimed_local: AtomicU64::new(0),
        range_steals: AtomicU64::new(0),
        cancelled_iters: AtomicU64::new(0),
        runner,
    };

    ctx.scope(|s| {
        let shared = &shared;
        for &z in &zones {
            for &tw in placement.workers_in_zone(z) {
                s.spawn_on(tw, move |tctx| {
                    shared.drive(tctx);
                    // Nested spawns from the body quiesce before the
                    // drain task completes, so `parallel_for`'s own
                    // scope-wait covers the whole loop subtree.
                    tctx.taskwait();
                });
            }
        }
    });

    let report = LoopReport {
        iterations: shared.iters.load(Ordering::Relaxed),
        cancelled_iters: shared.cancelled_iters.load(Ordering::Relaxed),
        chunks: shared.chunks.load(Ordering::Relaxed),
        claimed_local: shared.claimed_local.load(Ordering::Relaxed),
        range_steals: shared.range_steals.load(Ordering::Relaxed),
        rebalances: core.rebalances.load(Ordering::Relaxed),
        migrated_in: core.migrated_in.load(Ordering::Relaxed),
        migrated_out: core.migrated_out.load(Ordering::Relaxed),
    };
    debug_assert_eq!(
        report.iterations + report.cancelled_iters,
        space.len(),
        "executed + cancelled covers the space exactly"
    );
    report
}

/// The static schedule: one contiguous NUMA-blocked unit block per
/// worker, executed by its zone-affinely placed drain task; no pools.
fn run_static(
    ctx: &TaskCtx<'_>,
    space: &IterSpace,
    zones: &[usize],
    block: impl Fn(u64) -> u64,
    runner: &UnitRunner<'_>,
) -> LoopReport {
    let placement = ctx.placement();
    let chunks = AtomicU64::new(0);
    let claimed_local = AtomicU64::new(0);
    let iters = AtomicU64::new(0);
    let cancelled = AtomicU64::new(0);
    ctx.scope(|s| {
        let chunks = &chunks;
        let claimed_local = &claimed_local;
        let iters = &iters;
        let cancelled = &cancelled;
        let mut pos = 0u64;
        for &z in zones {
            for &tw in placement.workers_in_zone(z) {
                let (lo, hi) = (block(pos), block(pos + 1));
                pos += 1;
                if lo >= hi {
                    continue; // more workers than units
                }
                s.spawn_on(tw, move |tctx| {
                    let token = tctx.cancel_token();
                    let mut done = 0u64;
                    let mut next = lo;
                    while next < hi {
                        // Cancellation checkpoint every
                        // `STATIC_CANCEL_STRIDE` units (a unit is one
                        // iteration for 1D spaces, one tile otherwise);
                        // the rest of the block is abandoned, its
                        // element count conserved in O(1) below. With no
                        // token the whole block is one runner call.
                        if token.as_ref().is_some_and(|t| t.poll().is_some()) {
                            break;
                        }
                        let stride = if token.is_some() {
                            u64::from(STATIC_CANCEL_STRIDE).min(hi - next)
                        } else {
                            hi - next
                        };
                        done += runner(next, next + stride, tctx);
                        next += stride;
                    }
                    let abandoned = space.elems_in(next, hi);
                    let stats = &tctx.team.stats[tctx.worker_id()];
                    WorkerStats::add(&stats.nloop_iters, done);
                    WorkerStats::add(&stats.nloop_cancelled_iters, abandoned);
                    iters.fetch_add(done, Ordering::Relaxed);
                    cancelled.fetch_add(abandoned, Ordering::Relaxed);
                    // A block cancelled before its first iteration never
                    // counts as a chunk (`nloop_iters >= nloop_chunks`
                    // stays an invariant).
                    if done > 0 {
                        WorkerStats::inc(&stats.nloop_chunks);
                        chunks.fetch_add(1, Ordering::Relaxed);
                        // "Local" for a static block: it ran in its home
                        // zone (DLB may have migrated the drain task).
                        if tctx.numa_zone() == z {
                            WorkerStats::inc(&stats.nloop_claim_local);
                            claimed_local.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    tctx.taskwait();
                });
            }
        }
    });
    debug_assert_eq!(
        iters.load(Ordering::Relaxed) + cancelled.load(Ordering::Relaxed),
        space.len(),
        "static blocks partition the space exactly"
    );
    LoopReport {
        iterations: iters.load(Ordering::Relaxed),
        cancelled_iters: cancelled.load(Ordering::Relaxed),
        chunks: chunks.load(Ordering::Relaxed),
        claimed_local: claimed_local.load(Ordering::Relaxed),
        range_steals: 0,
        rebalances: 0,
        migrated_in: 0,
        migrated_out: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::dlb::{DlbConfig, DlbStrategy};
    use crate::team::Runtime;
    use std::sync::atomic::AtomicU8;
    use xgomp_topology::MachineTopology;

    fn schedules() -> [LoopSchedule; 8] {
        [
            LoopSchedule::Static,
            LoopSchedule::Dynamic(64),
            LoopSchedule::Guided(16),
            LoopSchedule::Adaptive,
            LoopSchedule::Tss {
                first: 512,
                last: 8,
            },
            LoopSchedule::Factoring,
            LoopSchedule::WeightedFactoring,
            LoopSchedule::Awf,
        ]
    }

    #[test]
    fn every_schedule_runs_every_iteration_exactly_once() {
        const N: usize = 50_000;
        for sched in schedules() {
            let rt =
                Runtime::new(RuntimeConfig::xgomptb(4).dlb(DlbConfig::new(DlbStrategy::WorkSteal)));
            let out = rt.parallel(|ctx| {
                let hits: Vec<AtomicU8> = (0..N).map(|_| AtomicU8::new(0)).collect();
                let report = ctx.parallel_for(0..N as u64, sched, |i, _| {
                    hits[i as usize].fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(report.iterations, N as u64, "{}", sched.name());
                assert_eq!(report.migrated_in, report.migrated_out, "{}", sched.name());
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1)
            });
            assert!(
                out.result,
                "{}: some index not hit exactly once",
                sched.name()
            );
            out.stats.check_invariants().unwrap();
            let total = out.stats.total();
            assert_eq!(total.nloop_iters, N as u64, "{}", sched.name());
            assert!(total.nloop_chunks > 0);
        }
    }

    #[test]
    fn cancelled_loops_conserve_iterations_on_every_schedule() {
        // A token fired mid-loop makes drain tasks abandon the pooled
        // remainder (static blocks break at their stride); every
        // iteration is either executed once or counted as cancelled —
        // never both, never lost. Plain (non-isolating) runtime: the
        // checkpoints don't unwind, so the report surfaces directly.
        use crate::cancel::CancelToken;
        const N: u64 = 200_000;
        for sched in schedules() {
            let rt = Runtime::new(RuntimeConfig::xgomptb(4));
            let out = rt.parallel(move |ctx| {
                let token = CancelToken::new();
                ctx.set_cancel_token(token.clone());
                let ran = AtomicU64::new(0);
                let report = ctx.parallel_for(0..N, sched, |i, _| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 10 {
                        token.cancel();
                    }
                });
                ctx.clear_cancel_token();
                (report, ran.load(Ordering::Relaxed))
            });
            let (report, ran) = out.result;
            assert_eq!(report.iterations, ran, "{}", sched.name());
            assert_eq!(
                report.iterations + report.cancelled_iters,
                N,
                "{}: conservation",
                sched.name()
            );
            assert!(report.cancelled_iters > 0, "{}", sched.name());
            out.stats.check_invariants().unwrap();
            let total = out.stats.total();
            assert_eq!(
                total.nloop_iters + total.nloop_cancelled_iters,
                N,
                "{}: worker-stat conservation",
                sched.name()
            );
        }
    }

    #[test]
    fn offset_ranges_and_empty_ranges() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(3));
        let out = rt.parallel(|ctx| {
            let sum = AtomicU64::new(0);
            let r = ctx.parallel_for(1_000u64..1_100, LoopSchedule::Dynamic(7), |i, _| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(r.iterations, 100);
            let empty = ctx.parallel_for(5..5, LoopSchedule::Adaptive, |_, _| {
                panic!("empty range must not run")
            });
            assert_eq!(empty.iterations, 0);
            sum.load(Ordering::Relaxed)
        });
        assert_eq!(out.result, (1_000u64..1_100).sum::<u64>());
    }

    #[test]
    fn single_worker_team_runs_serially() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(1));
        let out = rt.parallel(|ctx| {
            let sum = AtomicU64::new(0);
            ctx.parallel_for(0u64..1_000, LoopSchedule::Guided(8), |i, _| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            sum.load(Ordering::Relaxed)
        });
        assert_eq!(out.result, (1..=1_000u64).sum::<u64>());
    }

    #[test]
    fn body_can_spawn_nested_tasks_that_finish_before_return() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let nested = Arc::new(AtomicUsize::new(0));
        let n2 = nested.clone();
        let out = rt.parallel(move |ctx| {
            ctx.parallel_for(0..64, LoopSchedule::Dynamic(4), |_, ictx| {
                let n = n2.clone();
                ictx.spawn(move |_| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            });
            // parallel_for returned: every nested spawn is done.
            n2.load(Ordering::Relaxed)
        });
        assert_eq!(out.result, 64);
        assert_eq!(nested.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn parallel_for_borrows_from_the_frame() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let out = rt.parallel(|ctx| {
            let data: Vec<u64> = (0..10_000).collect();
            let sum = AtomicU64::new(0);
            ctx.parallel_for(0..data.len() as u64, LoopSchedule::Guided(32), |i, _| {
                sum.fetch_add(data[i as usize], Ordering::Relaxed);
            });
            sum.load(Ordering::Relaxed)
        });
        assert_eq!(out.result, (0..10_000u64).sum::<u64>());
    }

    #[test]
    fn range_steals_follow_zone_local_first_order() {
        // Two zones. All the *work* (slow iterations) sits in zone 1's
        // half of the space; zone 0's workers finish their own block and
        // must steal across — while zone 1's workers never steal (their
        // own pool always has work until the very end). The balancer is
        // off so the fine (reactive) level is isolated.
        let topo = MachineTopology::new(2, 2, 1); // 2 sockets × 2 cores
        let rt = Runtime::new(
            RuntimeConfig::xgomptb(4)
                .topology(topo)
                .dlb(DlbConfig::new(DlbStrategy::WorkSteal).rebalance_interval(0)),
        );
        let out = rt.parallel(|ctx| {
            ctx.parallel_for(0..4_000, LoopSchedule::Dynamic(16), |i, _| {
                if i >= 2_000 {
                    // Zone 1's block is ~100× the cost of zone 0's.
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                }
            })
        });
        let report = out.result;
        assert_eq!(report.iterations, 4_000);
        assert!(
            report.range_steals > 0,
            "zone 0 drained its pool and must have stolen from zone 1"
        );
        assert!(
            report.claimed_local > 0,
            "local claims happen before any steal"
        );
        assert_eq!(report.rebalances, 0, "balancer disabled");
        assert_eq!(report.migrated_in, 0);
        out.stats.check_invariants().unwrap();
        // Counter-verified victim order: every steal-split was performed
        // by a worker whose own pool was dry (the drive loop only
        // reaches the steal arm after a failed local claim), and local
        // claims dominate.
        let total = out.stats.total();
        assert!(total.nloop_claim_local >= total.nloop_range_steals);
        assert_eq!(total.nloop_rebalances, 0);
    }

    #[test]
    fn balancer_migrates_into_a_starved_zone() {
        // Same skew as above, but with an aggressive probe cadence: the
        // coarse level must re-split zone 1's block into zone 0's inbox
        // (visible as rebalances on the report and on the §V counters).
        let topo = MachineTopology::new(2, 2, 1);
        let rt = Runtime::new(
            RuntimeConfig::xgomptb(4)
                .topology(topo)
                .dlb(DlbConfig::new(DlbStrategy::WorkSteal).rebalance_interval(256)),
        );
        let out = rt.parallel(|ctx| {
            ctx.parallel_for(0..4_000, LoopSchedule::Dynamic(16), |i, _| {
                if i >= 2_000 {
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                }
            })
        });
        let report = out.result;
        assert_eq!(report.iterations, 4_000);
        assert!(
            report.rebalances > 0,
            "a starved zone with a rich neighbor must trigger a migration"
        );
        assert_eq!(report.migrated_in, report.migrated_out, "conservation");
        assert!(report.migrated_in > 0);
        out.stats.check_invariants().unwrap();
        let total = out.stats.total();
        assert_eq!(total.nloop_migrated_in, total.nloop_migrated_out);
    }

    #[test]
    fn local_pools_with_work_are_never_stolen_from_remotely() {
        // Deterministic victim-order check at the pool level: a worker
        // whose zone pools have iterations claims locally; the remote
        // pools are untouched until the local ones are dry.
        let pools: Box<[CachePadded<ZonePool>]> = vec![
            CachePadded(ZonePool::new(0, 100, DEFAULT_PANE_UNITS)),
            CachePadded(ZonePool::new(100, 200, DEFAULT_PANE_UNITS)),
        ]
        .into_boxed_slice();
        let core = LoopCore {
            pools,
            zone_workers: vec![1, 1].into_boxed_slice(),
            epoch: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            migrated_in: AtomicU64::new(0),
            migrated_out: AtomicU64::new(0),
        };
        // Claim as zone 0 until its pools are dry: no steals yet.
        while core.pools[0].0.main.claim(10).is_some() {}
        assert!(core.pools[0].0.inbox.is_empty());
        assert_eq!(core.pools[1].0.remaining(), 100, "remote pool untouched");
        // Only now does the steal arm fire: upper half of the remote
        // main pool (nearest-first rotation from the local pool).
        let my = 0usize;
        let remote = &core.pools[(my + 1) % 2].0;
        let stolen = remote
            .main
            .steal_half()
            .or_else(|| remote.inbox.steal_half());
        assert_eq!(stolen, Some((150, 200)));
    }

    #[test]
    fn loops_conserve_on_every_scheduler_backend() {
        // GOMP/LOMP have no per-worker placement queues: `spawn_to`
        // degrades to a plain spawn, and the loop must still conserve.
        for cfg in [
            RuntimeConfig::gomp(3),
            RuntimeConfig::lomp(3),
            RuntimeConfig::xgomptb(3),
        ] {
            let rt = Runtime::new(cfg);
            let out = rt.parallel(|ctx| {
                let sum = AtomicU64::new(0);
                ctx.parallel_for(0u64..5_000, LoopSchedule::Dynamic(32), |i, _| {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                });
                sum.load(Ordering::Relaxed)
            });
            assert_eq!(out.result, (1..=5_000u64).sum::<u64>());
        }
    }

    #[test]
    fn adaptive_chunks_grow_toward_the_target() {
        let cost = AdaptiveCost::new();
        assert_eq!(cost.estimate(), None, "no samples yet");
        // 1000 iterations at ~40 ticks each → decade 1 → estimate 30.
        cost.record_chunk(1_000, 40_000);
        assert_eq!(cost.estimate(), Some(30));
        // A minority of expensive chunks does not move the mode.
        cost.record_chunk(10, 10_000_000);
        assert_eq!(cost.estimate(), Some(30));
    }

    #[test]
    fn adaptive_v2_scales_chunks_by_zone_rate() {
        let core = LoopCore {
            pools: vec![
                CachePadded(ZonePool::new(0, 100, DEFAULT_PANE_UNITS)),
                CachePadded(ZonePool::new(100, 200, DEFAULT_PANE_UNITS)),
            ]
            .into_boxed_slice(),
            zone_workers: vec![1, 1].into_boxed_slice(),
            epoch: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            migrated_in: AtomicU64::new(0),
            migrated_out: AtomicU64::new(0),
        };
        // No rate samples yet: unscaled.
        assert_eq!(core.zone_chunk_scale(0, 64), 64);
        // Zone 1 claims 8× faster than zone 0 over a sampled window.
        core.pools[0].0.main.sample_rate(1_000);
        core.pools[1].0.main.sample_rate(1_000);
        core.pools[0].0.main.claim(10);
        core.pools[1].0.main.claim(80);
        core.pools[0].0.main.sample_rate(2_000);
        core.pools[1].0.main.sample_rate(2_000);
        // Slow zone's chunk shrinks (floored at ¼); fast zone unscaled.
        assert_eq!(core.zone_chunk_scale(0, 64), 16);
        assert_eq!(core.zone_chunk_scale(1, 64), 64);
    }

    #[test]
    fn oversized_spaces_return_a_typed_error() {
        use xgomp_xqueue::MAX_SHARE_UNITS;
        let rt = Runtime::new(RuntimeConfig::xgomptb(1));
        let out = rt.parallel(|ctx| {
            let err = ctx
                .try_parallel_for(0..MAX_SHARE_UNITS + 1, LoopSchedule::Static, |_, _| {
                    panic!("body must not run on a rejected space")
                })
                .unwrap_err();
            assert_eq!(
                err,
                LoopError::RangeTooLarge {
                    len: MAX_SHARE_UNITS + 1
                }
            );
            assert!(err.to_string().contains("2^62"));
            // The context stays fully usable after the rejection.
            ctx.parallel_for(0..10, LoopSchedule::Dynamic(2), |_, _| {})
                .iterations
        });
        assert_eq!(out.result, 10);
    }

    #[test]
    #[should_panic(expected = "2^62 units")]
    fn parallel_for_still_panics_loudly_on_oversized_spaces() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(1));
        rt.parallel(|ctx| {
            ctx.parallel_for(
                IterSpace::rect(1 << 40, 1 << 40),
                LoopSchedule::Static,
                |_, _| {},
            );
        });
    }

    #[test]
    fn rect2d_loops_cover_every_cell_exactly_once() {
        use std::sync::atomic::AtomicU8;
        const R: u64 = 130;
        const C: u64 = 75;
        for sched in schedules() {
            let rt = Runtime::new(RuntimeConfig::xgomptb(4));
            let out = rt.parallel(|ctx| {
                let hits: Vec<AtomicU8> = (0..R * C).map(|_| AtomicU8::new(0)).collect();
                let space = IterSpace::rect_tiled(R, C, 16, 16);
                let report = ctx.parallel_for(space, sched, |(r, c), _| {
                    hits[(r * C + c) as usize].fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(report.iterations, R * C, "{}", sched.name());
                assert_eq!(report.cancelled_iters, 0, "{}", sched.name());
                assert_eq!(report.migrated_in, report.migrated_out, "{}", sched.name());
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1)
            });
            assert!(
                out.result,
                "{}: some cell not hit exactly once",
                sched.name()
            );
            out.stats.check_invariants().unwrap();
        }
    }

    #[test]
    fn triangular_static_loops_waste_zero_iterations() {
        // The acceptance shape: a static triangular loop visits exactly
        // the n(n+1)/2 lower-triangle points — no guard-skipped no-ops.
        use std::sync::atomic::AtomicU8;
        const N: u64 = 101;
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let out = rt.parallel(|ctx| {
            let hits: Vec<AtomicU8> = (0..N * N).map(|_| AtomicU8::new(0)).collect();
            let visits = AtomicU64::new(0);
            let report = ctx.parallel_for(
                IterSpace::triangular_tiled(N, 16),
                LoopSchedule::Static,
                |(r, c), _| {
                    assert!(c <= r && r < N, "({r},{c}) outside the triangle");
                    hits[(r * N + c) as usize].fetch_add(1, Ordering::Relaxed);
                    visits.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(report.iterations, N * (N + 1) / 2);
            assert_eq!(visits.load(Ordering::Relaxed), N * (N + 1) / 2);
            (0..N * N).all(|i| {
                let (r, c) = (i / N, i % N);
                hits[i as usize].load(Ordering::Relaxed) == u8::from(c <= r)
            })
        });
        assert!(out.result, "triangle coverage is exact — zero waste");
    }

    #[test]
    fn parallel_for_tri_balances_tiles_with_conserved_migration() {
        // Two zones, skewed tile cost, aggressive probing: the balancer
        // must migrate triangular *tiles* (pane tails) between zones and
        // the per-loop conservation identity must hold for 2D spaces.
        let topo = MachineTopology::new(2, 2, 1);
        let rt = Runtime::new(
            RuntimeConfig::xgomptb(4)
                .topology(topo)
                .dlb(DlbConfig::new(DlbStrategy::WorkSteal).rebalance_interval(256)),
        );
        let out = rt.parallel(|ctx| {
            ctx.parallel_for(
                IterSpace::triangular_tiled(256, 8),
                LoopSchedule::Dynamic(2),
                |(r, _), _| {
                    if r >= 128 {
                        for _ in 0..500 {
                            std::hint::spin_loop();
                        }
                    }
                },
            )
        });
        let report = out.result;
        assert_eq!(report.iterations, 256 * 257 / 2);
        assert_eq!(report.migrated_in, report.migrated_out, "conservation");
        out.stats.check_invariants().unwrap();
    }

    #[test]
    fn waved_loops_conserve_across_pane_refills() {
        // Small panes force the wave layer on a modest space: many
        // refills, pane-run steals and pane-tail migrations race the
        // claims, and every index is still hit exactly once.
        use std::sync::atomic::AtomicU8;
        force_small_panes_for_tests();
        const N: usize = 60_000;
        for sched in [LoopSchedule::Dynamic(64), LoopSchedule::Adaptive] {
            let topo = MachineTopology::new(2, 2, 1);
            let rt = Runtime::new(
                RuntimeConfig::xgomptb(4)
                    .topology(topo)
                    .dlb(DlbConfig::new(DlbStrategy::WorkSteal).rebalance_interval(256)),
            );
            let out = rt.parallel(|ctx| {
                let hits: Vec<AtomicU8> = (0..N).map(|_| AtomicU8::new(0)).collect();
                let report = ctx.parallel_for(0..N as u64, sched, |i, _| {
                    hits[i as usize].fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(report.iterations, N as u64, "{}", sched.name());
                assert_eq!(report.migrated_in, report.migrated_out, "{}", sched.name());
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1)
            });
            assert!(
                out.result,
                "{}: waved loop lost or repeated an index",
                sched.name()
            );
            out.stats.check_invariants().unwrap();
        }
    }

    #[test]
    fn cancelled_tiled_loops_conserve_elements() {
        use crate::cancel::CancelToken;
        const N: u64 = 600; // 180_300 elements in 8×8 tiles
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let out = rt.parallel(move |ctx| {
            let token = CancelToken::new();
            ctx.set_cancel_token(token.clone());
            let ran = AtomicU64::new(0);
            let report = ctx.parallel_for(
                IterSpace::triangular_tiled(N, 8),
                LoopSchedule::Dynamic(4),
                |(r, c), _| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if r == 10 && c == 10 {
                        token.cancel();
                    }
                },
            );
            ctx.clear_cancel_token();
            (report, ran.load(Ordering::Relaxed))
        });
        let (report, ran) = out.result;
        assert_eq!(report.iterations, ran);
        assert_eq!(
            report.iterations + report.cancelled_iters,
            N * (N + 1) / 2,
            "element conservation under cancellation of a tiled space"
        );
        assert!(report.cancelled_iters > 0);
        out.stats.check_invariants().unwrap();
    }
}
