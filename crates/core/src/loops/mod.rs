//! Data-parallel loops: NUMA-aware iteration-space scheduling
//! ([`TaskCtx::parallel_for`]).
//!
//! The runtime's tasking side reproduces the paper's *task* parallelism;
//! this module adds the other half of the fine-grained-parallelism
//! story, in the spirit of LB4OMP's dynamic loop-scheduling library and
//! the two-level balancing literature: a `parallel_for` over an
//! iteration space with a family of [`LoopSchedule`]s, built so loop
//! work flows through the *same* NUMA machinery as tasks.
//!
//! ## Architecture
//!
//! * The iteration space is blocked across NUMA zones proportionally to
//!   each zone's worker count, and each zone's block is seeded into a
//!   per-zone [`RangePool`] (one packed atomic word — claims and steals
//!   cost one CAS per *chunk*, never per iteration).
//! * One *loop-drain task* per worker is spawned with zone-affine
//!   placement ([`Scope::spawn_on`](crate::Scope::spawn_on) → the
//!   scheduler's targeted push). Drain tasks are ordinary tasks: the DLB
//!   engine can migrate them like any other task, the tree barrier
//!   counts them, and parked workers are woken for them through the
//!   ordinary `xqueue::parker` push-wake path — loop quiescence needs no
//!   second mechanism.
//! * A drain task claims chunks from **its executor's own zone pool
//!   first**; only when that pool is dry does it *steal-split* a remote
//!   zone's pool (taking the upper half, exactly like stealing the cold
//!   end of a deque), visiting remote pools in nearest-first rotation —
//!   the NA-RP zone-local-first victim order applied to iteration
//!   ranges. A stolen range's tail is re-deposited into the thief's own
//!   zone pool when that pool is empty, so one steal feeds a whole zone.
//! * The loop completes through the ordinary structured-spawn path: the
//!   calling task `scope`s the drain tasks (helping while it waits), and
//!   every drain task `taskwait`s its own children, so a body that
//!   spawns nested tasks is fully quiesced before `parallel_for`
//!   returns — which is what lets loops compose with the task server's
//!   `pause()`/generation machinery unchanged.
//!
//! ## Schedules
//!
//! | Schedule | Chunking | Use |
//! |----------|----------|-----|
//! | [`Static`](LoopSchedule::Static) | one NUMA-blocked contiguous block per worker, no pools | uniform iteration cost |
//! | [`Dynamic(c)`](LoopSchedule::Dynamic) | fixed chunks of `c` from the zone pools | known-irregular cost, small loops |
//! | [`Guided(m)`](LoopSchedule::Guided) | `remaining / (2 · zone workers)`, floored at `m` | irregular cost, decreasing tail |
//! | [`Adaptive`](LoopSchedule::Adaptive) | chunk ≈ `TARGET_TICKS` ÷ live per-iteration cost estimate (decade histogram, LB4OMP-style) | unknown or shifting cost |

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};
use xgomp_profiling::{clock, decade_index, WorkerStats};
// (`serde` is used by `LoopReport`; the shim derive cannot handle the
// data-carrying variants of `LoopSchedule`, which stays plain.)
use xgomp_xqueue::RangePool;

use crate::ctx::TaskCtx;
use crate::util::CachePadded;

/// Iteration-space scheduling policy of a [`TaskCtx::parallel_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopSchedule {
    /// NUMA-blocked static partition: each worker gets one contiguous
    /// block, zone-affinely placed; no pools, no stealing. Lowest
    /// overhead, no balancing.
    Static,
    /// Fixed-size chunks claimed from the zone pools (OpenMP
    /// `schedule(dynamic, c)`); `0` is treated as `1`.
    Dynamic(u32),
    /// Exponentially decreasing chunks — half the pool's remainder
    /// divided by the zone's workers, floored at the given minimum
    /// (OpenMP `schedule(guided, m)`); `0` is treated as `1`.
    Guided(u32),
    /// Chunk size derived online from the loop's live per-iteration
    /// cost: each chunk's duration feeds a decade histogram, and the
    /// next chunk targets a fixed time budget divided by the modal
    /// per-iteration cost (LB4OMP-style self-tuning).
    Adaptive,
}

impl LoopSchedule {
    /// Stable index into the per-schedule telemetry
    /// ([`xgomp_profiling::LOOP_SCHEDULE_NAMES`] order).
    pub fn index(self) -> usize {
        match self {
            LoopSchedule::Static => 0,
            LoopSchedule::Dynamic(_) => 1,
            LoopSchedule::Guided(_) => 2,
            LoopSchedule::Adaptive => 3,
        }
    }

    /// Human-readable schedule name.
    pub fn name(self) -> &'static str {
        xgomp_profiling::LOOP_SCHEDULE_NAMES[self.index()]
    }
}

/// What a completed [`TaskCtx::parallel_for`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopReport {
    /// Iterations executed (always the full range length).
    pub iterations: u64,
    /// Chunks the iteration space was claimed in.
    pub chunks: u64,
    /// Chunks claimed from the executing worker's own zone pool (the
    /// zone-local-first fast path; static blocks count when they ran in
    /// their home zone).
    pub claimed_local: u64,
    /// Cross-zone range steal-splits performed.
    pub range_steals: u64,
}

/// Chunk-duration target of the adaptive schedule, in clock ticks
/// (~tens of µs on a GHz-class TSC: long enough to amortize a claim CAS,
/// short enough to rebalance a skewed tail).
const ADAPTIVE_TARGET_TICKS: u64 = 1 << 17;
/// First-chunk size while the cost histogram is still empty.
const ADAPTIVE_SEED_CHUNK: u32 = 32;
/// Hard ceiling on an adaptive chunk (keeps a mis-estimated cheap body
/// from swallowing a whole pool in one claim).
const ADAPTIVE_MAX_CHUNK: u32 = 1 << 16;

/// Live per-iteration cost model of one `Adaptive` loop: a decade
/// histogram updated once per chunk (weighted by the chunk's iteration
/// count) and read as its modal decade.
#[derive(Debug)]
struct AdaptiveCost {
    buckets: [AtomicU64; 9],
}

impl AdaptiveCost {
    fn new() -> Self {
        AdaptiveCost {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Folds one chunk of `iters` iterations that took `ticks` in.
    fn record_chunk(&self, iters: u64, ticks: u64) {
        let per_iter = ticks / iters.max(1);
        self.buckets[decade_index(per_iter)].fetch_add(iters, Ordering::Relaxed);
    }

    /// Modal per-iteration cost estimate: the geometric midpoint
    /// (≈ 3·10^i) of the decade holding the most iterations. `None`
    /// before the first sample. Allocation-free: this runs on the chunk
    /// claim path.
    fn estimate(&self) -> Option<u64> {
        let (mut best_i, mut best_c) = (0usize, 0u64);
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > best_c {
                (best_i, best_c) = (i, c);
            }
        }
        if best_c == 0 {
            return None;
        }
        Some(3 * 10u64.pow(best_i as u32))
    }
}

/// Shared state of one running loop (lives on `parallel_for`'s frame;
/// drain tasks borrow it through the scope).
struct LoopShared<'b> {
    /// First iteration index of the user range (`pools` hold offsets).
    base: u64,
    schedule: LoopSchedule,
    /// One pool per NUMA zone that hosts workers, in zone-rank order.
    pools: Box<[CachePadded<RangePool>]>,
    /// zone id → pool index (zones without workers map to pool 0 — they
    /// can only appear if a placement changes under a migrated task,
    /// which the runtime never does mid-region).
    pool_of_zone: Box<[usize]>,
    /// pool index → worker count of that zone (guided/adaptive divisor).
    zone_workers: Box<[u32]>,
    cost: AdaptiveCost,
    /// Loop-wide totals, flushed once per drain task.
    chunks: AtomicU64,
    iters: AtomicU64,
    claimed_local: AtomicU64,
    range_steals: AtomicU64,
    body: &'b (dyn Fn(u64, &TaskCtx<'_>) + Sync),
}

/// Per-drain-task counter accumulator (flushed once, so the shared
/// totals see one `fetch_add` per drain task, not per chunk).
#[derive(Default)]
struct DriveStats {
    chunks: u64,
    iters: u64,
    claimed_local: u64,
    range_steals: u64,
}

impl<'b> LoopShared<'b> {
    /// Runs `[lo, hi)` (pool offsets) through the body on `ctx`.
    fn run_chunk(&self, ctx: &TaskCtx<'_>, lo: u32, hi: u32, local: bool, acc: &mut DriveStats) {
        let iters = (hi - lo) as u64;
        let adaptive = matches!(self.schedule, LoopSchedule::Adaptive);
        let t0 = if adaptive { clock::now() } else { 0 };
        for off in lo..hi {
            (self.body)(self.base + off as u64, ctx);
        }
        if adaptive {
            self.cost
                .record_chunk(iters, clock::now().saturating_sub(t0));
        }
        acc.chunks += 1;
        acc.iters += iters;
        if local {
            acc.claimed_local += 1;
        }
    }

    /// Next chunk size for a claim from pool `pool` (see the schedule
    /// table in the [module docs](self)).
    fn chunk_size(&self, pool: usize) -> u32 {
        match self.schedule {
            LoopSchedule::Static => unreachable!("static loops never claim from pools"),
            LoopSchedule::Dynamic(c) => c.max(1),
            LoopSchedule::Guided(min) => {
                let remaining = self.pools[pool].0.remaining();
                (remaining / (2 * self.zone_workers[pool].max(1))).max(min.max(1))
            }
            LoopSchedule::Adaptive => {
                let base = match self.cost.estimate() {
                    Some(per_iter) => (ADAPTIVE_TARGET_TICKS / per_iter.max(1))
                        .clamp(1, ADAPTIVE_MAX_CHUNK as u64)
                        as u32,
                    None => ADAPTIVE_SEED_CHUNK,
                };
                // Tail cap: never claim more than an even share of what
                // is left in the pool, so the last chunks stay small
                // enough to balance.
                let fair = (self.pools[pool].0.remaining() / self.zone_workers[pool].max(1)).max(1);
                base.min(fair)
            }
        }
    }

    /// The dynamic-family drain loop one worker runs: claim zone-local,
    /// steal-split remote (nearest-first) when dry, share stolen tails
    /// through the local pool.
    fn drive(&self, ctx: &TaskCtx<'_>) {
        let zone = ctx.numa_zone();
        let my = *self.pool_of_zone.get(zone).unwrap_or(&0);
        let n_pools = self.pools.len();
        let mut acc = DriveStats::default();
        'outer: loop {
            // Zone-local first: the claim costs one CAS and keeps the
            // iterations in the zone whose block they belong to.
            if let Some((lo, hi)) = self.pools[my].0.claim(self.chunk_size(my)) {
                self.run_chunk(ctx, lo, hi, true, &mut acc);
                continue;
            }
            // Local pool dry: steal-split a remote pool, nearest-first
            // rotation (the NA-RP victim order for iteration ranges).
            let mut stolen = None;
            for d in 1..n_pools {
                if let Some(r) = self.pools[(my + d) % n_pools].0.steal_half() {
                    stolen = Some(r);
                    break;
                }
            }
            let Some((mut lo, hi)) = stolen else {
                break 'outer; // every pool empty: the loop space is claimed
            };
            acc.range_steals += 1;
            // Drain the stolen range: keep one chunk, hand the tail to
            // the (empty) local pool so zone peers share the spoils.
            while lo < hi {
                let take = self.chunk_size(my).min(hi - lo);
                let (clo, chi) = (lo, lo + take);
                lo += take;
                if lo < hi && self.pools[my].0.deposit_if_empty(lo, hi) {
                    lo = hi;
                }
                self.run_chunk(ctx, clo, chi, false, &mut acc);
            }
        }
        self.flush(ctx, acc);
    }

    /// Flushes a drain task's accumulated counters into the worker's
    /// stats block and the loop totals.
    fn flush(&self, ctx: &TaskCtx<'_>, acc: DriveStats) {
        let stats = &ctx.team.stats[ctx.worker_id()];
        WorkerStats::add(&stats.nloop_chunks, acc.chunks);
        WorkerStats::add(&stats.nloop_iters, acc.iters);
        WorkerStats::add(&stats.nloop_claim_local, acc.claimed_local);
        WorkerStats::add(&stats.nloop_range_steals, acc.range_steals);
        self.chunks.fetch_add(acc.chunks, Ordering::Relaxed);
        self.iters.fetch_add(acc.iters, Ordering::Relaxed);
        self.claimed_local
            .fetch_add(acc.claimed_local, Ordering::Relaxed);
        self.range_steals
            .fetch_add(acc.range_steals, Ordering::Relaxed);
    }
}

impl<'t> TaskCtx<'t> {
    /// Executes `body` for every index in `range`, in parallel, under
    /// the given [`LoopSchedule`] — the data-parallel counterpart of
    /// [`scope`](Self::scope).
    ///
    /// The iteration space is NUMA-blocked across the team's zones and
    /// drained through per-zone range pools by one loop-drain task per
    /// worker (zone-affinely placed; see the [module docs](self) for the
    /// stealing protocol). The call returns only when every iteration
    /// *and every task spawned by the body* has completed, so `body` may
    /// borrow from the enclosing frame, exactly like
    /// [`Scope::spawn`](crate::Scope::spawn).
    ///
    /// `body` runs on arbitrary workers; it receives the iteration index
    /// and the executing worker's [`TaskCtx`] (for nested spawns and
    /// topology queries).
    ///
    /// # Panics
    ///
    /// Panics when the range is longer than `u32::MAX` iterations (the
    /// pool word packs two 32-bit offsets); split such loops into outer
    /// waves. Panics from `body` propagate like task panics (isolated
    /// per job under a serving team, poisoning otherwise).
    pub fn parallel_for<F>(&self, range: Range<u64>, schedule: LoopSchedule, body: F) -> LoopReport
    where
        F: Fn(u64, &TaskCtx<'_>) + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        assert!(
            len <= u32::MAX as u64,
            "parallel_for ranges are bounded at u32::MAX iterations per call \
             (got {len}); run larger spaces as outer waves"
        );
        let len = len as u32;
        let report = run_loop(self, range.start, len, schedule, &body);
        if let Some(lt) = &self.team.loop_stats {
            lt.record_loop(
                schedule.index(),
                report.chunks,
                report.iterations,
                report.range_steals,
            );
        }
        report
    }
}

/// Builds the zone layout, seeds the pools, spawns the drain tasks and
/// waits the loop (and everything the body spawned) out.
fn run_loop(
    ctx: &TaskCtx<'_>,
    base: u64,
    len: u32,
    schedule: LoopSchedule,
    body: &(dyn Fn(u64, &TaskCtx<'_>) + Sync),
) -> LoopReport {
    if len == 0 {
        return LoopReport {
            iterations: 0,
            chunks: 0,
            claimed_local: 0,
            range_steals: 0,
        };
    }

    let placement = ctx.placement();
    let n = ctx.n_workers() as u64;

    // Zone-major worker order: zones (ascending) that actually host
    // workers, each zone's workers ascending. Position k of this order
    // owns the static block [len·k/n, len·(k+1)/n) — contiguous blocks
    // whose per-zone unions are exactly the zone blocks the pools seed.
    let zones: Vec<usize> = (0..placement.topology().zones())
        .filter(|&z| !placement.workers_in_zone(z).is_empty())
        .collect();
    let mut pool_of_zone = vec![0usize; placement.topology().zones()];
    for (rank, &z) in zones.iter().enumerate() {
        pool_of_zone[z] = rank;
    }
    let block = |k: u64| ((len as u64) * k / n) as u32;

    if matches!(schedule, LoopSchedule::Static) {
        return run_static(ctx, base, len, &zones, block, body);
    }

    // Seed one pool per zone with the zone's contiguous block.
    let mut pools = Vec::with_capacity(zones.len());
    let mut zone_workers = Vec::with_capacity(zones.len());
    let mut pos = 0u64;
    for &z in &zones {
        let w = placement.workers_in_zone(z).len() as u64;
        pools.push(CachePadded(RangePool::new(block(pos), block(pos + w))));
        zone_workers.push(w as u32);
        pos += w;
    }

    let shared = LoopShared {
        base,
        schedule,
        pools: pools.into_boxed_slice(),
        pool_of_zone: pool_of_zone.into_boxed_slice(),
        zone_workers: zone_workers.into_boxed_slice(),
        cost: AdaptiveCost::new(),
        chunks: AtomicU64::new(0),
        iters: AtomicU64::new(0),
        claimed_local: AtomicU64::new(0),
        range_steals: AtomicU64::new(0),
        body,
    };

    ctx.scope(|s| {
        let shared = &shared;
        for &z in &zones {
            for &tw in placement.workers_in_zone(z) {
                s.spawn_on(tw, move |tctx| {
                    shared.drive(tctx);
                    // Nested spawns from the body quiesce before the
                    // drain task completes, so `parallel_for`'s own
                    // scope-wait covers the whole loop subtree.
                    tctx.taskwait();
                });
            }
        }
    });

    LoopReport {
        iterations: shared.iters.load(Ordering::Relaxed),
        chunks: shared.chunks.load(Ordering::Relaxed),
        claimed_local: shared.claimed_local.load(Ordering::Relaxed),
        range_steals: shared.range_steals.load(Ordering::Relaxed),
    }
}

/// The static schedule: one contiguous NUMA-blocked range per worker,
/// executed by its zone-affinely placed drain task; no pools.
fn run_static(
    ctx: &TaskCtx<'_>,
    base: u64,
    len: u32,
    zones: &[usize],
    block: impl Fn(u64) -> u32,
    body: &(dyn Fn(u64, &TaskCtx<'_>) + Sync),
) -> LoopReport {
    let placement = ctx.placement();
    let chunks = AtomicU64::new(0);
    let claimed_local = AtomicU64::new(0);
    ctx.scope(|s| {
        let chunks = &chunks;
        let claimed_local = &claimed_local;
        let mut pos = 0u64;
        for &z in zones {
            for &tw in placement.workers_in_zone(z) {
                let (lo, hi) = (block(pos), block(pos + 1));
                pos += 1;
                if lo >= hi {
                    continue; // more workers than iterations
                }
                s.spawn_on(tw, move |tctx| {
                    for off in lo..hi {
                        body(base + off as u64, tctx);
                    }
                    let stats = &tctx.team.stats[tctx.worker_id()];
                    WorkerStats::inc(&stats.nloop_chunks);
                    WorkerStats::add(&stats.nloop_iters, (hi - lo) as u64);
                    chunks.fetch_add(1, Ordering::Relaxed);
                    // "Local" for a static block: it ran in its home
                    // zone (DLB may have migrated the drain task).
                    if tctx.numa_zone() == z {
                        WorkerStats::inc(&stats.nloop_claim_local);
                        claimed_local.fetch_add(1, Ordering::Relaxed);
                    }
                    tctx.taskwait();
                });
            }
        }
    });
    LoopReport {
        iterations: len as u64,
        chunks: chunks.load(Ordering::Relaxed),
        claimed_local: claimed_local.load(Ordering::Relaxed),
        range_steals: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::dlb::{DlbConfig, DlbStrategy};
    use crate::team::Runtime;
    use std::sync::atomic::AtomicU8;
    use xgomp_topology::MachineTopology;

    fn schedules() -> [LoopSchedule; 4] {
        [
            LoopSchedule::Static,
            LoopSchedule::Dynamic(64),
            LoopSchedule::Guided(16),
            LoopSchedule::Adaptive,
        ]
    }

    #[test]
    fn every_schedule_runs_every_iteration_exactly_once() {
        const N: usize = 50_000;
        for sched in schedules() {
            let rt =
                Runtime::new(RuntimeConfig::xgomptb(4).dlb(DlbConfig::new(DlbStrategy::WorkSteal)));
            let out = rt.parallel(|ctx| {
                let hits: Vec<AtomicU8> = (0..N).map(|_| AtomicU8::new(0)).collect();
                let report = ctx.parallel_for(0..N as u64, sched, |i, _| {
                    hits[i as usize].fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(report.iterations, N as u64, "{}", sched.name());
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1)
            });
            assert!(
                out.result,
                "{}: some index not hit exactly once",
                sched.name()
            );
            out.stats.check_invariants().unwrap();
            let total = out.stats.total();
            assert_eq!(total.nloop_iters, N as u64, "{}", sched.name());
            assert!(total.nloop_chunks > 0);
        }
    }

    #[test]
    fn offset_ranges_and_empty_ranges() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(3));
        let out = rt.parallel(|ctx| {
            let sum = AtomicU64::new(0);
            let r = ctx.parallel_for(1_000..1_100, LoopSchedule::Dynamic(7), |i, _| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(r.iterations, 100);
            let empty = ctx.parallel_for(5..5, LoopSchedule::Adaptive, |_, _| {
                panic!("empty range must not run")
            });
            assert_eq!(empty.iterations, 0);
            sum.load(Ordering::Relaxed)
        });
        assert_eq!(out.result, (1_000u64..1_100).sum::<u64>());
    }

    #[test]
    fn single_worker_team_runs_serially() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(1));
        let out = rt.parallel(|ctx| {
            let sum = AtomicU64::new(0);
            ctx.parallel_for(0..1_000, LoopSchedule::Guided(8), |i, _| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            sum.load(Ordering::Relaxed)
        });
        assert_eq!(out.result, (1..=1_000u64).sum::<u64>());
    }

    #[test]
    fn body_can_spawn_nested_tasks_that_finish_before_return() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let nested = Arc::new(AtomicUsize::new(0));
        let n2 = nested.clone();
        let out = rt.parallel(move |ctx| {
            ctx.parallel_for(0..64, LoopSchedule::Dynamic(4), |_, ictx| {
                let n = n2.clone();
                ictx.spawn(move |_| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            });
            // parallel_for returned: every nested spawn is done.
            n2.load(Ordering::Relaxed)
        });
        assert_eq!(out.result, 64);
        assert_eq!(nested.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn parallel_for_borrows_from_the_frame() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(4));
        let out = rt.parallel(|ctx| {
            let data: Vec<u64> = (0..10_000).collect();
            let sum = AtomicU64::new(0);
            ctx.parallel_for(0..data.len() as u64, LoopSchedule::Guided(32), |i, _| {
                sum.fetch_add(data[i as usize], Ordering::Relaxed);
            });
            sum.load(Ordering::Relaxed)
        });
        assert_eq!(out.result, (0..10_000u64).sum::<u64>());
    }

    #[test]
    fn range_steals_follow_zone_local_first_order() {
        // Two zones. All the *work* (slow iterations) sits in zone 1's
        // half of the space; zone 0's workers finish their own block and
        // must steal across — while zone 1's workers never steal (their
        // own pool always has work until the very end).
        let topo = MachineTopology::new(2, 2, 1); // 2 sockets × 2 cores
        let rt = Runtime::new(
            RuntimeConfig::xgomptb(4)
                .topology(topo)
                .dlb(DlbConfig::new(DlbStrategy::WorkSteal)),
        );
        let out = rt.parallel(|ctx| {
            ctx.parallel_for(0..4_000, LoopSchedule::Dynamic(16), |i, _| {
                if i >= 2_000 {
                    // Zone 1's block is ~100× the cost of zone 0's.
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                }
            })
        });
        let report = out.result;
        assert_eq!(report.iterations, 4_000);
        assert!(
            report.range_steals > 0,
            "zone 0 drained its pool and must have stolen from zone 1"
        );
        assert!(
            report.claimed_local > 0,
            "local claims happen before any steal"
        );
        out.stats.check_invariants().unwrap();
        // Counter-verified victim order: every steal-split was performed
        // by a worker whose own pool was dry (the drive loop only
        // reaches the steal arm after a failed local claim), and local
        // claims dominate.
        let total = out.stats.total();
        assert!(total.nloop_claim_local >= total.nloop_range_steals);
    }

    #[test]
    fn local_pool_with_work_is_never_stolen_from_remotely() {
        // Deterministic victim-order check at the drive level: a worker
        // whose zone pool has iterations claims locally; the remote pool
        // is untouched until the local one is dry.
        let pools: Box<[CachePadded<RangePool>]> = vec![
            CachePadded(RangePool::new(0, 100)),
            CachePadded(RangePool::new(100, 200)),
        ]
        .into_boxed_slice();
        let shared = LoopShared {
            base: 0,
            schedule: LoopSchedule::Dynamic(10),
            pools,
            pool_of_zone: vec![0, 1].into_boxed_slice(),
            zone_workers: vec![1, 1].into_boxed_slice(),
            cost: AdaptiveCost::new(),
            chunks: AtomicU64::new(0),
            iters: AtomicU64::new(0),
            claimed_local: AtomicU64::new(0),
            range_steals: AtomicU64::new(0),
            body: &|_, _| {},
        };
        // Claim as zone 0 until its pool is dry: no steals yet.
        while shared.pools[0].0.claim(10).is_some() {}
        assert_eq!(shared.pools[1].0.remaining(), 100, "remote pool untouched");
        // Only now does the steal arm fire: upper half of the remote
        // pool (nearest-first rotation from the local pool).
        let my = 0usize;
        let stolen = shared.pools[(my + 1) % 2].0.steal_half();
        assert_eq!(stolen, Some((150, 200)));
    }

    #[test]
    fn loops_conserve_on_every_scheduler_backend() {
        // GOMP/LOMP have no per-worker placement queues: `spawn_to`
        // degrades to a plain spawn, and the loop must still conserve.
        for cfg in [
            RuntimeConfig::gomp(3),
            RuntimeConfig::lomp(3),
            RuntimeConfig::xgomptb(3),
        ] {
            let rt = Runtime::new(cfg);
            let out = rt.parallel(|ctx| {
                let sum = AtomicU64::new(0);
                ctx.parallel_for(0..5_000, LoopSchedule::Dynamic(32), |i, _| {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                });
                sum.load(Ordering::Relaxed)
            });
            assert_eq!(out.result, (1..=5_000u64).sum::<u64>());
        }
    }

    #[test]
    fn adaptive_chunks_grow_toward_the_target() {
        let cost = AdaptiveCost::new();
        assert_eq!(cost.estimate(), None, "no samples yet");
        // 1000 iterations at ~40 ticks each → decade 1 → estimate 30.
        cost.record_chunk(1_000, 40_000);
        assert_eq!(cost.estimate(), Some(30));
        // A minority of expensive chunks does not move the mode.
        cost.record_chunk(10, 10_000_000);
        assert_eq!(cost.estimate(), Some(30));
    }

    #[test]
    #[should_panic(expected = "bounded at u32::MAX")]
    fn oversized_ranges_are_rejected_loudly() {
        let rt = Runtime::new(RuntimeConfig::xgomptb(1));
        rt.parallel(|ctx| {
            ctx.parallel_for(0..(u32::MAX as u64 + 2), LoopSchedule::Static, |_, _| {});
        });
    }
}
