//! The LB4OMP self-scheduling **portfolio**: chunk-size policies with
//! closed-form series (TSS, Factoring, Weighted Factoring, AWF) plus the
//! online per-loop-site selector behind [`LoopSchedule::Auto`].
//!
//! The policies are a pure *chunk-size layer* over the existing
//! one-CAS-per-chunk pane-set claim path: [`ChunkPolicy`] only decides
//! *how many units* the next claim asks for, so every portfolio member
//! inherits u64 waves, 2D/triangular spaces, cancellation checkpoints
//! and seqlock-guarded migration from the shared drain loop unchanged.
//!
//! ## Chunk series
//!
//! With `N` total scheduling units and `P` workers, scheduling step `s`
//! (a loop-global counter advanced once per successful claim):
//!
//! * **TSS(f, l)** — trapezoid self-scheduling: `n = ⌈2N/(f+l)⌉` chunks,
//!   decrement `d = (f−l)/(n−1)`; chunk `s` has `max(f − s·d, l)` units.
//!   The linear decrement series of Tzen & Ni, clamped at `l`.
//! * **Factoring** — batched halving: batch `b = ⌊s/P⌋`, every chunk of
//!   a batch has `⌈N / (P·2^(b+1))⌉` units. Each batch of `P` chunks
//!   hands out half the remainder, so the series halves once per round
//!   (the exact-halving FAC2 variant of Hummel/Schonberg/Flynn).
//! * **Weighted Factoring** — the factoring series scaled per claiming
//!   *zone* by a weight from the balancer's claim-rate EWMAs (a zone
//!   draining `w×` the mean rate asks for `w×` the batch chunk).
//! * **AWF** — adaptive weighted factoring: the same shape, but the
//!   weights come from *measured per-chunk execution rates* (units per
//!   tick, folded per zone by the drain loop's existing chunk timing),
//!   so the weights track the machine actually observed, not the claim
//!   proxy.
//!
//! All sizes floor at 1 and cap at `u32::MAX` (the pane-claim width).
//!
//! ## `Schedule::Auto`
//!
//! [`AutoSelector`] is the server-owned per-loop-site selector: keyed by
//! a caller-supplied [`LoopId`] (or the space's shape when none is
//! given), it trials the portfolio across repeated loop instances,
//! scores each member by measured makespan over a fixed trial window,
//! and converges on the fastest once two consecutive sweep windows agree
//! (the Table-IV `confirm_windows` hysteresis idiom). A converged site
//! re-explores when the tuning swap epoch moves (`watch_swaps`, exactly
//! like the adaptive controller) or when its makespan drifts to ≥2× the
//! converged baseline for several consecutive runs (distribution shift).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use xgomp_profiling::LOOP_SCHEDULES;

use super::{IterSpace, LoopSchedule};
use crate::util::CachePadded;

/// Caller-supplied identity of one *loop site* — the "same loop, seen
/// again and again" key [`LoopSchedule::Auto`] selection state hangs
/// off. Use one id per static loop in your program (a hash of its name,
/// a line number, an enum — anything stable across instances).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopId(pub u64);

/// What `Auto` resolves to when no selector is attached to the team
/// (plain [`Runtime`](crate::Runtime) regions outside a task server).
pub const AUTO_FALLBACK: LoopSchedule = LoopSchedule::Guided(8);

/// Portfolio members the auto selector trials, in sweep order.
pub const AUTO_PORTFOLIO_LEN: usize = 7;

/// Loop instances per member per sweep window (the trial window).
pub const AUTO_TRIALS_PER_MEMBER: u32 = 2;

/// Consecutive sweep windows that must agree on a winner before the
/// site converges (the controller's `confirm_windows` hysteresis).
pub const AUTO_CONFIRM_WINDOWS: u32 = 2;

/// Consecutive converged runs at ≥2× the converged baseline makespan
/// that re-open exploration (distribution shift).
const AUTO_DRIFT_RUNS: u32 = 3;

/// The `i`-th portfolio member for a loop of `units` scheduling units on
/// `workers` workers (TSS derives its trapezoid from the shape).
pub fn auto_portfolio_member(i: usize, units: u64, workers: u32) -> LoopSchedule {
    let p = u64::from(workers.max(1));
    match i {
        0 => LoopSchedule::Dynamic(64),
        1 => LoopSchedule::Guided(8),
        2 => LoopSchedule::Adaptive,
        3 => LoopSchedule::Tss {
            first: (units / (2 * p)).clamp(1, u64::from(u32::MAX)) as u32,
            last: 1,
        },
        4 => LoopSchedule::Factoring,
        5 => LoopSchedule::WeightedFactoring,
        _ => LoopSchedule::Awf,
    }
}

/// splitmix64 — the test suites' standard mixer, reused here so site
/// keys derived from space shapes are well distributed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The implicit site key of a space: its shape, hashed. Two loops over
/// the same shape share selection state unless they pass an explicit
/// [`LoopId`].
pub(crate) fn space_site_key(space: &IterSpace) -> u64 {
    match *space {
        IterSpace::Range1D { start, len } => mix(1).wrapping_add(mix(start) ^ mix(len)),
        IterSpace::Rect2D {
            rows,
            cols,
            tile_rows,
            tile_cols,
        } => mix(2)
            .wrapping_add(mix(rows) ^ mix(cols))
            .wrapping_add(mix(u64::from(tile_rows) << 32 | u64::from(tile_cols))),
        IterSpace::Triangular { n, tile } => mix(3).wrapping_add(mix(n) ^ mix(u64::from(tile))),
    }
}

// ---------------------------------------------------------------------
// Chunk policies
// ---------------------------------------------------------------------

/// Which closed-form series a [`ChunkPolicy`] follows.
#[derive(Debug)]
enum PolicyKind {
    /// Precomputed trapezoid: `first`, per-step decrement, floor.
    Tss { first: u64, dec: u64, last: u64 },
    /// Batched halving (weight 1).
    Factoring,
    /// Batched halving, weight from the balancer's claim-rate EWMAs.
    WeightedFactoring,
    /// Batched halving, weight from measured per-zone execution rates.
    Awf,
}

/// Measured execution volume of one zone pool under AWF: units run and
/// ticks spent, folded once per chunk by the drain loop.
#[derive(Debug, Default)]
struct PoolRate {
    units: AtomicU64,
    ticks: AtomicU64,
}

/// Per-loop state of one portfolio schedule: the loop-global scheduling
/// step plus (for AWF) per-zone measured rates. Created by `run_loop`
/// for TSS/Factoring/WF/AWF loops; the golden-sequence tests drive it
/// directly, single-threaded, and pin the exact series.
#[derive(Debug)]
pub struct ChunkPolicy {
    kind: PolicyKind,
    /// Scheduling step: advanced once per successful chunk claim (not
    /// per size query, so a dry-pool probe never skips a series entry).
    step: AtomicU64,
    total: u64,
    workers: u64,
    /// Per-pool AWF rate accumulators (empty for the other kinds).
    rates: Box<[CachePadded<PoolRate>]>,
}

impl ChunkPolicy {
    /// Builds the policy for `schedule` over `total` scheduling units on
    /// `workers` workers across `pools` zone pools; `None` for the
    /// non-portfolio schedules.
    pub fn for_schedule(
        schedule: LoopSchedule,
        total: u64,
        workers: u32,
        pools: usize,
    ) -> Option<Self> {
        let kind = match schedule {
            LoopSchedule::Tss { first, last } => {
                // Tzen–Ni trapezoid: clamp the endpoints into sanity
                // (1 ≤ l ≤ f), then n = ⌈2N/(f+l)⌉ chunks and an
                // integer decrement d = (f−l)/(n−1).
                let f = u64::from(first.max(1));
                let l = u64::from(last.max(1)).min(f);
                let n = (2 * total).div_ceil(f + l).max(1);
                let dec = if n > 1 { (f - l) / (n - 1) } else { 0 };
                PolicyKind::Tss {
                    first: f,
                    dec,
                    last: l,
                }
            }
            LoopSchedule::Factoring => PolicyKind::Factoring,
            LoopSchedule::WeightedFactoring => PolicyKind::WeightedFactoring,
            LoopSchedule::Awf => PolicyKind::Awf,
            _ => return None,
        };
        let n_rates = if matches!(kind, PolicyKind::Awf) {
            pools
        } else {
            0
        };
        Some(ChunkPolicy {
            kind,
            step: AtomicU64::new(0),
            total: total.max(1),
            workers: u64::from(workers.max(1)),
            rates: (0..n_rates)
                .map(|_| CachePadded(PoolRate::default()))
                .collect(),
        })
    }

    /// The size the series assigns to scheduling step `s` under `weight`
    /// (1.0 = unweighted), floored at 1 and capped at the u32 pane-claim
    /// width.
    fn size_at(&self, s: u64, weight: f64) -> u32 {
        let base = match self.kind {
            PolicyKind::Tss { first, dec, last } => {
                first.saturating_sub(s.saturating_mul(dec)).max(last)
            }
            PolicyKind::Factoring | PolicyKind::WeightedFactoring | PolicyKind::Awf => {
                let batch = s / self.workers;
                // ⌈N / (P·2^(b+1))⌉ — half the remainder per batch of P.
                // u128 divisor: deep batches must floor to 1, not wrap.
                let div = u128::from(self.workers) << (batch + 1).min(64);
                (u128::from(self.total).div_ceil(div)).max(1) as u64
            }
        };
        let weighted = if (weight - 1.0).abs() <= f64::EPSILON {
            base
        } else {
            (base as f64 * weight).round() as u64
        };
        weighted.clamp(1, u64::from(u32::MAX)) as u32
    }

    /// Peeks the current step's chunk size without consuming it (the
    /// drain loop advances only on a successful claim).
    pub fn peek(&self, weight: f64) -> u32 {
        self.size_at(self.step.load(Ordering::Relaxed), weight)
    }

    /// Consumes one scheduling step (call once per successful claim).
    pub fn advance(&self) {
        self.step.fetch_add(1, Ordering::Relaxed);
    }

    /// `peek` + `advance` — the single-threaded driver the golden
    /// chunk-sequence tests use.
    pub fn next(&self, weight: f64) -> u32 {
        let s = self.step.fetch_add(1, Ordering::Relaxed);
        self.size_at(s, weight)
    }

    /// Folds one executed chunk (`units` over `ticks`) into pool `pool`'s
    /// AWF rate. No-op for the other kinds.
    pub fn record_pool(&self, pool: usize, units: u64, ticks: u64) {
        if let Some(r) = self.rates.get(pool) {
            r.0.units.fetch_add(units, Ordering::Relaxed);
            r.0.ticks.fetch_add(ticks.max(1), Ordering::Relaxed);
        }
    }

    /// Pool `pool`'s AWF weight: its measured execution rate relative to
    /// the mean across measured pools, clamped to `[¼, 4]`; `1.0` before
    /// any measurement (the seed batch runs unweighted).
    pub fn pool_weight(&self, pool: usize) -> f64 {
        let rate = |r: &CachePadded<PoolRate>| -> Option<f64> {
            let u = r.0.units.load(Ordering::Relaxed);
            let t = r.0.ticks.load(Ordering::Relaxed);
            (u > 0 && t > 0).then(|| u as f64 / t as f64)
        };
        let Some(mine) = self.rates.get(pool).and_then(rate) else {
            return 1.0;
        };
        let (sum, n) = self
            .rates
            .iter()
            .filter_map(rate)
            .fold((0.0, 0u32), |(s, n), r| (s + r, n + 1));
        if n == 0 {
            return 1.0;
        }
        (mine / (sum / f64::from(n))).clamp(0.25, 4.0)
    }
}

// ---------------------------------------------------------------------
// Auto selection
// ---------------------------------------------------------------------

/// One pick handed out by [`AutoSelector::pick`]: the concrete schedule
/// to run plus the attribution token the caller hands back to
/// [`AutoSelector::report`] with the measured makespan.
#[derive(Debug, Clone, Copy)]
pub struct AutoPick {
    /// The concrete portfolio member to run the loop under.
    pub schedule: LoopSchedule,
    /// Attribution token (portfolio member index).
    token: u32,
}

/// Selection phase of one loop site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Sweeping the portfolio, currently trialing `member`.
    Explore { member: usize },
    /// Converged on `member`; every pick returns it.
    Converged { member: usize },
}

/// Per-site selection state.
#[derive(Debug)]
struct SiteState {
    phase: Phase,
    /// Makespan-tick sums and run counts of the current sweep window.
    score: [u64; AUTO_PORTFOLIO_LEN],
    runs: [u32; AUTO_PORTFOLIO_LEN],
    /// Winner of the previous completed sweep + agreement streak.
    prev_winner: Option<usize>,
    agree: u32,
    /// Completed sweep windows (monotone; test observability).
    sweeps: u32,
    /// Converged-state EWMA baseline makespan and drift streak.
    baseline: u64,
    slow_runs: u32,
}

impl SiteState {
    fn fresh() -> Self {
        SiteState {
            phase: Phase::Explore { member: 0 },
            score: [0; AUTO_PORTFOLIO_LEN],
            runs: [0; AUTO_PORTFOLIO_LEN],
            prev_winner: None,
            agree: 0,
            sweeps: 0,
            baseline: 0,
            slow_runs: 0,
        }
    }

    /// Re-opens exploration (epoch change / drift), keeping only the
    /// monotone sweep counter.
    fn reexplore(&mut self) {
        let sweeps = self.sweeps;
        *self = SiteState::fresh();
        self.sweeps = sweeps;
    }
}

/// Point-in-time view of one site's selection state (test/debug
/// observability; see [`AutoSelector::site_status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoSiteStatus {
    /// The converged member's portfolio index, `None` while exploring.
    pub converged: Option<usize>,
    /// Completed sweep windows (monotone — grows again after a
    /// re-exploration).
    pub sweeps: u32,
    /// Makespan reports folded in so far, current window only.
    pub window_runs: u32,
}

/// The server-owned online schedule selector behind
/// [`LoopSchedule::Auto`] (see the [module docs](self) for the policy).
/// One instance rides across generations; `parallel_for` consults it
/// through the team when a loop is submitted as `Auto`.
#[derive(Debug, Default)]
pub struct AutoSelector {
    sites: Mutex<HashMap<u64, SiteState>>,
    /// External tuning-swap epoch (the server's `swap_epoch`); a change
    /// re-opens exploration at every site, mirroring the adaptive
    /// controller's `watch_swaps`.
    swap_epoch: Mutex<Option<Arc<AtomicU64>>>,
    epoch_seen: AtomicU64,
    /// Selections handed out, by concrete schedule family index
    /// (`xgomp_loop_auto_selected_total{schedule=...}`).
    selected: [AtomicU64; LOOP_SCHEDULES],
}

impl AutoSelector {
    /// A selector with no sites and no swap watch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the external tuning-swap epoch: every bump re-opens
    /// exploration at every site (the converged answer was measured
    /// under the old tuning).
    pub fn watch_swaps(&self, epoch: Arc<AtomicU64>) {
        *self
            .swap_epoch
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(epoch);
    }

    fn current_epoch(&self) -> u64 {
        self.swap_epoch
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map_or(0, |e| e.load(Ordering::Acquire))
    }

    /// Picks the schedule for the next instance of site `key` — a loop
    /// of `units` scheduling units on `workers` workers. Hand the
    /// returned pick's makespan back via [`report`](Self::report).
    pub fn pick(&self, key: u64, units: u64, workers: u32) -> AutoPick {
        let epoch = self.current_epoch();
        let mut sites = self.sites.lock().unwrap_or_else(PoisonError::into_inner);
        if self.epoch_seen.swap(epoch, Ordering::AcqRel) != epoch {
            // Tuning swapped: every converged answer is stale.
            for s in sites.values_mut() {
                s.reexplore();
            }
        }
        let st = sites.entry(key).or_insert_with(SiteState::fresh);
        let member = match st.phase {
            Phase::Explore { member } => member,
            Phase::Converged { member } => member,
        };
        let schedule = auto_portfolio_member(member, units, workers);
        self.selected[schedule.index().min(LOOP_SCHEDULES - 1)].fetch_add(1, Ordering::Relaxed);
        AutoPick {
            schedule,
            token: member as u32,
        }
    }

    /// Folds one completed instance's measured makespan (ticks) back
    /// into site `key`. `pick` is the value [`pick`](Self::pick)
    /// returned for that instance (attribution survives concurrent
    /// in-flight instances: a report whose member no longer matches the
    /// site's current focus is dropped rather than mis-scored).
    pub fn report(&self, key: u64, pick: AutoPick, makespan_ticks: u64) {
        let m = pick.token as usize;
        let mut sites = self.sites.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(st) = sites.get_mut(&key) else {
            return;
        };
        match st.phase {
            Phase::Explore { member } if member == m => {
                st.score[m] = st.score[m].saturating_add(makespan_ticks.max(1));
                st.runs[m] += 1;
                if st.runs[m] < AUTO_TRIALS_PER_MEMBER {
                    return;
                }
                if m + 1 < AUTO_PORTFOLIO_LEN {
                    st.phase = Phase::Explore { member: m + 1 };
                    return;
                }
                // Sweep complete: score by mean makespan, lowest wins.
                st.sweeps += 1;
                let winner = (0..AUTO_PORTFOLIO_LEN)
                    .min_by_key(|&i| st.score[i] / u64::from(st.runs[i].max(1)))
                    .unwrap_or(0);
                let mean = st.score[winner] / u64::from(st.runs[winner].max(1));
                if st.prev_winner == Some(winner) {
                    st.agree += 1;
                } else {
                    st.agree = 1;
                }
                st.prev_winner = Some(winner);
                if st.agree >= AUTO_CONFIRM_WINDOWS {
                    st.phase = Phase::Converged { member: winner };
                    st.baseline = mean.max(1);
                    st.slow_runs = 0;
                } else {
                    st.phase = Phase::Explore { member: 0 };
                    st.score = [0; AUTO_PORTFOLIO_LEN];
                    st.runs = [0; AUTO_PORTFOLIO_LEN];
                }
            }
            Phase::Converged { member } if member == m => {
                // Drift watch: sustained ≥2× the converged baseline
                // re-opens exploration; in-band runs keep the EWMA warm.
                if makespan_ticks > st.baseline.saturating_mul(2) {
                    st.slow_runs += 1;
                    if st.slow_runs >= AUTO_DRIFT_RUNS {
                        st.reexplore();
                    }
                } else {
                    st.slow_runs = 0;
                    st.baseline = (3 * st.baseline + makespan_ticks.max(1)) / 4;
                }
            }
            // Stale attribution (site moved on mid-flight): drop.
            _ => {}
        }
    }

    /// Selections handed out so far, by concrete schedule family index
    /// ([`xgomp_profiling::LOOP_SCHEDULE_NAMES`] order; the `auto` slot
    /// itself is always zero — picks are always concrete).
    pub fn selected_counts(&self) -> [u64; LOOP_SCHEDULES] {
        std::array::from_fn(|i| self.selected[i].load(Ordering::Relaxed))
    }

    /// Site `key`'s current selection state, `None` if never picked.
    pub fn site_status(&self, key: u64) -> Option<AutoSiteStatus> {
        let sites = self.sites.lock().unwrap_or_else(PoisonError::into_inner);
        sites.get(&key).map(|st| AutoSiteStatus {
            converged: match st.phase {
                Phase::Converged { member } => Some(member),
                Phase::Explore { .. } => None,
            },
            sweeps: st.sweeps,
            window_runs: st.runs.iter().sum(),
        })
    }
}
