//! Cooperative cancellation: per-job [`CancelToken`]s checked at
//! chunk-claim and taskwait boundaries.
//!
//! Cancellation is *cooperative*: nothing preempts a running body.
//! A token is installed on the job's root task (and inherited by every
//! task it spawns); workers poll it at the runtime's natural scheduling
//! points — loop drain tasks before every chunk claim, `taskwait` after
//! its quiescence wait, static loop blocks every few hundred
//! iterations. A fired token makes loop-drain tasks abandon their
//! remaining `RangePool` ranges (conserved into `cancelled_iters`) and
//! makes the next checkpoint unwind with a [`CancelUnwind`] payload,
//! which panic isolation turns into a typed job error instead of a
//! worker death.
//!
//! Tokens fire for two reasons ([`CancelReason`]): an explicit
//! `JobHandle::cancel`, or a deadline tick carried by the token itself —
//! [`CancelToken::poll`] promotes an expired deadline into the fired
//! state, so deadline enforcement needs no extra plumbing at the
//! checkpoints.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use xgomp_profiling::clock;

const LIVE: u32 = 0;
const CANCELLED: u32 = 1;
const DEADLINE: u32 = 2;

/// Why a [`CancelToken`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// `JobHandle::cancel` (or another explicit [`CancelToken::cancel`]).
    Cancelled,
    /// The token's deadline tick passed.
    DeadlineExceeded,
}

struct TokenInner {
    /// `LIVE` / `CANCELLED` / `DEADLINE`. Monotone: once non-live it
    /// never goes back, and the first writer's reason wins.
    state: AtomicU32,
    /// Deadline in [`clock::now`] ticks; `u64::MAX` = no deadline.
    deadline: u64,
}

/// A shared cancellation flag for one job, cloned into every task the
/// job spawns. Checking is one relaxed load on the fast path (plus one
/// clock read when a deadline is set).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A live token with no deadline.
    pub fn new() -> Self {
        Self::with_deadline_tick(u64::MAX)
    }

    /// A live token that fires on its own once `clock::now()` passes
    /// `deadline` (in clock ticks; `u64::MAX` = never).
    pub fn with_deadline_tick(deadline: u64) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                state: AtomicU32::new(LIVE),
                deadline,
            }),
        }
    }

    /// Fires the token with [`CancelReason::Cancelled`]. Idempotent;
    /// a reason already recorded (either kind) is kept.
    pub fn cancel(&self) {
        let _ = self.inner.state.compare_exchange(
            LIVE,
            CANCELLED,
            Ordering::Release,
            Ordering::Relaxed,
        );
    }

    /// Fires the token with [`CancelReason::DeadlineExceeded`] (used by
    /// the serve-loop deadline sweep on already-running jobs).
    pub fn expire(&self) {
        let _ =
            self.inner
                .state
                .compare_exchange(LIVE, DEADLINE, Ordering::Release, Ordering::Relaxed);
    }

    /// The deadline tick, if this token carries one.
    pub fn deadline_tick(&self) -> Option<u64> {
        (self.inner.deadline != u64::MAX).then_some(self.inner.deadline)
    }

    /// Checkpoint poll: the fired reason, if any. Promotes an expired
    /// deadline into the fired state as a side effect, so a token with a
    /// deadline fires even if nobody ever calls [`expire`](Self::expire).
    #[inline]
    pub fn poll(&self) -> Option<CancelReason> {
        match self.inner.state.load(Ordering::Acquire) {
            CANCELLED => Some(CancelReason::Cancelled),
            DEADLINE => Some(CancelReason::DeadlineExceeded),
            _ => {
                if self.inner.deadline != u64::MAX && clock::now() >= self.inner.deadline {
                    self.expire();
                    Some(CancelReason::DeadlineExceeded)
                } else {
                    None
                }
            }
        }
    }

    /// Whether the token has fired (without promoting deadlines).
    #[inline]
    pub fn is_fired(&self) -> bool {
        self.inner.state.load(Ordering::Acquire) != LIVE
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("fired", &self.poll())
            .field("deadline", &self.deadline_tick())
            .finish()
    }
}

/// The unwind payload raised at a cancellation checkpoint. Panic
/// isolation (`isolate_panics` teams — the task server always) catches
/// it like any panic; the service layer downcasts it to complete the
/// job's handle with a typed error instead of a [`JobPanic`]
/// (crate `xgomp-service`) message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelUnwind(pub CancelReason);

/// Raises the cancellation unwind for `reason`. `resume_unwind` rather
/// than `panic!`, so the default panic hook stays silent — a cancelled
/// job is not an error worth a backtrace.
#[cold]
pub fn raise_cancel(reason: CancelReason) -> ! {
    std::panic::resume_unwind(Box::new(CancelUnwind(reason)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_fires_once_and_first_reason_wins() {
        let t = CancelToken::new();
        assert_eq!(t.poll(), None);
        assert!(!t.is_fired());
        t.cancel();
        t.expire(); // lost: the cancel got there first
        assert_eq!(t.poll(), Some(CancelReason::Cancelled));
        assert!(t.is_fired());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert_eq!(t.poll(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn deadline_promotes_on_poll() {
        let t = CancelToken::with_deadline_tick(1); // long past
        assert_eq!(t.poll(), Some(CancelReason::DeadlineExceeded));
        assert!(t.is_fired(), "poll promoted the expiry into the state");
        let far = CancelToken::with_deadline_tick(u64::MAX - 1);
        assert_eq!(far.poll(), None);
        assert_eq!(far.deadline_tick(), Some(u64::MAX - 1));
        assert_eq!(CancelToken::new().deadline_tick(), None);
    }

    #[test]
    fn raise_is_catchable_and_downcasts() {
        let caught = std::panic::catch_unwind(|| raise_cancel(CancelReason::DeadlineExceeded))
            .unwrap_err()
            .downcast::<CancelUnwind>()
            .expect("payload is CancelUnwind");
        assert_eq!(caught.0, CancelReason::DeadlineExceeded);
    }
}
