//! Runtime configuration and the paper's five runtime presets.
//!
//! | Preset | Scheduler | Barrier | Allocator |
//! |--------|-----------|---------|-----------|
//! | [`RuntimeConfig::gomp`]    | global locked priority queue | centralized (locked) | malloc |
//! | [`RuntimeConfig::lomp`]    | lock-free deques + stealing  | atomic counter | multi-level |
//! | [`RuntimeConfig::xlomp`]   | XQueue lattice               | atomic counter | multi-level |
//! | [`RuntimeConfig::xgomp`]   | XQueue lattice               | atomic counter | malloc |
//! | [`RuntimeConfig::xgomptb`] | XQueue lattice               | distributed tree | malloc |
//!
//! Any field can be overridden afterwards (builder style), which is how
//! the bench harness runs the paper's ablations (e.g. XQueue with the
//! centralized barrier isolates the barrier's contribution).

use serde::{Deserialize, Serialize};

use xgomp_profiling::TraceLevel;
use xgomp_topology::{Affinity, CostModel, MachineTopology};

use crate::alloc::AllocKind;
use crate::barrier::BarrierKind;
use crate::dlb::DlbConfig;
use crate::sched::SchedulerKind;
use crate::team::Runtime;

/// Full configuration of a [`Runtime`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Team size (workers, including the master).
    pub threads: usize,
    /// Task-queue backend.
    pub scheduler: SchedulerKind,
    /// Team barrier / termination detector.
    pub barrier: BarrierKind,
    /// Task-record allocation policy.
    pub allocator: AllocKind,
    /// Slots per SPSC queue (`S_queue`; XQueue scheduler only).
    pub queue_capacity: usize,
    /// Dynamic load balancing, if any (XQueue scheduler only).
    pub dlb: Option<DlbConfig>,
    /// Simulated machine (see DESIGN.md §3.2).
    pub topology: MachineTopology,
    /// Worker→core binding policy.
    pub affinity: Affinity,
    /// NUMA latency model applied to non-local task execution.
    pub cost_model: CostModel,
    /// Per-thread event profiling (§V); off by default.
    pub profiling: bool,
    /// Event-driven idle handling: workers that exhaust their spin
    /// backoff park on the team's NUMA-aware [`Parker`] and are woken by
    /// producers/DLB/teardown instead of spinning. On by default; turn
    /// off to reproduce the paper's pure spin-idle measurement mode (the
    /// latency-vs-CPU trade-off knob of the task server).
    ///
    /// The default honors the `XGOMP_WAIT_POLICY` environment variable
    /// (the `OMP_WAIT_POLICY` analog): `active` = spin idle
    /// (`park_idle = false`), `passive` = park (the default). An explicit
    /// [`park_idle`](RuntimeConfig::park_idle) call always wins. CI runs
    /// the whole test suite once per policy so idle-subsystem regressions
    /// cannot hide behind either default.
    ///
    /// [`Parker`]: xgomp_xqueue::Parker
    pub park_idle: bool,
    /// Flight-recorder trace level (`Off`/`Lifecycle`/`Full`; see
    /// [`TraceLevel`]). Off by default — every instrumentation site then
    /// costs one relaxed load plus a branch. The default honors the
    /// `XGOMP_TRACE` environment variable (`off`/`lifecycle`/`full`);
    /// an explicit [`trace`](RuntimeConfig::trace) call wins. The task
    /// server can also flip the level live, without a new generation.
    pub trace: TraceLevel,
}

/// Default idle policy from `XGOMP_WAIT_POLICY` (see
/// [`RuntimeConfig::park_idle`]); read once per process.
fn default_park_idle() -> bool {
    static POLICY: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *POLICY.get_or_init(|| {
        !std::env::var("XGOMP_WAIT_POLICY").is_ok_and(|v| v.eq_ignore_ascii_case("active"))
    })
}

/// Default trace level from `XGOMP_TRACE` (see [`RuntimeConfig::trace`]);
/// read once per process.
fn default_trace_level() -> TraceLevel {
    static LEVEL: std::sync::OnceLock<TraceLevel> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(TraceLevel::from_env)
}

impl RuntimeConfig {
    fn base(threads: usize) -> Self {
        let threads = threads.max(1);
        RuntimeConfig {
            threads,
            scheduler: SchedulerKind::XQueue,
            barrier: BarrierKind::Tree,
            allocator: AllocKind::Malloc,
            queue_capacity: xgomp_xqueue::DEFAULT_CAPACITY,
            dlb: None,
            topology: MachineTopology::fit_workers(threads),
            affinity: Affinity::Close,
            cost_model: CostModel::disabled(),
            profiling: false,
            park_idle: default_park_idle(),
            trace: default_trace_level(),
        }
    }

    /// GNU OpenMP model: global task lock + priority queue, centralized
    /// barrier, malloc per task.
    pub fn gomp(threads: usize) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::Gomp,
            barrier: BarrierKind::Centralized,
            allocator: AllocKind::Malloc,
            ..Self::base(threads)
        }
    }

    /// LLVM OpenMP model: lock-free work-stealing deques, atomic-counter
    /// barrier, multi-level allocator.
    pub fn lomp(threads: usize) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::Lomp,
            barrier: BarrierKind::AtomicCount,
            allocator: AllocKind::MultiLevel,
            ..Self::base(threads)
        }
    }

    /// XQueue in the LLVM-style runtime (XLOMP): lattice scheduling with
    /// the multi-level allocator and atomic-counter barrier.
    pub fn xlomp(threads: usize) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::XQueue,
            barrier: BarrierKind::AtomicCount,
            allocator: AllocKind::MultiLevel,
            ..Self::base(threads)
        }
    }

    /// XGOMP (§III-A): XQueue replaces the global queue/lock; the global
    /// task counter stays as an acquire-release atomic.
    pub fn xgomp(threads: usize) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::XQueue,
            barrier: BarrierKind::AtomicCount,
            allocator: AllocKind::Malloc,
            ..Self::base(threads)
        }
    }

    /// XGOMPTB (§III-B): XGOMP plus the hybrid distributed tree barrier.
    pub fn xgomptb(threads: usize) -> Self {
        RuntimeConfig {
            scheduler: SchedulerKind::XQueue,
            barrier: BarrierKind::Tree,
            allocator: AllocKind::Malloc,
            ..Self::base(threads)
        }
    }

    // ---- builder-style overrides ----

    /// Sets the team size (and refits the default topology).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self.topology = MachineTopology::fit_workers(self.threads);
        self
    }

    /// Enables a DLB strategy (meaningful with the XQueue scheduler).
    pub fn dlb(mut self, cfg: DlbConfig) -> Self {
        self.dlb = Some(cfg);
        self
    }

    /// Clears any DLB strategy (back to static load balancing).
    pub fn slb(mut self) -> Self {
        self.dlb = None;
        self
    }

    /// Overrides the barrier (ablations).
    pub fn barrier(mut self, kind: BarrierKind) -> Self {
        self.barrier = kind;
        self
    }

    /// Overrides the allocator (ablations).
    pub fn allocator(mut self, kind: AllocKind) -> Self {
        self.allocator = kind;
        self
    }

    /// Sets `S_queue`, the per-SPSC-queue capacity.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(2);
        self
    }

    /// Replaces the simulated machine.
    pub fn topology(mut self, topo: MachineTopology) -> Self {
        self.topology = topo;
        self
    }

    /// Sets the worker binding policy.
    pub fn affinity(mut self, a: Affinity) -> Self {
        self.affinity = a;
        self
    }

    /// Sets the NUMA cost model.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Toggles §V profiling.
    pub fn profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Toggles event-driven idling (see [`RuntimeConfig::park_idle`]).
    pub fn park_idle(mut self, on: bool) -> Self {
        self.park_idle = on;
        self
    }

    /// Sets the flight-recorder trace level (see
    /// [`RuntimeConfig::trace`]).
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Human-readable preset name for reports: recognizes the five paper
    /// presets and annotates DLB, e.g. `"XGOMPTB+NA-WS"`.
    pub fn name(&self) -> String {
        let base = match (self.scheduler, self.barrier, self.allocator) {
            (SchedulerKind::Gomp, BarrierKind::Centralized, AllocKind::Malloc) => "GOMP",
            (SchedulerKind::Lomp, BarrierKind::AtomicCount, AllocKind::MultiLevel) => "LOMP",
            (SchedulerKind::XQueue, BarrierKind::AtomicCount, AllocKind::MultiLevel) => "XLOMP",
            (SchedulerKind::XQueue, BarrierKind::AtomicCount, AllocKind::Malloc) => "XGOMP",
            (SchedulerKind::XQueue, BarrierKind::Tree, AllocKind::Malloc) => "XGOMPTB",
            _ => "CUSTOM",
        };
        match &self.dlb {
            None => base.to_string(),
            Some(d) => format!("{base}+{}", d.strategy.name()),
        }
    }

    /// Convenience: `Runtime::new(self)`.
    pub fn build(self) -> Runtime {
        Runtime::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlb::{DlbConfig, DlbStrategy};

    #[test]
    fn preset_names() {
        assert_eq!(RuntimeConfig::gomp(4).name(), "GOMP");
        assert_eq!(RuntimeConfig::lomp(4).name(), "LOMP");
        assert_eq!(RuntimeConfig::xgomp(4).name(), "XGOMP");
        assert_eq!(RuntimeConfig::xgomptb(4).name(), "XGOMPTB");
        assert_eq!(RuntimeConfig::xlomp(4).name(), "XLOMP");
        assert_eq!(
            RuntimeConfig::xgomptb(4)
                .dlb(DlbConfig::new(DlbStrategy::WorkSteal))
                .name(),
            "XGOMPTB+NA-WS"
        );
        assert_eq!(
            RuntimeConfig::xgomptb(4)
                .barrier(BarrierKind::Centralized)
                .name(),
            "CUSTOM"
        );
    }

    #[test]
    fn builders_compose() {
        let cfg = RuntimeConfig::xgomptb(2)
            .threads(8)
            .queue_capacity(64)
            .profiling(true)
            .dlb(DlbConfig::new(DlbStrategy::RedirectPush))
            .slb();
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.queue_capacity, 64);
        assert!(cfg.profiling);
        assert!(cfg.dlb.is_none());
        assert!(cfg.topology.total_hw_threads() >= 8);
    }

    #[test]
    fn config_serializes() {
        let cfg = RuntimeConfig::xgomptb(4).dlb(DlbConfig::new(DlbStrategy::WorkSteal));
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("Tree"));
        let back: RuntimeConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name(), "XGOMPTB+NA-WS");
    }
}
