//! Task-record allocation policies.
//!
//! The paper's Fig. 4 analysis attributes the GOMP↔LOMP performance
//! crossover to *task allocation*: GOMP calls `malloc` for every task,
//! while LOMP uses a "fast multi-level allocator" that (i) serves from a
//! thread-local buffer, (ii) synchronously acquires buffer space from
//! other threads, or (iii) falls back to `malloc` (§VI-A). Both policies
//! are reproduced here and can be combined with any scheduler for
//! ablation studies.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::task::{Task, TaskBody};
use crate::util::PerWorker;

/// Allocation policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AllocKind {
    /// One heap allocation/deallocation per task (GOMP, XGOMP, XGOMPTB).
    Malloc,
    /// LOMP-style multi-level recycling: worker-local free list → locked
    /// global pool ("another thread's buffer") → heap.
    MultiLevel,
}

/// Cap on a worker-local free list; beyond it, half is spilled to the
/// global pool so idle workers' records remain reusable by busy ones.
const LOCAL_CACHE_MAX: usize = 256;
/// How many records a worker grabs from the global pool at once
/// (LOMP's chunked buffer acquisition).
const GLOBAL_CHUNK: usize = 32;

/// The team's task-record allocator.
pub(crate) struct TaskAllocator {
    kind: AllocKind,
    local: PerWorker<Vec<NonNull<Task>>>,
    global: Mutex<Vec<NonNull<Task>>>,
    allocated: AtomicU64,
    freed: AtomicU64,
}

// SAFETY: pooled pointers are owned records, movable across threads.
unsafe impl Send for TaskAllocator {}
unsafe impl Sync for TaskAllocator {}

impl TaskAllocator {
    pub fn new(kind: AllocKind, n_workers: usize) -> Self {
        TaskAllocator {
            kind,
            local: PerWorker::new(n_workers, |_| Vec::new()),
            global: Mutex::new(Vec::new()),
            allocated: AtomicU64::new(0),
            freed: AtomicU64::new(0),
        }
    }

    /// Allocates and initializes a task record on behalf of worker `w`.
    ///
    /// # Safety
    ///
    /// Caller must be the thread owning worker slot `w`.
    pub unsafe fn alloc(
        &self,
        w: usize,
        body: Option<TaskBody>,
        parent: Option<NonNull<Task>>,
        priority: i32,
    ) -> NonNull<Task> {
        self.allocated.fetch_add(1, Ordering::Relaxed);
        match self.kind {
            AllocKind::Malloc => {
                let boxed = Box::new(Task::new(body, parent, w as u32, priority));
                // Box never returns null.
                NonNull::new(Box::into_raw(boxed)).unwrap()
            }
            AllocKind::MultiLevel => {
                // Level 1: worker-local free list.
                // SAFETY: worker-ownership contract forwarded from caller;
                // leaf access (no reentrancy).
                let recycled = unsafe { self.local.with(w, |list| list.pop()) };
                let slot = recycled.or_else(|| {
                    // Level 2: locked global pool, grabbed in chunks.
                    let mut pool = self.global.lock();
                    let take = pool.len().min(GLOBAL_CHUNK);
                    if take == 0 {
                        return None;
                    }
                    let start = pool.len() - take;
                    let mut chunk: Vec<NonNull<Task>> = pool.drain(start..).collect();
                    drop(pool);
                    let first = chunk.pop();
                    if !chunk.is_empty() {
                        // SAFETY: as above.
                        unsafe { self.local.with(w, |list| list.extend(chunk)) };
                    }
                    first
                });
                match slot {
                    Some(ptr) => {
                        // SAFETY: records in pools are dead (refs == 0).
                        unsafe { Task::reinit(ptr, body, parent, w as u32, priority) };
                        ptr
                    }
                    // Level 3: the system allocator.
                    None => {
                        let boxed = Box::new(Task::new(body, parent, w as u32, priority));
                        NonNull::new(Box::into_raw(boxed)).unwrap()
                    }
                }
            }
        }
    }

    /// Returns a dead record (refcount already zero) to the pool.
    ///
    /// # Safety
    ///
    /// `ptr` must be a record from [`alloc`](Self::alloc) whose last
    /// reference was released; caller must own worker slot `w`.
    pub unsafe fn free(&self, w: usize, ptr: NonNull<Task>) {
        self.freed.fetch_add(1, Ordering::Relaxed);
        match self.kind {
            AllocKind::Malloc => {
                // SAFETY: exclusive dead record from Box::into_raw.
                drop(unsafe { Box::from_raw(ptr.as_ptr()) });
            }
            AllocKind::MultiLevel => {
                // Clear the body eagerly so captured environments are
                // released now, not when the record is recycled.
                // SAFETY: dead record ⇒ exclusive access.
                unsafe {
                    Task::reinit(ptr, None, None, 0, 0);
                    (*ptr.as_ptr()).release_ref();
                }
                // SAFETY: worker-ownership contract; leaf access.
                let spill = unsafe {
                    self.local.with(w, |list| {
                        list.push(ptr);
                        if list.len() > LOCAL_CACHE_MAX {
                            let keep = LOCAL_CACHE_MAX / 2;
                            Some(list.split_off(keep))
                        } else {
                            None
                        }
                    })
                };
                if let Some(extra) = spill {
                    self.global.lock().extend(extra);
                }
            }
        }
    }

    /// Records allocated minus records freed. Zero after a quiescent
    /// region has been torn down (leak check used by tests).
    pub fn outstanding(&self) -> u64 {
        self.allocated
            .load(Ordering::Relaxed)
            .saturating_sub(self.freed.load(Ordering::Relaxed))
    }

    /// Which policy this allocator implements.
    #[allow(dead_code)]
    pub fn kind(&self) -> AllocKind {
        self.kind
    }
}

impl Drop for TaskAllocator {
    fn drop(&mut self) {
        // Free pooled (dead) records. `&mut self` gives exclusivity.
        for list in self.local.iter_mut() {
            for ptr in list.drain(..) {
                // SAFETY: pooled records are dead and exclusively owned.
                drop(unsafe { Box::from_raw(ptr.as_ptr()) });
            }
        }
        for ptr in self.global.get_mut().drain(..) {
            // SAFETY: as above.
            drop(unsafe { Box::from_raw(ptr.as_ptr()) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn release_and_free(a: &TaskAllocator, w: usize, ptr: NonNull<Task>) {
        unsafe {
            assert!(ptr.as_ref().release_ref());
            a.free(w, ptr);
        }
    }

    #[test]
    fn malloc_policy_roundtrip() {
        let a = TaskAllocator::new(AllocKind::Malloc, 2);
        let t = unsafe { a.alloc(0, None, None, 0) };
        assert_eq!(a.outstanding(), 1);
        release_and_free(&a, 0, t);
        assert_eq!(a.outstanding(), 0);
    }

    #[test]
    fn multilevel_recycles_locally() {
        let a = TaskAllocator::new(AllocKind::MultiLevel, 2);
        let t1 = unsafe { a.alloc(0, None, None, 0) };
        let addr1 = t1.as_ptr() as usize;
        release_and_free(&a, 0, t1);
        let t2 = unsafe { a.alloc(0, None, None, 7) };
        assert_eq!(
            t2.as_ptr() as usize,
            addr1,
            "local free list should recycle the record"
        );
        release_and_free(&a, 0, t2);
    }

    #[test]
    fn multilevel_peer_acquisition_via_global_pool() {
        let a = TaskAllocator::new(AllocKind::MultiLevel, 2);
        // Worker 0 allocates and frees enough to spill to the global pool.
        let mut ptrs = Vec::new();
        for _ in 0..(LOCAL_CACHE_MAX + 50) {
            ptrs.push(unsafe { a.alloc(0, None, None, 0) });
        }
        for p in ptrs {
            release_and_free(&a, 0, p);
        }
        assert!(
            !a.global.lock().is_empty(),
            "overflow should spill to the global pool"
        );
        // Worker 1 can now acquire recycled records without malloc.
        let before = a.global.lock().len();
        let t = unsafe { a.alloc(1, None, None, 0) };
        let after = a.global.lock().len();
        assert!(after < before, "worker 1 should take a global chunk");
        release_and_free(&a, 1, t);
    }

    #[test]
    fn bodies_are_dropped_on_free() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Canary;
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        for kind in [AllocKind::Malloc, AllocKind::MultiLevel] {
            DROPS.store(0, Ordering::SeqCst);
            let a = TaskAllocator::new(kind, 1);
            let canary = Canary;
            let body: TaskBody = Box::new(move |_| {
                let _keep = &canary;
            });
            let t = unsafe { a.alloc(0, Some(body), None, 0) };
            release_and_free(&a, 0, t);
            assert_eq!(
                DROPS.load(Ordering::SeqCst),
                1,
                "{kind:?}: unexecuted body must be dropped on free"
            );
        }
    }
}
