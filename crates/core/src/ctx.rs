//! The user-facing tasking API: [`TaskCtx`] (the current task's view of
//! the runtime) and [`Scope`] (structured, borrow-friendly spawning).
//!
//! The API mirrors how BOTS applications use OpenMP tasking:
//!
//! ```text
//! #pragma omp task shared(x)        →  scope.spawn(|ctx| …borrow x…)
//! #pragma omp taskwait              →  ctx.taskwait()  (implicit at scope end)
//! ```
//!
//! `scope` guarantees — even on unwinding — that every task spawned
//! within it completes before the scope returns, which is what makes
//! borrowing from the enclosing frame sound (the same reasoning as
//! `std::thread::scope`).

use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use xgomp_profiling::{clock, EventKind, WorkerStats};
use xgomp_xqueue::Backoff;

use crate::cancel::{raise_cancel, CancelToken};
use crate::task::{Task, TaskBody};
use crate::team::{execute, TeamShared};

/// A task's handle to the runtime: passed to every task body and to the
/// parallel-region closure.
pub struct TaskCtx<'t> {
    pub(crate) team: &'t TeamShared,
    pub(crate) worker: usize,
    pub(crate) task: NonNull<Task>,
}

impl<'t> TaskCtx<'t> {
    /// Index of the worker executing this task (0 = master).
    #[inline]
    pub fn worker_id(&self) -> usize {
        self.worker
    }

    /// Team size.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.team.n
    }

    /// Simulated NUMA zone of this worker (see `xgomp-topology`).
    #[inline]
    pub fn numa_zone(&self) -> usize {
        self.team.placement.zone_of(self.worker)
    }

    /// The team's worker placement (topology queries).
    #[inline]
    pub fn placement(&self) -> &xgomp_topology::Placement {
        &self.team.placement
    }

    /// Spawns a child task with default priority. The body must be
    /// `'static`; to borrow from the current frame use
    /// [`scope`](Self::scope).
    #[inline]
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&TaskCtx<'_>) + Send + 'static,
    {
        self.spawn_impl(Box::new(f), 0);
    }

    /// Spawns a child task with a GOMP-style priority (only the GOMP
    /// scheduler orders by it; the others ignore it, as XQueue is
    /// relaxed-order by design).
    #[inline]
    pub fn spawn_with_priority<F>(&self, priority: i32, f: F)
    where
        F: FnOnce(&TaskCtx<'_>) + Send + 'static,
    {
        self.spawn_impl(Box::new(f), priority);
    }

    /// Spawns an already-boxed body without re-boxing — the hot
    /// submission path of `xgomp-service`, whose ingress queues carry
    /// boxed job bodies end to end.
    #[inline]
    pub fn spawn_boxed(&self, body: Box<dyn FnOnce(&TaskCtx<'_>) + Send + 'static>) {
        self.spawn_impl(body, 0);
    }

    /// Spawns an already-boxed body into the *calling worker's own*
    /// queue, bypassing the round-robin cursor. This is the placement
    /// externally injected jobs need: a cross-pushed task lands in one
    /// peer's SPSC queue and is unreachable by anyone else until that
    /// peer next visits the scheduler — if the peer is stalled inside a
    /// long-running task body, the job is stranded even while other
    /// workers idle. A self-spawned task is popped by the very next
    /// scheduler visit of the worker that chose to take it.
    #[inline]
    pub fn spawn_boxed_local(&self, body: Box<dyn FnOnce(&TaskCtx<'_>) + Send + 'static>) {
        self.spawn_impl_placed(body, 0, Some(self.worker));
    }

    /// Like [`run_pending`](Self::run_pending), but when the scheduler
    /// is empty it also polls the team's ingress source (if any) and
    /// runs whatever that injected. This is the helping step a job must
    /// use while waiting on *another job* (`JobHandle::join_within` in
    /// `xgomp-service`): with every worker busy waiting, the awaited
    /// jobs may still be sitting in the ingress, reachable by no one
    /// else.
    pub fn help_pending(&self, max: usize) -> usize {
        let ran = self.run_pending(max);
        if ran > 0 {
            return ran;
        }
        let team = self.team;
        if let Some(src) = &team.source {
            if let Some(root) = NonNull::new(team.root.load(Ordering::Acquire)) {
                let root_ctx = TaskCtx {
                    team,
                    worker: self.worker,
                    task: root,
                };
                if src.poll(&root_ctx) > 0 {
                    return self.run_pending(max);
                }
            }
        }
        0
    }

    /// Whether the team has been poisoned by an un-isolated panic (the
    /// region is ending abnormally; cooperative loops should bail out).
    pub fn is_poisoned(&self) -> bool {
        self.team.poisoned.load(Ordering::Relaxed)
    }

    /// Installs a [`CancelToken`] on the current task. Every task spawned
    /// from here on (directly or transitively) inherits a clone, and the
    /// runtime's cancellation checkpoints — chunk claims in
    /// `parallel_for` drains, [`taskwait`](Self::taskwait) exits — poll
    /// it. The task server installs one per job; plain runtime users can
    /// install their own to make a task tree cancellable.
    pub fn set_cancel_token(&self, token: CancelToken) {
        // SAFETY: we are the executing worker of `self.task`.
        unsafe { Task::set_cancel(self.task, Some(token)) };
    }

    /// Removes the current task's [`CancelToken`]. Tasks already spawned
    /// keep their inherited clones; new spawns inherit nothing.
    pub fn clear_cancel_token(&self) {
        // SAFETY: we are the executing worker of `self.task`.
        unsafe { Task::set_cancel(self.task, None) };
    }

    /// The current task's cancellation token, if one is installed (on it
    /// or inherited from the task that spawned it).
    pub fn cancel_token(&self) -> Option<CancelToken> {
        // SAFETY: we are the executing worker of `self.task`.
        unsafe { Task::cancel_token(self.task) }
    }

    /// Whether the current task's cancellation token (if any) has fired.
    /// One relaxed load on the live path; long-running bodies that want
    /// tighter cancellation latency than the chunk/taskwait checkpoints
    /// give them poll this and return early.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancel_token().is_some_and(|t| t.poll().is_some())
    }

    /// Cancellation checkpoint: unwinds with a
    /// [`CancelUnwind`](crate::CancelUnwind) payload when the current
    /// task's token has fired. Only meaningful on panic-isolating teams
    /// (the task server), where the unwind is caught at the job boundary;
    /// elsewhere it is a no-op so a stray token cannot poison a team.
    #[inline]
    pub fn check_cancel(&self) {
        if !self.team.isolate_panics || std::thread::panicking() {
            return;
        }
        if let Some(token) = self.cancel_token() {
            if let Some(reason) = token.poll() {
                raise_cancel(reason);
            }
        }
    }

    /// The team's NUMA-aware idle parker.
    ///
    /// Custom master loops (a task server's serve loop) use it to park
    /// the calling worker with the same announce → re-check → commit
    /// protocol the worker loop uses, and submitters clone it as their
    /// doorbell. Whether the *scheduler's* idle arm parks is
    /// [`park_idle_enabled`](Self::park_idle_enabled); the parker itself
    /// always works.
    pub fn parker(&self) -> &Arc<xgomp_xqueue::Parker> {
        &self.team.parker
    }

    /// Whether this team runs event-driven idling
    /// (`RuntimeConfig::park_idle`).
    pub fn park_idle_enabled(&self) -> bool {
        self.team.park_idle
    }

    /// Racy hint that the scheduler could yield a task for this worker
    /// right now — the pre-park re-check for custom idle loops.
    pub fn has_local_work_hint(&self) -> bool {
        self.team.sched.has_work_hint(self.worker)
    }

    /// Whether the team's flight recorder is live at `min` or above
    /// (one relaxed load + branch; `false` when tracing is off).
    #[inline]
    pub fn trace_on(&self, min: xgomp_profiling::TraceLevel) -> bool {
        self.team.trace_on(min)
    }

    /// Emits one flight-recorder record into the calling worker's ring
    /// when the team's live trace level admits `min` (no-op otherwise —
    /// the cost of [`trace_on`](Self::trace_on)). This is the hook
    /// layered runtimes (the task server's job lifecycle) use to place
    /// their own events on the same timeline as the scheduler's.
    #[inline]
    pub fn trace_emit(
        &self,
        min: xgomp_profiling::TraceLevel,
        kind: EventKind,
        a: u32,
        b: u64,
        c: u64,
    ) {
        self.team.trace_emit(self.worker, min, kind, a, b, c);
    }

    /// Executes up to `max` already-queued tasks on the calling worker,
    /// returning how many ran. Unlike [`taskwait`](Self::taskwait) this
    /// never blocks: it is the cooperative scheduling point a server's
    /// master loop interleaves with ingress polling and controller work.
    pub fn run_pending(&self, max: usize) -> usize {
        let team = self.team;
        let w = self.worker;
        let mut ran = 0;
        while ran < max {
            if team.poisoned.load(Ordering::Relaxed) {
                break;
            }
            match team.sched.next_task(w) {
                Some(t) => {
                    team.sched.pre_execute(w);
                    execute(team, w, t);
                    ran += 1;
                }
                None => break,
            }
        }
        ran
    }

    /// Structured spawning: tasks created through the [`Scope`] may
    /// borrow from the enclosing frame; the scope taskwaits on exit
    /// (normal or unwinding), so no borrow can outlive its referent.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        /// Taskwait-on-drop so panics cannot leak borrowed tasks.
        struct WaitGuard<'a, 'b>(&'a TaskCtx<'b>);
        impl Drop for WaitGuard<'_, '_> {
            fn drop(&mut self) {
                self.0.taskwait();
            }
        }
        let guard = WaitGuard(self);
        let scope = Scope {
            ctx: self,
            _env: PhantomData,
        };
        let r = f(&scope);
        drop(guard); // the implicit taskwait
        r
    }

    /// Blocks (helpfully — executing other tasks meanwhile, as GOMP's
    /// taskwait scheduling point does) until every direct child of the
    /// current task has completed.
    pub fn taskwait(&self) {
        let team = self.team;
        let w = self.worker;
        // SAFETY: the record outlives execution (refcount held by us).
        let task = unsafe { self.task.as_ref() };
        if task.unfinished_children() == 0 {
            self.reraise_child_panic(task);
            self.check_cancel();
            return;
        }
        let mut backoff = Backoff::new();
        let mut wait_t0: Option<u64> = None;
        while task.unfinished_children() != 0 {
            if team.poisoned.load(Ordering::Relaxed) {
                return; // a sibling task panicked; bail out
            }
            if let Some(t) = team.sched.next_task(w) {
                if let Some(t0) = wait_t0.take() {
                    team.log_span(w, EventKind::TaskWait, t0);
                }
                team.sched.pre_execute(w);
                execute(team, w, t);
                backoff.reset();
                continue;
            }
            team.sched.on_idle(w);
            if team.profiling && wait_t0.is_none() {
                wait_t0 = Some(clock::now());
            }
            backoff.snooze();
        }
        if let Some(t0) = wait_t0 {
            team.log_span(w, EventKind::TaskWait, t0);
        }
        self.reraise_child_panic(task);
        // Cancellation checkpoint at the taskwait boundary: children are
        // quiescent (none left to leak), so this is a safe place for the
        // cooperative unwind.
        self.check_cancel();
    }

    /// Panic-isolating teams: a child that panicked left its payload on
    /// this task; quiescence reached, re-raise it here so the failure
    /// surfaces at the job boundary instead of poisoning the team. Never
    /// double-panics (scope's taskwait-on-drop runs during unwinds).
    fn reraise_child_panic(&self, task: &Task) {
        if !self.team.isolate_panics || std::thread::panicking() {
            return;
        }
        if let Some(payload) = task.take_child_panic() {
            std::panic::resume_unwind(payload);
        }
    }

    /// Core spawn path (§III-A): count for the barrier *before*
    /// publication, link the dependency atomically, allocate, then push —
    /// falling back to immediate execution when the target queue is full.
    pub(crate) fn spawn_impl(&self, body: TaskBody, priority: i32) {
        self.spawn_impl_placed(body, priority, None)
    }

    /// [`spawn_impl`](Self::spawn_impl) with an optional placement
    /// target: `Some(t)` asks the scheduler to hand the task to worker
    /// `t` (the zone-affine placement of loop-drain tasks; schedulers
    /// without per-worker queues ignore it).
    pub(crate) fn spawn_impl_placed(&self, body: TaskBody, priority: i32, target: Option<usize>) {
        let team = self.team;
        let w = self.worker;
        let t0 = if team.profiling { clock::now() } else { 0 };
        team.barrier.task_created(w);
        // SAFETY: parent record is alive (we are executing it).
        let parent = unsafe { self.task.as_ref() };
        parent.retain();
        parent.add_child();
        // SAFETY: this thread owns worker slot `w`.
        let ptr = unsafe { team.alloc.alloc(w, Some(body), Some(self.task), priority) };
        // Children inherit the parent's cancellation token, so a job's
        // whole task tree answers to one flag.
        // SAFETY: we execute the parent; the child is not yet published.
        unsafe {
            if let Some(token) = Task::cancel_token(self.task) {
                Task::set_cancel(ptr, Some(token));
            }
        }
        WorkerStats::inc(&team.stats[w].tasks_created);
        let pushed = match target {
            Some(t) => team.sched.spawn_to(w, t, ptr),
            None => team.sched.spawn(w, ptr),
        };
        match pushed {
            Ok(()) => {
                if team.profiling {
                    team.log_span(w, EventKind::TaskCreate, t0);
                }
            }
            Err(p) => {
                // Overflow rule: execute the task immediately (§II-B).
                WorkerStats::inc(&team.stats[w].ntasks_imm_exec);
                if team.profiling {
                    team.log_span(w, EventKind::TaskCreate, t0);
                }
                execute(team, w, p);
            }
        }
    }
}

/// Structured-spawn handle; see [`TaskCtx::scope`].
pub struct Scope<'ctx, 'env> {
    ctx: &'ctx TaskCtx<'ctx>,
    /// Invariant in `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'ctx, 'env> Scope<'ctx, 'env> {
    /// Spawns a task that may borrow anything outliving the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&TaskCtx<'_>) + Send + 'env,
    {
        let boxed: Box<dyn FnOnce(&TaskCtx<'_>) + Send + 'env> = Box::new(f);
        // SAFETY: the scope's taskwait (WaitGuard, run even on unwind)
        // ensures this body finishes before any `'env` borrow ends, so
        // erasing the lifetime cannot let the body observe freed data.
        let boxed: TaskBody = unsafe { std::mem::transmute(boxed) };
        self.ctx.spawn_impl(boxed, 0);
    }

    /// Spawns a borrowing task with a GOMP priority.
    pub fn spawn_with_priority<F>(&self, priority: i32, f: F)
    where
        F: FnOnce(&TaskCtx<'_>) + Send + 'env,
    {
        let boxed: Box<dyn FnOnce(&TaskCtx<'_>) + Send + 'env> = Box::new(f);
        // SAFETY: as in `spawn`.
        let boxed: TaskBody = unsafe { std::mem::transmute(boxed) };
        self.ctx.spawn_impl(boxed, priority);
    }

    /// Spawns a borrowing task with a *placement target*: worker
    /// `target` gets the task in its own queue (best effort — a full
    /// queue falls back to immediate execution, and dynamic load
    /// balancing may still migrate it). This is how `parallel_for`
    /// places its per-worker loop-drain tasks zone-affinely.
    pub fn spawn_on<F>(&self, target: usize, f: F)
    where
        F: FnOnce(&TaskCtx<'_>) + Send + 'env,
    {
        let boxed: Box<dyn FnOnce(&TaskCtx<'_>) + Send + 'env> = Box::new(f);
        // SAFETY: as in `spawn`.
        let boxed: TaskBody = unsafe { std::mem::transmute(boxed) };
        self.ctx.spawn_impl_placed(boxed, 0, Some(target));
    }

    /// The underlying context (worker id, topology queries).
    pub fn ctx(&self) -> &TaskCtx<'ctx> {
        self.ctx
    }
}
