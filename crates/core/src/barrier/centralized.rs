//! The GOMP-model centralized barrier.
//!
//! GNU OpenMP guards its team-barrier state (including the global task
//! count) with the *global task lock*: every task creation, completion,
//! and barrier poll acquires it (§II-A, §III-B). This implementation
//! reproduces that serialization point with one mutex protecting the
//! count and arrival state. Under many workers and fine-grained tasks
//! the lock convoy this creates *is* the phenomenon Figs. 1/4/5 measure.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

use super::TeamBarrier;

#[derive(Debug, Default)]
struct State {
    /// Outstanding tasks (created − finished).
    task_count: i64,
    /// Workers that have reached the region-end barrier.
    arrived: usize,
}

/// Mutex-guarded counting barrier (the GOMP baseline).
pub struct CentralizedBarrier {
    n: usize,
    state: Mutex<State>,
    released: AtomicBool,
}

impl CentralizedBarrier {
    /// Barrier for a team of `n`.
    pub fn new(n: usize) -> Self {
        CentralizedBarrier {
            n,
            state: Mutex::new(State::default()),
            released: AtomicBool::new(false),
        }
    }
}

impl TeamBarrier for CentralizedBarrier {
    fn task_created(&self, _worker: usize) {
        self.state.lock().task_count += 1;
    }

    fn task_finished(&self, _worker: usize) {
        let mut s = self.state.lock();
        s.task_count -= 1;
        debug_assert!(s.task_count >= 0, "task_count went negative");
    }

    fn arrive(&self, _worker: usize) {
        self.state.lock().arrived += 1;
    }

    fn try_release(&self, _worker: usize) -> bool {
        // Fast path once released (the release flag itself is not part of
        // the modeled contention: GOMP also spins on a released word).
        if self.released.load(Ordering::Acquire) {
            return true;
        }
        // The modeled global-lock acquisition per barrier poll.
        let s = self.state.lock();
        if s.arrived == self.n && s.task_count == 0 {
            self.released.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    fn name(&self) -> &'static str {
        "centralized(GOMP)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_only_when_arrived_and_quiet() {
        let b = CentralizedBarrier::new(2);
        assert!(!b.try_release(0));
        b.arrive(0);
        b.arrive(1);
        assert!(b.try_release(0));
        assert!(b.try_release(1), "release must be sticky");
    }

    #[test]
    fn outstanding_tasks_block_release() {
        let b = CentralizedBarrier::new(1);
        b.arrive(0);
        b.task_created(0);
        assert!(!b.try_release(0));
        b.task_finished(0);
        assert!(b.try_release(0));
    }

    #[test]
    fn multithreaded_storm_terminates() {
        use std::sync::Arc;
        let b = Arc::new(CentralizedBarrier::new(4));
        let mut handles = Vec::new();
        for w in 0..4usize {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    b.task_created(w);
                    b.task_finished(w);
                }
                b.arrive(w);
                while !b.try_release(w) {
                    std::hint::spin_loop();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
