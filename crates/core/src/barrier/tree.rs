//! The XGOMPTB hybrid distributed tree barrier (§III-B).
//!
//! Workers form a binary tree (worker `w`'s children are `2w+1`, `2w+2`).
//! Termination detection is fully distributed:
//!
//! * **Per-worker counters, lock-less.** Each worker counts the tasks it
//!   created and the tasks it executed in its own cache-line-padded
//!   cells, written with plain single-writer stores — *zero* atomic RMW
//!   per task, versus two `lock xadd`s per task for the XGOMP counter.
//! * **Lock-free gather.** When a worker is idle, its current task has no
//!   unfinished dependencies, and all of its children's subtrees have
//!   gathered, it publishes its subtree's (created, executed) sums and
//!   atomically sets its bit in the parent's complete mask — the one
//!   atomic RMW per worker per gather round ("a gathered worker
//!   atomically updates the complete flag of its parent"; this flag is
//!   shared by exactly one parent/child pair, so contention is minimal).
//! * **Lock-less release.** When the root observes a complete gather
//!   with `created == executed`, the system is quiescent (see proof
//!   sketch below) and the root broadcasts release down the tree with
//!   plain stores — each worker's release flag has a single writer (its
//!   parent), the paper's lock-less releasing.
//!
//! If the sums are unequal the root starts a new gather *round*; rounds
//! use parity-indexed complete masks so no reset can race with a
//! straggler from the previous round.
//!
//! ## Why "complete gather + equal sums" implies quiescence
//!
//! Each worker reports only while idle, and its report (made visible by
//! the release ordering of the gather hand-off) includes every counter
//! update it made before reporting. Suppose the round's sums are equal
//! but a task is live. Consider the earliest thing any worker did after
//! its report in this round: it can only be executing a task `t` that was
//! already published, so `t`'s creation was counted *before* some
//! worker's report (creation precedes publication precedes execution)
//! while `t`'s execution was not yet counted — hence created > executed
//! in this round's sums. Contradiction; equality therefore implies no
//! published-but-unexecuted task and no running task, i.e. quiescence.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use super::TeamBarrier;
use crate::util::{CachePadded, PerWorker};

/// Per-worker tree node. Padded: `created`/`executed` are the hot cells.
#[derive(Debug, Default)]
struct TreeNode {
    /// Tasks created by this worker (single-writer, plain stores).
    created: AtomicU64,
    /// Tasks executed by this worker (single-writer, plain stores).
    executed: AtomicU64,
    /// Parity-indexed gather masks; children `fetch_or` their bit
    /// (bit 1 = left child, bit 2 = right child). The lock-free half.
    complete: [AtomicU64; 2],
    /// Subtree sums, published before the bit is set in the parent.
    sub_created: AtomicU64,
    /// See `sub_created`.
    sub_executed: AtomicU64,
    /// Release flag; written only by this worker's parent (or the root
    /// for itself). The lock-less half.
    released: AtomicBool,
}

/// Worker-private round bookkeeping.
#[derive(Debug, Default)]
struct OwnerState {
    last_round: u64,
    reported: bool,
    initialized: bool,
}

/// The hybrid distributed tree barrier (XGOMPTB).
pub struct TreeBarrier {
    n: usize,
    nodes: Box<[CachePadded<TreeNode>]>,
    owner: PerWorker<OwnerState>,
    /// Current gather round; written only by the root worker.
    round: AtomicU64,
    /// Team idle parker, when the team runs event-driven idling. The
    /// gather needs every worker's report each round, and a parked
    /// worker reports nothing: a child therefore wakes its parent after
    /// the bit hand-off, and the root wakes the whole team when it
    /// starts a new round. Without these wakes a mid-gather park would
    /// stall termination detection forever.
    parker: Option<std::sync::Arc<xgomp_xqueue::Parker>>,
}

impl TreeBarrier {
    /// Barrier for a team of `n`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        TreeBarrier {
            n,
            nodes: (0..n)
                .map(|_| CachePadded(TreeNode::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            owner: PerWorker::new(n, |_| OwnerState::default()),
            round: AtomicU64::new(1),
            parker: None,
        }
    }

    /// Attaches the team's idle parker (gather wake-ups; see the
    /// `parker` field).
    pub fn with_parker(mut self, parker: std::sync::Arc<xgomp_xqueue::Parker>) -> Self {
        self.parker = Some(parker);
        self
    }

    #[inline]
    fn children(&self, w: usize) -> impl Iterator<Item = usize> + '_ {
        let n = self.n;
        [2 * w + 1, 2 * w + 2].into_iter().filter(move |&c| c < n)
    }

    /// Bit mask the children of `w` must set for a complete gather.
    #[inline]
    fn expected_mask(&self, w: usize) -> u64 {
        let mut m = 0;
        if 2 * w + 1 < self.n {
            m |= 1;
        }
        if 2 * w + 2 < self.n {
            m |= 2;
        }
        m
    }

    /// Propagates the release flag to `w`'s children (plain stores — the
    /// lock-less tree broadcast).
    fn propagate_release(&self, w: usize) {
        for c in self.children(w) {
            self.nodes[c].0.released.store(true, Ordering::Release);
        }
    }

    /// Single-writer counter bump: load + store, no RMW.
    #[inline]
    fn bump(cell: &AtomicU64) {
        let v = cell.load(Ordering::Relaxed);
        cell.store(v + 1, Ordering::Relaxed);
    }
}

impl TeamBarrier for TreeBarrier {
    #[inline]
    fn task_created(&self, worker: usize) {
        Self::bump(&self.nodes[worker].0.created);
    }

    #[inline]
    fn task_finished(&self, worker: usize) {
        Self::bump(&self.nodes[worker].0.executed);
    }

    fn arrive(&self, worker: usize) {
        // Arrival is implicit in this design: a worker participates in
        // gather rounds only through try_release, which the loop calls
        // only once the worker is at the region-end barrier. Mark the
        // owner slot initialized for debug clarity.
        // SAFETY: `worker` is owned by the calling thread; leaf access.
        unsafe {
            self.owner.with(worker, |st| st.initialized = true);
        }
    }

    fn try_release(&self, w: usize) -> bool {
        /// What the gather step did (wake-ups are issued outside the
        /// owner-slot closure, which must stay a leaf access).
        enum Gather {
            Nothing,
            Released,
            /// Reported this subtree's sums to `parent`.
            Reported(usize),
            /// Root restarted the gather (activity since last round).
            NewRound,
        }

        let node = &self.nodes[w].0;
        // Lock-less release path: flag written only by our parent.
        if node.released.load(Ordering::Acquire) {
            self.propagate_release(w);
            return true;
        }
        let r = self.round.load(Ordering::Acquire);
        // SAFETY: worker-ownership contract; all inner operations are
        // leaf accesses that cannot re-enter this slot.
        let step = unsafe {
            self.owner.with(w, |st| {
                if st.last_round != r {
                    st.last_round = r;
                    st.reported = false;
                    // Reset the mask the *next* round will use. Safe: all
                    // bits of round r-1 (same parity) were set before the
                    // root broadcast round r, which happened before we
                    // observed r (see module docs).
                    node.complete[((r + 1) & 1) as usize].store(0, Ordering::Relaxed);
                }
                if st.reported {
                    return Gather::Nothing;
                }
                // Gather precondition: all children subtrees reported.
                let parity = (r & 1) as usize;
                if node.complete[parity].load(Ordering::Acquire) != self.expected_mask(w) {
                    return Gather::Nothing;
                }
                // Aggregate: own counters (we are idle, so these include
                // everything we have done) + children's published sums.
                let mut c = node.created.load(Ordering::Relaxed);
                let mut e = node.executed.load(Ordering::Relaxed);
                for ch in self.children(w) {
                    c += self.nodes[ch].0.sub_created.load(Ordering::Relaxed);
                    e += self.nodes[ch].0.sub_executed.load(Ordering::Relaxed);
                }
                st.reported = true;
                if w == 0 {
                    if c == e {
                        node.released.store(true, Ordering::Release);
                        Gather::Released
                    } else {
                        // Activity since the last round: gather again.
                        self.round.store(r + 1, Ordering::Release);
                        Gather::NewRound
                    }
                } else {
                    node.sub_created.store(c, Ordering::Relaxed);
                    node.sub_executed.store(e, Ordering::Relaxed);
                    let parent = (w - 1) / 2;
                    let bit = if w == 2 * parent + 1 { 1 } else { 2 };
                    // The lock-free gather hand-off (one RMW per worker
                    // per round; release ordering publishes the sums).
                    self.nodes[parent].0.complete[parity].fetch_or(bit, Ordering::AcqRel);
                    Gather::Reported(parent)
                }
            })
        };
        match step {
            Gather::Released => {
                self.propagate_release(w);
                true
            }
            Gather::Reported(parent) => {
                // The parent may be parked mid-gather; our bit is the
                // event it is waiting for.
                if let Some(p) = &self.parker {
                    p.unpark(parent);
                }
                false
            }
            Gather::NewRound => {
                // Workers that reported round `r` and then parked must
                // participate in round `r + 1`.
                if let Some(p) = &self.parker {
                    p.unpark_all();
                }
                false
            }
            Gather::Nothing => false,
        }
    }

    fn name(&self) -> &'static str {
        "tree(XGOMPTB)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn spin_until_release(b: &TreeBarrier, w: usize) {
        let mut spins = 0u64;
        while !b.try_release(w) {
            std::hint::spin_loop();
            spins += 1;
            if spins.is_multiple_of(1000) {
                std::thread::yield_now();
            }
            assert!(spins < 2_000_000_000, "barrier did not release");
        }
    }

    #[test]
    fn single_worker_releases_immediately_when_quiet() {
        let b = TreeBarrier::new(1);
        b.arrive(0);
        b.task_created(0);
        assert!(!b.try_release(0));
        b.task_finished(0);
        // One round to observe equality.
        assert!(b.try_release(0) || b.try_release(0));
    }

    #[test]
    fn release_is_sticky_and_propagates() {
        let b = TreeBarrier::new(3);
        for w in 0..3 {
            b.arrive(w);
        }
        // Everyone idle, no tasks: gather must finish within a few polls
        // (children first, then root).
        let mut done = [false; 3];
        for _ in 0..10 {
            for w in (0..3).rev() {
                if b.try_release(w) {
                    done[w] = true;
                }
            }
            if done.iter().all(|&d| d) {
                break;
            }
        }
        assert!(
            done.iter().all(|&d| d),
            "release did not reach all: {done:?}"
        );
    }

    #[test]
    fn outstanding_task_blocks_release_across_rounds() {
        let b = TreeBarrier::new(2);
        b.arrive(0);
        b.arrive(1);
        b.task_created(1);
        for _ in 0..100 {
            assert!(!b.try_release(0));
            assert!(!b.try_release(1));
        }
        b.task_finished(0); // executed by the *other* worker (migration)
        let mut released = (false, false);
        for _ in 0..100 {
            if b.try_release(0) {
                released.0 = true;
            }
            if b.try_release(1) {
                released.1 = true;
            }
            if released == (true, true) {
                break;
            }
        }
        assert_eq!(released, (true, true));
    }

    /// Multi-threaded storm with cross-worker completion: workers pass
    /// "tasks" through a shared counter so creation and completion land
    /// on different workers, then everyone quiesces. The barrier must
    /// release exactly once per worker with global counts equal, and
    /// never while tokens are in flight.
    #[test]
    fn storm_with_migration_terminates() {
        for &n in &[2usize, 3, 4, 7, 8] {
            let b = Arc::new(TreeBarrier::new(n));
            let inflight = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for w in 0..n {
                let b = b.clone();
                let inflight = inflight.clone();
                handles.push(std::thread::spawn(move || {
                    b.arrive(w);
                    let mut seed = 0x9E3779B97F4A7C15u64.wrapping_mul(w as u64 + 1);
                    let mut rng = move || {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        seed
                    };
                    for _ in 0..5_000 {
                        // Create a token...
                        b.task_created(w);
                        inflight.fetch_add(1, Ordering::SeqCst);
                        // ...and "execute" one as a random other worker
                        // would: completion on this worker regardless of
                        // creator models migration (counters are global
                        // sums; the barrier must tolerate any split).
                        if rng() % 3 != 0
                            && inflight
                                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                                    v.checked_sub(1)
                                })
                                .is_ok()
                        {
                            b.task_finished(w);
                        }
                        // Poll mid-storm: must not release while our own
                        // token can still be in flight.
                        if rng() % 64 == 0 && inflight.load(Ordering::SeqCst) > 0 {
                            // (Cannot assert !try_release here: another
                            // worker may drain inflight between the load
                            // and the poll. Just exercise the path.)
                            let _ = b.try_release(w);
                        }
                    }
                    // Drain whatever is left.
                    while inflight
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                        .is_ok()
                    {
                        b.task_finished(w);
                    }
                    spin_until_release(&b, w);
                    // At release, global counts must be equal.
                    let created: u64 = (0..n)
                        .map(|i| b.nodes[i].0.created.load(Ordering::SeqCst))
                        .sum();
                    let executed: u64 = (0..n)
                        .map(|i| b.nodes[i].0.executed.load(Ordering::SeqCst))
                        .sum();
                    assert_eq!(created, executed, "released with work outstanding");
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn master_arrival_gates_release() {
        // Worker 1 is idle from the start; master (0) delays its
        // participation, modeling a long region closure. No release may
        // happen until the master polls.
        let b = Arc::new(TreeBarrier::new(2));
        b.arrive(1);
        let b2 = b.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..10_000 {
                assert!(!b2.try_release(1), "released without master");
            }
        });
        t.join().unwrap();
        b.arrive(0);
        let b3 = b.clone();
        let w1 = std::thread::spawn(move || spin_until_release(&b3, 1));
        spin_until_release(&b, 0);
        w1.join().unwrap();
    }
}
