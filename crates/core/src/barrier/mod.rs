//! Team-barrier implementations (§III-B).
//!
//! A team barrier in this runtime plays two roles, exactly as in GOMP:
//! it is the *termination detector* for the tasking region (tracking
//! outstanding tasks) and the *rendezvous* at the end of the parallel
//! region. Three designs are provided:
//!
//! | Kind | Counting | Release | Models |
//! |------|----------|---------|--------|
//! | [`CentralizedBarrier`] | global mutex-guarded counter | flag under the same class of global lock | GOMP's team barrier (global task lock) |
//! | [`AtomicCountBarrier`] | shared atomic counter, acq-rel RMW | shared release flag | XGOMP (lock removed, counter kept atomic) |
//! | [`TreeBarrier`] | per-worker lock-less counters | hybrid: lock-free tree gather + lock-less tree release | XGOMPTB (§III-B) |
//!
//! Workers sit in the scheduling loop and call [`TeamBarrier::try_release`]
//! whenever they find no work; the barrier answers `true` once the region
//! has quiesced (all tasks executed *and* the master has arrived).

mod atomic_count;
mod centralized;
mod tree;

pub use atomic_count::AtomicCountBarrier;
pub use centralized::CentralizedBarrier;
pub use tree::TreeBarrier;

use serde::{Deserialize, Serialize};

/// Barrier implementation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BarrierKind {
    /// Mutex-guarded count and release check (GOMP model).
    Centralized,
    /// Shared atomic task counter with acquire-release RMW (XGOMP).
    AtomicCount,
    /// Hybrid lock-free-gather / lock-less-release distributed binary
    /// tree (XGOMPTB).
    Tree,
}

impl BarrierKind {
    /// Instantiates the barrier for a team of `n` workers.
    ///
    /// `parker` is the team's idle parker. Only the tree barrier uses
    /// it: its gather protocol needs *every* worker to report per round,
    /// so the bottom-up hand-off wakes a parked parent and a new round
    /// wakes everyone (see `tree.rs`). The shared-counter barriers
    /// detect release from any awake poller, which then performs the
    /// team-wide wake in the worker loop.
    pub(crate) fn build(
        self,
        n: usize,
        parker: std::sync::Arc<xgomp_xqueue::Parker>,
    ) -> Box<dyn TeamBarrier> {
        match self {
            BarrierKind::Centralized => Box::new(CentralizedBarrier::new(n)),
            BarrierKind::AtomicCount => Box::new(AtomicCountBarrier::new(n)),
            BarrierKind::Tree => Box::new(TreeBarrier::new(n).with_parker(parker)),
        }
    }
}

/// The barrier/termination-detection interface the worker loop drives.
///
/// Contract (shared by all implementations):
///
/// * [`task_created`](TeamBarrier::task_created) is called by the
///   spawning worker **before** the task becomes visible to any queue;
/// * [`task_finished`](TeamBarrier::task_finished) is called by the
///   executing worker **after** the task body has returned;
/// * [`arrive`](TeamBarrier::arrive) is called once per worker when it
///   reaches the end-of-region barrier (the master calls it after the
///   region closure returns; other workers on entry to their loop);
/// * [`try_release`](TeamBarrier::try_release) must be called only by an
///   *idle* worker (one holding no task), and returns `true` once the
///   barrier has released; after that the worker must leave the loop.
pub(crate) trait TeamBarrier: Send + Sync {
    /// Records that `worker` created a task (before it is published).
    fn task_created(&self, worker: usize);
    /// Records that `worker` finished executing a task.
    fn task_finished(&self, worker: usize);
    /// Worker has reached the region-end barrier construct.
    fn arrive(&self, worker: usize);
    /// Idle worker polls for release. `true` = region complete.
    fn try_release(&self, worker: usize) -> bool;
    /// Implementation name (reports, debugging).
    fn name(&self) -> &'static str;
}
