//! The XGOMP barrier: the global task lock is gone, but termination is
//! still detected through one globally shared atomic task counter updated
//! with acquire-release RMW operations (§III-A: "We convert this variable
//! to an atomic variable with an acquire-release memory order strategy").
//!
//! Every task creation and completion is a `lock xadd` on the same cache
//! line from every core — the hardware synchronization cost the paper's
//! tree barrier subsequently removes (§III-B).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};

use super::TeamBarrier;

/// Shared-atomic-counter barrier (the XGOMP model).
pub struct AtomicCountBarrier {
    n: usize,
    /// Outstanding tasks (created − finished), acq-rel updates.
    task_count: AtomicI64,
    /// Workers that have reached the region-end barrier.
    arrived: AtomicUsize,
    released: AtomicBool,
}

impl AtomicCountBarrier {
    /// Barrier for a team of `n`.
    pub fn new(n: usize) -> Self {
        AtomicCountBarrier {
            n,
            task_count: AtomicI64::new(0),
            arrived: AtomicUsize::new(0),
            released: AtomicBool::new(false),
        }
    }
}

impl TeamBarrier for AtomicCountBarrier {
    #[inline]
    fn task_created(&self, _worker: usize) {
        self.task_count.fetch_add(1, Ordering::AcqRel);
    }

    #[inline]
    fn task_finished(&self, _worker: usize) {
        let prev = self.task_count.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "task_count underflow");
    }

    fn arrive(&self, _worker: usize) {
        self.arrived.fetch_add(1, Ordering::AcqRel);
    }

    fn try_release(&self, _worker: usize) -> bool {
        if self.released.load(Ordering::Acquire) {
            return true;
        }
        // Order matters: arrivals stop changing once == n (workers arrive
        // exactly once), so checking arrivals first then the count gives
        // a safe conjunction — when the count reads 0 with everyone
        // arrived, no task is live and none can be created (spawns happen
        // only inside task bodies or the master closure, and the master
        // has arrived).
        if self.arrived.load(Ordering::Acquire) == self.n
            && self.task_count.load(Ordering::Acquire) == 0
        {
            self.released.store(true, Ordering::Release);
            true
        } else {
            false
        }
    }

    fn name(&self) -> &'static str {
        "atomic-count(XGOMP)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_requires_arrivals_and_zero_count() {
        let b = AtomicCountBarrier::new(2);
        b.arrive(0);
        b.task_created(0);
        assert!(!b.try_release(0));
        b.arrive(1);
        assert!(!b.try_release(0), "outstanding task must block release");
        b.task_finished(1);
        assert!(b.try_release(1));
        assert!(b.try_release(0));
    }

    #[test]
    fn counter_storm_no_false_release() {
        use std::sync::Arc;
        let b = Arc::new(AtomicCountBarrier::new(4));
        let mut handles = Vec::new();
        for w in 0..4usize {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50_000 {
                    b.task_created(w);
                    // Interleave a few early release probes: must never
                    // fire while our task is outstanding.
                    if i % 1000 == 0 {
                        assert!(!b.try_release(w));
                    }
                    b.task_finished(w);
                }
                b.arrive(w);
                while !b.try_release(w) {
                    std::hint::spin_loop();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.task_count.load(Ordering::SeqCst), 0);
    }
}
