//! # xgomp-core
//!
//! A from-scratch Rust reproduction of the runtime described in
//! *"Optimizing Fine-Grained Parallelism Through Dynamic Load Balancing
//! on Multi-Socket Many-Core Systems"* (IPPS 2025): GNU-OpenMP-style
//! tasking rebuilt around the lock-less **XQueue** lattice, a hybrid
//! lock-free/lock-less **distributed tree barrier**, and two lock-less
//! NUMA-aware **dynamic load balancing** strategies (NA-RP and NA-WS).
//!
//! ## Quick start
//!
//! ```
//! use xgomp_core::{Runtime, RuntimeConfig};
//!
//! // The paper's best runtime: XQueue + distributed tree barrier.
//! let rt = Runtime::new(RuntimeConfig::xgomptb(4));
//! let out = rt.parallel(|ctx| {
//!     let mut squares = vec![0u64; 32];
//!     ctx.scope(|s| {
//!         for (i, sq) in squares.iter_mut().enumerate() {
//!             s.spawn(move |_| *sq = (i as u64) * (i as u64));
//!         }
//!     }); // implicit taskwait
//!     squares.iter().sum::<u64>()
//! });
//! assert_eq!(out.result, (0..32u64).map(|i| i * i).sum::<u64>());
//! ```
//!
//! ## The five runtimes of the paper
//!
//! [`RuntimeConfig::gomp`], [`RuntimeConfig::lomp`],
//! [`RuntimeConfig::xlomp`], [`RuntimeConfig::xgomp`] and
//! [`RuntimeConfig::xgomptb`] reproduce the five configurations evaluated
//! in Figs. 1 and 4–6; adding a [`DlbConfig`] reproduces the NA-RP /
//! NA-WS variants of Fig. 7 onwards. Every region returns a
//! [`RegionOutput`] carrying the §V statistics (task locality, steal
//! accounting) and, when enabled, per-thread event timelines.
//!
//! ## Crate map
//!
//! * [`task`]-level machinery: `task`, `alloc` (malloc vs multi-level);
//! * scheduling: [`sched`] (GOMP / LOMP / XQueue backends);
//! * termination: [`barrier`] (centralized / atomic-count / tree);
//! * load balancing: [`dlb`] (messaging protocol, NA-RP, NA-WS);
//! * data parallelism: [`loops`] (`parallel_for`, NUMA-aware
//!   iteration-space scheduling over per-zone range pools);
//! * tuning: [`guidelines`] (Table IV as code).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod alloc;
pub mod barrier;
mod cancel;
mod config;
mod ctx;
pub mod dlb;
pub mod guidelines;
pub mod loops;
mod sched;
mod task;
mod team;
mod util;

pub use alloc::AllocKind;
pub use barrier::BarrierKind;
pub use cancel::{raise_cancel, CancelReason, CancelToken, CancelUnwind};
pub use config::RuntimeConfig;
pub use ctx::{Scope, TaskCtx};
pub use dlb::{DlbConfig, DlbStrategy, DlbTuning, DEFAULT_REBALANCE_INTERVAL};
#[doc(hidden)]
pub use loops::force_small_panes_for_tests;
pub use loops::{
    auto_portfolio_member, AutoPick, AutoSelector, AutoSiteStatus, ChunkPolicy, IterSpace,
    LoopBalancer, LoopError, LoopId, LoopReport, LoopSchedule, LoopSpace, SpaceKind,
    AUTO_CONFIRM_WINDOWS, AUTO_FALLBACK, AUTO_PORTFOLIO_LEN, AUTO_TRIALS_PER_MEMBER, DEFAULT_TILE,
};
pub use sched::SchedulerKind;
pub use team::{IngressSource, PersistentTeam, RegionOutput, Runtime};

// Re-exports so downstream crates need only depend on xgomp-core.
pub use xgomp_profiling::{
    chrome_json_from_dir, chrome_json_from_jsonl, clock, render_task_counts, render_timeline,
    state_summary, EventKind, LiveTaskSampler, LoopTelemetry, LoopTelemetrySnapshot, PerfLog,
    ProfileDump, PromText, StatsSnapshot, TaskSizeHistogram, TeamStats, TraceEvent, TraceLevel,
    TraceSnapshot, TraceStream, TraceStreamConfig, TraceStreamStats, Tracer, LOOP_SCHEDULES,
    LOOP_SCHEDULE_NAMES,
};
pub use xgomp_topology::{Affinity, CostModel, Locality, MachineTopology, Placement};
pub use xgomp_xqueue::{Parker, ParkerCell};

#[doc(hidden)]
pub mod internal {
    //! Internals re-exported for the benchmark harness only (allocator
    //! micro-ablation); not part of the stable API.
    pub use crate::task::Task;
}
