//! The XQueue scheduler (§III-A): static round-robin pushes into the
//! lock-less lattice, master-queue-first pops, execute-immediately on
//! overflow — plus the optional DLB engine (§IV) hooked into its
//! scheduling points.

use std::ptr::NonNull;
use std::sync::Arc;

use xgomp_profiling::WorkerStats;
use xgomp_topology::Placement;
use xgomp_xqueue::{Parker, PushCursor, XQueueLattice};

use super::Scheduler;
use crate::dlb::{DlbEngine, DlbTuning};
use crate::loops::LoopBalancer;
use crate::task::Task;
use crate::util::PerWorker;

/// XQueue lattice scheduler with optional NA-RP/NA-WS load balancing.
pub struct XQueueScheduler {
    lattice: XQueueLattice<Task>,
    cursors: PerWorker<PushCursor>,
    stats: Arc<Vec<WorkerStats>>,
    dlb: Option<DlbEngine>,
    /// Team idle parker: every successful push wakes its target row's
    /// owner if that worker is parked (free while nobody is).
    parker: Arc<Parker>,
    n: usize,
}

impl XQueueScheduler {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        n: usize,
        queue_capacity: usize,
        stats: Arc<Vec<WorkerStats>>,
        placement: Arc<Placement>,
        tuning: Option<Arc<DlbTuning>>,
        parker: Arc<Parker>,
        balancer: Arc<LoopBalancer>,
    ) -> Self {
        XQueueScheduler {
            lattice: XQueueLattice::new(n, queue_capacity),
            cursors: PerWorker::new(n, |w| PushCursor::new(n, w)),
            dlb: tuning
                .map(|t| DlbEngine::new(n, t, placement, stats.clone(), parker.clone(), balancer)),
            stats,
            parker,
            n,
        }
    }

    /// The configured DLB strategy name, if any (reports).
    #[allow(dead_code)]
    pub fn dlb_name(&self) -> Option<&'static str> {
        self.dlb.as_ref().map(|d| d.config().strategy.name())
    }
}

impl Scheduler for XQueueScheduler {
    fn spawn(&self, w: usize, task: NonNull<Task>) -> Result<(), NonNull<Task>> {
        // NA-RP override: while a redirect is armed, new tasks flow to
        // the thief instead of the round-robin target (Alg. 3).
        if let Some(dlb) = &self.dlb {
            // SAFETY: worker-ownership contract from the team loop.
            if let Some(thief) = unsafe { dlb.redirect_target(w, &self.lattice) } {
                // SAFETY: w owns producer role w; `redirect_target` only
                // returns a thief whose queue had room (exact producer-
                // side hint), and only this worker produces into it.
                unsafe { self.lattice.push(w, thief, task) }
                    .expect("redirect push after negative fullness hint");
                self.parker.notify_push(thief);
                return Ok(());
            }
        }
        // Static round-robin across consumers, master queue first.
        // SAFETY: leaf access to the worker-owned cursor.
        let target = unsafe { self.cursors.with(w, |c| c.next()) };
        // SAFETY: w owns producer role w.
        match unsafe { self.lattice.push(w, target, task) } {
            Ok(()) => {
                WorkerStats::inc(&self.stats[w].ntasks_static_push);
                if target != w {
                    self.parker.notify_push(target);
                }
                Ok(())
            }
            // Full: hand back for immediate execution (§II-B).
            Err(t) => Err(t),
        }
    }

    fn spawn_to(&self, w: usize, target: usize, task: NonNull<Task>) -> Result<(), NonNull<Task>> {
        // Explicit placement (loop-drain tasks): bypass both the NA-RP
        // redirect and the round-robin cursor — the caller chose the
        // consumer. The overflow rule still applies; a full target queue
        // hands the task back for immediate execution on the caller.
        let target = target % self.n;
        // SAFETY: w owns producer role w.
        match unsafe { self.lattice.push(w, target, task) } {
            Ok(()) => {
                WorkerStats::inc(&self.stats[w].ntasks_static_push);
                if target != w {
                    self.parker.notify_push(target);
                }
                Ok(())
            }
            Err(t) => Err(t),
        }
    }

    fn next_task(&self, w: usize) -> Option<NonNull<Task>> {
        // SAFETY: w owns consumer role w.
        unsafe { self.lattice.pop(w) }
    }

    fn pre_execute(&self, w: usize) {
        if let Some(dlb) = &self.dlb {
            // SAFETY: worker-ownership contract from the team loop.
            unsafe {
                dlb.on_active(w);
                dlb.on_found_task(w, &self.lattice);
            }
        }
    }

    fn on_idle(&self, w: usize) {
        if let Some(dlb) = &self.dlb {
            // SAFETY: worker-ownership contract from the team loop.
            unsafe { dlb.on_idle(w) };
        }
    }

    fn has_work_hint(&self, w: usize) -> bool {
        // SAFETY: worker-ownership contract from the team loop — the
        // calling thread owns consumer role `w`.
        !unsafe { self.lattice.is_empty_hint(w) }
    }

    fn drain_all(&self, f: &mut dyn FnMut(NonNull<Task>)) {
        // Single-threaded teardown: all roles are free to claim.
        for c in 0..self.n {
            // SAFETY: no other thread is alive; roles trivially unique.
            unsafe { self.lattice.drain_with(c, &mut *f) };
        }
    }

    fn name(&self) -> &'static str {
        match self.dlb.as_ref().map(|d| d.config().strategy) {
            None => "xqueue(static)",
            Some(crate::dlb::DlbStrategy::RedirectPush) => "xqueue(NA-RP)",
            Some(crate::dlb::DlbStrategy::WorkSteal) => "xqueue(NA-WS)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlb::{DlbConfig, DlbStrategy};
    use xgomp_topology::{Affinity, MachineTopology};

    fn mk(creator: u32) -> NonNull<Task> {
        NonNull::new(Box::into_raw(Box::new(Task::new(None, None, creator, 0)))).unwrap()
    }

    unsafe fn free(p: NonNull<Task>) {
        drop(unsafe { Box::from_raw(p.as_ptr()) });
    }

    fn build(n: usize, cap: usize, dlb: Option<DlbConfig>) -> XQueueScheduler {
        let stats = Arc::new((0..n).map(|_| WorkerStats::default()).collect::<Vec<_>>());
        let placement = Arc::new(Placement::new(
            MachineTopology::fit_workers(n),
            n,
            Affinity::Close,
        ));
        let tuning = dlb.map(|cfg| Arc::new(DlbTuning::new(cfg)));
        let parker = Arc::new(Parker::new(
            &(0..n).map(|w| placement.zone_of(w)).collect::<Vec<_>>(),
        ));
        let balancer = Arc::new(LoopBalancer::new());
        XQueueScheduler::new(n, cap, stats, placement, tuning, parker, balancer)
    }

    #[test]
    fn round_robin_spreads_tasks() {
        let s = build(3, 16, None);
        let ptrs: Vec<_> = (0..3).map(|_| mk(0)).collect();
        for &p in &ptrs {
            s.spawn(0, p).unwrap();
        }
        // First push went to worker 0's master queue; the other two to
        // workers 1 and 2.
        assert!(s.next_task(0).is_some());
        assert!(s.next_task(1).is_some());
        assert!(s.next_task(2).is_some());
        for p in ptrs {
            unsafe { free(p) };
        }
    }

    #[test]
    fn overflow_hands_back_for_immediate_execution() {
        let s = build(1, 2, None);
        let a = mk(0);
        let b = mk(0);
        let c = mk(0);
        assert!(s.spawn(0, a).is_ok());
        assert!(s.spawn(0, b).is_ok());
        match s.spawn(0, c) {
            Err(p) => assert_eq!(p, c),
            Ok(()) => panic!("capacity-2 queue accepted a third task"),
        }
        let snap = s.stats[0].snapshot();
        assert_eq!(snap.ntasks_static_push, 2);
        let mut n = 0;
        s.drain_all(&mut |p| {
            n += 1;
            unsafe { free(p) };
        });
        assert_eq!(n, 2);
        unsafe { free(c) };
    }

    #[test]
    fn dlb_hooks_are_wired() {
        let cfg = DlbConfig::new(DlbStrategy::WorkSteal)
            .n_victim(4)
            .t_interval(2);
        let s = build(4, 16, Some(cfg));
        assert_eq!(s.name(), "xqueue(NA-WS)");
        assert_eq!(s.dlb_name(), Some("NA-WS"));
        // Idle hook sends requests.
        s.on_idle(1);
        assert!(s.stats[1].snapshot().nreq_sent >= 1);
    }

    #[test]
    fn redirect_push_reroutes_spawns() {
        let cfg = DlbConfig::new(DlbStrategy::RedirectPush)
            .n_steal(2)
            .p_local(1.0);
        let s = build(2, 16, Some(cfg));
        // Thief 1 deposits a request directly.
        let dlb = s.dlb.as_ref().unwrap();
        assert!(dlb.cell(0).try_send_request(1));
        // Victim 0 reaches a scheduling point (found-task hook).
        s.pre_execute(0);
        // The next two spawns from 0 land in 1's queue.
        let a = mk(0);
        let b = mk(0);
        s.spawn(0, a).unwrap();
        s.spawn(0, b).unwrap();
        assert_eq!(s.next_task(1), Some(a));
        assert_eq!(s.next_task(1), Some(b));
        assert_eq!(s.stats[0].snapshot().ntasks_stolen, 2);
        unsafe {
            free(a);
            free(b);
        }
    }
}
