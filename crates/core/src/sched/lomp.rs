//! The LOMP scheduler model: LLVM OpenMP-style per-worker lock-free
//! deques with random work stealing.
//!
//! LLVM's tasking runtime gives each thread its own deque; owners push
//! and pop LIFO (depth-first, cache-friendly) while thieves steal FIFO
//! from the other end using CAS — *lock-free*, not lock-less, which is
//! the contrast the paper draws against XQueue. Built on
//! `crossbeam-deque` (the canonical Chase–Lev implementation in Rust).

use std::ptr::NonNull;
use std::sync::Arc;

use crossbeam_deque::{Steal, Stealer, Worker as Deque};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xgomp_profiling::WorkerStats;
use xgomp_xqueue::Parker;

use super::{Scheduler, TaskPtr};
use crate::task::Task;
use crate::util::PerWorker;

/// Per-worker lock-free deques with random stealing (the LOMP baseline).
pub struct LompScheduler {
    /// Owner-side deque handles (worker-owned slots).
    deques: PerWorker<Deque<TaskPtr>>,
    /// Thief-side handles, shareable by anyone.
    stealers: Box<[Stealer<TaskPtr>]>,
    rng: PerWorker<SmallRng>,
    stats: Arc<Vec<WorkerStats>>,
    parker: Arc<Parker>,
    n: usize,
}

impl LompScheduler {
    pub(crate) fn new(n: usize, stats: Arc<Vec<WorkerStats>>, parker: Arc<Parker>) -> Self {
        let owners: Vec<Deque<TaskPtr>> = (0..n).map(|_| Deque::new_lifo()).collect();
        let stealers: Box<[Stealer<TaskPtr>]> = owners.iter().map(|d| d.stealer()).collect();
        let mut it = owners.into_iter();
        LompScheduler {
            deques: PerWorker::new(n, |_| it.next().expect("one deque per worker")),
            stealers,
            rng: PerWorker::new(n, |w| {
                SmallRng::seed_from_u64(0x103F_5EED ^ ((w as u64) << 13))
            }),
            stats,
            parker,
            n,
        }
    }
}

impl Scheduler for LompScheduler {
    fn spawn(&self, w: usize, task: NonNull<Task>) -> Result<(), NonNull<Task>> {
        // SAFETY: worker-ownership contract (team loop); leaf access.
        unsafe { self.deques.with(w, |d| d.push(TaskPtr(task))) };
        WorkerStats::inc(&self.stats[w].ntasks_static_push);
        // Stealing is pull-based: a parked thief would never come for
        // this task, so wake one (zone-local to the spawner first).
        self.parker.notify_any(self.parker.zone_of(w));
        Ok(())
    }

    fn next_task(&self, w: usize) -> Option<NonNull<Task>> {
        // Own deque first (LIFO — depth-first on own work).
        // SAFETY: worker-ownership contract; leaf access.
        if let Some(t) = unsafe { self.deques.with(w, |d| d.pop()) } {
            return Some(t.0);
        }
        if self.n == 1 {
            return None;
        }
        // Steal: a few random victims per scheduling point.
        for _ in 0..self.n.min(4) {
            // SAFETY: leaf access.
            let victim = unsafe {
                self.rng.with(w, |rng| {
                    let mut v = rng.gen_range(0..self.n - 1);
                    if v >= w {
                        v += 1;
                    }
                    v
                })
            };
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(t) => return Some(t.0),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    fn has_work_hint(&self, _w: usize) -> bool {
        // Any deque's backlog is reachable from any worker via stealing.
        self.stealers.iter().any(|s| !s.is_empty())
    }

    fn drain_all(&self, f: &mut dyn FnMut(NonNull<Task>)) {
        // Single-threaded teardown: stealing from every deque is safe.
        for s in self.stealers.iter() {
            loop {
                match s.steal() {
                    Steal::Success(t) => f(t.0),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "lomp(work-steal-deques)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> NonNull<Task> {
        NonNull::new(Box::into_raw(Box::new(Task::new(None, None, 0, 0)))).unwrap()
    }

    unsafe fn free(p: NonNull<Task>) {
        drop(unsafe { Box::from_raw(p.as_ptr()) });
    }

    fn stats(n: usize) -> Arc<Vec<WorkerStats>> {
        Arc::new((0..n).map(|_| WorkerStats::default()).collect())
    }

    fn parker(n: usize) -> Arc<Parker> {
        Arc::new(Parker::new(&vec![0usize; n]))
    }

    #[test]
    fn lifo_on_own_deque() {
        let s = LompScheduler::new(2, stats(2), parker(2));
        let a = mk();
        let b = mk();
        s.spawn(0, a).unwrap();
        s.spawn(0, b).unwrap();
        assert_eq!(s.next_task(0), Some(b), "own pops are LIFO");
        assert_eq!(s.next_task(0), Some(a));
        unsafe {
            free(a);
            free(b);
        }
    }

    #[test]
    fn idle_worker_steals_from_busy_one() {
        let s = LompScheduler::new(2, stats(2), parker(2));
        let a = mk();
        s.spawn(0, a).unwrap();
        assert_eq!(s.next_task(1), Some(a), "worker 1 must steal");
        unsafe { free(a) };
    }

    #[test]
    fn single_worker_never_steals() {
        let s = LompScheduler::new(1, stats(1), parker(1));
        assert_eq!(s.next_task(0), None);
        let a = mk();
        s.spawn(0, a).unwrap();
        assert_eq!(s.next_task(0), Some(a));
        unsafe { free(a) };
    }

    #[test]
    fn threaded_conservation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let s = Arc::new(LompScheduler::new(4, stats(4), parker(4)));
        let popped = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for w in 0..4usize {
            let s = s.clone();
            let popped = popped.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000 {
                    let t = mk();
                    s.spawn(w, t).unwrap();
                    if i % 2 == 0 {
                        if let Some(p) = s.next_task(w) {
                            popped.fetch_add(1, Ordering::Relaxed);
                            unsafe { free(p) };
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut leftover = 0;
        s.drain_all(&mut |p| {
            leftover += 1;
            unsafe { free(p) };
        });
        assert_eq!(popped.load(Ordering::Relaxed) + leftover, 20_000);
    }
}
