//! The GOMP scheduler model: one globally shared priority task queue
//! behind one global lock (§II-A).
//!
//! GNU OpenMP protects task management — enqueue, dequeue, scheduling,
//! bookkeeping — with a single task lock; every scheduling point from
//! every worker serializes on it. This model reproduces that contention
//! structure: `spawn` and `next_task` each take the global mutex, and
//! dequeue order follows GNU's priority queue (highest priority first,
//! FIFO within a priority level).

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::ptr::NonNull;
use std::sync::Arc;

use parking_lot::Mutex;
use xgomp_profiling::WorkerStats;
use xgomp_xqueue::Parker;

use super::{Scheduler, TaskPtr};
use crate::task::Task;

struct Entry {
    priority: i32,
    /// Monotonic sequence breaking priority ties FIFO.
    seq: u64,
    ptr: TaskPtr,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Max-heap: higher priority first; then *older* seq first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct GlobalQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

/// Global locked priority queue (the GOMP baseline).
pub struct GompScheduler {
    queue: Mutex<GlobalQueue>,
    stats: Arc<Vec<WorkerStats>>,
    parker: Arc<Parker>,
}

impl GompScheduler {
    pub(crate) fn new(stats: Arc<Vec<WorkerStats>>, parker: Arc<Parker>) -> Self {
        GompScheduler {
            queue: Mutex::new(GlobalQueue::default()),
            stats,
            parker,
        }
    }
}

impl Scheduler for GompScheduler {
    fn spawn(&self, w: usize, task: NonNull<Task>) -> Result<(), NonNull<Task>> {
        // SAFETY: the task record is live; reading its priority is benign.
        let priority = unsafe { task.as_ref() }.priority();
        let mut q = self.queue.lock();
        let seq = q.next_seq;
        q.next_seq += 1;
        q.heap.push(Entry {
            priority,
            seq,
            ptr: TaskPtr(task),
        });
        drop(q);
        WorkerStats::inc(&self.stats[w].ntasks_static_push);
        // Any worker can pop the global queue: wake one parked worker,
        // zone-local to the spawner first.
        self.parker.notify_any(self.parker.zone_of(w));
        Ok(())
    }

    fn next_task(&self, _w: usize) -> Option<NonNull<Task>> {
        // The global-lock acquisition at every scheduling point is the
        // modeled phenomenon — even when the queue turns out to be empty.
        self.queue.lock().heap.pop().map(|e| e.ptr.0)
    }

    fn has_work_hint(&self, _w: usize) -> bool {
        !self.queue.lock().heap.is_empty()
    }

    fn drain_all(&self, f: &mut dyn FnMut(NonNull<Task>)) {
        let mut q = self.queue.lock();
        while let Some(e) = q.heap.pop() {
            f(e.ptr.0);
        }
    }

    fn name(&self) -> &'static str {
        "gomp(global-lock)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(priority: i32) -> NonNull<Task> {
        NonNull::new(Box::into_raw(Box::new(Task::new(None, None, 0, priority)))).unwrap()
    }

    unsafe fn free(p: NonNull<Task>) {
        drop(unsafe { Box::from_raw(p.as_ptr()) });
    }

    fn stats(n: usize) -> Arc<Vec<WorkerStats>> {
        Arc::new((0..n).map(|_| WorkerStats::default()).collect())
    }

    fn parker(n: usize) -> Arc<Parker> {
        Arc::new(Parker::new(&vec![0usize; n]))
    }

    #[test]
    fn priority_then_fifo_order() {
        let s = GompScheduler::new(stats(1), parker(1));
        let a = mk(0);
        let b = mk(5);
        let c = mk(0);
        s.spawn(0, a).unwrap();
        s.spawn(0, b).unwrap();
        s.spawn(0, c).unwrap();
        // Highest priority first.
        assert_eq!(s.next_task(0), Some(b));
        // FIFO within equal priority.
        assert_eq!(s.next_task(0), Some(a));
        assert_eq!(s.next_task(0), Some(c));
        assert_eq!(s.next_task(0), None);
        unsafe {
            free(a);
            free(b);
            free(c);
        }
    }

    #[test]
    fn drain_returns_everything() {
        let s = GompScheduler::new(stats(1), parker(1));
        let ptrs: Vec<_> = (0..10).map(|_| mk(0)).collect();
        for &p in &ptrs {
            s.spawn(0, p).unwrap();
        }
        let mut n = 0;
        s.drain_all(&mut |p| {
            n += 1;
            unsafe { free(p) };
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn cross_thread_conservation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let s = Arc::new(GompScheduler::new(stats(4), parker(4)));
        let popped = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for w in 0..4usize {
            let s = s.clone();
            let popped = popped.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let t = mk(0);
                    s.spawn(w, t).unwrap();
                    if let Some(p) = s.next_task(w) {
                        popped.fetch_add(1, Ordering::Relaxed);
                        unsafe { free(p) };
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut leftover = 0;
        s.drain_all(&mut |p| {
            leftover += 1;
            unsafe { free(p) };
        });
        assert_eq!(popped.load(Ordering::Relaxed) + leftover, 20_000);
    }
}
