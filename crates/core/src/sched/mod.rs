//! Scheduler backends: who holds the task queues and how workers find
//! work.
//!
//! | Kind | Structure | Models |
//! |------|-----------|--------|
//! | [`GompScheduler`] | one global mutex-guarded priority queue | GNU OpenMP's global task lock + priority queue (§II-A) |
//! | [`LompScheduler`] | per-worker lock-free deques + random stealing | LLVM OpenMP's tasking path |
//! | [`XQueueScheduler`] | the XQueue lattice, static round-robin push, optional lock-less DLB | XGOMP/XGOMPTB (§III-A, §IV) |

mod gomp;
mod lomp;
mod xq;

pub use gomp::GompScheduler;
pub use lomp::LompScheduler;
pub use xq::XQueueScheduler;

use std::ptr::NonNull;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use xgomp_profiling::WorkerStats;
use xgomp_topology::Placement;
use xgomp_xqueue::Parker;

use crate::dlb::DlbTuning;
use crate::loops::LoopBalancer;
use crate::task::Task;

/// Scheduler implementation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Global locked priority queue (GOMP model).
    Gomp,
    /// Per-worker lock-free work-stealing deques (LOMP model).
    Lomp,
    /// XQueue lattice with static round-robin balancing; pass a
    /// [`DlbConfig`] through [`SchedulerKind::build`] to enable NA-RP or
    /// NA-WS on top.
    XQueue,
}

impl SchedulerKind {
    /// Instantiates the scheduler for a team of `n` workers.
    ///
    /// `tuning` (hoisted by the team builder from the runtime's
    /// `DlbConfig` or supplied by a server) enables the DLB engine and
    /// stays shared with the caller, enabling hot re-tuning while the
    /// team runs (XQueue scheduler only). `parker` is the team's idle
    /// parker: schedulers wake the push target (or, for global queues, a
    /// zone-local sleeper) after publishing a task, so parked workers
    /// never miss work. `balancer` is the team's inter-socket loop
    /// balancer, probed from the DLB engine's idle hook.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        self,
        n: usize,
        queue_capacity: usize,
        stats: Arc<Vec<WorkerStats>>,
        placement: Arc<Placement>,
        tuning: Option<Arc<DlbTuning>>,
        parker: Arc<Parker>,
        balancer: Arc<LoopBalancer>,
    ) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Gomp => Box::new(GompScheduler::new(stats, parker)),
            SchedulerKind::Lomp => Box::new(LompScheduler::new(n, stats, parker)),
            SchedulerKind::XQueue => Box::new(XQueueScheduler::new(
                n,
                queue_capacity,
                stats,
                placement,
                tuning,
                parker,
                balancer,
            )),
        }
    }
}

/// The scheduling-point interface the worker loop drives.
///
/// All methods take the worker index; methods touching per-worker state
/// carry the worker-ownership contract (the calling thread must be the
/// one running worker `w`), which the team enforces structurally.
pub(crate) trait Scheduler: Send + Sync {
    /// Publishes a freshly spawned task. `Err(task)` hands the task back
    /// for immediate execution (the XQueue overflow rule); unbounded
    /// schedulers never return `Err`.
    fn spawn(&self, w: usize, task: NonNull<Task>) -> Result<(), NonNull<Task>>;

    /// Publishes a task with a *placement target*: the caller wants
    /// `target` (a worker index) to execute it — the zone-affine initial
    /// placement of `parallel_for`'s per-worker loop-drain tasks. The
    /// default ignores the hint (schedulers without per-worker queues
    /// cannot honor it); the overflow rule is as for
    /// [`spawn`](Self::spawn).
    fn spawn_to(&self, w: usize, target: usize, task: NonNull<Task>) -> Result<(), NonNull<Task>> {
        let _ = target;
        self.spawn(w, task)
    }

    /// Fetches the next task for worker `w`, if any.
    fn next_task(&self, w: usize) -> Option<NonNull<Task>>;

    /// Scheduling-point hook fired after `next_task` succeeded, before
    /// execution (the DLB *victim* hook).
    fn pre_execute(&self, _w: usize) {}

    /// Hook fired when `next_task` returned `None` (the DLB *thief*
    /// hook).
    fn on_idle(&self, _w: usize) {}

    /// Racy hint that worker `w` could find a task right now — the
    /// pre-park re-check of the event-driven idle path. May report stale
    /// `true` (the worker cancels its park and re-probes, harmless); a
    /// `false` is only trusted because every producer wakes its push
    /// target *after* publishing, closing the race with a `SeqCst` fence
    /// pair (see `xgomp_xqueue::parker`).
    fn has_work_hint(&self, w: usize) -> bool;

    /// Removes every remaining task (teardown path; the region barrier
    /// guarantees emptiness, so anything drained here is a bug surfaced
    /// by the caller). Called single-threaded after all workers joined.
    fn drain_all(&self, f: &mut dyn FnMut(NonNull<Task>));

    /// Implementation name for reports.
    fn name(&self) -> &'static str;
}

/// A `Send` wrapper for task pointers stored inside scheduler containers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TaskPtr(pub NonNull<Task>);
// SAFETY: `Task` is `Send`; the pointer is an owning handle moved between
// threads through the queues.
unsafe impl Send for TaskPtr {}
