//! Task representation and lifecycle.
//!
//! A [`Task`] is a heap-allocated record carrying a boxed body, a pointer
//! to its parent task, an unfinished-children counter (the `taskwait`
//! condition), and an intrusive reference count that keeps the record
//! alive while children may still decrement the parent's counter.
//!
//! ## Reference-counting protocol
//!
//! * A task is born with `refs = 1` (the *handle* reference owned by
//!   whoever will eventually execute it: a queue slot, or the spawning
//!   worker on the immediate-execution path).
//! * Spawning a child *retains* the parent once; the child *releases*
//!   that reference after it completes (right after decrementing the
//!   parent's `unfinished_children`).
//! * When `refs` reaches zero the record is returned to the allocator.
//!
//! The dependency updates are atomic RMW operations — exactly as in the
//! paper's XGOMP, which keeps "atomically update the parent task's
//! dependency" while removing the global task lock (§III-A). The
//! *lock-less* claims apply to the queues, the DLB messaging, and the
//! barrier release path, not to dependency counting.

use std::cell::UnsafeCell;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use crate::cancel::CancelToken;
use crate::ctx::TaskCtx;

/// A task body: consumed exactly once when the task executes.
pub(crate) type TaskBody = Box<dyn FnOnce(&TaskCtx<'_>) + Send + 'static>;

/// A caught panic payload, carried from a panicking child to its
/// parent's next `taskwait` (panic-isolating teams only).
pub(crate) type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// One schedulable task.
///
/// Created by [`crate::ctx::TaskCtx::spawn`] and friends; users never see
/// this type directly — it is `pub` only for the benchmark harness's
/// allocator ablations.
pub struct Task {
    /// The body; `None` for implicit (root) tasks and after execution.
    body: UnsafeCell<Option<TaskBody>>,
    /// Parent task; retained while this task is alive.
    parent: Option<NonNull<Task>>,
    /// Direct children that have not completed yet (taskwait condition).
    unfinished_children: AtomicU64,
    /// Intrusive reference count (see module docs).
    refs: AtomicU32,
    /// Worker that created this task (locality accounting).
    creator: u32,
    /// GOMP-style priority (higher runs first in the GOMP scheduler).
    priority: i32,
    /// Claim word for `child_panic` (first panicking child wins).
    child_panic_claimed: AtomicBool,
    /// Payload of the first child that panicked (panic-isolating teams;
    /// written under the claim, read by the executor after quiescence).
    child_panic: UnsafeCell<Option<PanicPayload>>,
    /// Cancellation token, inherited by spawned children. Written by
    /// the executing worker (job wrapper install) and read at spawn
    /// time by the same worker — the single-executor discipline that
    /// guards `body` covers it, and queue handoff publishes it to
    /// whichever worker executes a child.
    cancel: UnsafeCell<Option<CancelToken>>,
}

// SAFETY: bodies are `Send`; all shared mutable state is atomic or
// guarded by the single-executor discipline (`body` is taken exactly once
// by the executing worker).
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    /// Creates a task record. `parent`, when present, must already have
    /// been retained on behalf of this child.
    pub(crate) fn new(
        body: Option<TaskBody>,
        parent: Option<NonNull<Task>>,
        creator: u32,
        priority: i32,
    ) -> Self {
        Task {
            body: UnsafeCell::new(body),
            parent,
            unfinished_children: AtomicU64::new(0),
            refs: AtomicU32::new(1),
            creator,
            priority,
            child_panic_claimed: AtomicBool::new(false),
            child_panic: UnsafeCell::new(None),
            cancel: UnsafeCell::new(None),
        }
    }

    /// Re-initializes a recycled record in place (multi-level allocator
    /// fast path). The record must be dead (`refs == 0`, body `None`).
    ///
    /// # Safety
    ///
    /// `this` must point to a record previously released to the allocator
    /// by [`release_ref`](Self::release_ref) returning `true`.
    pub(crate) unsafe fn reinit(
        this: NonNull<Task>,
        body: Option<TaskBody>,
        parent: Option<NonNull<Task>>,
        creator: u32,
        priority: i32,
    ) {
        // SAFETY: caller guarantees exclusive access to a dead record.
        let t = unsafe { &mut *this.as_ptr() };
        debug_assert_eq!(*t.refs.get_mut(), 0, "reinit of a live task");
        *t.body.get_mut() = body;
        t.parent = parent;
        *t.unfinished_children.get_mut() = 0;
        *t.refs.get_mut() = 1;
        t.creator = creator;
        t.priority = priority;
        *t.child_panic_claimed.get_mut() = false;
        *t.child_panic.get_mut() = None;
        *t.cancel.get_mut() = None;
    }

    /// Installs (or clears) the cancellation token on this task.
    ///
    /// # Safety
    ///
    /// Only the executing worker may call this (single-executor
    /// discipline), and not while a child spawn could be reading it.
    #[inline]
    pub(crate) unsafe fn set_cancel(this: NonNull<Task>, token: Option<CancelToken>) {
        // SAFETY: single-executor discipline gives exclusive access.
        unsafe { *(*this.as_ptr()).cancel.get() = token };
    }

    /// The task's cancellation token, if one is installed.
    ///
    /// # Safety
    ///
    /// Only the executing worker may call this (single-executor
    /// discipline).
    #[inline]
    pub(crate) unsafe fn cancel_token(this: NonNull<Task>) -> Option<CancelToken> {
        // SAFETY: single-executor discipline; clone leaves the slot set.
        unsafe { (*(*this.as_ptr()).cancel.get()).clone() }
    }

    /// The worker that created this task.
    #[inline]
    pub(crate) fn creator(&self) -> usize {
        self.creator as usize
    }

    /// GOMP priority.
    #[inline]
    pub(crate) fn priority(&self) -> i32 {
        self.priority
    }

    /// Parent pointer (root/implicit tasks have none).
    #[inline]
    pub(crate) fn parent(&self) -> Option<NonNull<Task>> {
        self.parent
    }

    /// Number of direct children that have not completed.
    #[inline]
    pub(crate) fn unfinished_children(&self) -> u64 {
        self.unfinished_children.load(Ordering::Acquire)
    }

    /// Registers a new child (called by the spawning worker, which *is*
    /// the executor of this task, before making the child visible).
    #[inline]
    pub(crate) fn add_child(&self) {
        self.unfinished_children.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one child complete. `Release` so the parent's `taskwait`
    /// acquire-load observes everything the child did.
    #[inline]
    pub(crate) fn child_completed(&self) {
        let prev = self.unfinished_children.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "child_completed underflow");
    }

    /// Takes the body for execution. Returns `None` for implicit tasks.
    ///
    /// # Safety
    ///
    /// Only the executing worker may call this, exactly once per
    /// task activation (single-executor discipline).
    #[inline]
    pub(crate) unsafe fn take_body(this: NonNull<Task>) -> Option<TaskBody> {
        // SAFETY: single-executor discipline gives exclusive body access.
        unsafe { (*this.as_ptr()).body.get().as_mut().unwrap().take() }
    }

    /// Deposits the panic payload of a failed child; the first child to
    /// panic wins, later payloads are dropped. Called by the child's
    /// executor *before* `child_completed`, so the parent's quiescence
    /// check (`unfinished_children == 0`, acquire) also orders this
    /// write before any `take_child_panic`.
    pub(crate) fn record_child_panic(&self, payload: PanicPayload) {
        if self
            .child_panic_claimed
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the claim grants exclusive write access; no reader
            // runs until this child has also counted as completed.
            unsafe { *self.child_panic.get() = Some(payload) };
        }
    }

    /// Takes the recorded child panic, if any, re-arming the slot so a
    /// later child panic (after the caller handled this one) is not
    /// silently swallowed. Only the task's executor may call this, and
    /// only while no child is in flight.
    pub(crate) fn take_child_panic(&self) -> Option<PanicPayload> {
        if self.child_panic_claimed.load(Ordering::Acquire) {
            // SAFETY: single-executor discipline + quiescence (no child
            // can be writing concurrently).
            let payload = unsafe { (*self.child_panic.get()).take() };
            self.child_panic_claimed.store(false, Ordering::Release);
            payload
        } else {
            None
        }
    }

    /// Increments the reference count.
    #[inline]
    pub(crate) fn retain(&self) {
        let prev = self.refs.fetch_add(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "retain of a dead task");
    }

    /// Decrements the reference count; returns `true` when this was the
    /// last reference and the record may be recycled.
    #[inline]
    pub(crate) fn release_ref(&self) -> bool {
        let prev = self.refs.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "release_ref underflow");
        if prev == 1 {
            // Synchronize with all prior releases before the record is
            // reused (standard Arc-style protocol).
            std::sync::atomic::fence(Ordering::Acquire);
            true
        } else {
            false
        }
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("creator", &self.creator)
            .field("priority", &self.priority)
            .field(
                "unfinished_children",
                &self.unfinished_children.load(Ordering::Relaxed),
            )
            .field("refs", &self.refs.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refcount_protocol() {
        let t = Task::new(None, None, 0, 0);
        t.retain();
        assert!(!t.release_ref());
        assert!(t.release_ref());
    }

    #[test]
    fn child_accounting() {
        let t = Task::new(None, None, 3, 0);
        assert_eq!(t.unfinished_children(), 0);
        t.add_child();
        t.add_child();
        assert_eq!(t.unfinished_children(), 2);
        t.child_completed();
        assert_eq!(t.unfinished_children(), 1);
        t.child_completed();
        assert_eq!(t.unfinished_children(), 0);
        assert_eq!(t.creator(), 3);
        assert!(t.release_ref());
    }

    #[test]
    fn reinit_resets_everything() {
        let boxed = Box::new(Task::new(None, None, 1, 5));
        let ptr = NonNull::new(Box::into_raw(boxed)).unwrap();
        // Kill it, then reinit as a different task.
        unsafe {
            assert!((*ptr.as_ptr()).release_ref());
            Task::reinit(ptr, None, None, 7, -2);
            let t = ptr.as_ref();
            assert_eq!(t.creator(), 7);
            assert_eq!(t.priority(), -2);
            assert_eq!(t.unfinished_children(), 0);
            assert!(t.release_ref());
            drop(Box::from_raw(ptr.as_ptr()));
        }
    }
}
