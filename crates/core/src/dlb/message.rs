//! The lock-less messaging protocol (§IV-B, Algs. 1–2).
//!
//! Each worker owns two 64-bit cells:
//!
//! * **round** — written only by the worker itself (as a victim),
//!   monotonically increasing from 1; a bump means "the previous request
//!   has been handled, new requests welcome".
//! * **request** — written by thieves: the victim's current round number
//!   (low 40 bits) packed with the thief's worker id (high 24 bits).
//!
//! A thief sends a request only when the round embedded in the current
//! request cell is *older* than the victim's round cell (Alg. 1), i.e.
//! no unhandled request is pending. A victim treats a request as valid
//! only when its embedded round equals the victim's current round
//! (Alg. 2). Requests may be overwritten by racing thieves — that is
//! benign and acknowledged by the paper (the loser retries after its
//! timeout).
//!
//! All accesses are single `load`/`store` atomics (no RMW): the round
//! cell has one writer (the victim); the request cell is multi-writer
//! but a plain last-writer-wins store is exactly the intended semantics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bits reserved for the round number in a request word (low bits).
pub const ROUND_BITS: u32 = 40;
/// Mask extracting the round number from a request word.
pub const ROUND_MASK: u64 = (1 << ROUND_BITS) - 1;

/// Packs a request word: thief id in the high 24 bits, round in the low
/// 40 (the paper's `(tid << 40) | round`).
#[inline]
pub fn pack_request(thief: usize, round: u64) -> u64 {
    debug_assert!(thief < (1 << 24), "worker id exceeds 24 bits");
    ((thief as u64) << ROUND_BITS) | (round & ROUND_MASK)
}

/// Round number embedded in a request word.
#[inline]
pub fn request_round(req: u64) -> u64 {
    req & ROUND_MASK
}

/// Thief id embedded in a request word.
#[inline]
pub fn request_thief(req: u64) -> usize {
    (req >> ROUND_BITS) as usize
}

/// One worker's message cells.
#[derive(Debug)]
pub struct MsgCell {
    /// Victim-owned round counter, starts at 1.
    round: AtomicU64,
    /// Thief-written request word.
    request: AtomicU64,
}

impl Default for MsgCell {
    fn default() -> Self {
        MsgCell {
            round: AtomicU64::new(1),
            request: AtomicU64::new(0),
        }
    }
}

impl MsgCell {
    /// Fresh cell (round = 1, no request).
    pub fn new() -> Self {
        Self::default()
    }

    // ---- thief side (any thread) ----

    /// Alg. 1: attempts to deposit a request from `thief`. Returns `true`
    /// if the request was written (no unhandled request was pending).
    #[inline]
    pub fn try_send_request(&self, thief: usize) -> bool {
        let round = self.round.load(Ordering::Acquire);
        let req = self.request.load(Ordering::Acquire);
        if request_round(req) < round {
            // No pending request for this round: claim it. A concurrent
            // thief may overwrite us — benign (see module docs).
            self.request
                .store(pack_request(thief, round), Ordering::Release);
            true
        } else {
            false
        }
    }

    // ---- victim side (owner thread only) ----

    /// Alg. 2 check: returns the requesting thief if a request for the
    /// current round is pending. Does *not* bump the round — the caller
    /// does that when the request has been fully handled (NA-WS bumps
    /// right after migrating; NA-RP bumps when the redirect quota is
    /// exhausted, §IV-C).
    #[inline]
    pub fn take_valid_request(&self) -> Option<usize> {
        let req = self.request.load(Ordering::Acquire);
        if request_round(req) == self.round.load(Ordering::Relaxed) {
            Some(request_thief(req))
        } else {
            None
        }
    }

    /// Marks the pending request handled; the victim is willing to accept
    /// new requests (single-writer store).
    #[inline]
    pub fn bump_round(&self) {
        let r = self.round.load(Ordering::Relaxed);
        self.round.store(r + 1, Ordering::Release);
    }

    /// Victim's current round (diagnostics).
    #[inline]
    pub fn current_round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrips() {
        for thief in [0usize, 1, 23, (1 << 24) - 1] {
            for round in [0u64, 1, 999, ROUND_MASK] {
                let req = pack_request(thief, round);
                assert_eq!(request_thief(req), thief);
                assert_eq!(request_round(req), round);
            }
        }
    }

    #[test]
    fn protocol_happy_path() {
        let cell = MsgCell::new();
        assert_eq!(cell.take_valid_request(), None);
        assert!(cell.try_send_request(5));
        // Second thief is blocked while the request is unhandled.
        assert!(!cell.try_send_request(6));
        assert_eq!(cell.take_valid_request(), Some(5));
        // Still pending until the victim bumps.
        assert_eq!(cell.take_valid_request(), Some(5));
        cell.bump_round();
        assert_eq!(cell.take_valid_request(), None);
        // Now a new request can land.
        assert!(cell.try_send_request(6));
        assert_eq!(cell.take_valid_request(), Some(6));
    }

    #[test]
    fn stale_requests_are_ignored() {
        let cell = MsgCell::new();
        assert!(cell.try_send_request(2));
        cell.bump_round(); // victim handled it
        cell.bump_round(); // and another round for good measure
        assert_eq!(
            cell.take_valid_request(),
            None,
            "old request must not validate against a newer round"
        );
    }

    #[test]
    fn concurrent_thieves_never_corrupt_round() {
        use std::sync::Arc;
        let cell = Arc::new(MsgCell::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut thieves = Vec::new();
        for t in 0..3usize {
            let cell = cell.clone();
            let stop = stop.clone();
            thieves.push(std::thread::spawn(move || {
                let mut sent = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if cell.try_send_request(t + 1) {
                        sent += 1;
                    }
                }
                sent
            }));
        }
        // Victim handles requests as fast as it sees them.
        let mut handled = 0u64;
        for _ in 0..200_000 {
            if cell.take_valid_request().is_some() {
                handled += 1;
                cell.bump_round();
            }
        }
        stop.store(true, Ordering::Relaxed);
        let sent: u64 = thieves.into_iter().map(|t| t.join().unwrap()).sum();
        // Every handled request corresponds to at least one send; rounds
        // advanced exactly `handled` times.
        assert!(handled <= sent);
        assert_eq!(cell.current_round(), 1 + handled);
    }
}
