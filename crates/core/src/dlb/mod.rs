//! Lock-less NUMA-aware dynamic load balancing (§IV).
//!
//! XQueue's static round-robin balancer ignores both load and locality.
//! This module adds the paper's two DLB strategies on top of the lattice,
//! built on a lock-less messaging protocol:
//!
//! * **[`DlbStrategy::RedirectPush`] (NA-RP, Alg. 3)** — a victim that
//!   accepts a steal request *redirects its next `n_steal` newly created
//!   tasks* into the thief's queue instead of its round-robin targets.
//!   Cheap (reuses the normal enqueue), pushes work *away* from its
//!   creation site.
//! * **[`DlbStrategy::WorkSteal`] (NA-WS, Alg. 4)** — the victim
//!   *migrates up to `n_steal` already-queued tasks* from its own row to
//!   the thief's queue. Slightly more dequeue work, but tends to bring
//!   tasks *back toward* their creators, preserving locality.
//!
//! Both are driven by [`DlbConfig`]'s four knobs — `n_victim`, `n_steal`,
//! `t_interval`, `p_local` — the parameters swept in Table I and
//! Figs. 9–11.

mod engine;
mod message;

pub(crate) use engine::DlbEngine;
pub use message::{pack_request, request_round, request_thief, MsgCell, ROUND_MASK};

use serde::{Deserialize, Serialize};

/// Which dynamic load-balancing strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DlbStrategy {
    /// NUMA-aware Redirect Push (NA-RP).
    RedirectPush,
    /// NUMA-aware Work Stealing (NA-WS).
    WorkSteal,
}

impl DlbStrategy {
    /// Short name used in reports ("NA-RP" / "NA-WS").
    pub fn name(&self) -> &'static str {
        match self {
            DlbStrategy::RedirectPush => "NA-RP",
            DlbStrategy::WorkSteal => "NA-WS",
        }
    }
}

/// DLB configuration (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DlbConfig {
    /// Strategy to run.
    pub strategy: DlbStrategy,
    /// Victims a thief asks per request burst (`N_victim`).
    pub n_victim: usize,
    /// Max tasks moved per handled request (`N_steal`).
    pub n_steal: usize,
    /// Idle scheduling points between request bursts (`T_interval`).
    pub t_interval: u64,
    /// Probability a thief picks a NUMA-local victim (`P_local`).
    pub p_local: f64,
    /// Clock ticks between inter-socket *loop* rebalance probes — the
    /// coarse level of two-level loop balancing (the fine level is the
    /// per-zone range pools). `0` disables the loop balancer entirely,
    /// reproducing dry-pool steal-splitting only. Rides the same
    /// [`DlbTuning`] atomics as the task-side knobs, so the adaptive
    /// controller and `swap_tuning` re-tune it live.
    pub rebalance_interval: u64,
}

/// Default [`DlbConfig::rebalance_interval`]: one probe every ~10k
/// clock ticks (a few µs on GHz-class TSCs — the same order as the
/// default `t_interval` idle cadence).
pub const DEFAULT_REBALANCE_INTERVAL: u64 = 10_000;

impl DlbConfig {
    /// A reasonable middle-of-the-sweep default (the paper's most common
    /// best settings: moderate victims, large steals, local-leaning).
    pub fn new(strategy: DlbStrategy) -> Self {
        DlbConfig {
            strategy,
            n_victim: 8,
            n_steal: 32,
            t_interval: 10_000,
            p_local: 1.0,
            rebalance_interval: DEFAULT_REBALANCE_INTERVAL,
        }
    }

    /// Builder-style setters.
    pub fn n_victim(mut self, v: usize) -> Self {
        self.n_victim = v.max(1);
        self
    }
    /// Sets `N_steal` (≥ 1).
    pub fn n_steal(mut self, v: usize) -> Self {
        self.n_steal = v.max(1);
        self
    }
    /// Sets `T_interval` (≥ 1).
    pub fn t_interval(mut self, v: u64) -> Self {
        self.t_interval = v.max(1);
        self
    }
    /// Sets `P_local` (clamped to `[0, 1]`).
    pub fn p_local(mut self, v: f64) -> Self {
        self.p_local = v.clamp(0.0, 1.0);
        self
    }
    /// Sets the loop-rebalance probe interval in clock ticks (`0`
    /// disables the inter-socket loop balancer).
    pub fn rebalance_interval(mut self, v: u64) -> Self {
        self.rebalance_interval = v;
        self
    }

    /// The paper's Eq. 1 *steal size*:
    /// `S_steal = N_steal × N_victim / log10(T_interval)`.
    pub fn steal_size(&self) -> f64 {
        let denom = (self.t_interval.max(2) as f64).log10();
        (self.n_steal * self.n_victim) as f64 / denom
    }
}

/// A [`DlbConfig`] whose knobs can be re-tuned **while workers are
/// running** — the mechanism behind the online Table-IV adaptation in
/// `xgomp-service`.
///
/// Every field is an independent relaxed atomic: workers re-read the
/// configuration at each scheduling point, so a store becomes visible
/// within one scheduling-point latency without stopping the team. A
/// reader may transiently observe a mix of old and new fields during a
/// swap; every mix is itself a valid configuration, so this is benign
/// (the same argument the paper makes for its last-writer-wins request
/// cells).
#[derive(Debug)]
pub struct DlbTuning {
    /// 0 = NA-RP, 1 = NA-WS.
    strategy: std::sync::atomic::AtomicU8,
    n_victim: std::sync::atomic::AtomicUsize,
    n_steal: std::sync::atomic::AtomicUsize,
    t_interval: std::sync::atomic::AtomicU64,
    /// `f64::to_bits` of `p_local`.
    p_local_bits: std::sync::atomic::AtomicU64,
    /// Loop-rebalance probe cadence in ticks (0 = balancer off).
    rebalance_interval: std::sync::atomic::AtomicU64,
    /// Completed [`store`](Self::store) calls that changed the config.
    retunes: std::sync::atomic::AtomicU64,
}

impl DlbTuning {
    fn strategy_code(s: DlbStrategy) -> u8 {
        match s {
            DlbStrategy::RedirectPush => 0,
            DlbStrategy::WorkSteal => 1,
        }
    }

    /// A tuning cell seeded with `cfg`.
    pub fn new(cfg: DlbConfig) -> Self {
        use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize};
        DlbTuning {
            strategy: AtomicU8::new(Self::strategy_code(cfg.strategy)),
            n_victim: AtomicUsize::new(cfg.n_victim.max(1)),
            n_steal: AtomicUsize::new(cfg.n_steal.max(1)),
            t_interval: AtomicU64::new(cfg.t_interval.max(1)),
            p_local_bits: AtomicU64::new(cfg.p_local.clamp(0.0, 1.0).to_bits()),
            rebalance_interval: AtomicU64::new(cfg.rebalance_interval),
            retunes: AtomicU64::new(0),
        }
    }

    /// Snapshot of the active configuration.
    pub fn load(&self) -> DlbConfig {
        use std::sync::atomic::Ordering::Relaxed;
        DlbConfig {
            strategy: if self.strategy.load(Relaxed) == 0 {
                DlbStrategy::RedirectPush
            } else {
                DlbStrategy::WorkSteal
            },
            n_victim: self.n_victim.load(Relaxed),
            n_steal: self.n_steal.load(Relaxed),
            t_interval: self.t_interval.load(Relaxed),
            p_local: f64::from_bits(self.p_local_bits.load(Relaxed)),
            rebalance_interval: self.rebalance_interval.load(Relaxed),
        }
    }

    /// The loop-rebalance probe interval alone (the loop balancer's hot
    /// per-chunk gate reads just this knob).
    #[inline]
    pub fn rebalance_interval(&self) -> u64 {
        self.rebalance_interval
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Publishes `cfg` as the active configuration (hot swap). Counts a
    /// retune when anything actually changed.
    pub fn store(&self, cfg: DlbConfig) {
        use std::sync::atomic::Ordering::Relaxed;
        let changed = self.load() != cfg;
        self.strategy
            .store(Self::strategy_code(cfg.strategy), Relaxed);
        self.n_victim.store(cfg.n_victim.max(1), Relaxed);
        self.n_steal.store(cfg.n_steal.max(1), Relaxed);
        self.t_interval.store(cfg.t_interval.max(1), Relaxed);
        self.p_local_bits
            .store(cfg.p_local.clamp(0.0, 1.0).to_bits(), Relaxed);
        self.rebalance_interval
            .store(cfg.rebalance_interval, Relaxed);
        if changed {
            self.retunes.fetch_add(1, Relaxed);
        }
    }

    /// How many effective re-tunes have been published.
    pub fn retunes(&self) -> u64 {
        self.retunes.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_roundtrips_and_counts_retunes() {
        let a = DlbConfig::new(DlbStrategy::WorkSteal)
            .n_steal(4)
            .p_local(0.5);
        let t = DlbTuning::new(a);
        assert_eq!(t.load(), a);
        assert_eq!(t.retunes(), 0);
        t.store(a); // no change: not a retune
        assert_eq!(t.retunes(), 0);
        let b = DlbConfig::new(DlbStrategy::RedirectPush)
            .n_victim(24)
            .n_steal(128)
            .t_interval(1_000)
            .p_local(0.06);
        t.store(b);
        assert_eq!(t.load(), b);
        assert_eq!(t.retunes(), 1);
    }

    #[test]
    fn steal_size_matches_eq1() {
        let c = DlbConfig::new(DlbStrategy::WorkSteal)
            .n_steal(32)
            .n_victim(24)
            .t_interval(1_000);
        assert!((c.steal_size() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn builders_clamp() {
        let c = DlbConfig::new(DlbStrategy::RedirectPush)
            .n_victim(0)
            .n_steal(0)
            .t_interval(0)
            .p_local(7.0);
        assert_eq!(c.n_victim, 1);
        assert_eq!(c.n_steal, 1);
        assert_eq!(c.t_interval, 1);
        assert_eq!(c.p_local, 1.0);
        assert_eq!(c.strategy.name(), "NA-RP");
    }
}
