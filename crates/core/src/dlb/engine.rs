//! The DLB engine: thief/victim state machines for NA-RP and NA-WS
//! (§IV-C, §IV-D, Algs. 1–4), wired into the XQueue scheduler's
//! scheduling points.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use xgomp_profiling::WorkerStats;
use xgomp_topology::Placement;
use xgomp_xqueue::{Parker, XQueueLattice};

use super::message::MsgCell;
use super::{DlbConfig, DlbStrategy, DlbTuning};
use crate::loops::LoopBalancer;
use crate::task::Task;
use crate::util::{CachePadded, PerWorker};

/// Thief-side per-worker state: the idle timeout counter of §IV-B.
#[derive(Debug, Default)]
struct ThiefState {
    /// Idle scheduling points since the last request burst.
    idle_iters: u64,
}

/// Victim-side per-worker redirect state (NA-RP, Alg. 3).
#[derive(Debug)]
struct RedirectState {
    /// Current thief (`ctid_thief`); `-1` = no redirect armed.
    thief: i64,
    /// Remaining redirect quota for this request.
    remaining: u64,
    /// Tasks pushed for the current request (statistics).
    pushed: u64,
}

impl Default for RedirectState {
    fn default() -> Self {
        RedirectState {
            thief: -1,
            remaining: 0,
            pushed: 0,
        }
    }
}

/// Engine owned by the XQueue scheduler when DLB is enabled.
///
/// All four knobs are read through a [`DlbTuning`] cell at every
/// scheduling point, so an external controller holding a clone of the
/// `Arc` can hot-swap the configuration (including the strategy) while
/// the team keeps running.
pub(crate) struct DlbEngine {
    tuning: Arc<DlbTuning>,
    cells: Box<[CachePadded<MsgCell>]>,
    placement: Arc<Placement>,
    stats: Arc<Vec<WorkerStats>>,
    thief: PerWorker<ThiefState>,
    redirect: PerWorker<RedirectState>,
    rng: PerWorker<SmallRng>,
    /// Team idle parker: a victim that migrates tasks into a thief's row
    /// must wake that thief — a thief parks between request bursts, and
    /// nobody else would ever touch its row.
    parker: Arc<Parker>,
    /// Inter-socket loop balancer: idle workers double as its probe
    /// drivers, so rebalance probes keep firing even when every
    /// loop-drain task is buried in long chunks.
    balancer: Arc<LoopBalancer>,
}

impl DlbEngine {
    pub fn new(
        n: usize,
        tuning: Arc<DlbTuning>,
        placement: Arc<Placement>,
        stats: Arc<Vec<WorkerStats>>,
        parker: Arc<Parker>,
        balancer: Arc<LoopBalancer>,
    ) -> Self {
        DlbEngine {
            tuning,
            cells: (0..n)
                .map(|_| CachePadded(MsgCell::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            placement,
            stats,
            thief: PerWorker::new(n, |_| ThiefState::default()),
            redirect: PerWorker::new(n, |_| RedirectState::default()),
            // Deterministic per-worker seeds keep experiments repeatable.
            rng: PerWorker::new(n, |w| {
                SmallRng::seed_from_u64(0xD1B0_5EED ^ (w as u64) << 17)
            }),
            parker,
            balancer,
        }
    }

    /// Snapshot of the currently active configuration.
    pub fn config(&self) -> DlbConfig {
        self.tuning.load()
    }

    /// Picks a victim for thief `w`: NUMA-local with probability
    /// `p_local`, remote otherwise; falls back to the other pool when a
    /// pool is empty (single-zone or zone-filling placements).
    ///
    /// # Safety
    ///
    /// Caller thread must own worker slot `w`.
    unsafe fn pick_victim(&self, w: usize, p_local: f64) -> Option<usize> {
        let locals = self.placement.local_peers(w);
        let remotes = self.placement.remote_peers(w);
        // SAFETY: worker-ownership contract forwarded; leaf access.
        unsafe {
            self.rng.with(w, |rng| {
                let use_local = rng.gen::<f64>() < p_local;
                let pool = match (use_local, locals.is_empty(), remotes.is_empty()) {
                    (true, false, _) => locals,
                    (true, true, false) => remotes,
                    (false, _, false) => remotes,
                    (false, false, true) => locals,
                    _ => return None, // team of one
                };
                Some(pool[rng.gen_range(0..pool.len())])
            })
        }
    }

    /// Thief hook: called at every idle scheduling point (Alg. 1 plus the
    /// §IV-B timeout counter). Sends a burst of `n_victim` requests when
    /// the counter is at zero, then waits `t_interval` idle iterations
    /// before retrying.
    ///
    /// # Safety
    ///
    /// Caller thread must own worker slot `w`.
    pub unsafe fn on_idle(&self, w: usize) {
        // Inter-socket loop rebalance probe: rides the idle scheduling
        // point at its own (tick-based) cadence; a cheap gate when the
        // interval has not elapsed, a no-op when disabled or no loops
        // are live.
        self.balancer.maybe_probe(Some(&self.stats[w]));
        let cfg = self.tuning.load();
        // SAFETY: worker-ownership contract; leaf access.
        let send_now = unsafe {
            self.thief.with(w, |ts| {
                let send = ts.idle_iters == 0;
                ts.idle_iters += 1;
                if ts.idle_iters >= cfg.t_interval {
                    ts.idle_iters = 0; // timeout reached: retry next point
                }
                send
            })
        };
        if !send_now {
            return;
        }
        for _ in 0..cfg.n_victim {
            // SAFETY: forwarded contract.
            if let Some(victim) = unsafe { self.pick_victim(w, cfg.p_local) } {
                if self.cells[victim].0.try_send_request(w) {
                    WorkerStats::inc(&self.stats[w].nreq_sent);
                }
            }
        }
    }

    /// Resets the thief timeout when the worker found work ("the counter
    /// is reset … if the worker is no longer idle").
    ///
    /// # Safety
    ///
    /// Caller thread must own worker slot `w`.
    pub unsafe fn on_active(&self, w: usize) {
        // SAFETY: worker-ownership contract; leaf access.
        unsafe {
            self.thief.with(w, |ts| ts.idle_iters = 0);
        }
    }

    /// Victim hook: called when worker `w` has found a task to execute
    /// ("when a worker finds a task to execute, it becomes a victim and
    /// tries to handle a request", §IV-B).
    ///
    /// # Safety
    ///
    /// Caller thread must own worker slot `w` (producer *and* consumer
    /// roles of row/column `w` of the lattice).
    pub unsafe fn on_found_task(&self, w: usize, lattice: &XQueueLattice<Task>) {
        let cfg = self.tuning.load();
        match cfg.strategy {
            DlbStrategy::WorkSteal => {
                // A hot swap from NA-RP can leave a redirect armed with
                // its round un-bumped; retire it so the cell accepts new
                // requests under the new strategy.
                // SAFETY: worker-ownership contract; leaf access.
                unsafe {
                    self.redirect.with(w, |rd| {
                        if rd.thief >= 0 {
                            let thief = rd.thief as usize;
                            Self::finish_redirect(rd, &self.stats[w], &self.placement, w, thief);
                            self.cells[w].0.bump_round();
                        }
                    });
                }
                if let Some(thief) = self.cells[w].0.take_valid_request() {
                    WorkerStats::inc(&self.stats[w].nreq_handled);
                    // SAFETY: forwarded role contract.
                    unsafe { self.work_steal(w, thief, cfg.n_steal, lattice) };
                    self.cells[w].0.bump_round();
                }
            }
            DlbStrategy::RedirectPush => {
                // SAFETY: worker-ownership contract; leaf access.
                let armed = unsafe { self.redirect.with(w, |rd| rd.thief >= 0) };
                if armed {
                    return; // finish the current redirect first (§IV-C)
                }
                if let Some(thief) = self.cells[w].0.take_valid_request() {
                    WorkerStats::inc(&self.stats[w].nreq_handled);
                    if thief == w {
                        // Degenerate self-request; drop it.
                        self.cells[w].0.bump_round();
                        return;
                    }
                    // Arm: the next `n_steal` spawns are redirected. The
                    // round is bumped when the quota completes.
                    // SAFETY: leaf access.
                    unsafe {
                        self.redirect.with(w, |rd| {
                            rd.thief = thief as i64;
                            rd.remaining = cfg.n_steal as u64;
                            rd.pushed = 0;
                        });
                    }
                }
            }
        }
    }

    /// NA-WS migration (Alg. 4): move up to `n_steal` queued tasks from
    /// victim `w`'s row into the thief's queue.
    ///
    /// # Safety
    ///
    /// Caller thread must own worker slot `w`.
    unsafe fn work_steal(
        &self,
        w: usize,
        thief: usize,
        n_steal: usize,
        lattice: &XQueueLattice<Task>,
    ) {
        if thief == w || thief >= self.cells.len() {
            return;
        }
        let stats = &self.stats[w];
        let mut moved = 0u64;
        while (moved as usize) < n_steal {
            // Producer-side fullness check first: `is_full_hint` is exact
            // for the (thief ← w) queue because w is its only producer.
            // SAFETY: w owns producer role w.
            if unsafe { lattice.is_full_hint(w, thief) } {
                if moved == 0 {
                    WorkerStats::inc(&stats.nreq_target_full);
                }
                break;
            }
            // SAFETY: w owns consumer role w.
            match unsafe { lattice.pop(w) } {
                None => {
                    if moved == 0 {
                        WorkerStats::inc(&stats.nreq_src_empty);
                    }
                    break;
                }
                Some(task) => {
                    // SAFETY: w owns producer role w; fullness was checked
                    // and only the thief (consumer) can change occupancy,
                    // monotonically downwards.
                    unsafe { lattice.push(w, thief, task) }
                        .expect("push after negative fullness hint cannot fail");
                    moved += 1;
                }
            }
        }
        if moved > 0 {
            WorkerStats::inc(&stats.nreq_has_steal);
            WorkerStats::add(&stats.ntasks_stolen, moved);
            if self.placement.is_numa_local(w, thief) {
                WorkerStats::add(&stats.nsteal_local, moved);
            } else {
                WorkerStats::add(&stats.nsteal_remote, moved);
            }
            // The thief may have parked since sending its request; the
            // migrated tasks sit in its row, reachable by no one else.
            self.parker.notify_push(thief);
        }
    }

    /// NA-RP spawn hook (Alg. 3, `doRedirectPush`): if a redirect is
    /// armed, returns the thief to push the new task to and consumes one
    /// quota unit. Disarms (and bumps the round) when the quota is
    /// exhausted or the thief's queue is full.
    ///
    /// # Safety
    ///
    /// Caller thread must own worker slot `w`.
    pub unsafe fn redirect_target(&self, w: usize, lattice: &XQueueLattice<Task>) -> Option<usize> {
        if self.tuning.load().strategy != DlbStrategy::RedirectPush {
            // A hot swap away from NA-RP retires any armed redirect at
            // the victim's next found-task point (see `on_found_task`).
            return None;
        }
        let stats = &self.stats[w];
        // SAFETY: worker-ownership contract; the lattice probe inside is
        // a leaf producer-role call for w.
        unsafe {
            self.redirect.with(w, |rd| {
                if rd.thief < 0 {
                    return None;
                }
                let thief = rd.thief as usize;
                let full = lattice.is_full_hint(w, thief);
                if rd.remaining == 0 || full {
                    // `ctid_thief ← -1` (no thief); request completed.
                    if full && rd.pushed == 0 {
                        WorkerStats::inc(&stats.nreq_target_full);
                    }
                    Self::finish_redirect(rd, stats, &self.placement, w, thief);
                    self.cells[w].0.bump_round();
                    return None;
                }
                rd.remaining -= 1;
                rd.pushed += 1;
                if rd.remaining == 0 {
                    Self::finish_redirect(rd, stats, &self.placement, w, thief);
                    self.cells[w].0.bump_round();
                }
                Some(thief)
            })
        }
    }

    fn finish_redirect(
        rd: &mut RedirectState,
        stats: &WorkerStats,
        placement: &Placement,
        w: usize,
        thief: usize,
    ) {
        if rd.pushed > 0 {
            WorkerStats::inc(&stats.nreq_has_steal);
            WorkerStats::add(&stats.ntasks_stolen, rd.pushed);
            if placement.is_numa_local(w, thief) {
                WorkerStats::add(&stats.nsteal_local, rd.pushed);
            } else {
                WorkerStats::add(&stats.nsteal_remote, rd.pushed);
            }
        }
        rd.thief = -1;
        rd.remaining = 0;
        rd.pushed = 0;
    }

    /// Diagnostic access to a worker's message cell.
    #[cfg(test)]
    pub fn cell(&self, w: usize) -> &MsgCell {
        &self.cells[w].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ptr::NonNull;
    use xgomp_topology::{Affinity, MachineTopology};

    fn make_engine(n: usize, cfg: DlbConfig) -> (DlbEngine, XQueueLattice<Task>) {
        let placement = Arc::new(Placement::new(
            MachineTopology::new(2, 2, 1),
            n,
            Affinity::Close,
        ));
        let stats = Arc::new((0..n).map(|_| WorkerStats::default()).collect::<Vec<_>>());
        let parker = Arc::new(Parker::new(
            &(0..n).map(|w| placement.zone_of(w)).collect::<Vec<_>>(),
        ));
        (
            DlbEngine::new(
                n,
                Arc::new(DlbTuning::new(cfg)),
                placement,
                stats,
                parker,
                Arc::new(LoopBalancer::new()),
            ),
            XQueueLattice::new(n, 16),
        )
    }

    fn mk_task(creator: u32) -> NonNull<Task> {
        NonNull::new(Box::into_raw(Box::new(Task::new(None, None, creator, 0)))).unwrap()
    }

    unsafe fn free_task(p: NonNull<Task>) {
        drop(unsafe { Box::from_raw(p.as_ptr()) });
    }

    #[test]
    fn thief_bursts_then_waits_t_interval() {
        let cfg = DlbConfig::new(DlbStrategy::WorkSteal)
            .n_victim(2)
            .t_interval(5)
            .p_local(1.0);
        let (eng, _lat) = make_engine(4, cfg);
        unsafe {
            eng.on_idle(0); // burst at counter 0
            let sent_after_first = eng.stats[0].snapshot().nreq_sent;
            assert!(sent_after_first >= 1, "first idle point must send");
            for _ in 0..3 {
                eng.on_idle(0); // counter 1..3: silent
            }
            assert_eq!(eng.stats[0].snapshot().nreq_sent, sent_after_first);
            // The victim handles the pending request so the retry burst
            // has somewhere to land (p_local = 1 ⇒ worker 1 is the only
            // candidate for worker 0 on the 2×2 topology).
            assert_eq!(eng.cell(1).take_valid_request(), Some(0));
            eng.cell(1).bump_round();
            eng.on_idle(0); // counter hits t_interval: resets
            eng.on_idle(0); // counter 0 again: burst
            assert!(eng.stats[0].snapshot().nreq_sent > sent_after_first);
        }
    }

    #[test]
    fn work_steal_migrates_tasks_to_thief() {
        let cfg = DlbConfig::new(DlbStrategy::WorkSteal)
            .n_steal(3)
            .p_local(1.0);
        let (eng, lat) = make_engine(2, cfg);
        unsafe {
            // Victim 0 has 5 queued tasks in its master queue.
            let mut ptrs = Vec::new();
            for _ in 0..5 {
                let t = mk_task(0);
                ptrs.push(t);
                lat.push(0, 0, t).unwrap();
            }
            // Thief 1 requests; victim handles at its next found-task point.
            assert!(eng.cell(0).try_send_request(1));
            eng.on_found_task(0, &lat);
            let s = eng.stats[0].snapshot();
            assert_eq!(s.nreq_handled, 1);
            assert_eq!(s.ntasks_stolen, 3, "moves exactly n_steal tasks");
            assert_eq!(s.nreq_has_steal, 1);
            // Topology 2×2×1 close: workers 0 and 1 share zone 0.
            assert_eq!(s.nsteal_local, 3);
            // Thief's row now holds 3 tasks.
            let mut got = 0;
            while lat.pop(1).is_some() {
                got += 1;
            }
            assert_eq!(got, 3);
            // Victim keeps the rest.
            let mut kept = 0;
            while lat.pop(0).is_some() {
                kept += 1;
            }
            assert_eq!(kept, 2);
            for p in ptrs {
                free_task(p);
            }
        }
    }

    #[test]
    fn work_steal_empty_source_counts() {
        let cfg = DlbConfig::new(DlbStrategy::WorkSteal);
        let (eng, lat) = make_engine(2, cfg);
        unsafe {
            assert!(eng.cell(0).try_send_request(1));
            eng.on_found_task(0, &lat);
            let s = eng.stats[0].snapshot();
            assert_eq!(s.nreq_handled, 1);
            assert_eq!(s.nreq_src_empty, 1);
            assert_eq!(s.ntasks_stolen, 0);
            // Round bumped: a new request can arrive.
            assert!(eng.cell(0).try_send_request(1));
        }
    }

    #[test]
    fn redirect_push_arms_and_consumes_quota() {
        let cfg = DlbConfig::new(DlbStrategy::RedirectPush).n_steal(2);
        let (eng, lat) = make_engine(2, cfg);
        unsafe {
            assert!(eng.cell(0).try_send_request(1));
            eng.on_found_task(0, &lat); // arms the redirect
            assert_eq!(eng.stats[0].snapshot().nreq_handled, 1);
            // While armed, further requests are not even examined.
            let round_before = eng.cell(0).current_round();
            eng.on_found_task(0, &lat);
            assert_eq!(eng.cell(0).current_round(), round_before);
            // Two spawns get redirected to the thief, then disarm.
            assert_eq!(eng.redirect_target(0, &lat), Some(1));
            assert_eq!(eng.redirect_target(0, &lat), Some(1));
            assert_eq!(eng.redirect_target(0, &lat), None, "quota exhausted");
            let s = eng.stats[0].snapshot();
            assert_eq!(s.ntasks_stolen, 2);
            assert_eq!(s.nreq_has_steal, 1);
            // Round bumped on completion (§IV-C).
            assert_eq!(eng.cell(0).current_round(), round_before + 1);
        }
    }

    #[test]
    fn redirect_push_disarms_on_full_target() {
        let cfg = DlbConfig::new(DlbStrategy::RedirectPush).n_steal(100);
        let placement = Arc::new(Placement::new(
            MachineTopology::new(2, 2, 1),
            2,
            Affinity::Close,
        ));
        let stats = Arc::new((0..2).map(|_| WorkerStats::default()).collect::<Vec<_>>());
        let parker = Arc::new(Parker::new(
            &(0..2).map(|w| placement.zone_of(w)).collect::<Vec<_>>(),
        ));
        let eng = DlbEngine::new(
            2,
            Arc::new(DlbTuning::new(cfg)),
            placement,
            stats,
            parker,
            Arc::new(LoopBalancer::new()),
        );
        let lat: XQueueLattice<Task> = XQueueLattice::new(2, 2); // tiny queues
        unsafe {
            assert!(eng.cell(0).try_send_request(1));
            eng.on_found_task(0, &lat);
            // Fill the (thief=1 ← victim=0) queue via redirects.
            let mut pushed = Vec::new();
            while let Some(target) = eng.redirect_target(0, &lat) {
                let t = mk_task(0);
                pushed.push(t);
                lat.push(0, target, t).unwrap();
            }
            // Queue capacity is 2: exactly 2 redirects then disarm.
            assert_eq!(pushed.len(), 2);
            assert_eq!(eng.stats[0].snapshot().ntasks_stolen, 2);
            lat.drain_with(1, |p| free_task(p));
        }
    }

    #[test]
    fn p_local_zero_prefers_remote_victims() {
        let cfg = DlbConfig::new(DlbStrategy::WorkSteal).p_local(0.0);
        let (eng, _lat) = make_engine(4, cfg);
        // Workers 0,1 in zone 0; 2,3 in zone 1 (2 sockets × 2 cores).
        unsafe {
            for _ in 0..64 {
                if let Some(v) = eng.pick_victim(0, eng.config().p_local) {
                    assert!(v >= 2, "p_local=0 must pick remote zone, got {v}");
                }
            }
        }
    }

    #[test]
    fn p_local_one_prefers_local_victims() {
        let cfg = DlbConfig::new(DlbStrategy::WorkSteal).p_local(1.0);
        let (eng, _lat) = make_engine(4, cfg);
        unsafe {
            for _ in 0..64 {
                if let Some(v) = eng.pick_victim(0, eng.config().p_local) {
                    assert_eq!(v, 1, "p_local=1 must pick the zone peer");
                }
            }
        }
    }
}
