//! Small internal utilities: cache padding and per-worker mutable slots.

use std::cell::UnsafeCell;

/// Pads a value to two cache lines (128 B covers adjacent-line
/// prefetching on modern Intel parts) to prevent false sharing between
/// per-worker state blocks.
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct CachePadded<T>(pub T);

/// An array of per-worker mutable slots.
///
/// Slot `w` is owned by the thread currently acting as worker `w`; all
/// accesses go through [`with`](Self::with), which hands out a short-lived
/// `&mut` under that ownership contract. This is the Rust rendering of
/// the paper's thread-private runtime state (round-robin cursors, RNGs,
/// redirect-push state, performance logs).
pub(crate) struct PerWorker<T> {
    slots: Box<[CachePadded<UnsafeCell<T>>]>,
}

// SAFETY: cross-thread access is governed by the worker-ownership
// contract on `with`; `T: Send` makes handing the slot to its (single)
// owning thread sound.
unsafe impl<T: Send> Sync for PerWorker<T> {}
unsafe impl<T: Send> Send for PerWorker<T> {}

impl<T> PerWorker<T> {
    /// Builds `n` slots from `init`.
    pub fn new(n: usize, mut init: impl FnMut(usize) -> T) -> Self {
        PerWorker {
            slots: (0..n)
                .map(|w| CachePadded(UnsafeCell::new(init(w))))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Number of slots.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Runs `f` with exclusive access to worker `w`'s slot.
    ///
    /// # Safety
    ///
    /// The calling thread must be the owner of worker slot `w`, and `f`
    /// must not re-enter `with` for the same slot (no aliasing `&mut`).
    /// Every call site in this crate is a leaf operation (push an event,
    /// draw a random number, advance a cursor) that cannot re-enter.
    #[inline]
    pub unsafe fn with<R>(&self, w: usize, f: impl FnOnce(&mut T) -> R) -> R {
        // SAFETY: ownership + no-reentrancy contract forwarded to caller.
        f(unsafe { &mut *self.slots[w].0.get() })
    }

    /// Iterates over all slots mutably. Safe: `&mut self` proves no
    /// worker thread can be touching any slot.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|c| c.0.get_mut())
    }

    /// Consumes the structure, yielding the slot values (post-join
    /// collection of logs).
    pub fn into_values(self) -> Vec<T> {
        self.slots
            .into_vec()
            .into_iter()
            .map(|c| c.0.into_inner())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_worker_slots_are_independent() {
        let pw = PerWorker::new(4, |w| w * 10);
        unsafe {
            pw.with(1, |v| *v += 1);
            pw.with(3, |v| *v += 3);
            assert_eq!(pw.with(0, |v| *v), 0);
            assert_eq!(pw.with(1, |v| *v), 11);
            assert_eq!(pw.with(3, |v| *v), 33);
        }
        assert_eq!(pw.into_values(), vec![0, 11, 20, 33]);
    }

    #[test]
    fn padding_prevents_adjacent_slots_sharing_lines() {
        let pw = PerWorker::new(2, |_| 0u8);
        let a = pw.slots[0].0.get() as usize;
        let b = pw.slots[1].0.get() as usize;
        assert!(b.abs_diff(a) >= 128);
    }
}
