//! Practitioner tuning guidelines (§VIII, Table IV).
//!
//! The paper distills its parameter sweeps into rules keyed on per-task
//! cycle counts (`S_task`, measured with `rdtscp`): which DLB strategy to
//! run, how local to steal, and how large the effective *steal size*
//! (Eq. 1: `S_steal = N_steal · N_victim / log10(T_interval)`) should be.
//! [`recommend_dlb`] turns a task-size estimate into a concrete
//! [`DlbConfig`]; [`guidelines`] exposes the table itself for the
//! Table IV reproduction binary.

use crate::dlb::{DlbConfig, DlbStrategy};

/// One row of Table IV.
#[derive(Debug, Clone)]
pub struct Guideline {
    /// Task-size class, in `rdtscp` cycles: `[min, max)`.
    pub task_cycles: (u64, u64),
    /// Class label as printed in the paper.
    pub label: &'static str,
    /// Best strategy for the class.
    pub strategy: DlbStrategy,
    /// Best NUMA-local probability.
    pub p_local: f64,
    /// Best steal-size band (Eq. 1).
    pub steal_size: (f64, f64),
    /// A concrete configuration realizing the row.
    pub config: DlbConfig,
}

/// The Table IV guidelines.
pub fn guidelines() -> Vec<Guideline> {
    vec![
        Guideline {
            task_cycles: (0, 100),
            label: "10^1-10^2",
            strategy: DlbStrategy::WorkSteal,
            p_local: 1.0,
            steal_size: (1.0, 10.0),
            config: DlbConfig::new(DlbStrategy::WorkSteal)
                .n_victim(1)
                .n_steal(8)
                .t_interval(10_000)
                .p_local(1.0),
        },
        Guideline {
            task_cycles: (100, 1_000),
            label: "10^2",
            strategy: DlbStrategy::WorkSteal,
            p_local: 1.0,
            steal_size: (10.0, 100.0),
            config: DlbConfig::new(DlbStrategy::WorkSteal)
                .n_victim(4)
                .n_steal(16)
                .t_interval(10_000)
                .p_local(1.0),
        },
        Guideline {
            task_cycles: (1_000, 3_163),
            label: "10^3",
            strategy: DlbStrategy::WorkSteal,
            p_local: 1.0,
            steal_size: (100.0, 316.0),
            config: DlbConfig::new(DlbStrategy::WorkSteal)
                .n_victim(16)
                .n_steal(32)
                .t_interval(10_000)
                .p_local(1.0),
        },
        Guideline {
            task_cycles: (3_163, 10_000),
            label: "10^3-10^4",
            strategy: DlbStrategy::WorkSteal,
            p_local: 0.25,
            steal_size: (316.0, 1_000.0),
            config: DlbConfig::new(DlbStrategy::WorkSteal)
                .n_victim(24)
                .n_steal(64)
                .t_interval(1_000)
                .p_local(0.25),
        },
        Guideline {
            task_cycles: (10_000, u64::MAX),
            label: ">10^4",
            strategy: DlbStrategy::RedirectPush,
            p_local: 0.06,
            steal_size: (1_000.0, f64::INFINITY),
            config: DlbConfig::new(DlbStrategy::RedirectPush)
                .n_victim(24)
                .n_steal(128)
                .t_interval(1_000)
                .p_local(0.06),
        },
    ]
}

/// Recommends a DLB configuration for tasks of roughly
/// `task_cycles` `rdtscp` cycles each (Table IV applied).
pub fn recommend_dlb(task_cycles: u64) -> DlbConfig {
    for g in guidelines() {
        if task_cycles >= g.task_cycles.0 && task_cycles < g.task_cycles.1 {
            return g.config;
        }
    }
    // Unreachable: the last row is open-ended.
    DlbConfig::new(DlbStrategy::WorkSteal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_tile_the_positive_axis() {
        let g = guidelines();
        assert_eq!(g[0].task_cycles.0, 0);
        for pair in g.windows(2) {
            assert_eq!(
                pair[0].task_cycles.1, pair[1].task_cycles.0,
                "guideline classes must be contiguous"
            );
        }
        assert_eq!(g.last().unwrap().task_cycles.1, u64::MAX);
    }

    #[test]
    fn configs_realize_their_steal_band() {
        for g in guidelines() {
            let s = g.config.steal_size();
            assert!(
                s >= g.steal_size.0 * 0.5
                    && (g.steal_size.1.is_infinite() || s <= g.steal_size.1 * 2.0),
                "{}: steal size {s} outside band {:?}",
                g.label,
                g.steal_size
            );
            assert_eq!(g.config.strategy, g.strategy);
            assert!((g.config.p_local - g.p_local).abs() < 1e-9);
        }
    }

    #[test]
    fn recommendation_matches_paper_rules() {
        assert_eq!(recommend_dlb(50).strategy, DlbStrategy::WorkSteal);
        assert_eq!(recommend_dlb(50).p_local, 1.0);
        assert_eq!(recommend_dlb(5_000).strategy, DlbStrategy::WorkSteal);
        assert!(recommend_dlb(5_000).p_local < 1.0);
        assert_eq!(recommend_dlb(100_000).strategy, DlbStrategy::RedirectPush);
        assert!(recommend_dlb(100_000).steal_size() > 1_000.0);
    }
}
