//! Property tests: the B-queue and the XQueue lattice against reference
//! models, plus conservation under randomized multi-threaded schedules.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::VecDeque;

use xgomp_xqueue::spsc;
use xgomp_xqueue::{PushCursor, XQueueLattice};

#[derive(Debug, Clone)]
enum Op {
    Send(u32),
    Recv,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u32..10_000).prop_map(Op::Send), Just(Op::Recv),]
}

proptest! {
    /// Single-threaded model equivalence: a B-queue behaves exactly like a
    /// bounded FIFO for any operation sequence (the same thread may hold
    /// both SPSC roles).
    #[test]
    fn bqueue_matches_bounded_fifo(
        cap in 1usize..64,
        ops in vec(op_strategy(), 0..400),
    ) {
        let (tx, rx) = spsc::channel::<u32>(cap);
        let real_cap = cap.max(2).next_power_of_two();
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Send(v) => {
                    let got = tx.send(v);
                    if model.len() < real_cap {
                        prop_assert_eq!(got, Ok(()), "queue rejected below capacity");
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(got, Err(v), "queue accepted beyond capacity");
                    }
                }
                Op::Recv => {
                    prop_assert_eq!(rx.recv(), model.pop_front());
                }
            }
        }
        // Full drain matches.
        while let Some(expect) = model.pop_front() {
            prop_assert_eq!(rx.recv(), Some(expect));
        }
        prop_assert_eq!(rx.recv(), None);
    }

    /// Lattice conservation: pushing any pattern of items through any
    /// push-target sequence and popping from all rows loses nothing and
    /// duplicates nothing (single-threaded, roles exercised in order).
    #[test]
    fn lattice_conserves_items(
        n in 1usize..6,
        cap in 1usize..16,
        pushes in vec((any::<u8>(), any::<u16>()), 0..300),
    ) {
        let lattice = XQueueLattice::<u16>::new(n, cap);
        let mut cursors: Vec<PushCursor> = (0..n).map(|w| PushCursor::new(n, w)).collect();
        let mut pushed: Vec<u16> = Vec::new();
        let mut overflowed: Vec<u16> = Vec::new();
        for (who, value) in pushes {
            let producer = who as usize % n;
            let target = cursors[producer].next();
            let boxed = Box::into_raw(Box::new(value));
            let ptr = std::ptr::NonNull::new(boxed).unwrap();
            // SAFETY: single-threaded test; roles trivially unique.
            match unsafe { lattice.push(producer, target, ptr) } {
                Ok(()) => pushed.push(value),
                Err(p) => {
                    overflowed.push(*unsafe { Box::from_raw(p.as_ptr()) });
                }
            }
        }
        let mut popped: Vec<u16> = Vec::new();
        for c in 0..n {
            // SAFETY: single-threaded test.
            while let Some(p) = unsafe { lattice.pop(c) } {
                popped.push(*unsafe { Box::from_raw(p.as_ptr()) });
            }
        }
        let mut a = pushed;
        a.sort_unstable();
        popped.sort_unstable();
        prop_assert_eq!(a, popped, "lattice lost or duplicated items");
        // Overflowed values were returned intact.
        prop_assert!(overflowed.len() <= 300);
    }

    /// Push cursor always starts with the owner's master queue and visits
    /// every consumer once per cycle.
    #[test]
    fn push_cursor_is_a_permutation(n in 1usize..32, owner_seed in any::<u16>()) {
        let owner = owner_seed as usize % n;
        let mut cursor = PushCursor::new(n, owner);
        let first = cursor.next();
        prop_assert_eq!(first, owner, "first target must be the master queue");
        let mut seen = vec![false; n];
        seen[first] = true;
        for _ in 1..n {
            let t = cursor.next();
            prop_assert!(!seen[t], "cursor revisited {} before finishing a cycle", t);
            seen[t] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

/// Randomized two-thread schedule: a producer with proptest-chosen burst
/// lengths and a consumer; every value arrives exactly once and in order.
#[test]
fn two_thread_ordered_delivery() {
    use rand::{Rng, SeedableRng};
    let mut seeds = rand::rngs::StdRng::seed_from_u64(0xB0E5);
    for _round in 0..8 {
        let cap = 1usize << seeds.gen_range(1..8);
        let total = seeds.gen_range(1_000..20_000u64);
        let (tx, rx) = spsc::channel::<u64>(cap);
        let producer = std::thread::spawn(move || {
            for i in 0..total {
                let mut v = i;
                loop {
                    match tx.send(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < total {
            if let Some(v) = rx.recv() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }
}
