//! The XQueue lattice: an `n × n` matrix of SPSC B-queues forming a
//! relaxed-order MPMC task queue (paper §II-B, Fig. 2).
//!
//! For a team of `n` workers, worker `c` *consumes from* the `n` queues in
//! its row: queue `(c, c)` is its **master** queue and `(c, p)`, `p ≠ c`
//! are **auxiliary** queues, each with exactly one producer `p`. Worker
//! `p` *produces into* the `n` queues `(·, p)`. Every individual queue is
//! SPSC by construction, so the whole structure needs no locks and no
//! atomic RMW.
//!
//! Scheduling policy (who pushes where, round-robin cursors, overflow →
//! execute immediately) lives in `xgomp-core`; this module only provides
//! the structure, the role-checked operations, and a [`PushCursor`]
//! helper implementing the paper's "round-robin starting with the master
//! queue" order.

use std::cell::UnsafeCell;
use std::ptr::NonNull;

use crate::bqueue::BQueue;

/// Pads consumer-private scan state to its own cache lines.
#[repr(align(128))]
struct Pad<T>(T);

/// The XQueue structure: `n × n` SPSC B-queues plus per-consumer scan
/// cursors for fair auxiliary-queue polling.
///
/// # Roles
///
/// The `unsafe` methods carry the lattice-wide SPSC contract: a thread may
/// call producer-role methods only for its own producer index and
/// consumer-role methods only for its own consumer index, and each index
/// must be owned by at most one thread at a time. The runtime establishes
/// this by construction (worker `w` ⇒ producer `w` and consumer `w`).
pub struct XQueueLattice<T> {
    n: usize,
    /// Row-major: `queues[consumer * n + producer]`.
    queues: Box<[BQueue<T>]>,
    /// Per-consumer rotating cursor over auxiliary producers.
    scan: Box<[Pad<UnsafeCell<usize>>]>,
}

// SAFETY: element pointers move between threads; the per-queue role
// contracts are delegated to the unsafe methods.
unsafe impl<T: Send> Send for XQueueLattice<T> {}
unsafe impl<T: Send> Sync for XQueueLattice<T> {}

impl<T> XQueueLattice<T> {
    /// Builds a lattice for `n` workers with `capacity` slots per queue
    /// (the paper's `S_queue`).
    pub fn new(n: usize, capacity: usize) -> Self {
        assert!(n >= 1, "a lattice needs at least one worker");
        let queues = (0..n * n)
            .map(|_| BQueue::with_capacity(capacity))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let scan = (0..n)
            .map(|_| Pad(UnsafeCell::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        XQueueLattice { n, queues, scan }
    }

    /// Number of workers (`n`); the lattice holds `n²` queues.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.n
    }

    /// Capacity of each individual SPSC queue.
    #[inline]
    pub fn queue_capacity(&self) -> usize {
        self.queues[0].capacity()
    }

    #[inline]
    fn q(&self, consumer: usize, producer: usize) -> &BQueue<T> {
        debug_assert!(consumer < self.n && producer < self.n);
        &self.queues[consumer * self.n + producer]
    }

    /// Pushes `item` into queue `(consumer, producer)`; on a full queue the
    /// item is handed back (the runtime then executes it immediately —
    /// the paper's overflow rule).
    ///
    /// # Safety
    ///
    /// The calling thread must own producer role `producer`.
    #[inline]
    pub unsafe fn push(
        &self,
        producer: usize,
        consumer: usize,
        item: NonNull<T>,
    ) -> Result<(), NonNull<T>> {
        // SAFETY: forwarded producer-role contract.
        unsafe { self.q(consumer, producer).enqueue(item) }
    }

    /// Pops the next task for worker `consumer`: master queue first, then
    /// the auxiliary queues in rotating order (so a single busy producer
    /// cannot starve the others).
    ///
    /// # Safety
    ///
    /// The calling thread must own consumer role `consumer`.
    #[inline]
    pub unsafe fn pop(&self, consumer: usize) -> Option<NonNull<T>> {
        // Master queue first (paper §II-B).
        // SAFETY: forwarded consumer-role contract.
        if let Some(item) = unsafe { self.q(consumer, consumer).dequeue() } {
            return Some(item);
        }
        if self.n == 1 {
            return None;
        }
        // SAFETY: scan cursor is consumer-private under the role contract.
        let cursor = unsafe { &mut *self.scan[consumer].0.get() };
        for i in 0..self.n - 1 {
            let mut p = (*cursor + i) % (self.n - 1);
            // Map 0..n-1 onto producers != consumer.
            if p >= consumer {
                p += 1;
            }
            // SAFETY: forwarded consumer-role contract.
            if let Some(item) = unsafe { self.q(consumer, p).dequeue() } {
                *cursor = (*cursor + i + 1) % (self.n - 1);
                return Some(item);
            }
        }
        None
    }

    /// Producer-side hint that queue `(consumer, producer)` cannot accept
    /// another item (`isTargetQFull` in Alg. 3/4).
    ///
    /// # Safety
    ///
    /// The calling thread must own producer role `producer`.
    #[inline]
    pub unsafe fn is_full_hint(&self, producer: usize, consumer: usize) -> bool {
        // SAFETY: forwarded producer-role contract.
        unsafe { self.q(consumer, producer).is_full_hint() }
    }

    /// Consumer-side hint that worker `consumer` currently sees no tasks in
    /// any of its queues (`isMyQEmpty` in Alg. 4). May be stale.
    ///
    /// # Safety
    ///
    /// The calling thread must own consumer role `consumer`.
    pub unsafe fn is_empty_hint(&self, consumer: usize) -> bool {
        for p in 0..self.n {
            // SAFETY: forwarded consumer-role contract.
            if !unsafe { self.q(consumer, p).is_empty_hint() } {
                return false;
            }
        }
        true
    }

    /// Drains every queue of row `consumer`, handing each element to `f`.
    /// Used at team teardown (after quiescence) and in tests.
    ///
    /// # Safety
    ///
    /// The calling thread must own consumer role `consumer`, and the
    /// producers of the drained queues must have stopped producing.
    pub unsafe fn drain_with(&self, consumer: usize, mut f: impl FnMut(NonNull<T>)) {
        for p in 0..self.n {
            // SAFETY: forwarded consumer-role contract.
            while let Some(item) = unsafe { self.q(consumer, p).dequeue() } {
                f(item);
            }
        }
    }

    /// Approximate whole-lattice occupancy snapshot (safe, `Relaxed`
    /// scans; statistics only).
    pub fn stats(&self) -> LatticeStats {
        let mut per_consumer = vec![0usize; self.n];
        let mut master = 0;
        let mut aux = 0;
        for (c, row_total) in per_consumer.iter_mut().enumerate() {
            for p in 0..self.n {
                let occ = self.q(c, p).occupancy_scan();
                *row_total += occ;
                if c == p {
                    master += occ;
                } else {
                    aux += occ;
                }
            }
        }
        LatticeStats {
            per_consumer,
            master_occupancy: master,
            aux_occupancy: aux,
        }
    }
}

/// Approximate occupancy snapshot of a lattice (see
/// [`XQueueLattice::stats`]).
#[derive(Debug, Clone)]
pub struct LatticeStats {
    /// Items visible per consumer row.
    pub per_consumer: Vec<usize>,
    /// Items visible across all master queues.
    pub master_occupancy: usize,
    /// Items visible across all auxiliary queues.
    pub aux_occupancy: usize,
}

impl LatticeStats {
    /// Total items visible in the snapshot.
    pub fn total(&self) -> usize {
        self.master_occupancy + self.aux_occupancy
    }
}

/// Round-robin push-target generator implementing the paper's static load
/// balancing order: "a round-robin approach across these queues starting
/// with the master queue" (§II-B).
///
/// Owned by a single producer; plain state, no synchronization.
#[derive(Debug, Clone)]
pub struct PushCursor {
    owner: usize,
    n: usize,
    step: usize,
}

impl PushCursor {
    /// Cursor for producer `owner` in a team of `n`.
    pub fn new(n: usize, owner: usize) -> Self {
        assert!(owner < n);
        PushCursor { owner, n, step: 0 }
    }

    /// Next target consumer: `owner, owner+1, …, owner-1, owner, …`.
    ///
    /// (Deliberately named after the paper's cursor operation; the cursor
    /// is an infinite generator, not an `Iterator`.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> usize {
        let t = (self.owner + self.step) % self.n;
        self.step = (self.step + 1) % self.n;
        t
    }

    /// Resets so the next target is the master queue again.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// The producer this cursor belongs to.
    #[inline]
    pub fn owner(&self) -> usize {
        self.owner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn leak(v: u64) -> NonNull<u64> {
        NonNull::new(Box::into_raw(Box::new(v))).unwrap()
    }

    unsafe fn unleak(p: NonNull<u64>) -> u64 {
        *unsafe { Box::from_raw(p.as_ptr()) }
    }

    #[test]
    fn push_cursor_starts_with_master() {
        let mut c = PushCursor::new(4, 2);
        let seq: Vec<usize> = (0..8).map(|_| c.next()).collect();
        assert_eq!(seq, vec![2, 3, 0, 1, 2, 3, 0, 1]);
        c.reset();
        assert_eq!(c.next(), 2);
    }

    #[test]
    fn single_worker_lattice() {
        let l = XQueueLattice::<u64>::new(1, 8);
        unsafe {
            l.push(0, 0, leak(7)).unwrap();
            assert_eq!(unleak(l.pop(0).unwrap()), 7);
            assert!(l.pop(0).is_none());
        }
    }

    #[test]
    fn master_queue_has_priority() {
        let l = XQueueLattice::<u64>::new(2, 8);
        unsafe {
            // Producer 1 fills consumer 0's aux queue; then producer 0
            // pushes to its own master queue. Master must come out first.
            l.push(1, 0, leak(100)).unwrap();
            l.push(0, 0, leak(1)).unwrap();
            assert_eq!(unleak(l.pop(0).unwrap()), 1);
            assert_eq!(unleak(l.pop(0).unwrap()), 100);
        }
    }

    #[test]
    fn aux_scan_rotates_between_producers() {
        let l = XQueueLattice::<u64>::new(3, 8);
        unsafe {
            // Producers 1 and 2 each push two items for consumer 0.
            l.push(1, 0, leak(10)).unwrap();
            l.push(1, 0, leak(11)).unwrap();
            l.push(2, 0, leak(20)).unwrap();
            l.push(2, 0, leak(21)).unwrap();
            // Rotating scan should alternate producers rather than
            // draining producer 1 first.
            let a = unleak(l.pop(0).unwrap());
            let b = unleak(l.pop(0).unwrap());
            assert_ne!(a / 10, b / 10, "scan did not rotate: {a}, {b}");
            let mut rest = vec![unleak(l.pop(0).unwrap()), unleak(l.pop(0).unwrap())];
            rest.sort_unstable();
            let mut all = vec![a, b];
            all.extend(rest);
            all.sort_unstable();
            assert_eq!(all, vec![10, 11, 20, 21]);
        }
    }

    #[test]
    fn overflow_hands_item_back() {
        let l = XQueueLattice::<u64>::new(2, 2);
        unsafe {
            assert!(l.push(0, 1, leak(0)).is_ok());
            assert!(l.push(0, 1, leak(1)).is_ok());
            assert!(l.is_full_hint(0, 1));
            match l.push(0, 1, leak(2)) {
                Err(p) => {
                    assert_eq!(unleak(p), 2);
                }
                Ok(()) => panic!("queue of capacity 2 accepted 3 items"),
            }
            l.drain_with(1, |p| {
                unleak(p);
            });
        }
    }

    #[test]
    fn stats_snapshot_counts() {
        let l = XQueueLattice::<u64>::new(2, 8);
        unsafe {
            l.push(0, 0, leak(1)).unwrap(); // master of 0
            l.push(0, 1, leak(2)).unwrap(); // aux at consumer 1
            l.push(1, 1, leak(3)).unwrap(); // master of 1
        }
        let s = l.stats();
        assert_eq!(s.master_occupancy, 2);
        assert_eq!(s.aux_occupancy, 1);
        assert_eq!(s.total(), 3);
        assert_eq!(s.per_consumer, vec![1, 2]);
        unsafe {
            l.drain_with(0, |p| {
                unleak(p);
            });
            l.drain_with(1, |p| {
                unleak(p);
            });
        }
    }

    /// Multi-threaded conservation: n workers each produce into the
    /// lattice round-robin and consume their own rows; every produced
    /// item is consumed exactly once.
    #[test]
    fn mpmc_conservation_stress() {
        const WORKERS: usize = 4;
        const PER_WORKER: usize = 20_000;
        let l = Arc::new(XQueueLattice::<u64>::new(WORKERS, 64));
        let consumed = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let l = l.clone();
            let consumed = consumed.clone();
            let sum = sum.clone();
            handles.push(std::thread::spawn(move || {
                let mut cursor = PushCursor::new(WORKERS, w);
                let mut produced = 0usize;
                let mut local_consumed = 0usize;
                let mut local_sum = 0usize;
                let mut backoff = crate::Backoff::new();
                while produced < PER_WORKER || local_consumed_target(&l, w) {
                    if produced < PER_WORKER {
                        let value = (w * PER_WORKER + produced) as u64;
                        let target = cursor.next();
                        // SAFETY: this thread owns producer role `w`.
                        match unsafe { l.push(w, target, leak(value)) } {
                            Ok(()) => produced += 1,
                            Err(p) => {
                                // Overflow rule: "execute immediately".
                                local_sum += unsafe { unleak(p) } as usize;
                                local_consumed += 1;
                                produced += 1;
                            }
                        }
                    }
                    // SAFETY: this thread owns consumer role `w`.
                    while let Some(p) = unsafe { l.pop(w) } {
                        local_sum += unsafe { unleak(p) } as usize;
                        local_consumed += 1;
                        backoff.reset();
                    }
                    backoff.snooze();
                }
                consumed.fetch_add(local_consumed, Ordering::SeqCst);
                sum.fetch_add(local_sum, Ordering::SeqCst);
            }));
        }

        // Helper: keep looping while this worker might still receive items.
        fn local_consumed_target(_l: &XQueueLattice<u64>, _w: usize) -> bool {
            false // producers drain their own leftovers below
        }

        for h in handles {
            h.join().unwrap();
        }
        // Drain anything left in flight (single-threaded now, roles free).
        let mut leftovers = 0usize;
        let mut leftover_sum = 0usize;
        for w in 0..WORKERS {
            unsafe {
                l.drain_with(w, |p| {
                    leftover_sum += unleak(p) as usize;
                    leftovers += 1;
                });
            }
        }
        let total = consumed.load(Ordering::SeqCst) + leftovers;
        assert_eq!(total, WORKERS * PER_WORKER);
        let expected_sum: usize = (0..WORKERS * PER_WORKER).sum();
        assert_eq!(sum.load(Ordering::SeqCst) + leftover_sum, expected_sum);
    }
}
