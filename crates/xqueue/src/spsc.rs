//! Safe owned-handle wrapper over [`BQueue`](crate::BQueue).
//!
//! [`channel`] splits one B-queue into a [`Sender`] and a [`Receiver`]
//! whose ownership *is* the SPSC role contract: each handle is `Send` but
//! not `Clone`, so at most one thread can produce and one consume. Values
//! are boxed on send and unboxed on receive; dropping the receiver drains
//! and drops any in-flight values.
//!
//! The runtime does not use this wrapper (it manages task pointers
//! directly), but it is the recommended entry point for standalone users
//! and it is what the property tests drive.

use std::ptr::NonNull;
use std::sync::Arc;

use crate::bqueue::BQueue;

/// Creates a bounded lock-less SPSC channel with `capacity` slots.
///
/// ```
/// let (tx, rx) = xgomp_xqueue::spsc::channel::<u32>(8);
/// tx.send(1).unwrap();
/// tx.send(2).unwrap();
/// assert_eq!(rx.recv(), Some(1));
/// assert_eq!(rx.recv(), Some(2));
/// assert_eq!(rx.recv(), None);
/// ```
pub fn channel<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let q = Arc::new(BQueue::with_capacity(capacity));
    (Sender { q: q.clone() }, Receiver { q })
}

/// Producing half of an SPSC channel. Not cloneable: the unique owner is
/// the unique producer.
pub struct Sender<T: Send> {
    q: Arc<BQueue<T>>,
}

/// Consuming half of an SPSC channel. Not cloneable: the unique owner is
/// the unique consumer.
pub struct Receiver<T: Send> {
    q: Arc<BQueue<T>>,
}

impl<T: Send> Sender<T> {
    /// Sends `value`, returning it back if the channel is full.
    pub fn send(&self, value: T) -> Result<(), T> {
        let ptr = NonNull::new(Box::into_raw(Box::new(value))).expect("Box is never null");
        // SAFETY: `Sender` is unique and not Clone, so this thread is the
        // only producer for the lifetime of the call.
        match unsafe { self.q.enqueue(ptr) } {
            Ok(()) => Ok(()),
            // SAFETY: the rejected pointer is the Box we just leaked.
            Err(p) => Err(*unsafe { Box::from_raw(p.as_ptr()) }),
        }
    }

    /// Whether the next [`send`](Self::send) would fail.
    pub fn is_full(&self) -> bool {
        // SAFETY: unique producer, see `send`.
        unsafe { self.q.is_full_hint() }
    }
}

impl<T: Send> Receiver<T> {
    /// Receives the oldest value, or `None` if the channel appears empty.
    pub fn recv(&self) -> Option<T> {
        // SAFETY: `Receiver` is unique and not Clone, so this thread is
        // the only consumer for the lifetime of the call.
        let p = unsafe { self.q.dequeue() }?;
        // SAFETY: every queued pointer came from `Box::into_raw` in `send`.
        Some(*unsafe { Box::from_raw(p.as_ptr()) })
    }

    /// Whether the channel appears empty (may be stale — a concurrent
    /// sender can publish right after this returns `true`).
    pub fn is_empty(&self) -> bool {
        // SAFETY: unique consumer, see `recv`.
        unsafe { self.q.is_empty_hint() }
    }
}

impl<T: Send> Drop for Receiver<T> {
    fn drop(&mut self) {
        // Drop any values still in flight. The sender may still push while
        // we drain, but whatever it pushes after our last look is simply
        // leaked into the Arc'd slots and dropped when the sender's Arc
        // side also drops... which would leak the boxes. To keep the
        // wrapper leak-free we require (and document) the usual channel
        // discipline: senders stop before the receiver is dropped. We
        // still drain defensively here.
        while self.recv().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_overflow() {
        let (tx, rx) = channel::<String>(4);
        for i in 0..4 {
            tx.send(format!("v{i}")).unwrap();
        }
        assert!(tx.is_full());
        assert_eq!(tx.send("spill".into()), Err("spill".to_string()));
        assert_eq!(rx.recv().as_deref(), Some("v0"));
        tx.send("v4".into()).unwrap();
        let rest: Vec<String> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(rest, vec!["v1", "v2", "v3", "v4"]);
        assert!(rx.is_empty());
    }

    #[test]
    fn drop_receiver_drops_in_flight_values() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = channel::<D>(8);
        for _ in 0..5 {
            tx.send(D).unwrap();
        }
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn threaded_pipeline() {
        let (tx, rx) = channel::<u64>(32);
        let producer = std::thread::spawn(move || {
            for i in 0..50_000u64 {
                let mut v = i;
                loop {
                    match tx.send(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < 50_000 {
            if let Some(v) = rx.recv() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }
}
