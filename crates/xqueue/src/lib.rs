//! # xgomp-xqueue
//!
//! The lock-less queuing substrate of the XGOMP runtime, reproducing the
//! data structures of *"Optimizing Fine-Grained Parallelism Through Dynamic
//! Load Balancing on Multi-Socket Many-Core Systems"* (IPPS 2025) and its
//! prior work (XQueue, MASCOTS 2021; B-queue, Fang et al.).
//!
//! Two layers are provided:
//!
//! * [`BQueue`] — a bounded single-producer/single-consumer ring buffer that
//!   synchronizes exclusively through the *contents* of its slots (a null
//!   pointer means "empty slot"). Producer and consumer each keep private
//!   cursors and only probe a shared slot once per *batch*, which is what
//!   makes core-to-core hand-off cost ~tens of cycles instead of a cache
//!   ping-pong per element.
//! * [`XQueueLattice`] — the XQueue structure: for a team of `n` workers,
//!   an `n × n` matrix of B-queues. Worker `w`'s *master* queue is
//!   `(producer = w, consumer = w)`; the remaining `n - 1` queues in
//!   column `w` are its *auxiliary* queues, each written by exactly one
//!   other worker. Every queue therefore stays strictly SPSC while the
//!   aggregate behaves as a relaxed-order MPMC queue.
//!
//! ## Lock-less, in the paper's sense
//!
//! The paper distinguishes *lock-free* code (atomic read-modify-write
//! primitives such as compare-and-swap) from *lock-less* code (plain loads
//! and stores only, made safe by single-writer disciplines). The queuing
//! layers of this crate ([`BQueue`], [`XQueueLattice`], [`spsc`]) are
//! lock-less: their only atomic operations are `load(Acquire)` and
//! `store(Release)`, which compile to ordinary `MOV`s on x86-64 — no
//! atomic RMW instruction anywhere on a queue operation.
//!
//! Two modules are deliberate exceptions. [`rangepool`] — the
//! iteration-space substrate of `parallel_for` — uses CAS, but only once
//! per *chunk* of iterations, never per iteration, so the amortized cost
//! vanishes into the loop body. The other is the [`parker`] module: the
//! kernel-assisted *idle* tier. Spinning is the right trade while work is
//! in flight, but a persistent server must not burn a core per worker
//! while empty, so exhausted-backoff workers park on an OS primitive and
//! are woken through per-worker parking words (which do use CAS — they
//! exist precisely to leave the lock-less fast path). The fast path pays
//! one fence plus one relaxed load per push while nobody is parked.
//!
//! The [`eventring`] flight recorder keeps the discipline on its hot
//! side: an emit is relaxed slot stores plus one Release index publish,
//! no RMW anywhere on the writer path; only the *reader's* drop
//! accounting uses a `fetch_add`, off the measured path by definition.
//!
//! ## Safety model
//!
//! Rust forbids the C trick of racing on `volatile` cells, so the slot
//! array is `AtomicPtr` and the SPSC contract is expressed as `unsafe`
//! role methods: [`BQueue::enqueue`]/[`BQueue::dequeue`] require that at
//! most one thread acts as producer and one as consumer at any time. The
//! safe [`spsc::channel`] wrapper enforces the discipline with owned
//! handles; the runtime's scheduler enforces it structurally (worker `p`
//! only ever produces into row `p` of the lattice).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod backoff;
mod bqueue;
pub mod eventring;
mod lattice;
pub mod panes;
pub mod parker;
pub mod rangepool;
pub mod spsc;

pub use backoff::Backoff;
pub use bqueue::{BQueue, DEFAULT_CAPACITY};
pub use eventring::{EventRing, RawEvent, RingCursor, DEFAULT_EVENT_CAPACITY};
pub use lattice::{LatticeStats, PushCursor, XQueueLattice};
pub use panes::{PaneSet, DEFAULT_PANE_UNITS, MAX_SHARE_UNITS};
pub use parker::{Parker, ParkerCell};
pub use rangepool::{IterRange, RangePool};
