//! Futex-style, NUMA-aware parking for idle workers.
//!
//! The queuing layers of this crate are deliberately kernel-free: spinning
//! workers synchronize through plain loads and stores. A *persistent*
//! runtime cannot afford that bargain while idle — a task server with no
//! jobs in flight would burn one core per worker forever. This module is
//! the explicitly kernel-assisted idle tier layered next to the lock-less
//! fabric: a worker that has exhausted its spin backoff publishes a
//! per-worker *parking word* and blocks on an OS primitive; producers pay
//! one fence plus one relaxed load on the hot path (nothing else when
//! nobody is parked) and otherwise wake exactly one sleeper.
//!
//! Wake-ups are NUMA-aware, mirroring the NA-RP victim order of the DLB
//! engine: workers are grouped into *zone wake sets*, and
//! [`Parker::notify_any`] wakes a parked worker in the caller's zone
//! before it even looks at a remote zone — a woken worker starts with the
//! producer's cache lines close by.
//!
//! ## Protocol (no lost wake-ups)
//!
//! Parking is split into three steps so callers can re-check their own
//! wake conditions between the *announcement* and the *sleep*:
//!
//! 1. [`prepare_park`](Parker::prepare_park) — announce intent (state →
//!    `PARKED`, zone set updated) and issue a `SeqCst` fence;
//! 2. the caller re-checks every condition a waker could signal (queues,
//!    ingress, poison, release) and either
//! 3. [`cancel_park`](Parker::cancel_park)s, or commits with
//!    [`park`](Parker::park), which sleeps until notified.
//!
//! Wakers store their payload (a queued task, a flag), issue a `SeqCst`
//! fence, and then examine parking words. The paired fences close the
//! sleep/wake race: either the waker observes the announcement and
//! notifies, or the sleeper's re-check (which follows its own fence)
//! observes the payload and cancels. Both can happen; neither can be
//! missed.

use std::sync::atomic::{fence, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Worker is running (or spinning); not observable by wakers.
const IDLE: u32 = 0;
/// Worker announced intent to park, or is asleep.
const PARKED: u32 = 1;
/// A waker claimed this worker; it must not (stay) asleep.
const NOTIFIED: u32 = 2;

/// One worker's parking word plus the OS primitive it sleeps on, padded
/// so wakers probing one worker's state never bounce a neighbour's line.
#[repr(align(128))]
struct ParkSlot {
    state: AtomicU32,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ParkSlot {
    fn new() -> Self {
        ParkSlot {
            state: AtomicU32::new(IDLE),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }
}

/// A zone's wake set: its member workers and how many are announced.
struct ZoneSet {
    workers: Vec<usize>,
    /// Workers of this zone currently in `PARKED` (announced or asleep);
    /// an over-approximation while a `NOTIFIED` worker is still waking.
    parked: AtomicUsize,
}

/// NUMA-aware parking facility for one team of workers.
///
/// Construction takes the worker → zone assignment (any dense-ish zone
/// ids work; the runtime passes its [`Placement`] zones). The structure
/// is topology-agnostic on purpose: zone ids are opaque group labels.
///
/// [`Placement`]: https://docs.rs/xgomp-topology
pub struct Parker {
    slots: Box<[ParkSlot]>,
    zones: Box<[ZoneSet]>,
    zone_of: Box<[usize]>,
    /// Global count of announced workers — the producers' fast-path gate.
    n_parked: AtomicUsize,
    /// Cumulative committed parks (a worker that actually slept).
    parks: AtomicU64,
    /// Cumulative wake-ups delivered (successful `PARKED → NOTIFIED`).
    wakes: AtomicU64,
}

impl Parker {
    /// Builds a parker for `zone_of.len()` workers, `zone_of[w]` giving
    /// worker `w`'s wake-set (NUMA zone) id.
    pub fn new(zone_of: &[usize]) -> Self {
        assert!(!zone_of.is_empty(), "a parker needs at least one worker");
        let n_zones = zone_of.iter().copied().max().unwrap_or(0) + 1;
        let mut zones: Vec<ZoneSet> = (0..n_zones)
            .map(|_| ZoneSet {
                workers: Vec::new(),
                parked: AtomicUsize::new(0),
            })
            .collect();
        for (w, &z) in zone_of.iter().enumerate() {
            zones[z].workers.push(w);
        }
        Parker {
            slots: zone_of.iter().map(|_| ParkSlot::new()).collect(),
            zones: zones.into_boxed_slice(),
            zone_of: zone_of.to_vec().into_boxed_slice(),
            n_parked: AtomicUsize::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
        }
    }

    /// Number of workers this parker serves.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.slots.len()
    }

    /// Number of zone wake sets.
    #[inline]
    pub fn n_zones(&self) -> usize {
        self.zones.len()
    }

    /// Zone (wake set) of worker `w`.
    #[inline]
    pub fn zone_of(&self, w: usize) -> usize {
        self.zone_of[w]
    }

    // ---- sleeper side -------------------------------------------------

    /// Announces that worker `w` intends to park. Returns `false` when a
    /// pending notification was consumed instead — the caller already has
    /// a reason to stay awake and must not call [`park`](Self::park).
    ///
    /// On `true`, the caller must re-check its wake conditions and then
    /// either [`park`](Self::park) or [`cancel_park`](Self::cancel_park).
    /// The announcement is followed by a `SeqCst` fence, so those
    /// re-check loads observe anything stored before a waker's fence.
    pub fn prepare_park(&self, w: usize) -> bool {
        let slot = &self.slots[w];
        let prev = slot.state.swap(PARKED, Ordering::SeqCst);
        if prev == NOTIFIED {
            // A wake raced our last wake-up; consume it and stay awake.
            slot.state.store(IDLE, Ordering::Release);
            return false;
        }
        debug_assert_eq!(prev, IDLE, "worker {w} double-announced a park");
        self.zones[self.zone_of[w]]
            .parked
            .fetch_add(1, Ordering::Relaxed);
        self.n_parked.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        true
    }

    /// Withdraws an announcement made by [`prepare_park`](Self::prepare_park)
    /// (the re-check found a reason to stay awake).
    pub fn cancel_park(&self, w: usize) {
        let slot = &self.slots[w];
        // A waker may have claimed us between announce and cancel; its
        // notification is consumed here — we are awake either way.
        slot.state.swap(IDLE, Ordering::SeqCst);
        self.retire_announcement(w);
    }

    /// Commits the park: blocks until a waker notifies worker `w`.
    /// Must follow a `true` return from [`prepare_park`](Self::prepare_park).
    pub fn park(&self, w: usize) {
        let slot = &self.slots[w];
        {
            let mut guard = slot.lock.lock().unwrap_or_else(PoisonError::into_inner);
            while slot.state.load(Ordering::Acquire) != NOTIFIED {
                guard = slot.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
            }
        }
        slot.state.store(IDLE, Ordering::Release);
        self.retire_announcement(w);
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    fn retire_announcement(&self, w: usize) {
        self.zones[self.zone_of[w]]
            .parked
            .fetch_sub(1, Ordering::Relaxed);
        self.n_parked.fetch_sub(1, Ordering::Relaxed);
    }

    // ---- waker side ---------------------------------------------------

    /// Claims and wakes worker `w` if it is announced/asleep. Returns
    /// whether this call delivered the wake-up.
    ///
    /// Issues the waker-side `SeqCst` fence itself, so callers only need
    /// to have stored their payload (queue push, flag) beforehand.
    pub fn unpark(&self, w: usize) -> bool {
        fence(Ordering::SeqCst);
        self.unpark_no_fence(w)
    }

    fn unpark_no_fence(&self, w: usize) -> bool {
        let slot = &self.slots[w];
        if slot
            .state
            .compare_exchange(PARKED, NOTIFIED, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        // Acquire (and release) the slot lock so the sleeper is either
        // not yet waiting (it will see NOTIFIED under the lock) or
        // already waiting (the notify below reaches it). Without this,
        // a notify could fire between its check and its wait.
        drop(slot.lock.lock().unwrap_or_else(PoisonError::into_inner));
        slot.cv.notify_one();
        self.wakes.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Wakes one announced worker of zone `zone`, if any.
    pub fn unpark_one_in_zone(&self, zone: usize) -> Option<usize> {
        fence(Ordering::SeqCst);
        self.unpark_one_in_zone_no_fence(zone)
    }

    fn unpark_one_in_zone_no_fence(&self, zone: usize) -> Option<usize> {
        let set = self.zones.get(zone)?;
        if set.parked.load(Ordering::Relaxed) == 0 {
            return None;
        }
        set.workers
            .iter()
            .copied()
            .find(|&w| self.unpark_no_fence(w))
    }

    /// Wakes one parked worker, trying the preferred zone first and the
    /// remaining zones only when it has no parked worker — the NA-RP
    /// "local victims first" order applied to wake-ups. Returns the woken
    /// worker, if any.
    pub fn notify_any(&self, prefer_zone: usize) -> Option<usize> {
        fence(Ordering::SeqCst);
        if self.n_parked.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let n = self.zones.len();
        // Normalize first so an out-of-range zone id still probes every
        // zone: starting the rotation at the raw id would skip residue
        // `prefer_zone % n` and could miss a parked worker entirely.
        let prefer = prefer_zone % n;
        for i in 0..n {
            if let Some(w) = self.unpark_one_in_zone_no_fence((prefer + i) % n) {
                return Some(w);
            }
        }
        None
    }

    /// Wakes worker `target` if it is parked — the cheap producer-side
    /// hook after pushing into `target`'s queue. No-op (one fence + one
    /// relaxed load) while nobody in the team is parked.
    #[inline]
    pub fn notify_push(&self, target: usize) -> bool {
        fence(Ordering::SeqCst);
        if self.n_parked.load(Ordering::Relaxed) == 0 {
            return false;
        }
        self.unpark_no_fence(target)
    }

    /// Wakes every parked worker (poison, region release, shutdown).
    /// Returns how many wake-ups were delivered.
    pub fn unpark_all(&self) -> usize {
        fence(Ordering::SeqCst);
        if self.n_parked.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        (0..self.slots.len())
            .filter(|&w| self.unpark_no_fence(w))
            .count()
    }

    // ---- observability ------------------------------------------------

    /// Workers currently announced or asleep (racy snapshot).
    pub fn currently_parked(&self) -> usize {
        self.n_parked.load(Ordering::Relaxed)
    }

    /// Workers of `zone` currently announced or asleep (racy snapshot).
    pub fn parked_in_zone(&self, zone: usize) -> usize {
        self.zones
            .get(zone)
            .map_or(0, |z| z.parked.load(Ordering::Relaxed))
    }

    /// Cumulative committed parks (sleeps actually entered).
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Cumulative delivered wake-ups.
    pub fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }
}

/// A multi-generation doorbell: publishes the *current* team's [`Parker`]
/// to threads that outlive any single team generation.
///
/// A persistent server that pauses and resumes replaces its team's parker
/// at every generation boundary (the parker is sized per worker set), but
/// submitter threads hold their doorbell reference across generations.
/// `ParkerCell` closes that gap with a publication registry:
///
/// * [`publish`](Self::publish) installs a new generation's parker with a
///   single `Release` pointer store — readers never take a lock;
/// * [`with_current`](Self::with_current) runs a closure against the
///   currently published parker (one `Acquire` load on the hot path);
/// * every parker ever published is retained, so a reader that loaded the
///   pointer just before a swap still dereferences a live parker — a
///   *retired* parker has no sleepers (its region quiesced and
///   `unpark_all` ran), so a stale notification is a harmless no-op;
/// * the retained history also preserves retired generations' park/wake
///   counters: [`parks`](Self::parks)/[`wakes`](Self::wakes) report
///   cumulative totals across every generation.
///
/// Publications are expected to be rare (generation boundaries), so the
/// retained history is bounded in practice by the pause/resume count —
/// one small `Parker` allocation per generation is the price of keeping
/// the reader side a single unsynchronized pointer load (freeing a
/// retired parker would need hazard/epoch machinery on every doorbell).
/// The cumulative counters are O(1): a retired parker's totals are
/// folded into running sums at publish time (they are final by then —
/// its region quiesced, and a stale notification on a parker with no
/// sleepers bumps nothing).
#[derive(Default)]
pub struct ParkerCell {
    current: AtomicPtr<Parker>,
    /// Every parker ever published, in order. Never shrinks: this is what
    /// keeps `current`'s referent alive for lock-free readers.
    history: Mutex<Vec<std::sync::Arc<Parker>>>,
    /// Final park/wake totals of every *retired* generation.
    retired_parks: AtomicU64,
    retired_wakes: AtomicU64,
}

impl ParkerCell {
    /// An empty cell: [`with_current`](Self::with_current) returns `None`
    /// until the first [`publish`](Self::publish).
    pub fn new() -> Self {
        ParkerCell {
            current: AtomicPtr::new(std::ptr::null_mut()),
            history: Mutex::new(Vec::new()),
            retired_parks: AtomicU64::new(0),
            retired_wakes: AtomicU64::new(0),
        }
    }

    /// Installs `parker` as the current generation's doorbell target,
    /// retiring the previous one (its final counters are folded into the
    /// cumulative totals).
    pub fn publish(&self, parker: std::sync::Arc<Parker>) {
        let raw = std::sync::Arc::as_ptr(&parker) as *mut Parker;
        let mut history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(prev) = history.last() {
            // The previous generation quiesced before its replacement is
            // published, so these counters are final.
            self.retired_parks
                .fetch_add(prev.parks(), Ordering::Relaxed);
            self.retired_wakes
                .fetch_add(prev.wakes(), Ordering::Relaxed);
        }
        history.push(parker);
        // The store is ordered after the history push (Release), so a
        // reader that observes the pointer is guaranteed the Arc keeping
        // it alive has already been retained.
        self.current.store(raw, Ordering::Release);
    }

    /// Runs `f` against the currently published parker; `None` before the
    /// first publication. Lock-free: one `Acquire` pointer load.
    pub fn with_current<R>(&self, f: impl FnOnce(&Parker) -> R) -> Option<R> {
        let raw = self.current.load(Ordering::Acquire);
        if raw.is_null() {
            return None;
        }
        // SAFETY: `raw` was published by `publish`, which retained the
        // owning `Arc` in `history` first; history entries are never
        // removed while the cell is alive, and `&self` keeps the cell
        // alive for the duration of `f`.
        Some(f(unsafe { &*raw }))
    }

    /// How many parkers have been published (server generations so far).
    pub fn published(&self) -> usize {
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Cumulative committed parks across every published generation
    /// (retired totals + the current parker's live counter; O(1)).
    pub fn parks(&self) -> u64 {
        self.retired_parks.load(Ordering::Relaxed) + self.with_current(|p| p.parks()).unwrap_or(0)
    }

    /// Cumulative delivered wake-ups across every published generation
    /// (retired totals + the current parker's live counter; O(1)).
    pub fn wakes(&self) -> u64 {
        self.retired_wakes.load(Ordering::Relaxed) + self.with_current(|p| p.wakes()).unwrap_or(0)
    }
}

impl std::fmt::Debug for ParkerCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParkerCell")
            .field("published", &self.published())
            .field("parks", &self.parks())
            .field("wakes", &self.wakes())
            .finish()
    }
}

impl std::fmt::Debug for Parker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Parker")
            .field("workers", &self.n_workers())
            .field("zones", &self.n_zones())
            .field("currently_parked", &self.currently_parked())
            .field("parks", &self.parks())
            .field("wakes", &self.wakes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::Duration;

    /// Parks worker `w` on a thread and reports when it wakes.
    fn park_on_thread(p: &Arc<Parker>, w: usize) -> std::thread::JoinHandle<()> {
        let p = p.clone();
        std::thread::spawn(move || {
            assert!(p.prepare_park(w), "no wake can be pending yet");
            p.park(w);
        })
    }

    fn wait_parked(p: &Parker, n: usize) {
        let mut spins = 0;
        while p.currently_parked() < n {
            std::thread::yield_now();
            spins += 1;
            assert!(spins < 1_000_000, "workers never parked");
        }
        // `parked` counts announcements; give the sleepers a moment to
        // actually reach the condvar so wake delivery is exercised.
        std::thread::sleep(Duration::from_millis(10));
    }

    #[test]
    fn local_zone_is_woken_before_remote() {
        // Workers 0,1 in zone 0; workers 2,3 in zone 1.
        let p = Arc::new(Parker::new(&[0, 0, 1, 1]));
        let h1 = park_on_thread(&p, 1); // zone 0
        let h3 = park_on_thread(&p, 3); // zone 1
        wait_parked(&p, 2);

        // A wake preferring zone 0 must pick the zone-0 sleeper.
        assert_eq!(p.notify_any(0), Some(1), "zone-local sleeper first");
        h1.join().unwrap();

        // Only the remote sleeper is left: now — and only now — a
        // zone-0 wake may cross zones.
        assert_eq!(p.parked_in_zone(0), 0);
        assert_eq!(
            p.notify_any(0),
            Some(3),
            "remote woken only when local set empty"
        );
        h3.join().unwrap();
        assert_eq!(p.currently_parked(), 0);
        assert_eq!(p.parks(), 2);
        assert_eq!(p.wakes(), 2);
    }

    /// An out-of-range zone id must still probe every zone: before the
    /// normalization in `notify_any`, the rotation started at the raw id
    /// and skipped residue `prefer_zone % n`, losing the wake entirely.
    #[test]
    fn out_of_range_zone_hint_still_wakes() {
        // Workers 0 in zone 0; worker 1 in zone 1.
        let p = Arc::new(Parker::new(&[0, 1]));
        let h = park_on_thread(&p, 1); // zone 1 == 3 % 2
        wait_parked(&p, 1);
        assert_eq!(
            p.notify_any(3),
            Some(1),
            "raw zone id 3 must reach the zone-1 sleeper"
        );
        h.join().unwrap();
        assert_eq!(p.currently_parked(), 0);
    }

    #[test]
    fn targeted_unpark_only_hits_parked_workers() {
        let p = Arc::new(Parker::new(&[0, 0]));
        assert!(!p.unpark(0), "idle worker cannot be woken");
        let h = park_on_thread(&p, 0);
        wait_parked(&p, 1);
        assert!(!p.notify_push(1), "worker 1 is not parked");
        assert!(p.notify_push(0));
        assert!(!p.unpark(0), "second wake finds it already notified");
        h.join().unwrap();
    }

    #[test]
    fn pending_notify_is_consumed_by_prepare() {
        let p = Parker::new(&[0]);
        // Announce, get claimed by a waker, then try to announce again:
        // the stale notification must be consumed, not slept through.
        assert!(p.prepare_park(0));
        assert!(p.unpark(0));
        // Sleeper side: the commit would return immediately; model the
        // cancel path instead (re-check found the waker's payload).
        p.cancel_park(0);
        // The *next* announcement starts clean.
        assert!(p.prepare_park(0));
        p.cancel_park(0);
        assert_eq!(p.currently_parked(), 0);
    }

    #[test]
    fn unpark_all_wakes_every_sleeper() {
        let p = Arc::new(Parker::new(&[0, 0, 1, 1, 2]));
        let hs: Vec<_> = (0..5).map(|w| park_on_thread(&p, w)).collect();
        wait_parked(&p, 5);
        assert_eq!(p.unpark_all(), 5);
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(p.currently_parked(), 0);
        assert_eq!(p.parks(), 5);
    }

    /// The no-lost-wakeup property under a submit-racing-park storm:
    /// a producer hands tokens to a consumer that parks whenever it sees
    /// none; every token must be consumed (no hang = pass).
    #[test]
    fn no_lost_wakeup_stress() {
        const TOKENS: usize = 30_000;
        let p = Arc::new(Parker::new(&[0, 0]));
        let pending = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));

        let consumer = {
            let p = p.clone();
            let pending = pending.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                while done.load(Ordering::Acquire) < TOKENS {
                    // Consume whatever is visible.
                    while pending
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
                        .is_ok()
                    {
                        done.fetch_add(1, Ordering::Release);
                    }
                    if done.load(Ordering::Acquire) >= TOKENS {
                        break;
                    }
                    // Park with the full announce/re-check/commit dance.
                    if p.prepare_park(0) {
                        if pending.load(Ordering::Acquire) > 0
                            || done.load(Ordering::Acquire) >= TOKENS
                        {
                            p.cancel_park(0);
                        } else {
                            p.park(0);
                        }
                    }
                }
            })
        };

        for i in 0..TOKENS {
            pending.fetch_add(1, Ordering::AcqRel);
            p.notify_push(0);
            if i % 1024 == 0 {
                // Give the consumer time to actually fall asleep so the
                // committed-park path is exercised, not just the cancel.
                while p.currently_parked() == 0 && done.load(Ordering::Acquire) < i {
                    std::hint::spin_loop();
                }
            }
        }
        // Final safety wake in case the last token raced an announcement
        // that our notify_push already claimed (consumer consumes it).
        p.unpark_all();
        consumer.join().unwrap();
        assert_eq!(done.load(Ordering::Relaxed), TOKENS);
        assert_eq!(pending.load(Ordering::Relaxed), 0);
    }

    /// The multi-generation doorbell: counters accumulate across
    /// published parkers, stale notifications on retired generations are
    /// harmless, and wakes reach the current generation's sleepers.
    #[test]
    fn parker_cell_spans_generations() {
        let cell = ParkerCell::new();
        assert!(cell.with_current(|_| ()).is_none(), "empty cell");
        assert_eq!(cell.notify_stats(), (0, 0));

        // Generation 1: park, wake through the cell, retire.
        let gen1 = Arc::new(Parker::new(&[0, 0]));
        cell.publish(gen1.clone());
        let h = park_on_thread(&gen1, 0);
        wait_parked(&gen1, 1);
        assert_eq!(cell.with_current(|p| p.notify_any(0)), Some(Some(0)));
        h.join().unwrap();

        // Generation 2 replaces it; a doorbell rung now must reach the
        // new team, and the cumulative counters keep generation 1's.
        let gen2 = Arc::new(Parker::new(&[0]));
        cell.publish(gen2.clone());
        assert_eq!(cell.published(), 2);
        let h = park_on_thread(&gen2, 0);
        wait_parked(&gen2, 1);
        // A stale ring on the retired parker wakes nobody and breaks
        // nothing (generation 1 has no sleepers left).
        assert_eq!(gen1.notify_any(0), None);
        assert_eq!(cell.with_current(|p| p.notify_any(0)), Some(Some(0)));
        h.join().unwrap();
        assert_eq!(cell.notify_stats(), (2, 2));
    }

    impl ParkerCell {
        fn notify_stats(&self) -> (u64, u64) {
            (self.parks(), self.wakes())
        }
    }

    #[test]
    fn counters_track_parks_and_wakes() {
        let p = Arc::new(Parker::new(&[0]));
        for _ in 0..3 {
            let h = park_on_thread(&p, 0);
            wait_parked(&p, 1);
            assert!(p.unpark(0));
            h.join().unwrap();
        }
        assert_eq!(p.parks(), 3);
        assert_eq!(p.wakes(), 3);
        assert_eq!(p.currently_parked(), 0);
    }
}
