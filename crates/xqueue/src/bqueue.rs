//! The B-queue: a bounded lock-less SPSC ring buffer with batched probing.
//!
//! This is the core-to-core channel XQueue is built from. Its defining
//! properties, taken from the paper and the original B-queue design:
//!
//! * **Slot-only synchronization.** There is no shared head/tail index:
//!   the producer and consumer each keep *private* cursors and learn about
//!   each other exclusively by observing slot contents (`null` = empty).
//!   This removes the control-variable cache-line ping-pong of Lamport
//!   queues.
//! * **Batched probing.** The producer checks one slot per `batch` writes
//!   (if slot `head + d - 1` is empty then — because the occupied region
//!   `[tail, head)` is contiguous — all of `head .. head + d` is empty).
//!   The consumer symmetrically *backtracks*: it probes at distance
//!   `batch` and halves the distance until it finds a published slot, so
//!   it never deadlocks when the producer has published fewer than a full
//!   batch.
//! * **No atomic RMW.** All slot accesses are `load(Acquire)` /
//!   `store(Release)` — plain `MOV`s on x86 — which is the paper's
//!   definition of *lock-less*.
//!
//! The queue stores raw `NonNull<T>` element pointers. Ownership of the
//! pointee transfers through the queue: whoever dequeues the pointer owns
//! it again. The runtime passes task pointers; the safe [`crate::spsc`]
//! wrapper passes `Box`es.

use std::cell::UnsafeCell;
use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, Ordering};

/// Default per-queue capacity used by the runtime (slots per SPSC queue,
/// i.e. the paper's `S_queue`).
pub const DEFAULT_CAPACITY: usize = 256;

/// Pads a value to two cache lines to avoid false sharing between the
/// producer-side and consumer-side cursor blocks.
#[repr(align(128))]
struct Pad<T>(T);

struct ProducerState {
    /// Next slot index to write (monotonic; masked on access).
    head: usize,
    /// Exclusive limit `head` may reach before the next probe.
    batch_head: usize,
}

struct ConsumerState {
    /// Next slot index to read (monotonic; masked on access).
    tail: usize,
    /// Exclusive limit `tail` may reach before the next probe.
    batch_tail: usize,
}

/// A bounded lock-less SPSC queue of `NonNull<T>` pointers.
///
/// # Roles
///
/// At any time at most one thread may act as *producer* (calling
/// [`enqueue`](Self::enqueue), [`is_full_hint`](Self::is_full_hint)) and at
/// most one as *consumer* (calling [`dequeue`](Self::dequeue),
/// [`is_empty_hint`](Self::is_empty_hint)). The same thread may hold both
/// roles. Violating this is undefined behavior, which is why the role
/// methods are `unsafe`; see [`crate::spsc`] for a safe owned-handle API.
pub struct BQueue<T> {
    slots: Box<[AtomicPtr<T>]>,
    mask: usize,
    batch: usize,
    prod: Pad<UnsafeCell<ProducerState>>,
    cons: Pad<UnsafeCell<ConsumerState>>,
}

// SAFETY: the queue hands `NonNull<T>` across threads; that is only safe
// when the pointee may move between threads.
unsafe impl<T: Send> Send for BQueue<T> {}
unsafe impl<T: Send> Sync for BQueue<T> {}

impl<T> BQueue<T> {
    /// Creates a queue with `capacity` slots (rounded up to a power of
    /// two, minimum 2). The probe batch is `capacity / 8`, clamped to
    /// `[1, 64]`, matching the ratios used in the paper's artifact.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let batch = (cap / 8).clamp(1, 64);
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BQueue {
            slots,
            mask: cap - 1,
            batch,
            prod: Pad(UnsafeCell::new(ProducerState {
                head: 0,
                batch_head: 0,
            })),
            cons: Pad(UnsafeCell::new(ConsumerState {
                tail: 0,
                batch_tail: 0,
            })),
        }
    }

    /// Number of slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Probe batch size.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    #[inline]
    fn slot(&self, index: usize) -> &AtomicPtr<T> {
        // SAFETY of indexing: mask keeps the index in bounds.
        &self.slots[index & self.mask]
    }

    /// Enqueues `item`, or returns it back if the queue is full.
    ///
    /// # Safety
    ///
    /// Caller must be the unique producer of this queue for the duration
    /// of the call (see type-level docs).
    #[inline]
    pub unsafe fn enqueue(&self, item: NonNull<T>) -> Result<(), NonNull<T>> {
        // SAFETY: unique-producer contract makes this the only live
        // reference to the producer cursor block.
        let p = unsafe { &mut *self.prod.0.get() };
        if p.head == p.batch_head {
            // Probe for a fresh batch of free slots, halving the distance
            // so the final slots of a nearly-full ring remain usable.
            let mut d = self.batch;
            loop {
                if self
                    .slot(p.head.wrapping_add(d - 1))
                    .load(Ordering::Acquire)
                    .is_null()
                {
                    p.batch_head = p.head.wrapping_add(d);
                    break;
                }
                d /= 2;
                if d == 0 {
                    return Err(item);
                }
            }
        }
        self.slot(p.head).store(item.as_ptr(), Ordering::Release);
        p.head = p.head.wrapping_add(1);
        Ok(())
    }

    /// Dequeues the oldest element, if any.
    ///
    /// # Safety
    ///
    /// Caller must be the unique consumer of this queue for the duration
    /// of the call (see type-level docs).
    #[inline]
    pub unsafe fn dequeue(&self) -> Option<NonNull<T>> {
        // SAFETY: unique-consumer contract makes this the only live
        // reference to the consumer cursor block.
        let c = unsafe { &mut *self.cons.0.get() };
        if c.tail == c.batch_tail {
            // Backtracking probe: find the largest published prefix.
            let mut d = self.batch;
            loop {
                if !self
                    .slot(c.tail.wrapping_add(d - 1))
                    .load(Ordering::Acquire)
                    .is_null()
                {
                    c.batch_tail = c.tail.wrapping_add(d);
                    break;
                }
                d /= 2;
                if d == 0 {
                    return None;
                }
            }
        }
        let raw = self.slot(c.tail).load(Ordering::Acquire);
        // Within a confirmed batch every slot is published: the occupied
        // region [tail, head) is contiguous and the probe saw its end.
        debug_assert!(!raw.is_null(), "published batch contained a hole");
        self.slot(c.tail).store(ptr::null_mut(), Ordering::Release);
        c.tail = c.tail.wrapping_add(1);
        // SAFETY: producer published a non-null pointer.
        Some(unsafe { NonNull::new_unchecked(raw) })
    }

    /// Producer-side fullness hint: `true` when the very next slot is
    /// still occupied, i.e. an [`enqueue`](Self::enqueue) would fail.
    ///
    /// Used by the DLB strategies as `isTargetQFull` (Alg. 3/4).
    ///
    /// # Safety
    ///
    /// Caller must be the unique producer (reads the private head cursor).
    #[inline]
    pub unsafe fn is_full_hint(&self) -> bool {
        // SAFETY: unique-producer contract.
        let p = unsafe { &mut *self.prod.0.get() };
        if p.head != p.batch_head {
            return false; // room confirmed by the last probe
        }
        !self.slot(p.head).load(Ordering::Acquire).is_null()
    }

    /// Consumer-side emptiness hint: `true` when the next slot to read has
    /// not been published. May race with a concurrent producer (a `false`
    /// answer can be stale); exact emptiness is only known to the producer.
    ///
    /// # Safety
    ///
    /// Caller must be the unique consumer (reads the private tail cursor).
    #[inline]
    pub unsafe fn is_empty_hint(&self) -> bool {
        // SAFETY: unique-consumer contract.
        let c = unsafe { &mut *self.cons.0.get() };
        if c.tail != c.batch_tail {
            return false; // items confirmed by the last probe
        }
        self.slot(c.tail).load(Ordering::Acquire).is_null()
    }

    /// Approximate occupancy, counted by scanning slots with `Relaxed`
    /// loads. Safe from any thread; the answer may be stale the moment it
    /// returns. Used only for statistics.
    pub fn occupancy_scan(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !s.load(Ordering::Relaxed).is_null())
            .count()
    }
}

impl<T> std::fmt::Debug for BQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BQueue")
            .field("capacity", &self.capacity())
            .field("batch", &self.batch)
            .field("occupancy_scan", &self.occupancy_scan())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak(v: u64) -> NonNull<u64> {
        NonNull::new(Box::into_raw(Box::new(v))).unwrap()
    }

    /// Reclaims a pointer produced by `leak`.
    unsafe fn unleak(p: NonNull<u64>) -> u64 {
        *unsafe { Box::from_raw(p.as_ptr()) }
    }

    #[test]
    fn fifo_order_single_thread() {
        let q = BQueue::<u64>::with_capacity(16);
        unsafe {
            for i in 0..10u64 {
                q.enqueue(leak(i)).unwrap();
            }
            for i in 0..10u64 {
                assert_eq!(unleak(q.dequeue().unwrap()), i);
            }
            assert!(q.dequeue().is_none());
        }
    }

    #[test]
    fn capacity_is_fully_usable() {
        let q = BQueue::<u64>::with_capacity(16);
        unsafe {
            let mut accepted = 0;
            for i in 0..100u64 {
                match q.enqueue(leak(i)) {
                    Ok(()) => accepted += 1,
                    Err(p) => {
                        unleak(p);
                        break;
                    }
                }
            }
            // The graduated probe makes every slot usable.
            assert_eq!(accepted, 16);
            assert!(q.is_full_hint());
            for _ in 0..accepted {
                unleak(q.dequeue().unwrap());
            }
            assert!(q.dequeue().is_none());
        }
    }

    #[test]
    fn interleaved_wraparound() {
        let q = BQueue::<u64>::with_capacity(8);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        unsafe {
            // Push/pop alternating far beyond the ring size.
            for round in 0..1000 {
                let burst = (round % 5) + 1;
                for _ in 0..burst {
                    if q.enqueue(leak(next_in)).is_ok() {
                        next_in += 1;
                    } else {
                        // full: drain one and retry not needed for the test
                    }
                }
                for _ in 0..burst {
                    if let Some(p) = q.dequeue() {
                        assert_eq!(unleak(p), next_out);
                        next_out += 1;
                    }
                }
            }
            while let Some(p) = q.dequeue() {
                assert_eq!(unleak(p), next_out);
                next_out += 1;
            }
            assert_eq!(next_in, next_out);
        }
    }

    #[test]
    fn empty_and_full_hints() {
        let q = BQueue::<u64>::with_capacity(4);
        unsafe {
            assert!(q.is_empty_hint());
            assert!(!q.is_full_hint());
            q.enqueue(leak(1)).unwrap();
            assert!(!q.is_empty_hint());
            for i in 0..3 {
                q.enqueue(leak(i)).unwrap();
            }
            assert!(q.is_full_hint());
            while let Some(p) = q.dequeue() {
                unleak(p);
            }
            assert!(q.is_empty_hint());
        }
    }

    #[test]
    fn cross_thread_stress() {
        const N: u64 = 200_000;
        let q = std::sync::Arc::new(BQueue::<u64>::with_capacity(64));
        let qp = q.clone();
        let producer = std::thread::spawn(move || {
            let mut backoff = crate::Backoff::new();
            for i in 0..N {
                let mut item = leak(i);
                loop {
                    // SAFETY: this thread is the sole producer.
                    match unsafe { qp.enqueue(item) } {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            backoff.snooze();
                        }
                    }
                }
                backoff.reset();
            }
        });
        let mut expected = 0u64;
        let mut backoff = crate::Backoff::new();
        while expected < N {
            // SAFETY: this thread is the sole consumer.
            match unsafe { q.dequeue() } {
                Some(p) => {
                    assert_eq!(unsafe { unleak(p) }, expected);
                    expected += 1;
                    backoff.reset();
                }
                None => backoff.snooze(),
            }
        }
        producer.join().unwrap();
        assert!(unsafe { q.dequeue() }.is_none());
    }

    #[test]
    fn occupancy_scan_matches() {
        let q = BQueue::<u64>::with_capacity(8);
        unsafe {
            for i in 0..5 {
                q.enqueue(leak(i)).unwrap();
            }
            assert_eq!(q.occupancy_scan(), 5);
            unleak(q.dequeue().unwrap());
            assert_eq!(q.occupancy_scan(), 4);
            while let Some(p) = q.dequeue() {
                unleak(p);
            }
        }
    }
}
