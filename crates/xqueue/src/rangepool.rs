//! Lock-free iteration-range pools — the queuing substrate of the
//! data-parallel loop subsystem (`xgomp_core::loops`).
//!
//! A [`RangePool`] holds one contiguous block of unclaimed loop
//! iterations, packed as `(lo, hi)` offsets into a single `AtomicU64`
//! word. Owners *claim* chunks from the front (`lo` moves up); thieves
//! *steal-split* from the back (`hi` moves down, taking the upper half),
//! so a victim's cache-warm front stays with the victim — the
//! iteration-space analog of stealing the cold end of a deque.
//!
//! Like [`parker`](crate::parker), this module is a deliberate exception
//! to the crate's plain-load/store discipline: pools use CAS, but only
//! once per *chunk* (tens to tens of thousands of iterations), never per
//! iteration, so the amortized cost is noise next to the loop body.
//!
//! Offsets are `u32` so the whole pool state fits one atomic word —
//! a single `parallel_for` is therefore bounded at `u32::MAX`
//! (≈ 4.3 · 10⁹) iterations, asserted loudly by the loop layer.

use std::sync::atomic::{AtomicU64, Ordering};

/// A half-open range of iteration offsets, `[lo, hi)`.
pub type IterRange = (u32, u32);

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// One zone's pool of unclaimed iterations: a `(lo, hi)` pair packed
/// into a single atomic word (see the [module docs](self)).
#[derive(Debug)]
pub struct RangePool {
    word: AtomicU64,
}

impl RangePool {
    /// An empty pool.
    pub fn empty() -> Self {
        RangePool {
            word: AtomicU64::new(pack(0, 0)),
        }
    }

    /// A pool seeded with `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi);
        RangePool {
            word: AtomicU64::new(pack(lo, hi)),
        }
    }

    /// Racy remaining-iteration count (scheduling heuristics only).
    #[inline]
    pub fn remaining(&self) -> u32 {
        let (lo, hi) = unpack(self.word.load(Ordering::Relaxed));
        hi.saturating_sub(lo)
    }

    /// Whether the pool looked empty at the load.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Claims up to `max` iterations from the *front* of the pool.
    /// Returns the claimed range, or `None` if the pool was empty.
    /// Linearizable against concurrent claims, steals and deposits: every
    /// iteration is handed out exactly once.
    pub fn claim(&self, max: u32) -> Option<IterRange> {
        let max = max.max(1);
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(word);
            if lo >= hi {
                return None;
            }
            let take = max.min(hi - lo);
            match self.word.compare_exchange_weak(
                word,
                pack(lo + take, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((lo, lo + take)),
                Err(w) => word = w,
            }
        }
    }

    /// Steals the upper half of the pool (⌈remaining / 2⌉ iterations —
    /// a pool holding a single iteration is stolen whole, so thieves can
    /// always finish a zone whose own workers have left). Returns the
    /// stolen range, or `None` if the pool was empty.
    pub fn steal_half(&self) -> Option<IterRange> {
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(word);
            if lo >= hi {
                return None;
            }
            // Victim keeps the (cache-warm) lower ⌊len/2⌋; the thief
            // takes [mid, hi).
            let mid = lo + (hi - lo) / 2;
            match self.word.compare_exchange_weak(
                word,
                pack(lo, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, hi)),
                Err(w) => word = w,
            }
        }
    }

    /// Deposits `[lo, hi)` into the pool **iff it is currently empty**
    /// (a thief sharing the tail of a stolen range with its own zone).
    /// Returns whether the deposit landed; on `false` the caller still
    /// owns the range. Depositing into a non-empty pool is not supported
    /// — the pool is a single contiguous block by design.
    pub fn deposit_if_empty(&self, lo: u32, hi: u32) -> bool {
        debug_assert!(lo < hi, "depositing an empty range");
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (cur_lo, cur_hi) = unpack(word);
            if cur_lo < cur_hi {
                return false;
            }
            match self.word.compare_exchange_weak(
                word,
                pack(lo, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(w) => word = w,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claim_hands_out_front_chunks() {
        let p = RangePool::new(0, 10);
        assert_eq!(p.claim(4), Some((0, 4)));
        assert_eq!(p.claim(4), Some((4, 8)));
        assert_eq!(p.claim(4), Some((8, 10)), "tail chunk is short");
        assert_eq!(p.claim(4), None);
        assert!(p.is_empty());
    }

    #[test]
    fn steal_takes_the_upper_half() {
        let p = RangePool::new(0, 10);
        assert_eq!(p.steal_half(), Some((5, 10)));
        assert_eq!(p.remaining(), 5);
        assert_eq!(p.steal_half(), Some((2, 5)), "⌈5/2⌉ = 3 stolen");
        assert_eq!(p.steal_half(), Some((1, 2)));
        assert_eq!(p.steal_half(), Some((0, 1)), "singleton stolen whole");
        assert_eq!(p.steal_half(), None);
    }

    #[test]
    fn deposit_only_into_empty() {
        let p = RangePool::new(0, 4);
        assert!(!p.deposit_if_empty(10, 20), "pool non-empty");
        assert_eq!(p.claim(4), Some((0, 4)));
        assert!(p.deposit_if_empty(10, 20));
        assert_eq!(p.remaining(), 10);
        assert_eq!(p.claim(100), Some((10, 20)));
    }

    #[test]
    fn zero_max_claims_one() {
        let p = RangePool::new(0, 2);
        assert_eq!(p.claim(0), Some((0, 1)), "max is clamped to ≥ 1");
    }

    #[test]
    fn concurrent_claims_and_steals_conserve_iterations() {
        const N: u32 = 200_000;
        let pool = Arc::new(RangePool::new(0, N));
        let total: u64 = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..8 {
                let pool = pool.clone();
                handles.push(s.spawn(move || {
                    let mut got = 0u64;
                    loop {
                        // Mix front claims and back steals.
                        let r = if t % 2 == 0 {
                            pool.claim(17)
                        } else {
                            pool.steal_half()
                        };
                        match r {
                            Some((lo, hi)) => got += (hi - lo) as u64,
                            None => break,
                        }
                    }
                    got
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, N as u64, "every iteration claimed exactly once");
        assert!(pool.is_empty());
    }
}
