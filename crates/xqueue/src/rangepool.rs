//! Lock-free iteration-range pools — the queuing substrate of the
//! data-parallel loop subsystem (`xgomp_core::loops`).
//!
//! A [`RangePool`] holds one contiguous block of unclaimed loop
//! iterations, packed as `(lo, hi)` offsets into a single `AtomicU64`
//! word. Owners *claim* chunks from the front (`lo` moves up); thieves
//! *steal-split* from the back (`hi` moves down, taking the upper half),
//! so a victim's cache-warm front stays with the victim — the
//! iteration-space analog of stealing the cold end of a deque.
//!
//! Like [`parker`](crate::parker), this module is a deliberate exception
//! to the crate's plain-load/store discipline: pools use CAS, but only
//! once per *chunk* (tens to tens of thousands of iterations), never per
//! iteration, so the amortized cost is noise next to the loop body.
//!
//! Offsets are `u32` so the whole pool state fits one atomic word — one
//! pool is therefore bounded at `u32::MAX` (≈ 4.3 · 10⁹) scheduling
//! units. Larger logical spaces are *waved* through panes of ≤ u32::MAX
//! units by the [`panes`](crate::panes) layer, which chains pools
//! without giving up the one-CAS-per-chunk property.
//!
//! ## Rate telemetry
//!
//! Beyond the range word, each pool carries *claim-rate telemetry*: a
//! cumulative [`claimed`](RangePool::claimed) iteration counter (one
//! relaxed `fetch_add` per successful claim — still amortized over a
//! whole chunk) and an iterations-per-tick EWMA refreshed by a single
//! sampler through [`sample_rate`](RangePool::sample_rate). The
//! inter-socket loop balancer reads these rates to decide which zone's
//! block to re-split *before* a pool runs dry; the pool itself attaches
//! no policy to them.

use std::sync::atomic::{AtomicU64, Ordering};

/// EWMA smoothing factor of [`RangePool::sample_rate`] (new sample
/// weight). ½ keeps the estimate responsive to phase changes while
/// damping single-probe noise.
const RATE_ALPHA: f64 = 0.5;

/// A half-open range of iteration offsets, `[lo, hi)`.
pub type IterRange = (u32, u32);

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// One zone's pool of unclaimed iterations: a `(lo, hi)` pair packed
/// into a single atomic word (see the [module docs](self)).
#[derive(Debug)]
pub struct RangePool {
    word: AtomicU64,
    /// Cumulative iterations handed out through [`claim`](Self::claim)
    /// (front claims only; steals are *re-homing*, not draining, and are
    /// counted by their eventual claimer).
    claimed: AtomicU64,
    /// `f64::to_bits` of the claims-per-tick EWMA (see
    /// [`sample_rate`](Self::sample_rate)).
    rate_bits: AtomicU64,
    /// `claimed` as of the previous `sample_rate` call.
    last_claimed: AtomicU64,
    /// Tick of the previous `sample_rate` call (0 = never sampled).
    last_tick: AtomicU64,
}

impl RangePool {
    /// An empty pool.
    pub fn empty() -> Self {
        Self::new(0, 0)
    }

    /// A pool seeded with `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi);
        RangePool {
            word: AtomicU64::new(pack(lo, hi)),
            claimed: AtomicU64::new(0),
            rate_bits: AtomicU64::new(0f64.to_bits()),
            last_claimed: AtomicU64::new(0),
            last_tick: AtomicU64::new(0),
        }
    }

    /// Racy remaining-iteration count (scheduling heuristics only).
    #[inline]
    pub fn remaining(&self) -> u32 {
        let (lo, hi) = unpack(self.word.load(Ordering::Relaxed));
        hi.saturating_sub(lo)
    }

    /// Whether the pool looked empty at the load.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Racy `(lo, hi)` snapshot of the pool word (scheduling heuristics
    /// and diagnostics only — the pair may be stale by the time the
    /// caller looks at it).
    #[inline]
    pub fn snapshot(&self) -> IterRange {
        unpack(self.word.load(Ordering::Relaxed))
    }

    /// Claims up to `max` iterations from the *front* of the pool.
    /// Returns the claimed range, or `None` if the pool was empty.
    /// Linearizable against concurrent claims, steals and deposits: every
    /// iteration is handed out exactly once.
    pub fn claim(&self, max: u32) -> Option<IterRange> {
        let max = max.max(1);
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(word);
            if lo >= hi {
                return None;
            }
            let take = max.min(hi - lo);
            match self.word.compare_exchange_weak(
                word,
                pack(lo + take, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.claimed.fetch_add(take as u64, Ordering::Relaxed);
                    return Some((lo, lo + take));
                }
                Err(w) => word = w,
            }
        }
    }

    /// Cumulative iterations claimed from the front of this pool.
    #[inline]
    pub fn claimed(&self) -> u64 {
        self.claimed.load(Ordering::Relaxed)
    }

    /// Latest claims-per-tick EWMA (0.0 until two
    /// [`sample_rate`](Self::sample_rate) calls have bracketed some
    /// claims).
    #[inline]
    pub fn claim_rate(&self) -> f64 {
        f64::from_bits(self.rate_bits.load(Ordering::Relaxed))
    }

    /// Folds the claims since the previous call into the rate EWMA and
    /// returns the updated estimate (iterations per clock tick).
    ///
    /// Single-sampler contract: the balancer's probe gate guarantees one
    /// sampler at a time, so the `last_*` bookkeeping uses plain relaxed
    /// stores. The first call only establishes the baseline.
    pub fn sample_rate(&self, now_tick: u64) -> f64 {
        let claimed = self.claimed.load(Ordering::Relaxed);
        let prev_tick = self.last_tick.load(Ordering::Relaxed);
        let prev_claimed = self.last_claimed.load(Ordering::Relaxed);
        if prev_tick == 0 || now_tick <= prev_tick {
            self.last_tick.store(now_tick.max(1), Ordering::Relaxed);
            self.last_claimed.store(claimed, Ordering::Relaxed);
            return self.claim_rate();
        }
        let dt = (now_tick - prev_tick) as f64;
        let inst = claimed.saturating_sub(prev_claimed) as f64 / dt;
        let ewma = (1.0 - RATE_ALPHA) * self.claim_rate() + RATE_ALPHA * inst;
        self.rate_bits.store(ewma.to_bits(), Ordering::Relaxed);
        self.last_tick.store(now_tick, Ordering::Relaxed);
        self.last_claimed.store(claimed, Ordering::Relaxed);
        ewma
    }

    /// Steals the upper half of the pool (⌈remaining / 2⌉ iterations —
    /// a pool holding a single iteration is stolen whole, so thieves can
    /// always finish a zone whose own workers have left). Returns the
    /// stolen range, or `None` if the pool was empty.
    pub fn steal_half(&self) -> Option<IterRange> {
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(word);
            if lo >= hi {
                return None;
            }
            // Victim keeps the (cache-warm) lower ⌊len/2⌋; the thief
            // takes [mid, hi).
            let mid = lo + (hi - lo) / 2;
            match self.word.compare_exchange_weak(
                word,
                pack(lo, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, hi)),
                Err(w) => word = w,
            }
        }
    }

    /// Migrates the upper half of this pool into `dst` — the coarse
    /// (inter-socket) rebalance primitive: one back-half steal from the
    /// rich pool, one deposit into the starved one. Returns the number of
    /// iterations moved, `None` when either side made the migration moot
    /// (`self` empty, or `dst` non-empty — deposits only land in empty
    /// pools, see [`deposit_if_empty`](Self::deposit_if_empty)).
    ///
    /// Caller contract: the caller should be `dst`'s only *depositor*
    /// (claims and steals by other threads are fine). The balancer's
    /// single-prober gate guarantees this; a racing depositor is still
    /// safe — the stolen range is then handed back to `self`'s back edge
    /// (or, if other steals moved it, parked in whichever of the two
    /// pools empties first), never lost.
    pub fn steal_half_into(&self, dst: &RangePool) -> Option<u32> {
        if !dst.is_empty() {
            return None;
        }
        let (lo, hi) = self.steal_half()?;
        loop {
            if dst.deposit_if_empty(lo, hi) {
                return Some(hi - lo);
            }
            // `dst` filled between the check and the deposit (a foreign
            // depositor): un-steal by re-extending our own back edge, or
            // park the range in whichever pool empties first.
            if self.unsteal(lo, hi) || self.deposit_if_empty(lo, hi) {
                return None;
            }
            std::hint::spin_loop();
        }
    }

    /// Re-extends the back of the pool with `[lo, hi)` iff the pool's
    /// current `hi` is exactly `lo` (the range is still adjacent — no
    /// other steal moved the back edge since we took it), or the pool
    /// emptied meanwhile (any range is depositable then). Returns
    /// whether the range was taken back; on `false` the caller still
    /// owns it. The undo half of a two-pool migration — callers that
    /// account migrations at each linearization point (the loop
    /// balancer) bracket [`steal_half`](Self::steal_half) /
    /// [`deposit_if_empty`](Self::deposit_if_empty) with this as the
    /// give-back path.
    pub fn unsteal(&self, lo: u32, hi: u32) -> bool {
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (cur_lo, cur_hi) = unpack(word);
            if cur_lo >= cur_hi {
                // Emptied meanwhile: any range is depositable.
                return self.deposit_if_empty(lo, hi);
            }
            if cur_hi != lo {
                return false;
            }
            match self.word.compare_exchange_weak(
                word,
                pack(cur_lo, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(w) => word = w,
            }
        }
    }

    /// Deposits `[lo, hi)` into the pool **iff it is currently empty**
    /// (a thief sharing the tail of a stolen range with its own zone).
    /// Returns whether the deposit landed; on `false` the caller still
    /// owns the range. Depositing into a non-empty pool is not supported
    /// — the pool is a single contiguous block by design.
    pub fn deposit_if_empty(&self, lo: u32, hi: u32) -> bool {
        debug_assert!(lo < hi, "depositing an empty range");
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (cur_lo, cur_hi) = unpack(word);
            if cur_lo < cur_hi {
                return false;
            }
            match self.word.compare_exchange_weak(
                word,
                pack(lo, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(w) => word = w,
            }
        }
    }

    /// Empties the pool in one CAS and returns the drained range — the
    /// cancellation primitive, range-returning form (callers that map
    /// pool offsets back into a larger logical space need the bounds,
    /// not just the count). Unlike [`claim`](Self::claim) the drained
    /// iterations stay out of the `claimed` counter, so the rate EWMA
    /// keeps describing *executed* throughput only. Linearizable against
    /// concurrent claims, steals and deposits: every drained iteration
    /// is taken by exactly one drainer and never also handed out for
    /// execution.
    pub fn drain_all(&self) -> Option<IterRange> {
        let mut word = self.word.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(word);
            if lo >= hi {
                return None;
            }
            match self.word.compare_exchange_weak(
                word,
                pack(hi, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((lo, hi)),
                Err(w) => word = w,
            }
        }
    }

    /// [`drain_all`](Self::drain_all), counting form: empties the pool
    /// in one CAS and returns how many iterations were abandoned.
    pub fn abandon(&self) -> u32 {
        self.drain_all().map_or(0, |(lo, hi)| hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claim_hands_out_front_chunks() {
        let p = RangePool::new(0, 10);
        assert_eq!(p.claim(4), Some((0, 4)));
        assert_eq!(p.claim(4), Some((4, 8)));
        assert_eq!(p.claim(4), Some((8, 10)), "tail chunk is short");
        assert_eq!(p.claim(4), None);
        assert!(p.is_empty());
    }

    #[test]
    fn steal_takes_the_upper_half() {
        let p = RangePool::new(0, 10);
        assert_eq!(p.steal_half(), Some((5, 10)));
        assert_eq!(p.remaining(), 5);
        assert_eq!(p.steal_half(), Some((2, 5)), "⌈5/2⌉ = 3 stolen");
        assert_eq!(p.steal_half(), Some((1, 2)));
        assert_eq!(p.steal_half(), Some((0, 1)), "singleton stolen whole");
        assert_eq!(p.steal_half(), None);
    }

    #[test]
    fn abandon_empties_and_counts_exactly_once() {
        let p = RangePool::new(0, 10);
        assert_eq!(p.claim(3), Some((0, 3)));
        assert_eq!(p.abandon(), 7, "abandons everything still pooled");
        assert!(p.is_empty());
        assert_eq!(p.abandon(), 0, "second abandon finds nothing");
        assert_eq!(p.claimed(), 3, "abandoned iters don't count as claimed");
        assert!(p.deposit_if_empty(20, 25), "pool is reusable after abandon");
        assert_eq!(p.abandon(), 5);
    }

    #[test]
    fn deposit_only_into_empty() {
        let p = RangePool::new(0, 4);
        assert!(!p.deposit_if_empty(10, 20), "pool non-empty");
        assert_eq!(p.claim(4), Some((0, 4)));
        assert!(p.deposit_if_empty(10, 20));
        assert_eq!(p.remaining(), 10);
        assert_eq!(p.claim(100), Some((10, 20)));
    }

    #[test]
    fn zero_max_claims_one() {
        let p = RangePool::new(0, 2);
        assert_eq!(p.claim(0), Some((0, 1)), "max is clamped to ≥ 1");
    }

    #[test]
    fn steal_half_into_migrates_into_an_empty_pool() {
        let src = RangePool::new(0, 100);
        let dst = RangePool::empty();
        assert_eq!(src.steal_half_into(&dst), Some(50));
        assert_eq!(src.remaining(), 50);
        assert_eq!(dst.remaining(), 50);
        assert_eq!(dst.claim(100), Some((50, 100)));
        // Non-empty destination: migration refused, source untouched.
        let busy = RangePool::new(0, 10);
        assert_eq!(src.steal_half_into(&busy), None);
        assert_eq!(src.remaining(), 50);
        // Empty source: nothing to migrate.
        let dry = RangePool::empty();
        assert_eq!(dry.steal_half_into(&dst), None);
    }

    #[test]
    fn unsteal_restores_an_adjacent_back_range() {
        let p = RangePool::new(0, 10);
        let (lo, hi) = p.steal_half().unwrap();
        assert!(p.unsteal(lo, hi), "still adjacent");
        assert_eq!(p.remaining(), 10);
        // After a second steal moved the back edge, the first range is no
        // longer adjacent.
        let first = p.steal_half().unwrap();
        let _second = p.steal_half().unwrap();
        assert!(!p.unsteal(first.0, first.1));
        // But an emptied pool takes any range back.
        while p.claim(100).is_some() {}
        assert!(p.unsteal(first.0, first.1));
        assert_eq!(p.remaining(), first.1 - first.0);
    }

    #[test]
    fn claim_counter_and_rate_ewma() {
        let p = RangePool::new(0, 1_000);
        assert_eq!(p.claimed(), 0);
        p.claim(100);
        p.claim(50);
        assert_eq!(p.claimed(), 150);
        // Steals do not count as claims.
        p.steal_half();
        assert_eq!(p.claimed(), 150);
        // First sample establishes the baseline only.
        assert_eq!(p.sample_rate(1_000), 0.0);
        p.claim(200);
        // 200 iterations over 1000 ticks → 0.2/tick, EWMA-weighted ½.
        let r = p.sample_rate(2_000);
        assert!((r - 0.1).abs() < 1e-9, "rate {r}");
        // A stalled interval decays the estimate.
        let r2 = p.sample_rate(3_000);
        assert!((r2 - 0.05).abs() < 1e-9, "rate {r2}");
        assert_eq!(p.claim_rate(), r2);
    }

    #[test]
    fn concurrent_claims_and_steals_conserve_iterations() {
        const N: u32 = 200_000;
        let pool = Arc::new(RangePool::new(0, N));
        let total: u64 = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..8 {
                let pool = pool.clone();
                handles.push(s.spawn(move || {
                    let mut got = 0u64;
                    loop {
                        // Mix front claims and back steals.
                        let r = if t % 2 == 0 {
                            pool.claim(17)
                        } else {
                            pool.steal_half()
                        };
                        match r {
                            Some((lo, hi)) => got += (hi - lo) as u64,
                            None => break,
                        }
                    }
                    got
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, N as u64, "every iteration claimed exactly once");
        assert!(pool.is_empty());
    }

    #[test]
    fn migrations_racing_claims_conserve_iterations() {
        const N: u32 = 400_000;
        let src = Arc::new(RangePool::new(0, N));
        let dst = Arc::new(RangePool::empty());
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let total: u64 = std::thread::scope(|s| {
            let mut handles = Vec::new();
            // One migrator (the single-depositor contract) re-splitting
            // the rich pool into the starved one whenever it empties.
            // Its last deposit is visible before `done` flips, so the
            // claimers' exit condition cannot strand an in-flight range.
            {
                let (src, dst, done) = (src.clone(), dst.clone(), done.clone());
                handles.push(s.spawn(move || {
                    while !src.is_empty() {
                        src.steal_half_into(&dst);
                        std::hint::spin_loop();
                    }
                    done.store(true, Ordering::SeqCst);
                    0u64
                }));
            }
            for t in 0..6 {
                let (src, dst, done) = (src.clone(), dst.clone(), done.clone());
                handles.push(s.spawn(move || {
                    let mut got = 0u64;
                    loop {
                        let r = if t % 2 == 0 {
                            dst.claim(31).or_else(|| src.claim(31))
                        } else {
                            src.claim(17).or_else(|| dst.steal_half())
                        };
                        match r {
                            Some((lo, hi)) => got += (hi - lo) as u64,
                            None => {
                                if done.load(Ordering::SeqCst) && src.is_empty() && dst.is_empty() {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, N as u64, "migration lost or duplicated iterations");
        assert!(src.is_empty() && dst.is_empty());
    }
}
