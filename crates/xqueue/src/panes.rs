//! Pane sets — the *wave* layer that lifts [`RangePool`] from u32
//! offsets to whole u64 iteration spaces.
//!
//! A [`RangePool`] packs `(lo, hi)` into one atomic word, so a single
//! pool is bounded at `u32::MAX` scheduling units. A [`PaneSet`] owns
//! one zone's u64 *share* of a logical space and lowers it to **panes**
//! of at most `u32::MAX` units each, drained through two pools:
//!
//! * `panes` — a `RangePool` of pending *pane indices*. Panes have a
//!   fixed size, so pane `k` of a share `[S, E)` deterministically
//!   covers `[S + k·P, min(S + (k+1)·P, E))` — pane position is pure
//!   arithmetic, never shared mutable state.
//! * `current` — the active pane's units, as u32 offsets from an atomic
//!   `base`. All front claims flow through here, so the one-CAS-per-chunk
//!   property and the claim-rate EWMA carry over unchanged.
//!
//! A claim that finds `current` dry *refills* it from the next pending
//! pane — one `claim(1)` CAS on the pane queue — and shares smaller than
//! one pane skip the pane queue entirely (the `current` pool **is** the
//! share), so sub-u32 loops pay no waving overhead beyond the Dekker
//! registration below.
//!
//! ## The base-attribution handshake
//!
//! A refill publishes a new `base` and re-seeds `current`; a concurrent
//! claimer must never pair a chunk claimed from the *new* pane with the
//! *old* base. The two sides run a SeqCst Dekker handshake (the same
//! idiom as the parker's full-fence pairing):
//!
//! * **Claimers** register in a `claimers` counter (`fetch_add`,
//!   SeqCst), then load `seq`. Odd means a refill is in flight —
//!   deregister and retry. Even means any refill that starts later must
//!   first observe `claimers != 0` and wait, so `base` is frozen for the
//!   whole registered window.
//! * **The refiller** flips `seq` odd (one CAS — also the mutual
//!   exclusion between refills and deposits), waits for `claimers` to
//!   drain, moves one pane, then flips `seq` back even.
//!
//! `seq` doubles as a seqlock for scanners:
//! [`is_definitely_empty`](PaneSet::is_definitely_empty) validates its
//! two-pool emptiness scan against an even, unchanged `seq`, because a
//! pane mid-refill is in *neither* pool — exactly the in-flight-range
//! argument of the loop balancer's epoch seqlock, one layer down.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::rangepool::RangePool;

/// Default pane size in scheduling units (2³¹: half the u32 space, so
/// ragged arithmetic never overflows a pool word, and a maximal
/// `u32::MAX`-pane share still fits ~2⁶² units).
pub const DEFAULT_PANE_UNITS: u64 = 1 << 31;

/// Hard ceiling on one `PaneSet` share (and hence on one logical
/// iteration space): 2⁶² scheduling units always lower to at most
/// `u32::MAX` panes of at least [`DEFAULT_PANE_UNITS`] each.
pub const MAX_SHARE_UNITS: u64 = 1 << 62;

/// One zone's u64 share of an iteration space, waved through ≤u32 panes
/// (see the [module docs](self)).
#[derive(Debug)]
pub struct PaneSet {
    /// First unit of pane 0 (only rewritten by `deposit_if_empty`, under
    /// the refill lock with `claimers` drained).
    share_lo: AtomicU64,
    /// One past the share's last unit (ragged-last-pane bound).
    share_hi: AtomicU64,
    /// Units per pane. Configurable (tests shrink it to exercise many
    /// refills cheaply); grown automatically when a share would need
    /// more than `u32::MAX` panes.
    pane_units: AtomicU64,
    /// Pending pane indices.
    panes: RangePool,
    /// The active pane's units, as offsets from `base`.
    current: RangePool,
    /// Global unit index of `current`'s offset 0.
    base: AtomicU64,
    /// Dekker/seqlock word: odd while a refill or deposit is in flight.
    seq: AtomicU64,
    /// Registered claimers/stealers (readers of `base` and the share
    /// fields); a refill waits for zero before touching them.
    claimers: AtomicU64,
}

impl PaneSet {
    /// An empty pane set with the default pane size.
    pub fn empty() -> Self {
        Self::with_pane_units(0, 0, DEFAULT_PANE_UNITS)
    }

    /// A pane set seeded with units `[lo, hi)`, default pane size.
    pub fn new(lo: u64, hi: u64) -> Self {
        Self::with_pane_units(lo, hi, DEFAULT_PANE_UNITS)
    }

    /// A pane set seeded with units `[lo, hi)` and an explicit pane size
    /// (clamped to `[1, u32::MAX]`; mostly a test knob — small panes
    /// exercise many refills on small spaces).
    pub fn with_pane_units(lo: u64, hi: u64, pane_units: u64) -> Self {
        debug_assert!(lo <= hi);
        debug_assert!(hi - lo <= MAX_SHARE_UNITS, "share beyond 2^62 units");
        let set = PaneSet {
            share_lo: AtomicU64::new(lo),
            share_hi: AtomicU64::new(hi),
            pane_units: AtomicU64::new(pane_units.clamp(1, u32::MAX as u64)),
            panes: RangePool::empty(),
            current: RangePool::empty(),
            base: AtomicU64::new(lo),
            seq: AtomicU64::new(0),
            claimers: AtomicU64::new(0),
        };
        if lo < hi {
            set.install(lo, hi);
        }
        set
    }

    /// Seeds the (empty) pools with `[lo, hi)`. Caller holds the refill
    /// lock or exclusive access (constructor).
    fn install(&self, lo: u64, hi: u64) {
        let len = hi - lo;
        self.share_lo.store(lo, Ordering::Relaxed);
        self.share_hi.store(hi, Ordering::Relaxed);
        let mut p = self.pane_units.load(Ordering::Relaxed).max(1);
        // Grow panes until the share fits the u32 pane-index space.
        while len.div_ceil(p) > u32::MAX as u64 {
            p *= 2;
        }
        self.pane_units.store(p, Ordering::Relaxed);
        if len <= p {
            // Single-pane fast path: the whole share sits in `current`,
            // the pane queue stays empty, no refill will ever run.
            self.base.store(lo, Ordering::Relaxed);
            let seeded = self.current.deposit_if_empty(0, len as u32);
            debug_assert!(seeded, "install into a non-empty current pool");
        } else {
            let seeded = self.panes.deposit_if_empty(0, len.div_ceil(p) as u32);
            debug_assert!(seeded, "install into a non-empty pane queue");
        }
    }

    /// Unit bounds of pane `k`. Caller must hold the refill lock or be
    /// registered in `claimers` (the share fields are frozen then).
    fn pane_bounds(&self, k: u32) -> (u64, u64) {
        let p = self.pane_units.load(Ordering::Relaxed);
        let hi = self.share_hi.load(Ordering::Relaxed);
        let lo = self.share_lo.load(Ordering::Relaxed) + k as u64 * p;
        (lo.min(hi), (lo + p).min(hi))
    }

    /// Claims up to `max` units from the front. Returns global unit
    /// bounds, or `None` if the set *looked* empty — a refill in flight
    /// holds a pane in neither pool, so "empty" must be confirmed with
    /// [`is_definitely_empty`](Self::is_definitely_empty) before any
    /// exit decision, exactly like a racy [`RangePool::claim`] miss.
    pub fn claim(&self, max: u32) -> Option<(u64, u64)> {
        loop {
            self.claimers.fetch_add(1, Ordering::SeqCst);
            if self.seq.load(Ordering::SeqCst) & 1 == 1 {
                // Refill in flight: get out of its way and retry.
                self.claimers.fetch_sub(1, Ordering::Release);
                std::hint::spin_loop();
                continue;
            }
            let base = self.base.load(Ordering::Relaxed);
            let got = self.current.claim(max);
            self.claimers.fetch_sub(1, Ordering::Release);
            if let Some((lo, hi)) = got {
                return Some((base + lo as u64, base + hi as u64));
            }
            // Current pane dry: refill from the pane queue (one CAS) and
            // retry, unless the whole set is drained.
            if !self.refill() {
                return None;
            }
        }
    }

    /// Moves the next pending pane into `current`. Returns `false` only
    /// when there is provably nothing left to claim right now (both
    /// pools looked empty with no refill in flight); `true` means the
    /// caller should retry its claim.
    fn refill(&self) -> bool {
        let s = self.seq.load(Ordering::SeqCst);
        if s & 1 == 1 {
            // Another refill is in flight; its outcome feeds our retry.
            std::hint::spin_loop();
            return true;
        }
        if self.panes.is_empty() {
            // Nothing to refill from. Retry only if `current` was
            // re-seeded meanwhile (a racing refill that beat us here).
            return !self.current.is_empty();
        }
        if self
            .seq
            .compare_exchange(s, s + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return true;
        }
        // Exclusive. Wait out registered claimers so nobody pairs a
        // chunk from the new pane with the old base (module docs).
        while self.claimers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        if self.current.is_empty() {
            if let Some((k, _)) = self.panes.claim(1) {
                let (lo, hi) = self.pane_bounds(k);
                self.base.store(lo, Ordering::Relaxed);
                let seeded = self.current.deposit_if_empty(0, (hi - lo) as u32);
                debug_assert!(seeded, "refill into a non-empty current pool");
            }
        }
        self.seq.store(s + 2, Ordering::SeqCst);
        true
    }

    /// Steals from the back: a run of whole pending panes when any
    /// remain (one CAS moves up to half the pane queue), else the upper
    /// half of the active pane. Returns global unit bounds; `None` means
    /// the set looked empty (same caveat as [`claim`](Self::claim)).
    pub fn steal_half(&self) -> Option<(u64, u64)> {
        self.claimers.fetch_add(1, Ordering::SeqCst);
        if self.seq.load(Ordering::SeqCst) & 1 == 1 {
            self.claimers.fetch_sub(1, Ordering::Release);
            return None;
        }
        let got = if let Some((ka, kb)) = self.panes.steal_half() {
            // Pending panes are contiguous in unit space: the stolen run
            // spans pane ka's first unit to pane kb-1's last.
            Some((self.pane_bounds(ka).0, self.pane_bounds(kb - 1).1))
        } else {
            let base = self.base.load(Ordering::Relaxed);
            self.current
                .steal_half()
                .map(|(lo, hi)| (base + lo as u64, base + hi as u64))
        };
        self.claimers.fetch_sub(1, Ordering::Release);
        got
    }

    /// Deposits units `[lo, hi)` **iff the set is empty** (the landing
    /// pad of balancer migrations and stolen-tail re-homing). Shares
    /// longer than one pane re-wave through the pane queue. Returns
    /// whether the deposit landed; on `false` the caller still owns the
    /// range.
    pub fn deposit_if_empty(&self, lo: u64, hi: u64) -> bool {
        debug_assert!(lo < hi, "depositing an empty range");
        if self.remaining() != 0 {
            return false;
        }
        let s = self.seq.load(Ordering::SeqCst);
        if s & 1 == 1
            || self
                .seq
                .compare_exchange(s, s + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
        {
            // A refill or deposit is in flight — not empty for our
            // purposes; the caller keeps the range.
            return false;
        }
        while self.claimers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        let empty = self.panes.is_empty() && self.current.is_empty();
        if empty {
            self.install(lo, hi);
        }
        self.seq.store(s + 2, Ordering::SeqCst);
        empty
    }

    /// Cancellation drain: empties both pools without executing,
    /// reporting every drained **global unit range** through `f` (so the
    /// caller can convert units to logical elements) and returning the
    /// total units drained. Loops until the emptiness is seqlock-clean —
    /// a refill in flight re-materializes units after a blind scan.
    /// Concurrent drainers and claimers are fine: every unit goes to
    /// exactly one of them.
    pub fn drain_all_with(&self, mut f: impl FnMut(u64, u64)) -> u64 {
        let mut total = 0u64;
        loop {
            self.claimers.fetch_add(1, Ordering::SeqCst);
            if self.seq.load(Ordering::SeqCst) & 1 == 1 {
                self.claimers.fetch_sub(1, Ordering::Release);
                std::hint::spin_loop();
                continue;
            }
            if let Some((ka, kb)) = self.panes.drain_all() {
                let (lo, hi) = (self.pane_bounds(ka).0, self.pane_bounds(kb - 1).1);
                total += hi - lo;
                f(lo, hi);
            }
            let base = self.base.load(Ordering::Relaxed);
            if let Some((lo, hi)) = self.current.drain_all() {
                total += (hi - lo) as u64;
                f(base + lo as u64, base + hi as u64);
            }
            self.claimers.fetch_sub(1, Ordering::Release);
            if self.is_definitely_empty() {
                return total;
            }
            std::hint::spin_loop();
        }
    }

    /// Racy remaining-unit estimate across both pools (scheduling
    /// heuristics and balancer ETAs only).
    pub fn remaining(&self) -> u64 {
        let mut total = self.current.remaining() as u64;
        let (ka, kb) = self.panes.snapshot();
        if ka < kb {
            let p = self.pane_units.load(Ordering::Relaxed).max(1);
            let slo = self.share_lo.load(Ordering::Relaxed);
            let shi = self.share_hi.load(Ordering::Relaxed);
            let lo = (slo + ka as u64 * p).min(shi);
            let hi = (slo + kb as u64 * p).min(shi);
            total += hi - lo;
        }
        total
    }

    /// Whether the set looked empty at the loads (racy).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.panes.is_empty() && self.current.is_empty()
    }

    /// Seqlock-validated emptiness: both pools empty with no refill in
    /// flight before, during, or after the scan. Only this is strong
    /// enough for a drain-exit decision — a pane mid-refill is in
    /// *neither* pool.
    pub fn is_definitely_empty(&self) -> bool {
        let s = self.seq.load(Ordering::SeqCst);
        if s & 1 == 1 {
            return false;
        }
        let empty = self.is_empty();
        // Seqlock reader: order the pool-word scan before the validating
        // re-read, so the scan can't see state newer than the epoch.
        fence(Ordering::Acquire);
        empty && self.seq.load(Ordering::SeqCst) == s
    }

    /// Cumulative units claimed from the front (pane-steals are
    /// re-homing, not draining — counted by their eventual claimer, like
    /// [`RangePool`] steals).
    #[inline]
    pub fn claimed(&self) -> u64 {
        self.current.claimed()
    }

    /// Latest claims-per-tick EWMA (see [`RangePool::claim_rate`]).
    #[inline]
    pub fn claim_rate(&self) -> f64 {
        self.current.claim_rate()
    }

    /// Folds claims since the previous call into the rate EWMA (see
    /// [`RangePool::sample_rate`]; same single-sampler contract).
    pub fn sample_rate(&self, now_tick: u64) -> f64 {
        self.current.sample_rate(now_tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_pane_share_skips_the_pane_queue() {
        let set = PaneSet::new(1_000, 1_100);
        assert_eq!(set.remaining(), 100);
        assert_eq!(set.claim(40), Some((1_000, 1_040)));
        assert_eq!(set.steal_half(), Some((1_070, 1_100)));
        assert_eq!(set.claim(100), Some((1_040, 1_070)));
        assert_eq!(set.claim(1), None);
        assert!(set.is_definitely_empty());
    }

    #[test]
    fn claims_wave_across_panes_in_order() {
        // 25 units in panes of 8: 8 + 8 + 8 + 1.
        let set = PaneSet::with_pane_units(100, 125, 8);
        let mut next = 100;
        while let Some((lo, hi)) = set.claim(3) {
            assert_eq!(lo, next, "claims stay contiguous across pane refills");
            assert!(hi - lo <= 3);
            next = hi;
        }
        assert_eq!(next, 125, "every unit claimed exactly once");
        assert!(set.is_definitely_empty());
        assert_eq!(set.claimed(), 25);
    }

    #[test]
    fn giant_share_claims_conserve() {
        // > u32::MAX units with default panes: a handful of whole-pane
        // claims drain it.
        let len = u32::MAX as u64 + 9;
        let set = PaneSet::new(0, len);
        assert_eq!(set.remaining(), len);
        let (mut next, mut claims) = (0u64, 0u32);
        while let Some((lo, hi)) = set.claim(u32::MAX) {
            assert_eq!(lo, next);
            next = hi;
            claims += 1;
        }
        assert_eq!(next, len);
        assert!(claims <= 4, "whole-pane claims: {claims}");
        assert!(set.is_definitely_empty());
    }

    #[test]
    fn steals_prefer_whole_pane_tails() {
        // 64 units in panes of 8 → 8 pending panes; nothing claimed yet,
        // so a steal takes the back run of panes [4, 8) = units [32, 64).
        let set = PaneSet::with_pane_units(0, 64, 8);
        assert_eq!(set.steal_half(), Some((32, 64)));
        // Drain the front normally; the stolen units never reappear.
        let mut got = 0u64;
        while let Some((lo, hi)) = set.claim(100) {
            got += hi - lo;
        }
        assert_eq!(got, 32);
        // Active-pane steal once the pane queue is dry.
        let set = PaneSet::with_pane_units(0, 10, 32);
        assert_eq!(set.claim(2), Some((0, 2)));
        assert_eq!(set.steal_half(), Some((6, 10)));
    }

    #[test]
    fn ragged_last_pane_steal_bounds_are_clipped() {
        // 20 units in panes of 8: panes cover [0,8) [8,16) [16,20).
        let set = PaneSet::with_pane_units(0, 20, 8);
        // Steal takes panes [1,3) hi-clipped to 20 — not 24.
        assert_eq!(set.steal_half(), Some((8, 20)));
    }

    #[test]
    fn deposit_rewaves_and_refuses_nonempty() {
        let set = PaneSet::with_pane_units(0, 10, 8);
        assert!(!set.deposit_if_empty(50, 60), "set still holds units");
        set.drain_all_with(|_, _| {});
        // A deposit longer than one pane re-waves through the queue.
        assert!(set.deposit_if_empty(1_000, 1_030));
        let mut next = 1_000;
        while let Some((lo, hi)) = set.claim(4) {
            assert_eq!(lo, next);
            next = hi;
        }
        assert_eq!(next, 1_030);
    }

    #[test]
    fn drain_reports_exact_unit_ranges() {
        let set = PaneSet::with_pane_units(0, 30, 8);
        assert_eq!(set.claim(5), Some((0, 5)));
        let mut drained = Vec::new();
        let total = set.drain_all_with(|lo, hi| drained.push((lo, hi)));
        assert_eq!(total, 25);
        assert_eq!(total, drained.iter().map(|(lo, hi)| hi - lo).sum::<u64>());
        assert!(set.is_definitely_empty());
        assert_eq!(set.claimed(), 5, "drained units don't count as claimed");
    }

    #[test]
    fn pane_growth_keeps_index_space_in_u32() {
        // A tiny pane size on a giant share must auto-grow rather than
        // overflow the pane-index pool.
        let len = (u32::MAX as u64 + 1) * 4; // 2^34 units
        let set = PaneSet::with_pane_units(0, len, 2);
        assert_eq!(set.remaining(), len);
        let (lo, hi) = set.claim(u32::MAX).unwrap();
        assert_eq!(lo, 0);
        assert!(hi > 0);
    }

    #[test]
    fn concurrent_claims_steals_and_refills_conserve_units() {
        const LEN: u64 = 120_000;
        // Panes of 1k → ~120 refills race the claims and steals.
        let set = Arc::new(PaneSet::with_pane_units(0, LEN, 1_024));
        let total: u64 = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..8 {
                let set = set.clone();
                handles.push(s.spawn(move || {
                    let mut got = 0u64;
                    loop {
                        let r = if t % 3 == 0 {
                            set.steal_half()
                        } else {
                            set.claim(97)
                        };
                        match r {
                            Some((lo, hi)) => got += hi - lo,
                            None => {
                                if set.is_definitely_empty() {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, LEN, "every unit handed out exactly once");
        assert!(set.is_definitely_empty());
    }

    #[test]
    fn concurrent_drain_racing_claims_conserves() {
        const LEN: u64 = 80_000;
        let set = Arc::new(PaneSet::with_pane_units(0, LEN, 512));
        let total: u64 = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..6 {
                let set = set.clone();
                handles.push(s.spawn(move || {
                    let mut got = 0u64;
                    if t == 0 {
                        // One drainer races the claimers mid-flight.
                        for _ in 0..500 {
                            std::hint::spin_loop();
                        }
                        got += set.drain_all_with(|_, _| {});
                    } else {
                        while let Some((lo, hi)) = set.claim(33) {
                            got += hi - lo;
                        }
                        // Late units may surface after a refill the
                        // drainer hasn't cleaned yet; sweep them too.
                        got += set.drain_all_with(|_, _| {});
                    }
                    got
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, LEN, "claimed + drained covers the share exactly");
    }
}
