//! Exponential spin backoff for polling loops.
//!
//! Workers in the XGOMP runtime never block on an OS primitive while the
//! team is live (the whole point is to avoid kernel-assisted
//! synchronization), so idle paths spin. This helper ramps the number of
//! `spin_loop` hints up exponentially and, past a threshold, yields the
//! time slice so oversubscribed configurations (more workers than cores —
//! the common case in this reproduction, see DESIGN.md §3.2) still make
//! global progress.

use std::hint;

/// Exponential backoff state for one polling site.
///
/// ```
/// use xgomp_xqueue::Backoff;
/// let mut b = Backoff::new();
/// for _ in 0..4 {
///     b.snooze(); // cheap spins first, `yield_now` once saturated
/// }
/// assert!(!b.is_completed() || Backoff::YIELD_LIMIT <= 4);
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Steps of pure spinning before starting to yield to the OS.
    pub const SPIN_LIMIT: u32 = 6;
    /// Steps after which [`Backoff::is_completed`] reports saturation.
    pub const YIELD_LIMIT: u32 = 10;

    /// A fresh backoff at the cheapest setting.
    #[inline]
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets to the cheapest setting (call after useful work was found).
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Spins briefly; never yields. Use inside small bounded retry loops.
    #[inline]
    pub fn spin(&mut self) {
        for _ in 0..(1u32 << self.step.min(Self::SPIN_LIMIT)) {
            hint::spin_loop();
        }
        if self.step <= Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Spins while cheap, then yields the time slice.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// Whether the backoff has saturated (caller may want to park or
    /// re-examine termination conditions more aggressively).
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step > Self::YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_after_yield_limit() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=Backoff::YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_never_exceeds_spin_limit() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        // `spin` must not push the step into yield territory.
        assert!(b.step <= Backoff::SPIN_LIMIT + 1);
    }
}
